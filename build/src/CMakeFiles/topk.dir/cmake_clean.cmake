file(REMOVE_RECURSE
  "CMakeFiles/topk.dir/em/block_device.cc.o"
  "CMakeFiles/topk.dir/em/block_device.cc.o.d"
  "CMakeFiles/topk.dir/em/buffer_pool.cc.o"
  "CMakeFiles/topk.dir/em/buffer_pool.cc.o.d"
  "CMakeFiles/topk.dir/halfspace/convex.cc.o"
  "CMakeFiles/topk.dir/halfspace/convex.cc.o.d"
  "CMakeFiles/topk.dir/halfspace/convex_layers.cc.o"
  "CMakeFiles/topk.dir/halfspace/convex_layers.cc.o.d"
  "libtopk.a"
  "libtopk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
