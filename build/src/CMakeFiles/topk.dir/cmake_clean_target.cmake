file(REMOVE_RECURSE
  "libtopk.a"
)
