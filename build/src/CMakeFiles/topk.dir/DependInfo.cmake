
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/block_device.cc" "src/CMakeFiles/topk.dir/em/block_device.cc.o" "gcc" "src/CMakeFiles/topk.dir/em/block_device.cc.o.d"
  "/root/repo/src/em/buffer_pool.cc" "src/CMakeFiles/topk.dir/em/buffer_pool.cc.o" "gcc" "src/CMakeFiles/topk.dir/em/buffer_pool.cc.o.d"
  "/root/repo/src/halfspace/convex.cc" "src/CMakeFiles/topk.dir/halfspace/convex.cc.o" "gcc" "src/CMakeFiles/topk.dir/halfspace/convex.cc.o.d"
  "/root/repo/src/halfspace/convex_layers.cc" "src/CMakeFiles/topk.dir/halfspace/convex_layers.cc.o" "gcc" "src/CMakeFiles/topk.dir/halfspace/convex_layers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
