file(REMOVE_RECURSE
  "CMakeFiles/map_pois.dir/map_pois.cc.o"
  "CMakeFiles/map_pois.dir/map_pois.cc.o.d"
  "map_pois"
  "map_pois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_pois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
