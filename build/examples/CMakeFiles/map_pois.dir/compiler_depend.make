# Empty compiler generated dependencies file for map_pois.
# This may be replaced when dependencies are built.
