file(REMOVE_RECURSE
  "CMakeFiles/em_demo.dir/em_demo.cc.o"
  "CMakeFiles/em_demo.dir/em_demo.cc.o.d"
  "em_demo"
  "em_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
