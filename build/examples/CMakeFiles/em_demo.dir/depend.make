# Empty dependencies file for em_demo.
# This may be replaced when dependencies are built.
