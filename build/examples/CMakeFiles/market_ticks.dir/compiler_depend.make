# Empty compiler generated dependencies file for market_ticks.
# This may be replaced when dependencies are built.
