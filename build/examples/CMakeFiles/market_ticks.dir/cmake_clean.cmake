file(REMOVE_RECURSE
  "CMakeFiles/market_ticks.dir/market_ticks.cc.o"
  "CMakeFiles/market_ticks.dir/market_ticks.cc.o.d"
  "market_ticks"
  "market_ticks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_ticks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
