file(REMOVE_RECURSE
  "CMakeFiles/dating_site.dir/dating_site.cc.o"
  "CMakeFiles/dating_site.dir/dating_site.cc.o.d"
  "dating_site"
  "dating_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dating_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
