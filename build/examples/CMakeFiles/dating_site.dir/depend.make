# Empty dependencies file for dating_site.
# This may be replaced when dependencies are built.
