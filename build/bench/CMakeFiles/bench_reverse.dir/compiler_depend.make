# Empty compiler generated dependencies file for bench_reverse.
# This may be replaced when dependencies are built.
