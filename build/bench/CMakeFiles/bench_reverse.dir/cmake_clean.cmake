file(REMOVE_RECURSE
  "CMakeFiles/bench_reverse.dir/bench_reverse.cc.o"
  "CMakeFiles/bench_reverse.dir/bench_reverse.cc.o.d"
  "bench_reverse"
  "bench_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
