# Empty dependencies file for bench_circular.
# This may be replaced when dependencies are built.
