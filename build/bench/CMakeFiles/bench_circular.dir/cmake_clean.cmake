file(REMOVE_RECURSE
  "CMakeFiles/bench_circular.dir/bench_circular.cc.o"
  "CMakeFiles/bench_circular.dir/bench_circular.cc.o.d"
  "bench_circular"
  "bench_circular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
