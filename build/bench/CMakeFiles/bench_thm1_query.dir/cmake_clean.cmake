file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_query.dir/bench_thm1_query.cc.o"
  "CMakeFiles/bench_thm1_query.dir/bench_thm1_query.cc.o.d"
  "bench_thm1_query"
  "bench_thm1_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
