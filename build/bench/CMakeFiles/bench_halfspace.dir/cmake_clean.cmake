file(REMOVE_RECURSE
  "CMakeFiles/bench_halfspace.dir/bench_halfspace.cc.o"
  "CMakeFiles/bench_halfspace.dir/bench_halfspace.cc.o.d"
  "bench_halfspace"
  "bench_halfspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halfspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
