# Empty compiler generated dependencies file for bench_em.
# This may be replaced when dependencies are built.
