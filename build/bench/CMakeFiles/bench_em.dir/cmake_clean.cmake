file(REMOVE_RECURSE
  "CMakeFiles/bench_em.dir/bench_em.cc.o"
  "CMakeFiles/bench_em.dir/bench_em.cc.o.d"
  "bench_em"
  "bench_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
