# Empty compiler generated dependencies file for bench_thm1_k.
# This may be replaced when dependencies are built.
