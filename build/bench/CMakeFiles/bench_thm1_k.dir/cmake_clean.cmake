file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_k.dir/bench_thm1_k.cc.o"
  "CMakeFiles/bench_thm1_k.dir/bench_thm1_k.cc.o.d"
  "bench_thm1_k"
  "bench_thm1_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
