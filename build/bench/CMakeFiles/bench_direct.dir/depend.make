# Empty dependencies file for bench_direct.
# This may be replaced when dependencies are built.
