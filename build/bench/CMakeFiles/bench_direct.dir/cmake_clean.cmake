file(REMOVE_RECURSE
  "CMakeFiles/bench_direct.dir/bench_direct.cc.o"
  "CMakeFiles/bench_direct.dir/bench_direct.cc.o.d"
  "bench_direct"
  "bench_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
