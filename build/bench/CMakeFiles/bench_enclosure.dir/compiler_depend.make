# Empty compiler generated dependencies file for bench_enclosure.
# This may be replaced when dependencies are built.
