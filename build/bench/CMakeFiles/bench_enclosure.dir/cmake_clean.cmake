file(REMOVE_RECURSE
  "CMakeFiles/bench_enclosure.dir/bench_enclosure.cc.o"
  "CMakeFiles/bench_enclosure.dir/bench_enclosure.cc.o.d"
  "bench_enclosure"
  "bench_enclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
