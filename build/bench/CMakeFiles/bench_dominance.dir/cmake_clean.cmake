file(REMOVE_RECURSE
  "CMakeFiles/bench_dominance.dir/bench_dominance.cc.o"
  "CMakeFiles/bench_dominance.dir/bench_dominance.cc.o.d"
  "bench_dominance"
  "bench_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
