# Empty dependencies file for bench_dominance.
# This may be replaced when dependencies are built.
