file(REMOVE_RECURSE
  "CMakeFiles/bench_range2d.dir/bench_range2d.cc.o"
  "CMakeFiles/bench_range2d.dir/bench_range2d.cc.o.d"
  "bench_range2d"
  "bench_range2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
