# Empty dependencies file for bench_range2d.
# This may be replaced when dependencies are built.
