file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_query.dir/bench_thm2_query.cc.o"
  "CMakeFiles/bench_thm2_query.dir/bench_thm2_query.cc.o.d"
  "bench_thm2_query"
  "bench_thm2_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
