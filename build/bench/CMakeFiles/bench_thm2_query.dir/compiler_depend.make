# Empty compiler generated dependencies file for bench_thm2_query.
# This may be replaced when dependencies are built.
