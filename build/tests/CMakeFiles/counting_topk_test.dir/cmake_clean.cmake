file(REMOVE_RECURSE
  "CMakeFiles/counting_topk_test.dir/counting_topk_test.cc.o"
  "CMakeFiles/counting_topk_test.dir/counting_topk_test.cc.o.d"
  "counting_topk_test"
  "counting_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
