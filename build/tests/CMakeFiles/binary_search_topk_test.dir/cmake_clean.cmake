file(REMOVE_RECURSE
  "CMakeFiles/binary_search_topk_test.dir/binary_search_topk_test.cc.o"
  "CMakeFiles/binary_search_topk_test.dir/binary_search_topk_test.cc.o.d"
  "binary_search_topk_test"
  "binary_search_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_search_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
