# Empty dependencies file for binary_search_topk_test.
# This may be replaced when dependencies are built.
