# Empty dependencies file for differential_sweep_test.
# This may be replaced when dependencies are built.
