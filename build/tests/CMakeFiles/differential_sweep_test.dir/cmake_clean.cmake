file(REMOVE_RECURSE
  "CMakeFiles/differential_sweep_test.dir/differential_sweep_test.cc.o"
  "CMakeFiles/differential_sweep_test.dir/differential_sweep_test.cc.o.d"
  "differential_sweep_test"
  "differential_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
