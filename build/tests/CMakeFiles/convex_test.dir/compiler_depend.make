# Empty compiler generated dependencies file for convex_test.
# This may be replaced when dependencies are built.
