file(REMOVE_RECURSE
  "CMakeFiles/interval_tree_stab_test.dir/interval_tree_stab_test.cc.o"
  "CMakeFiles/interval_tree_stab_test.dir/interval_tree_stab_test.cc.o.d"
  "interval_tree_stab_test"
  "interval_tree_stab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_tree_stab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
