# Empty dependencies file for interval_tree_stab_test.
# This may be replaced when dependencies are built.
