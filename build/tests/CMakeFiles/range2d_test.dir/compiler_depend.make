# Empty compiler generated dependencies file for range2d_test.
# This may be replaced when dependencies are built.
