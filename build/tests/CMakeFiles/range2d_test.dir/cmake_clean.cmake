file(REMOVE_RECURSE
  "CMakeFiles/range2d_test.dir/range2d_test.cc.o"
  "CMakeFiles/range2d_test.dir/range2d_test.cc.o.d"
  "range2d_test"
  "range2d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
