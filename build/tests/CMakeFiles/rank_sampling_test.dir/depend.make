# Empty dependencies file for rank_sampling_test.
# This may be replaced when dependencies are built.
