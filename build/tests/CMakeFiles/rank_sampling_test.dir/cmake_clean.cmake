file(REMOVE_RECURSE
  "CMakeFiles/rank_sampling_test.dir/rank_sampling_test.cc.o"
  "CMakeFiles/rank_sampling_test.dir/rank_sampling_test.cc.o.d"
  "rank_sampling_test"
  "rank_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
