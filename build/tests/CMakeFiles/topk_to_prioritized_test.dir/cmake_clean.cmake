file(REMOVE_RECURSE
  "CMakeFiles/topk_to_prioritized_test.dir/topk_to_prioritized_test.cc.o"
  "CMakeFiles/topk_to_prioritized_test.dir/topk_to_prioritized_test.cc.o.d"
  "topk_to_prioritized_test"
  "topk_to_prioritized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_to_prioritized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
