# Empty compiler generated dependencies file for topk_to_prioritized_test.
# This may be replaced when dependencies are built.
