# Empty dependencies file for range_max_test.
# This may be replaced when dependencies are built.
