file(REMOVE_RECURSE
  "CMakeFiles/range_max_test.dir/range_max_test.cc.o"
  "CMakeFiles/range_max_test.dir/range_max_test.cc.o.d"
  "range_max_test"
  "range_max_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_max_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
