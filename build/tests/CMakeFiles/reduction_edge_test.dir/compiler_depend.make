# Empty compiler generated dependencies file for reduction_edge_test.
# This may be replaced when dependencies are built.
