file(REMOVE_RECURSE
  "CMakeFiles/reduction_edge_test.dir/reduction_edge_test.cc.o"
  "CMakeFiles/reduction_edge_test.dir/reduction_edge_test.cc.o.d"
  "reduction_edge_test"
  "reduction_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
