# Empty compiler generated dependencies file for dynamic_range1d_test.
# This may be replaced when dependencies are built.
