file(REMOVE_RECURSE
  "CMakeFiles/dynamic_range1d_test.dir/dynamic_range1d_test.cc.o"
  "CMakeFiles/dynamic_range1d_test.dir/dynamic_range1d_test.cc.o.d"
  "dynamic_range1d_test"
  "dynamic_range1d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_range1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
