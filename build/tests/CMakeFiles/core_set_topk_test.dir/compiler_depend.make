# Empty compiler generated dependencies file for core_set_topk_test.
# This may be replaced when dependencies are built.
