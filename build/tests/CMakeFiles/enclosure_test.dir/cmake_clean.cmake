file(REMOVE_RECURSE
  "CMakeFiles/enclosure_test.dir/enclosure_test.cc.o"
  "CMakeFiles/enclosure_test.dir/enclosure_test.cc.o.d"
  "enclosure_test"
  "enclosure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclosure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
