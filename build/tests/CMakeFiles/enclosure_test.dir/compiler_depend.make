# Empty compiler generated dependencies file for enclosure_test.
# This may be replaced when dependencies are built.
