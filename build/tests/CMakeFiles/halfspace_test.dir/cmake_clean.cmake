file(REMOVE_RECURSE
  "CMakeFiles/halfspace_test.dir/halfspace_test.cc.o"
  "CMakeFiles/halfspace_test.dir/halfspace_test.cc.o.d"
  "halfspace_test"
  "halfspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
