file(REMOVE_RECURSE
  "CMakeFiles/sampled_topk_test.dir/sampled_topk_test.cc.o"
  "CMakeFiles/sampled_topk_test.dir/sampled_topk_test.cc.o.d"
  "sampled_topk_test"
  "sampled_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
