# Empty compiler generated dependencies file for sampled_topk_test.
# This may be replaced when dependencies are built.
