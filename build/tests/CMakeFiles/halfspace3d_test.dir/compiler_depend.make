# Empty compiler generated dependencies file for halfspace3d_test.
# This may be replaced when dependencies are built.
