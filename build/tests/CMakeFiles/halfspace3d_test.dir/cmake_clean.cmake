file(REMOVE_RECURSE
  "CMakeFiles/halfspace3d_test.dir/halfspace3d_test.cc.o"
  "CMakeFiles/halfspace3d_test.dir/halfspace3d_test.cc.o.d"
  "halfspace3d_test"
  "halfspace3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfspace3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
