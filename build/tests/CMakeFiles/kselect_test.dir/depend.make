# Empty dependencies file for kselect_test.
# This may be replaced when dependencies are built.
