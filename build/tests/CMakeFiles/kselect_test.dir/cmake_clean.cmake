file(REMOVE_RECURSE
  "CMakeFiles/kselect_test.dir/kselect_test.cc.o"
  "CMakeFiles/kselect_test.dir/kselect_test.cc.o.d"
  "kselect_test"
  "kselect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kselect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
