# Empty compiler generated dependencies file for top_f_test.
# This may be replaced when dependencies are built.
