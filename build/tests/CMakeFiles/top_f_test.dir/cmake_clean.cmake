file(REMOVE_RECURSE
  "CMakeFiles/top_f_test.dir/top_f_test.cc.o"
  "CMakeFiles/top_f_test.dir/top_f_test.cc.o.d"
  "top_f_test"
  "top_f_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_f_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
