# Empty dependencies file for em_kdtree_test.
# This may be replaced when dependencies are built.
