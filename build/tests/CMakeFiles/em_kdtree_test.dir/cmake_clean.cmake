file(REMOVE_RECURSE
  "CMakeFiles/em_kdtree_test.dir/em_kdtree_test.cc.o"
  "CMakeFiles/em_kdtree_test.dir/em_kdtree_test.cc.o.d"
  "em_kdtree_test"
  "em_kdtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_kdtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
