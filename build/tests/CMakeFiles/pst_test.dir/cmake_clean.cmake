file(REMOVE_RECURSE
  "CMakeFiles/pst_test.dir/pst_test.cc.o"
  "CMakeFiles/pst_test.dir/pst_test.cc.o.d"
  "pst_test"
  "pst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
