# Empty compiler generated dependencies file for pst_test.
# This may be replaced when dependencies are built.
