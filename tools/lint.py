#!/usr/bin/env python3
"""Repo-specific lint for src/ headers and sources.

Usage: tools/lint.py <dir-or-file>...

Checks (see CLAUDE.md conventions):
  guard        .h files carry an include guard named TOPK_<PATH>_H_
               derived from the path under src/, opened within the first
               30 lines and closed by a matching `#endif  // ...` tail;
               `#pragma once` is banned.
  namespace    every header declares `namespace topk` (possibly nested,
               e.g. `namespace topk::range1d`).
  assert       bare `assert(` is banned — use TOPK_CHECK (always on) or
               TOPK_DCHECK (debug only). static_assert is fine.
  random       direct RNG use (`rand(`, `srand(`, `std::mt19937`,
               `std::random_device`, `random_shuffle`) is banned outside
               common/random.h — all randomness flows through topk::Rng
               with explicit seeds so builds stay deterministic.
  mutable      a `mutable` data member hides query-time state from the
               thread-shareability gate (serve::ShareableTopKStructure
               only sees markers). Each use must either be an inherently
               thread-safe type (std::mutex / std::atomic), or appear in
               a file that declares its posture via kThreadSafeQuery or
               kExternalMemory, or carry `// lint: mutable-ok` on the
               line with a reason the reviewer can audit.
  sleep        `sleep_for` / `sleep_until` is banned outside src/fault/
               (simulated latency spikes and retry backoff, off by
               default) and serve/thread_pool.h — a sleep anywhere else
               either hides a missing synchronization primitive or
               wrecks benchmark determinism. Suppress a justified use
               with `// lint: sleep-ok <reason>`.
  tracer       a raw `trace::Tracer*` is null whenever tracing is
               disabled (the production default), so dereferencing one
               with `->` outside src/trace/ bypasses the null-safe
               entry points (trace::Span, trace::Count, trace::Instant)
               and crashes the untraced path. The rule flags any
               identifier containing "tracer" followed by `->`; code
               that has genuinely established non-null (e.g. behind the
               engine's tracing_enabled() gate) suppresses with
               `// lint: tracer-ok <reason>`.
  function     `std::function` is banned under src/core/ and src/serve/:
               owning type-erasure may heap-allocate on construction,
               which silently breaks the zero-allocation steady-state
               contract (DESIGN.md "scratch memory contract"). Use a
               template parameter for stored callables or
               topk::FunctionRef (common/function_ref.h) for borrowed
               ones. Suppress a justified use with
               `// lint: function-ok <reason>`.
  epoch        a type marked `// epoch-published` (the unit of
               publication in serve/epoch.h's epoch/snapshot rotation)
               is shared const across reader threads while a writer
               retires and frees instances; every non-atomic data
               member must therefore declare its thread-safety posture
               with a `// epoch:` comment on the declaration line (who
               writes it, when it becomes immutable). std::atomic
               members are exempt. Suppress a justified bare member
               with `// lint: epoch-ok <reason>`.
  io           raw file I/O (`open`/`fopen`, `pread`/`pwrite`,
               `fsync`/`fdatasync`, `ftruncate`, `fread`/`fwrite`/
               `fclose`, std::filesystem, std::fstream) is banned
               outside src/em/ — every byte that reaches a disk must
               flow through ByteStorage / BlockDevice so it stays
               countable (the I/O counters ARE the experiment),
               fault-injectable, and crash-testable (DESIGN.md
               "durability contract"). Suppress a justified use with
               `// lint: io-ok <reason>`.

A finding prints `path:line: [rule] message`; exit status is the number
of findings (0 = clean). Suppress any rule on one line with
`// lint: <rule>-ok`.
"""

import re
import sys
from pathlib import Path

RULES = ("guard", "namespace", "assert", "random", "mutable", "sleep",
         "tracer", "function", "epoch", "io")

RANDOM_RE = re.compile(
    r"(?<![\w:])(rand|srand)\s*\(|std::mt19937|std::random_device"
    r"|random_shuffle")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
MUTABLE_RE = re.compile(r"^\s*mutable\s+(.*)$")
THREAD_SAFE_TYPES_RE = re.compile(r"std::(mutex|shared_mutex|atomic)")
SLEEP_RE = re.compile(r"\bsleep_(for|until)\s*\(")
TRACER_DEREF_RE = re.compile(r"\b\w*[Tt]racer\w*\s*->")
FUNCTION_RE = re.compile(r"\bstd::function\s*<")
# Raw-file-I/O surface: POSIX fd calls, stdio, and the std::filesystem /
# std::fstream families. The lookbehind (no word char or `.`) admits
# `::open(` and bare `open(` but not member calls like `is_open(` or
# identifiers like `reopen(`.
IO_RE = re.compile(
    r"std::filesystem|std::[io]?fstream"
    r"|(?<![\w.])(f?open|fsync|fdatasync|pread|pwrite|ftruncate"
    r"|fread|fwrite|fclose)\s*\(")
# Lines inside an epoch-published type that are NOT member declarations
# needing an `// epoch:` posture: functions/ctors (anything with parens
# is skipped separately), type aliases, static members, access
# specifiers, nested type heads, and friend declarations.
EPOCH_NONMEMBER_RE = re.compile(
    r"^\s*(using\s|typedef\s|static\s|friend\s|public:|private:|"
    r"protected:|struct\s|class\s|enum\s|template\s*<)")


def sleep_sanctioned(path: Path) -> bool:
    """The two homes where a real sleep is part of the contract."""
    return "fault" in path.parts or path.name == "thread_pool.h"


def io_sanctioned(path: Path) -> bool:
    """The one home where raw file I/O is the module's whole job."""
    return "em" in path.parts


def function_banned(path: Path) -> bool:
    """Where owning type-erasure would sit on the zero-alloc hot path."""
    return "core" in path.parts or "serve" in path.parts


def suppressed(line: str, rule: str) -> bool:
    return f"lint: {rule}-ok" in line


def expected_guard(path: Path, root: Path) -> str:
    path, root = path.resolve(), root.resolve()
    rel = path.relative_to(root) if path.is_relative_to(root) else path
    parts = [p.upper() for p in rel.with_suffix("").parts]
    if parts and parts[0] == "SRC":
        parts = parts[1:]
    return "TOPK_" + "_".join(re.sub(r"[^A-Z0-9]", "_", p) for p in parts) \
        + "_H_"


def check_file(path: Path, root: Path, findings: list) -> None:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    def report(lineno: int, rule: str, msg: str) -> None:
        if lineno <= len(lines) and suppressed(lines[lineno - 1], rule):
            return
        findings.append(f"{path}:{lineno}: [{rule}] {msg}")

    is_header = path.suffix == ".h"
    if is_header:
        guard = expected_guard(path, root)
        ifndef_at = next((i for i, ln in enumerate(lines)
                          if ln.strip() == f"#ifndef {guard}"), None)
        if ifndef_at is None:
            report(1, "guard", f"missing `#ifndef {guard}`")
        elif not (ifndef_at + 1 < len(lines)
                  and lines[ifndef_at + 1].strip() == f"#define {guard}"):
            report(ifndef_at + 1, "guard",
                   f"`#define {guard}` must follow the #ifndef")
        elif not any(f"#endif  // {guard}" in ln for ln in lines[-3:]):
            report(len(lines), "guard",
                   f"missing trailing `#endif  // {guard}`")
        for i, ln in enumerate(lines, 1):
            if "#pragma once" in ln:
                report(i, "guard", "`#pragma once` is banned; use the "
                                   "TOPK_..._H_ guard")
        if not re.search(r"^namespace topk\b", text, re.M):
            report(1, "namespace", "header does not open `namespace topk`")

    declares_posture = ("kThreadSafeQuery" in text
                        or "kExternalMemory" in text)
    in_block_comment = False
    # epoch rule state: brace depth inside the most recent type marked
    # `// epoch-published` (-1 = not inside one; the marker arms
    # epoch_pending until the type's opening brace is seen).
    epoch_depth = -1
    epoch_pending = False
    for i, ln in enumerate(lines, 1):
        code = ln
        if in_block_comment:
            if "*/" in code:
                code = code.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        code = code.split("//", 1)[0]
        if "/*" in code:
            code = code.split("/*", 1)[0]
            in_block_comment = "*/" not in ln.split("/*", 1)[1]

        # The marker must be a dedicated comment line (prose that merely
        # mentions the phrase must not arm the rule on the next brace).
        if epoch_depth < 0 and ln.strip().startswith("// epoch-published"):
            epoch_pending = True
        opens, closes = code.count("{"), code.count("}")
        if epoch_depth >= 0 or (epoch_pending and opens):
            if epoch_pending:
                epoch_depth = 0
                epoch_pending = False
            stripped = code.strip()
            if (epoch_depth == 1 and opens == 0 and closes == 0
                    and stripped.endswith(";") and "(" not in stripped
                    and not EPOCH_NONMEMBER_RE.match(stripped)
                    and "std::atomic" not in stripped
                    and "// epoch:" not in ln):
                report(i, "epoch",
                       "member of an epoch-published type without a "
                       "thread-safety posture: non-atomic state shared "
                       "const across reader threads needs an "
                       "`// epoch: <who writes it, when immutable>` "
                       "comment (or `// lint: epoch-ok <reason>`)")
            epoch_depth += opens - closes
            if epoch_depth <= 0:
                epoch_depth = -1

        if not code.strip():
            continue

        if ASSERT_RE.search(code) and "static_assert" not in code:
            report(i, "assert", "bare assert(); use TOPK_CHECK / TOPK_DCHECK")
        if path.name != "random.h" and RANDOM_RE.search(code):
            report(i, "random", "direct RNG use; draw from topk::Rng "
                                "(common/random.h) with an explicit seed")
        if not sleep_sanctioned(path) and SLEEP_RE.search(code):
            report(i, "sleep", "sleep_for/sleep_until outside src/fault/ "
                               "and serve/thread_pool.h; a sleep hides a "
                               "missing sync primitive or wrecks benchmark "
                               "determinism")
        if not io_sanctioned(path) and IO_RE.search(code):
            report(i, "io",
                   "raw file I/O outside src/em/; route bytes through "
                   "ByteStorage / BlockDevice so they stay countable, "
                   "fault-injectable, and crash-testable, or annotate "
                   "`// lint: io-ok <reason>`")
        if function_banned(path) and FUNCTION_RE.search(code):
            report(i, "function",
                   "std::function in src/core/ or src/serve/ may "
                   "heap-allocate and breaks the zero-allocation "
                   "steady-state contract; use a template parameter or "
                   "topk::FunctionRef, or annotate "
                   "`// lint: function-ok <reason>`")
        if "trace" not in path.parts and TRACER_DEREF_RE.search(code):
            report(i, "tracer",
                   "raw Tracer* dereference outside src/trace/; a tracer "
                   "pointer is null when tracing is off — go through the "
                   "null-safe trace::Span / trace::Count / trace::Instant "
                   "or annotate `// lint: tracer-ok <reason>`")
        m = MUTABLE_RE.match(code)
        if m and is_header:
            decl = m.group(1)
            if THREAD_SAFE_TYPES_RE.search(decl):
                continue  # a mutex/atomic is safe under const by design
            if not declares_posture:
                report(i, "mutable",
                       "mutable member without a thread-safety posture: "
                       "declare kThreadSafeQuery/kExternalMemory or "
                       "annotate `// lint: mutable-ok <reason>`")


def file_root(path: Path) -> Path:
    """Guard-derivation root for a file passed directly on the command
    line: the nearest ancestor directory named `src` (so
    `lint.py /abs/path/src/core/sink.h` expects TOPK_CORE_SINK_H_, the
    same guard the directory sweep expects), falling back to the file's
    parent. The old behavior fell back to Path(".") and derived guards
    from the full invocation path — a clean header linted singly got a
    spurious prefix and a bogus [guard] finding."""
    for ancestor in path.resolve().parents:
        if ancestor.name == "src":
            return ancestor
    return path.parent


def main(argv: list) -> int:
    if not argv:
        print("usage: lint.py <dir-or-file>...", file=sys.stderr)
        return 2
    files = []  # (path, guard root) — the root travels per file, so a
    #             mixed dir+file invocation derives every guard locally.
    for arg in argv:
        p = Path(arg)
        if p.is_dir():
            files += [(f, p) for f in
                      sorted(p.rglob("*.h")) + sorted(p.rglob("*.cc"))]
        elif p.exists():
            files.append((p, file_root(p)))
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            return 2
    findings = []
    for f, root in files:
        check_file(f, root, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
    else:
        print(f"lint.py: {len(files)} files clean")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
