#!/usr/bin/env python3
"""Summarizes a bench_output.txt run into the EXPERIMENTS.md headline tables.

Usage: tools/summarize_bench.py [--json BASELINE.json] [bench_output.txt]

Extracts, per experiment binary, the google-benchmark rows (name, CPU
time, counters) or passes through the plain-text tables of the
measurement binaries (E4/E6/E12/E13/E15/E19/E20), so a fresh run can be
diffed against the numbers recorded in EXPERIMENTS.md. bench_serve's
(E21) `metrics_json` lines are parsed and re-rendered as compact rows:
queries served, aggregate QueryStats counters of note, and latency
percentiles from the serving layer's own histogram export.

With --json, additionally writes a machine-readable perf baseline of
the bench_serve section — one record per (structure, threads) merging
the table row's throughput with the metrics_json latency percentiles
and QueryStats counters. The checked-in bench/baselines/BENCH_serve.json
is produced this way; CI regenerates it on every release run and prints
a diff, giving PRs a throughput/latency trajectory to compare against.
It fails (nonzero) when the input has no bench_serve metrics — an empty
baseline silently checked in would erase the trajectory.
"""

import json
import re
import signal
import sys


class MetricsError(Exception):
    """A metrics_json line that cannot be summarized faithfully."""


def render_serve_metrics(line: str, lineno: int) -> str:
    """'metrics_json structure=X threads=N {json}' -> one compact row.

    Raises MetricsError on malformed JSON or missing keys: a silently
    dropped or half-rendered row would be mistaken for a clean run when
    diffing against EXPERIMENTS.md.
    """
    head, brace, payload = line.partition("{")
    if not brace:
        raise MetricsError(f"line {lineno}: metrics_json without a "
                           f"JSON payload: {line!r}")
    try:
        m = json.loads("{" + payload)
    except json.JSONDecodeError as e:
        raise MetricsError(
            f"line {lineno}: malformed metrics JSON ({e}): {line!r}") from e
    tags = " ".join(tok for tok in head.split() if "=" in tok)
    try:
        lat = m["latency_ns"]
        row = (
            f"  {tags:<32} queries={m['queries']} "
            f"p50={lat['p50'] / 1e3:.1f}us p95={lat['p95'] / 1e3:.1f}us "
            f"p99={lat['p99'] / 1e3:.1f}us max={lat['max'] / 1e3:.1f}us "
        )
        stats = m["stats"]
    except (KeyError, TypeError) as e:
        raise MetricsError(
            f"line {lineno}: metrics JSON missing expected key {e}: "
            f"{line!r}") from e
    # Degradation outcomes (serve/result.h); absent in pre-ResultStatus
    # captures, rendered only when any request did not come back ok.
    results = m.get("results", {})
    degraded = {k: v for k, v in results.items() if k != "ok" and v}
    if degraded:
        row += " ".join(f"{k}={v}" for k, v in sorted(degraded.items())) + " "
    interesting = {k: v for k, v in stats.items() if v}
    row += " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    # Slow-query log (bounded, descending latency); absent when no query
    # crossed the engine's slow_query_ns threshold.
    for q in m.get("slow_queries", []):
        try:
            row += (
                f"\n  {'':<32} slow: {q['latency_ns'] / 1e3:.1f}us "
                f"batch={q['batch']} slot={q['slot']} work={q['work']} "
                f"status={q['status']}"
            )
        except (KeyError, TypeError) as e:
            raise MetricsError(
                f"line {lineno}: slow_queries entry missing key {e}: "
                f"{line!r}") from e
    return row


def serve_baseline_record(line: str, lineno: int, throughput: dict) -> dict:
    """One metrics_json line -> one baseline record (see --json)."""
    head, _, payload = line.partition("{")
    m = json.loads("{" + payload)  # validated by render_serve_metrics
    tags = dict(tok.split("=", 1) for tok in head.split() if "=" in tok)
    structure = tags.get("structure", "?")
    threads = int(tags.get("threads", "0"))
    record = {
        "structure": structure,
        "threads": threads,
        "queries": m.get("queries"),
        "latency_ns": m.get("latency_ns"),
        "stats": m.get("stats"),
        "results": m.get("results"),
    }
    record.update(throughput.get((structure, threads), {}))
    if "qps" not in record:
        raise MetricsError(
            f"line {lineno}: metrics_json for {structure}/{threads} has no "
            f"preceding throughput table row")
    return record


def main() -> int:
    argv = sys.argv[1:]
    json_out = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("summarize_bench.py: --json needs an output path",
                  file=sys.stderr)
            return 2
        json_out = argv[at + 1]
        del argv[at:at + 2]
    path = argv[0] if argv else "bench_output.txt"
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"summarize_bench.py: cannot read {path}: {e.strerror}",
              file=sys.stderr)
        return 1

    section = None
    gbench_row = re.compile(
        r"^(\S+)\s+(\d+(?:\.\d+)?) ns\s+(\d+(?:\.\d+)?) ns\s+\d+(.*)$")
    # bench_serve table rows: structure, threads, batch ms, qps, speedup.
    serve_row = re.compile(
        r"^(\S+)\s+(\d+)\s+(\d+(?:\.\d+)?)\s+(\d+)\s+(\d+(?:\.\d+)?)x\b")
    passthrough = False
    baseline = []
    throughput = {}
    for lineno, line in enumerate(lines, 1):
        if line.startswith("=== "):
            section = line.strip("= ").strip()
            # Plain-table binaries are passed through verbatim.
            passthrough = section in {
                "bench_space", "bench_lemmas", "bench_em", "bench_rounds",
                "bench_ablation", "bench_build", "bench_selectivity",
                "bench_serve", "bench_chaos", "bench_trace", "bench_perf",
                "bench_dynamic", "bench_persist", "bench_parallel",
                "bench_federate",
            }
            print(f"\n## {section}")
            continue
        if section is None:
            continue
        if passthrough:
            if section == "bench_serve" and (m := serve_row.match(line)):
                throughput[(m.group(1), int(m.group(2)))] = {
                    "batch_ms": float(m.group(3)), "qps": int(m.group(4))}
            if line.startswith("metrics_json "):
                try:
                    print(render_serve_metrics(line, lineno))
                    if json_out is not None and section == "bench_serve":
                        baseline.append(
                            serve_baseline_record(line, lineno, throughput))
                except MetricsError as e:
                    print(f"summarize_bench.py: {path}: {e}",
                          file=sys.stderr)
                    return 1
            elif line.strip():
                print(f"  {line}")
            continue
        m = gbench_row.match(line.strip())
        if m:
            name, _, cpu, counters = m.groups()
            extras = " ".join(
                tok for tok in counters.split()
                if "=" in tok and not tok.startswith("bytes_per_second"))
            cpu_us = float(cpu) / 1000.0
            print(f"  {name:<32} {cpu_us:>10.2f} us  {extras}")

    if json_out is not None:
        if not baseline:
            print(f"summarize_bench.py: {path} has no bench_serve metrics "
                  f"to baseline", file=sys.stderr)
            return 1
        with open(json_out, "w", encoding="utf-8") as f:
            json.dump({"bench_serve": baseline}, f, indent=1, sort_keys=True)
            f.write("\n")
    return 0


if __name__ == "__main__":
    # Behave under `| head`.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
