#!/usr/bin/env python3
"""Cross-TU semantic analyzer for src/ (the whole-program complement to
tools/lint.py's per-line rules).

Usage: tools/analyze.py [--json] <src-root>

lint.py sees one line at a time; the contracts this repo leans on are
properties of the whole header set — which module includes which, what a
`QueryInto` body does, which CLASS a `mutable` member belongs to.
analyze.py parses every header and source under <src-root> into a
lightweight model (include graph; class declarations with members,
postures, and substrate aliases; brace-matched hot-path function bodies)
and runs four whole-program checks:

  layering      modules (= top-level directories under src/) must
                respect the declared dependency DAG below. Upward or
                undeclared cross-module includes, includes of files
                that do not exist, and include cycles are flagged.
                The declared graph itself is topo-checked on startup,
                so the table cannot rot into a cycle.
  hotpath-alloc the zero-allocation steady-state contract (DESIGN.md
                "scratch memory contract"): inside the body of any
                function whose name ends in `Into` (QueryInto,
                BudgetedTopKInto, ScanAllInto, ... — the scratch-
                threaded entry points; the `Query(...)` compat
                overloads deliberately own a throwaway Scratch and are
                exempt) there must be no `new`, no owning
                std::vector/std::string locals, and no push_back /
                emplace_back whose receiver is not scratch-backed (a
                ScratchVec / MonitoredPool local, a reference bound to
                someone's .vec(), or a caller-recycled out-parameter).
                This is the static complement to
                tests/alloc_regression_test.cc, which only covers
                structures the tests instantiate.
  charge-site   QueryStats::prioritized_queries and ::elements_emitted
                are charged at ISSUANCE, in core/sink.h, and nowhere
                else (plus their definitions/helpers in
                common/stats.h). Any other mutation double-counts
                every internal delegation; see the PR-4 accounting
                centralization pinned by tests/stats_accounting_test.cc.
  posture       thread-safety posture is a per-CLASS property, the way
                serve::ShareableTopKStructure consumes it. (a) a class
                with a non-thread-safe-typed `mutable` member must
                declare kThreadSafeQuery or kExternalMemory INSIDE ITS
                OWN braces — a marker on a sibling class in the same
                file (which satisfies lint.py's file-scope rule) does
                not count; (b) a class holding a member of a
                posture-marked class (directly or via alias chains)
                must either export it through a substrate alias
                (Prioritized / MaxSubstrate / CounterStructure) so the
                concept can recurse, or carry its own marker —
                otherwise the marker is invisible to the
                compile-time gate and a thread-unsafe structure passes
                as shareable.

A finding prints `path:line: [rule] message`; exit status is the number
of findings (0 = clean, capped at 125). Suppress any rule on one line
with `// analyze: <rule>-ok <reason>`. `--json` emits a machine-readable
report on stdout instead.
"""

import json
import re
import sys
from bisect import bisect_right
from pathlib import Path

RULES = ("layering", "hotpath-alloc", "charge-site", "posture")

# --------------------------------------------------------------------------
# Layering: the declared module DAG. A module may include itself and the
# modules listed; everything else is an upward or undeclared edge. The
# geometry instantiations (dominance, range1d, range2d, interval, circle,
# halfspace, enclosure) form one band between core and the wrappers, with
# their internal reuse declared edge by edge. trace sits BELOW core:
# cost attribution is woven through every reduction's query path
# (core/sink.h spans), so the tracer is vocabulary, not a top layer.
MODULE_DEPS = {
    "common":    set(),
    "trace":     {"common"},
    "parallel":  {"common"},
    "core":      {"common", "trace", "parallel"},
    "audit":     {"common", "core"},
    "dominance": {"common", "core"},
    "range1d":   {"common", "core"},
    "range2d":   {"common", "core", "range1d"},
    "interval":  {"common", "core", "dominance", "range1d"},
    "circle":    {"common", "core", "dominance"},
    "halfspace": {"common", "core", "dominance"},
    "enclosure": {"common", "core", "interval"},
    "em":        {"common", "core", "trace", "range1d"},
    "fault":     {"common", "em"},
    "serve":     {"common", "core", "trace", "parallel"},
    "federate":  {"common", "core", "parallel", "serve"},
}

# Charge-site: the only files allowed to mutate the issuance counters.
CHARGE_FIELDS = ("prioritized_queries", "elements_emitted")
CHARGE_SITES = {"core/sink.h", "common/stats.h"}

# Posture: substrate aliases serve/shareable.h recurses through.
SUBSTRATE_ALIASES = ("Prioritized", "MaxSubstrate", "CounterStructure")
THREAD_SAFE_TYPES_RE = re.compile(r"std::(mutex|shared_mutex|atomic)")
MARKER_RE = re.compile(
    r"\bstatic\s+constexpr\s+bool\s+(kThreadSafeQuery|kExternalMemory)\b")

INCLUDE_RE = re.compile(r'^[^\S\n]*#[^\S\n]*include\s+"([^"]+)"', re.M)
NAMESPACE_HEAD_RE = re.compile(r"^\s*(inline\s+)?namespace\b[^()]*$")
CLASS_HEAD_RE = re.compile(
    r"(?:^|\s)(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^;{()]*)?$")
ACCESS_RE = re.compile(r"^\s*(?:public|private|protected)\s*:\s*")
MUTATION_TAIL_RE = re.compile(
    r"\b(?:%s)\s*(?:\+\+|--|(?:[-+*/|&^]|<<|>>)=|=(?!=))"
    % "|".join(CHARGE_FIELDS))
MUTATION_HEAD_RE = re.compile(
    r"(?:\+\+|--)\s*(?:[\w\]\[.]|->)*\b(?:%s)\b" % "|".join(CHARGE_FIELDS))
HOT_FN_RE = re.compile(r"\b([A-Za-z_]\w*Into)\s*\(")
NEW_RE = re.compile(r"\bnew\b")
PUSH_RE = re.compile(
    r"((?:\w+(?:\(\))?(?:\.|->))*\w+(?:\(\))?)\s*(?:\.|->)\s*"
    r"(?:push_back|emplace_back)\s*\(")


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


class ClassInfo:
    def __init__(self, name, line):
        self.name = name
        self.line = line
        self.statements = []   # (text, line) at class scope
        self.mutables = []     # (decl_text, line)
        self.markers = []      # marker names declared in THIS class
        self.aliases = {}      # alias name -> target text


class FileModel:
    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        self.module = rel.split("/", 1)[0] if "/" in rel else ""
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.stripped = strip_code(self.text)
        self._line_starts = [0] + [m.end() for m in
                                   re.finditer(r"\n", self.text)]
        # Matched on the raw text (strip_code blanks string contents, so
        # the target path only exists here); the '#' surviving in the
        # stripped text proves the directive is not inside a comment.
        hash_at = {m.start() for m in re.finditer(r"#", self.stripped)}
        self.includes = [(self.lineno(m.start()), m.group(1))
                         for m in INCLUDE_RE.finditer(self.text)
                         if m.start() + m.group(0).index("#") in hash_at]
        self.classes = []
        self._scan_classes()

    def lineno(self, offset: int) -> int:
        return bisect_right(self._line_starts, offset)

    def suppressed(self, line: int, rule: str) -> bool:
        return (0 < line <= len(self.lines)
                and f"analyze: {rule}-ok" in self.lines[line - 1])

    # -- class/member model -------------------------------------------------
    def _scan_classes(self) -> None:
        text = self.stripped
        stack = []  # ('class', ClassInfo) | ('namespace'|'other', None)
        stmt_start = 0
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            if c == "{":
                head = text[stmt_start:i].strip()
                kind = "other"
                info = None
                if NAMESPACE_HEAD_RE.match(head):
                    kind = "namespace"
                elif ("enum" not in head.split()
                      and "(" not in head):
                    m = CLASS_HEAD_RE.search(head)
                    if m:
                        kind = "class"
                        info = ClassInfo(m.group(1), self.lineno(i))
                        self.classes.append(info)
                stack.append((kind, info))
                stmt_start = i + 1
            elif c == "}":
                if stack:
                    stack.pop()
                stmt_start = i + 1
            elif c == ";":
                if stack and stack[-1][0] == "class":
                    stmt = text[stmt_start:i].strip()
                    while True:
                        cut = ACCESS_RE.match(stmt)
                        if not cut:
                            break
                        stmt = stmt[cut.end():]
                    if stmt:
                        line = self.lineno(stmt_start + max(
                            0, text[stmt_start:i].find(stmt[0])))
                        self._record_member(stack[-1][1], stmt, line)
                stmt_start = i + 1
            i += 1

    def _record_member(self, info, stmt, line) -> None:
        info.statements.append((stmt, line))
        m = MARKER_RE.search(stmt)
        if m:
            info.markers.append(m.group(1))
        if stmt.startswith("mutable"):
            info.mutables.append((stmt[len("mutable"):].strip(), line))
        am = re.match(
            r"using\s+(%s)\s*=\s*(.+)$" % "|".join(SUBSTRATE_ALIASES),
            stmt)
        if am:
            info.aliases[am.group(1)] = am.group(2)

    # -- hot-path function bodies -------------------------------------------
    def hot_functions(self):
        """Yields (name, params_text, body_start, body_end) for every
        defined function whose name ends in `Into`."""
        text = self.stripped
        for m in HOT_FN_RE.finditer(text):
            open_paren = m.end() - 1
            close = self._match(text, open_paren, "(", ")")
            if close < 0:
                continue
            j = close + 1
            while True:  # skip qualifiers between signature and body
                k = j
                while k < len(text) and text[k].isspace():
                    k += 1
                q = re.match(r"(const|noexcept|override|final)\b",
                             text[k:])
                if q:
                    j = k + q.end()
                    continue
                j = k
                break
            if j < len(text) and text[j] == "{":
                end = self._match(text, j, "{", "}")
                if end > 0:
                    yield (m.group(1), text[open_paren + 1:close],
                           j + 1, end)

    @staticmethod
    def _match(text, start, op, cl) -> int:
        depth = 0
        for i in range(start, len(text)):
            if text[i] == op:
                depth += 1
            elif text[i] == cl:
                depth -= 1
                if depth == 0:
                    return i
        return -1


# --------------------------------------------------------------------------
# Template-argument-aware scan for `std::vector<...>` / `std::string`
# declarator heads. Returns (end_offset, is_ref_or_ptr, declared_name).
VEC_HEAD_RE = re.compile(r"\bstd::(vector|string)\b")


def parse_owning_decl(text, m):
    i = m.end()
    if i < len(text) and text[i] == "<":
        i = FileModel._match(text, i, "<", ">")
        if i < 0:
            return None
        i += 1
    j = i
    while j < len(text) and text[j].isspace():
        j += 1
    ref = j < len(text) and text[j] in "&*"
    if ref:
        j += 1
        while j < len(text) and text[j].isspace():
            j += 1
    name = re.match(r"[A-Za-z_]\w*", text[j:])
    if not name:
        return None
    k = j + name.end()
    while k < len(text) and text[k].isspace():
        k += 1
    if k >= len(text) or text[k] not in ";={(":
        return None
    return (k, ref, name.group(0))


# Scratch-backed receiver declarations inside a hot body.
SCRATCH_LOCAL_RE = re.compile(
    r"\b(?:std::optional<\s*)?(?:ScratchVec|MonitoredPool)\s*<")
SCRATCH_NAME_RE = re.compile(
    r"\b(?:std::optional<\s*)?(?:ScratchVec|MonitoredPool)\s*"
    r"<(?:[^<>]|<[^<>]*>)*>\s*>?\s*([A-Za-z_]\w*)\s*[;={(]")
VEC_REF_RE = re.compile(
    r"\bstd::vector\s*<(?:[^<>]|<[^<>]*>)*>\s*&\s*([A-Za-z_]\w*)"
    r"\s*=\s*[\w.>\-\[\]()* ]*\.\s*vec\s*\(\)")
PARAM_OUT_RE = re.compile(
    r"\b(?:std::vector|ScratchVec)\s*<(?:[^<>]|<[^<>]*>)*>\s*([*&])\s*"
    r"([A-Za-z_]\w*)")


class Analyzer:
    def __init__(self, root: Path):
        self.root = root
        self.findings = []
        self.models = []
        self._check_dag_acyclic()
        for path in sorted(root.rglob("*.h")) + sorted(root.rglob("*.cc")):
            rel = path.relative_to(root).as_posix()
            self.models.append(FileModel(path, rel))
        self.by_rel = {fm.rel: fm for fm in self.models}
        self.class_by_name = {}
        for fm in self.models:
            for ci in fm.classes:
                self.class_by_name.setdefault(ci.name, (fm, ci))

    def report(self, fm, line, rule, msg) -> None:
        if fm.suppressed(line, rule):
            return
        self.findings.append(
            {"file": fm.rel, "path": str(fm.path), "line": line,
             "rule": rule, "message": msg})

    # -- declared-graph sanity ---------------------------------------------
    def _check_dag_acyclic(self) -> None:
        seen, done = set(), set()

        def visit(mod):
            if mod in done:
                return
            if mod in seen:
                print(f"analyze.py: declared MODULE_DEPS has a cycle "
                      f"through '{mod}' — fix the table", file=sys.stderr)
                sys.exit(2)
            seen.add(mod)
            for dep in MODULE_DEPS.get(mod, ()):
                visit(dep)
            done.add(mod)

        for mod in MODULE_DEPS:
            visit(mod)

    # -- rule: layering -----------------------------------------------------
    def check_layering(self) -> None:
        for fm in self.models:
            if fm.module not in MODULE_DEPS:
                self.report(fm, 1, "layering",
                            f"module '{fm.module}' is not declared in "
                            "tools/analyze.py MODULE_DEPS; add it with "
                            "its allowed dependencies")
                continue
            allowed = MODULE_DEPS[fm.module]
            for line, target in fm.includes:
                if not (self.root / target).exists():
                    self.report(fm, line, "layering",
                                f'include "{target}" does not resolve '
                                "under src/")
                    continue
                dep = target.split("/", 1)[0] if "/" in target else ""
                if dep == fm.module or dep in allowed:
                    continue
                self.report(
                    fm, line, "layering",
                    f"module '{fm.module}' may not include '{dep}' "
                    f"(declared deps: "
                    f"{', '.join(sorted(allowed)) or 'none'}) — an "
                    "upward or undeclared edge in the module DAG")
        self._check_include_cycles()

    def _check_include_cycles(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in self.by_rel}
        reported = set()

        def visit(rel, stack):
            color[rel] = GRAY
            stack.append(rel)
            for line, target in self.by_rel[rel].includes:
                if target not in self.by_rel:
                    continue
                if color[target] == GRAY:
                    cycle = stack[stack.index(target):] + [target]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        self.report(self.by_rel[rel], line, "layering",
                                    "include cycle: "
                                    + " -> ".join(cycle))
                elif color[target] == WHITE:
                    visit(target, stack)
            stack.pop()
            color[rel] = BLACK

        for rel in sorted(self.by_rel):
            if color[rel] == WHITE:
                visit(rel, [])

    # -- rule: charge-site --------------------------------------------------
    def check_charge_site(self) -> None:
        for fm in self.models:
            if fm.rel in CHARGE_SITES:
                continue
            for i, raw in enumerate(fm.stripped.splitlines(), 1):
                if (MUTATION_TAIL_RE.search(raw)
                        or MUTATION_HEAD_RE.search(raw)):
                    self.report(
                        fm, i, "charge-site",
                        "mutates an issuance counter "
                        f"({'/'.join(CHARGE_FIELDS)}) outside "
                        "core/sink.h — issuance is charged exactly once, "
                        "by IssuePrioritized/MonitoredQuery; charging "
                        "elsewhere double-counts internal delegations "
                        "(see tests/stats_accounting_test.cc)")

    # -- rule: hotpath-alloc ------------------------------------------------
    def check_hotpath_alloc(self) -> None:
        for fm in self.models:
            for name, params, b0, b1 in fm.hot_functions():
                body = fm.stripped[b0:b1]
                approved = set()
                for pm in PARAM_OUT_RE.finditer(params):
                    approved.add(pm.group(2))
                for sm in SCRATCH_NAME_RE.finditer(body):
                    approved.add(sm.group(1))
                for rm in VEC_REF_RE.finditer(body):
                    approved.add(rm.group(1))
                for nm in NEW_RE.finditer(body):
                    self.report(fm, fm.lineno(b0 + nm.start()),
                                "hotpath-alloc",
                                f"`new` inside {name}() — the scratch-"
                                "threaded entry points must not allocate "
                                "(zero-allocation steady-state contract)")
                for vm in VEC_HEAD_RE.finditer(body):
                    d = parse_owning_decl(body, vm)
                    if d is None or d[1]:
                        continue
                    self.report(
                        fm, fm.lineno(b0 + vm.start()), "hotpath-alloc",
                        f"owning std::{vm.group(1)} local `{d[2]}` inside "
                        f"{name}() — borrow a pool from the Scratch arena "
                        "(ScratchVec) instead; an owning local allocates "
                        "on every query")
                for pb in PUSH_RE.finditer(body):
                    chain = re.split(r"\.|->", pb.group(1))
                    base = chain[0].replace("()", "")
                    ok = (base in approved
                          or (len(chain) >= 2 and chain[-1] == "elements"
                              and chain[0].replace("()", "") in approved))
                    if not ok:
                        self.report(
                            fm, fm.lineno(b0 + pb.start()),
                            "hotpath-alloc",
                            f"push_back on `{pb.group(1)}` inside {name}() "
                            "— receiver is not a scratch-backed pool "
                            "(ScratchVec/MonitoredPool local, .vec() "
                            "reference, or recycled out-parameter)")

    # -- rule: posture ------------------------------------------------------
    def check_posture(self) -> None:
        marked = {}
        for fm in self.models:
            for ci in fm.classes:
                if ci.markers:
                    marked[ci.name] = True
        # Close the marked set over substrate-alias chains: a class whose
        # alias target names a marked class is itself effectively marked
        # (the concept reaches through it), so wrapping IT also hides
        # markers unless re-exported.
        changed = True
        while changed:
            changed = False
            for fm in self.models:
                for ci in fm.classes:
                    if ci.name in marked:
                        continue
                    for target in ci.aliases.values():
                        if any(re.search(r"\b%s\b" % re.escape(mname),
                                         target) for mname in marked):
                            marked[ci.name] = True
                            changed = True

        for fm in self.models:
            for ci in fm.classes:
                own = bool(ci.markers)
                for decl, line in ci.mutables:
                    if THREAD_SAFE_TYPES_RE.search(decl):
                        continue
                    if own:
                        continue
                    self.report(
                        fm, line, "posture",
                        f"class {ci.name} has mutable query state but "
                        "declares no thread-safety posture INSIDE the "
                        "class — serve::ShareableTopKStructure only sees "
                        "this class's own kThreadSafeQuery/"
                        "kExternalMemory markers (a marker on a sibling "
                        "class in this file does not cover it)")
                if own:
                    continue
                exported = set()
                for target in ci.aliases.values():
                    for mname in marked:
                        if re.search(r"\b%s\b" % re.escape(mname), target):
                            exported.add(mname)
                for stmt, line in ci.statements:
                    if re.match(r"(using|typedef|static|friend|template"
                                r"|class|struct|enum)\b", stmt):
                        continue
                    if "(" in stmt:  # member function or paren-init
                        continue
                    for mname in marked:
                        if (re.search(r"\b%s\b" % re.escape(mname), stmt)
                                and mname not in exported):
                            self.report(
                                fm, line, "posture",
                                f"class {ci.name} holds a {mname} (a "
                                "posture-marked structure) but neither "
                                "exports it through a substrate alias "
                                "(Prioritized/MaxSubstrate/"
                                "CounterStructure) nor declares its own "
                                "marker — the hidden marker makes "
                                "ShareableTopKStructure pass a thread-"
                                "unsafe composite")

    def run(self) -> list:
        self.check_layering()
        self.check_charge_site()
        self.check_hotpath_alloc()
        self.check_posture()
        self.findings.sort(key=lambda f: (f["file"], f["line"]))
        return self.findings


def main(argv: list) -> int:
    as_json = "--json" in argv
    argv = [a for a in argv if a != "--json"]
    if len(argv) != 1:
        print("usage: analyze.py [--json] <src-root>", file=sys.stderr)
        return 2
    root = Path(argv[0])
    if not root.is_dir():
        print(f"analyze.py: not a directory: {root}", file=sys.stderr)
        return 2
    analyzer = Analyzer(root)
    findings = analyzer.run()
    if as_json:
        print(json.dumps({
            "root": str(root),
            "files": len(analyzer.models),
            "modules": {m: sorted(d) for m, d in MODULE_DEPS.items()},
            "findings": [{k: f[k] for k in ("file", "line", "rule",
                                            "message")}
                         for f in findings],
        }, indent=2))
    else:
        for f in findings:
            print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
        if findings:
            print(f"analyze.py: {len(findings)} finding(s)",
                  file=sys.stderr)
        else:
            print(f"analyze.py: {len(analyzer.models)} files clean")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
