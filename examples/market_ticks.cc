// Top-k interval stabbing (Theorem 4) on a market-data workload:
// each limit order is valid over a time interval and carries a price;
// "at time t, show the k highest-priced orders on the book" is a top-k
// stabbing query. Also demonstrates the reverse reduction of
// Section 1.2: prioritized reporting ("every order above a limit price
// active at t") synthesized from the top-k structure by k-doubling.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "core/topk_to_prioritized.h"
#include "interval/interval.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"

int main() {
  using topk::interval::Interval;
  using topk::interval::SegmentStabbing;
  using topk::interval::SlabStabMax;
  using topk::interval::StabProblem;

  // A trading day: 500k orders, each alive for a random window.
  topk::Rng rng(99);
  const size_t n = 500'000;
  const double day = 6.5 * 3600;  // seconds
  std::vector<Interval> orders(n);
  for (size_t i = 0; i < n; ++i) {
    const double start = rng.NextDouble() * day;
    const double life = 1.0 + rng.NextDouble() * 600.0;
    const double price = 100.0 + rng.NextDouble() * 10.0;
    orders[i] = Interval{start, start + life, price, i + 1};
  }

  using Book = topk::SampledTopK<StabProblem, SegmentStabbing, SlabStabMax>;
  Book book(orders);

  for (double t : {1800.0, 3.25 * 3600, day - 600}) {
    std::printf("\nAt t=%.0fs, the 5 highest-priced active orders:\n", t);
    for (const Interval& o : book.Query(t, 5)) {
      std::printf("  order %-7llu $%.4f  active [%.1fs, %.1fs]\n",
                  static_cast<unsigned long long>(o.id), o.weight, o.lo,
                  o.hi);
    }
  }

  // Reverse reduction: a prioritized view over the same index.
  topk::TopKToPrioritized<Book> above_limit(std::move(book));
  const double t = 2.0 * 3600, limit = 109.99;
  size_t count = 0;
  topk::IssuePrioritized(above_limit, t, limit,
                         [&count](const Interval&) {
                           ++count;
                           return true;
                         },
                         nullptr);
  std::printf("\nOrders active at t=%.0fs priced >= $%.2f: %zu\n", t, limit,
              count);
  return 0;
}
