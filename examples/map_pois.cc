// Top-k 2D orthogonal range reporting (the survey's flagship problem):
// a map application fetching the k most popular points of interest in
// the current viewport, under the Theorem 2 reduction and, for
// contrast, the problem-specific heap-selection structure on the 1D
// projection.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/sampled_topk.h"
#include "range2d/point2d.h"
#include "range2d/range_tree.h"

int main() {
  using topk::range2d::Range2DProblem;
  using topk::range2d::RangeTreeMax;
  using topk::range2d::RangeTreePrioritized;
  using topk::range2d::Rect2;
  using topk::range2d::WPoint2D;

  // A city's POIs: position in [0, 100)^2 km, popularity as weight.
  topk::Rng rng(31);
  const size_t n = 300'000;
  std::vector<WPoint2D> pois(n);
  for (size_t i = 0; i < n; ++i) {
    pois[i] = {rng.NextDouble() * 100, rng.NextDouble() * 100,
               rng.NextDouble() * 1e6, i + 1};
  }

  topk::SampledTopK<Range2DProblem, RangeTreePrioritized, RangeTreeMax>
      index(pois);

  struct Viewport {
    double x1, x2, y1, y2;
    const char* label;
  };
  const Viewport views[] = {
      {49, 51, 49, 51, "downtown (2x2 km)"},
      {10, 35, 60, 90, "suburbs (25x30 km)"},
      {0, 100, 0, 100, "whole city"},
  };
  for (const Viewport& v : views) {
    topk::QueryStats stats;
    auto top = index.Query(Rect2{v.x1, v.x2, v.y1, v.y2}, 5, &stats);
    std::printf("\nTop 5 POIs in %s:\n", v.label);
    for (const WPoint2D& p : top) {
      std::printf("  poi %-7llu popularity %8.0f at (%.2f, %.2f)\n",
                  static_cast<unsigned long long>(p.id), p.weight, p.x,
                  p.y);
    }
    std::printf("  [%llu structure nodes, %llu rounds]\n",
                static_cast<unsigned long long>(stats.nodes_visited),
                static_cast<unsigned long long>(stats.rounds));
  }
  return 0;
}
