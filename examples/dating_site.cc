// The paper's 2D point enclosure example (Section 1.4):
//
//   "Find the 10 gentlemen with the highest salaries such that my age
//    and height fall into their preferred ranges."
//
// Each member registers a preference rectangle (age x height); a query
// is the seeker's own (age, height) point; the weight is the salary.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "enclosure/enclosure_structures.h"
#include "enclosure/rect.h"

int main() {
  using topk::enclosure::EnclosurePrioritized;
  using topk::enclosure::EnclosureProblem;
  using topk::enclosure::Point2;
  using topk::enclosure::Rect;

  // 100k members; preferences centered around their own demographics.
  topk::Rng rng(20);
  const size_t n = 100'000;
  std::vector<Rect> prefs(n);
  for (size_t i = 0; i < n; ++i) {
    const double age_lo = 18 + rng.NextDouble() * 40;
    const double height_lo = 150 + rng.NextDouble() * 35;
    prefs[i] = Rect{age_lo, age_lo + 2 + rng.NextDouble() * 15,
                    height_lo, height_lo + 2 + rng.NextDouble() * 25,
                    /*salary=*/20'000 + rng.NextDouble() * 480'000,
                    /*member id=*/i + 1};
  }

  // Theorem 1 needs only the prioritized structure.
  topk::CoreSetTopK<EnclosureProblem, EnclosurePrioritized> site(prefs);

  struct Seeker {
    double age, height;
  };
  for (const Seeker s : {Seeker{29, 171}, Seeker{45, 182}, Seeker{21, 160}}) {
    std::printf("\nTop 10 salaries among members whose preferences admit "
                "age %.0f, height %.0fcm:\n", s.age, s.height);
    auto top = site.Query(Point2{s.age, s.height}, 10);
    for (const Rect& r : top) {
      std::printf("  member %-7llu salary $%7.0f   ages [%4.1f, %4.1f]  "
                  "heights [%5.1f, %5.1f]\n",
                  static_cast<unsigned long long>(r.id), r.weight, r.x1,
                  r.x2, r.y1, r.y2);
    }
    if (top.empty()) std::printf("  (nobody's preferences match)\n");
  }
  return 0;
}
