// External-memory walkthrough: build the Section 5.5-style structures
// on a simulated disk, run both reductions, and read the exact page
// I/O counters — the quantity the paper's theorems are stated in.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/em_range1d.h"
#include "em/external_sort.h"
#include "range1d/point1d.h"

int main() {
  using topk::em::BlockDevice;
  using topk::em::BufferPool;
  using topk::em::EmBPlusTree;
  using topk::em::EmRange1dPrioritized;
  using topk::range1d::Point1D;
  using topk::range1d::Range1D;
  using topk::range1d::Range1DProblem;

  // A "disk" with 512-byte pages (B = 64 words) and 64 frames of
  // memory (M = 64 B).
  BlockDevice disk(512);
  BufferPool pool(&disk, 64);

  topk::Rng rng(8);
  const size_t n = 200'000;
  std::vector<Point1D> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {rng.NextDouble(), rng.NextDouble() * 1e6, i + 1};
  }

  // Bulk load the max structure through an external sort.
  auto by_x = [](const Point1D& a, const Point1D& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.id < b.id;
  };
  auto sorted = topk::em::ExternalSortVector(&pool, data,
                                             /*memory_words=*/64 * 64, by_x);
  std::printf("external sort of %zu records: %llu page I/Os\n", n,
              static_cast<unsigned long long>(disk.counters().total()));
  EmBPlusTree max_structure(&pool, std::move(sorted));

  auto pri_factory = [&pool](std::vector<Point1D> v) {
    return EmRange1dPrioritized(&pool, std::move(v));
  };
  auto max_factory = [&pool](std::vector<Point1D> v) {
    return EmBPlusTree(&pool, std::move(v));
  };
  topk::ReductionOptions opts;
  opts.block_size = 64;
  topk::SampledTopK<Range1DProblem, EmRange1dPrioritized, EmBPlusTree,
                    decltype(pri_factory), decltype(max_factory)>
      topk_index(data, opts, pri_factory, max_factory);
  std::printf("device now holds %zu pages (%.1f MB)\n", disk.num_pages(),
              static_cast<double>(disk.num_pages()) * 512 / 1e6);

  const Range1D q{0.4, 0.6};
  pool.FlushAll();
  disk.ResetCounters();
  auto top = topk_index.Query(q, 10);
  std::printf("\ntop-10 in [%.1f, %.1f] cost %llu page I/Os "
              "(a scan would be %zu):\n",
              q.lo, q.hi,
              static_cast<unsigned long long>(disk.counters().total()),
              n / (512 / sizeof(Point1D)));
  for (const Point1D& p : top) {
    std::printf("  id %-7llu weight %.1f\n",
                static_cast<unsigned long long>(p.id), p.weight);
  }
  return 0;
}
