// The paper's 3D dominance example (Section 1.4):
//
//   "Find the 10 best-rated hotels whose (i) prices are at most x
//    dollars per night, (ii) distances from the town center are at most
//    y km, and (iii) security rating is at least z."
//
// Dominance wants upper bounds on every coordinate, so security is
// stored negated; the hotel's guest rating is the weight.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sampled_topk.h"
#include "dominance/point3.h"

namespace {

struct Hotel {
  std::string name;
  double price;      // $ per night
  double distance;   // km from the center
  double security;   // 0..10
  double rating;     // 0..5, the weight
};

}  // namespace

int main() {
  using topk::dominance::DominanceKdTree;
  using topk::dominance::DominanceProblem;
  using topk::dominance::Point3;

  // Synthetic city: 200k hotels with correlated attributes (closer to
  // the center => pricier).
  topk::Rng rng(7);
  const size_t n = 200'000;
  std::vector<Hotel> hotels(n);
  std::vector<Point3> index_points(n);
  for (size_t i = 0; i < n; ++i) {
    Hotel& h = hotels[i];
    h.distance = rng.NextDouble() * 20.0;
    h.price = 40.0 + rng.NextDouble() * 400.0 * (1.0 - h.distance / 30.0);
    h.security = rng.NextDouble() * 10.0;
    h.rating = rng.NextDouble() * 5.0;
    h.name = "hotel-" + std::to_string(i + 1);
    index_points[i] = Point3{h.price, h.distance, -h.security, h.rating,
                             i + 1};
  }

  topk::SampledTopK<DominanceProblem, DominanceKdTree, DominanceKdTree>
      finder(index_points);

  struct Ask {
    double max_price, max_distance, min_security;
  };
  for (const Ask& ask : {Ask{150, 3.0, 7.0}, Ask{80, 10.0, 5.0},
                         Ask{400, 1.0, 9.0}}) {
    std::printf(
        "\nTop 10 rated hotels with price <= $%.0f, distance <= %.1f km, "
        "security >= %.1f:\n",
        ask.max_price, ask.max_distance, ask.min_security);
    const Point3 q{ask.max_price, ask.max_distance, -ask.min_security, 0, 0};
    auto top = finder.Query(q, 10);
    if (top.empty()) {
      std::printf("  (no hotel qualifies)\n");
      continue;
    }
    for (const Point3& p : top) {
      const Hotel& h = hotels[p.id - 1];
      std::printf("  %-14s rating %.2f   $%6.0f   %4.1f km   security %.1f\n",
                  h.name.c_str(), h.rating, h.price, h.distance, h.security);
    }
  }
  return 0;
}
