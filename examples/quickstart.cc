// Quickstart: define a problem, pick a prioritized (and max) structure,
// and get top-k structures from the general reductions.
//
// The library's model (mirroring the paper): you bring
//   1. a Problem       — element + predicate + Matches + lambda,
//   2. a prioritized structure for it (here: a priority search tree),
//   3. optionally a max structure (here: a sparse-table range max),
// and the reductions hand you top-k indexes:
//   CoreSetTopK  (Theorem 1, worst case)       <- needs only (2)
//   SampledTopK  (Theorem 2, expected, no loss) <- needs (2) + (3)
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

int main() {
  using topk::range1d::Point1D;
  using topk::range1d::PrioritySearchTree;
  using topk::range1d::Range1D;
  using topk::range1d::Range1DProblem;
  using topk::range1d::RangeMax;

  // One million weighted points on a line.
  const size_t n = 1'000'000;
  topk::Rng rng(2016);
  std::vector<Point1D> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {rng.NextDouble(), rng.NextDouble() * 100.0, i + 1};
  }

  // Theorem 1: top-k from prioritized reporting alone.
  topk::CoreSetTopK<Range1DProblem, PrioritySearchTree> thm1(data);
  // Theorem 2: top-k from prioritized + max reporting, no degradation.
  topk::SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> thm2(data);

  const Range1D q{0.25, 0.75};
  std::printf("top-5 weights in x ∈ [%.2f, %.2f]\n", q.lo, q.hi);

  topk::QueryStats stats;
  std::printf("  CoreSetTopK (Thm 1):");
  for (const Point1D& p : thm1.Query(q, 5, &stats)) {
    std::printf("  %.5f", p.weight);
  }
  std::printf("\n    (%llu structure nodes, %llu prioritized queries, "
              "%llu fallbacks)\n",
              static_cast<unsigned long long>(stats.nodes_visited),
              static_cast<unsigned long long>(stats.prioritized_queries),
              static_cast<unsigned long long>(stats.fallbacks));

  stats.Reset();
  std::printf("  SampledTopK (Thm 2):");
  for (const Point1D& p : thm2.Query(q, 5, &stats)) {
    std::printf("  %.5f", p.weight);
  }
  std::printf("\n    (%llu structure nodes, %llu rounds)\n",
              static_cast<unsigned long long>(stats.nodes_visited),
              static_cast<unsigned long long>(stats.rounds));

  // k larger than the match count just returns every match.
  const Range1D narrow{0.5, 0.500005};
  std::printf("  narrow range [%.6f, %.6f] asking for 100:", narrow.lo,
              narrow.hi);
  std::printf(" got %zu matches\n", thm2.Query(narrow, 100).size());
  return 0;
}
