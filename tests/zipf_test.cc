// ZipfDistribution sanity: deterministic under a fixed seed, exact
// degenerate cases, and empirical frequencies matching the 1/(r+1)^s
// law closely enough to catch an off-by-one in the CDF or a broken
// normalization.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"

namespace topk {
namespace {

TEST(Zipf, SingleRankAlwaysZero) {
  ZipfDistribution zipf(1, 1.1);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

TEST(Zipf, DeterministicUnderSeed) {
  ZipfDistribution zipf(1000, 1.1);
  Rng a(42), b(42);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(zipf.Next(&a), zipf.Next(&b));
}

TEST(Zipf, DrawsStayInRange) {
  ZipfDistribution zipf(37, 0.7);
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(&rng), 37u);
}

// s = 0 is uniform: every rank within 20% of n_draws / n.
TEST(Zipf, ZeroSkewIsUniform) {
  const size_t kRanks = 16;
  const size_t kDraws = 160000;
  ZipfDistribution zipf(kRanks, 0.0);
  Rng rng(11);
  std::vector<size_t> counts(kRanks, 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[zipf.Next(&rng)];
  const double expect = static_cast<double>(kDraws) / kRanks;
  for (size_t r = 0; r < kRanks; ++r) {
    EXPECT_GT(static_cast<double>(counts[r]), 0.8 * expect) << "rank " << r;
    EXPECT_LT(static_cast<double>(counts[r]), 1.2 * expect) << "rank " << r;
  }
}

// The empirical rank-frequency ratios follow ((r+2)/(r+1))^s: the law
// itself, not just "rank 0 is biggest".
TEST(Zipf, FrequenciesFollowPowerLaw) {
  const size_t kRanks = 64;
  const size_t kDraws = 400000;
  const double s = 1.1;
  ZipfDistribution zipf(kRanks, s);
  Rng rng(12);
  std::vector<size_t> counts(kRanks, 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[zipf.Next(&rng)];
  // Head ranks have tight samples; check the first 8 adjacent ratios.
  for (size_t r = 0; r < 8; ++r) {
    const double got = static_cast<double>(counts[r]) /
                       static_cast<double>(counts[r + 1]);
    const double want = std::pow(
        static_cast<double>(r + 2) / static_cast<double>(r + 1), s);
    EXPECT_GT(got, 0.9 * want) << "rank " << r;
    EXPECT_LT(got, 1.1 * want) << "rank " << r;
  }
  // Mass ordering is monotone down the whole head of the ranking.
  for (size_t r = 0; r + 1 < 16; ++r) {
    EXPECT_GE(counts[r], counts[r + 1]) << "rank " << r;
  }
}

}  // namespace
}  // namespace topk
