#!/usr/bin/env python3
"""Roundtrip validation of the trace/metrics JSON exports.

Runs tests' trace_export_main binary (argv[1]) and asserts:

  * every emitted document is valid JSON (json.loads — a real parser,
    not substring checks);
  * the Chrome trace is trace-event-format shaped: a traceEvents list
    of "X"/"i"/"M" events with numeric ts/dur;
  * the cost-attribution contract: for every QueryStats field exported
    in the metrics "stats" object, the sum of that field's value over
    all span args in the Chrome trace equals the metrics total EXACTLY
    (span self counts telescope — see src/trace/tracer.h);
  * the slow-query log is bounded, sorted by descending latency, and
    carries valid status strings;
  * the saturated-counter snapshot parses and preserves UINT64_MAX
    verbatim (the truncation regression).
"""

import json
import subprocess
import sys


def fail(msg):
    print(f"trace_roundtrip: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: trace_roundtrip.py <trace_export_main binary>")
    proc = subprocess.run(
        [sys.argv[1]], capture_output=True, text=True, timeout=300
    )
    if proc.returncode != 0:
        fail(f"exporter exited {proc.returncode}: {proc.stderr[:500]}")

    docs = {}
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        label, _, payload = line.partition(" ")
        try:
            docs[label] = json.loads(payload)
        except json.JSONDecodeError as e:
            fail(f"{label} is not valid JSON: {e}\n{payload[:300]}")
    for want in ("metrics_json", "chrome_trace", "saturated_json"):
        if want not in docs:
            fail(f"missing output line: {want}")

    metrics = docs["metrics_json"]
    trace = docs["chrome_trace"]
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = 0
    sums = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"unexpected event phase {ph!r}")
        if ph == "M":
            continue
        if not isinstance(e.get("ts"), (int, float)):
            fail(f"event without numeric ts: {e}")
        if ph == "X":
            spans += 1
            if not isinstance(e.get("dur"), (int, float)):
                fail(f"span without numeric dur: {e}")
            for name, value in e.get("args", {}).items():
                sums[name] = sums.get(name, 0) + value
    if spans == 0:
        fail("no span events in the trace")

    stats = metrics["stats"]
    if not stats:
        fail("metrics stats object is empty")
    for field, total in stats.items():
        got = sums.get(field, 0)
        if got != total:
            fail(
                f"attribution mismatch for {field}: spans sum to {got}, "
                f"metrics report {total}"
            )

    slow = metrics.get("slow_queries", [])
    if not slow:
        fail("slow_queries missing (threshold was 1 ns; all are slow)")
    if len(slow) > 8:
        fail(f"slow_queries holds {len(slow)} entries, bound is 8")
    latencies = [q["latency_ns"] for q in slow]
    if latencies != sorted(latencies, reverse=True):
        fail(f"slow_queries not sorted by descending latency: {latencies}")
    valid_status = {"ok", "degraded", "shed", "deadline_exceeded"}
    for q in slow:
        if q["status"] not in valid_status:
            fail(f"invalid slow-query status {q['status']!r}")

    sat = docs["saturated_json"]
    umax = 2**64 - 1
    if sat["queries"] != umax:
        fail(f"saturated queries counter mangled: {sat['queries']}")
    if sat["latency_ns"]["max"] != umax:
        fail(f"saturated latency max mangled: {sat['latency_ns']['max']}")
    if any(q["latency_ns"] != umax - i for i, q in
           enumerate(sat["slow_queries"])):
        fail("saturated slow_queries mangled")

    print(
        f"trace_roundtrip: OK ({spans} spans, "
        f"{len(stats)} stats fields matched exactly, "
        f"{len(slow)} slow queries)"
    )


if __name__ == "__main__":
    main()
