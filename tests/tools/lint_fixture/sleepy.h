// Lint self-test fixture (linted, never compiled): the sleep rule must
// flag the bare sleep_for below, and honor the one-line suppression.

#ifndef TOPK_SLEEPY_H_
#define TOPK_SLEEPY_H_

#include <chrono>
#include <thread>

namespace topk {

inline void BadWait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

inline void JustifiedWait() {
  std::this_thread::sleep_until(  // lint: sleep-ok fixture suppression
      std::chrono::steady_clock::now());
}

}  // namespace topk

#endif  // TOPK_SLEEPY_H_
