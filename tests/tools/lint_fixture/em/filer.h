// Lint self-test fixture (linted, never compiled): files under an
// em/ directory are the sanctioned home for raw file I/O (the
// ByteStorage / BlockDevice implementations live there) — the io rule
// must stay quiet here.

#ifndef TOPK_EM_FILER_H_
#define TOPK_EM_FILER_H_

#include <fcntl.h>
#include <unistd.h>

namespace topk {

inline int SanctionedOpen(const char* path) {
  return ::open(path, O_RDWR | O_CREAT, 0644);
}

inline int SanctionedSync(int fd) { return ::fsync(fd); }

}  // namespace topk

#endif  // TOPK_EM_FILER_H_
