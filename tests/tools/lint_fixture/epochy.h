// Lint self-test fixture (linted, never compiled): the epoch rule must
// flag the bare non-atomic member of the epoch-published type below,
// and honor the `// epoch:` posture comment, the std::atomic
// exemption, and the one-line suppression. The unmarked type at the
// bottom must not be scanned at all.

#ifndef TOPK_EPOCHY_H_
#define TOPK_EPOCHY_H_

#include <atomic>
#include <cstdint>

namespace topk {

// epoch-published
struct BadEpoch {
  uint64_t seq = 0;  // no posture comment: must be flagged
  uint64_t documented = 0;  // epoch: written once before publish
  std::atomic<uint64_t> counter{0};
  uint64_t justified = 0;  // lint: epoch-ok fixture suppression
  uint64_t Seq() const { return seq; }
};

struct NotPublished {
  uint64_t bare_but_private_to_one_thread = 0;
};

}  // namespace topk

#endif  // TOPK_EPOCHY_H_
