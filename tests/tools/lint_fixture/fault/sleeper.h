// Lint self-test fixture (linted, never compiled): files under a
// fault/ directory are a sanctioned home for real sleeps — the rule
// must stay quiet here.

#ifndef TOPK_FAULT_SLEEPER_H_
#define TOPK_FAULT_SLEEPER_H_

#include <chrono>
#include <thread>

namespace topk {

inline void SanctionedBackoff() {
  std::this_thread::sleep_for(std::chrono::nanoseconds(1));
}

}  // namespace topk

#endif  // TOPK_FAULT_SLEEPER_H_
