// Lint self-test fixture (linted, never compiled): the tracer rule
// must flag the bare `tracer->` dereference below, and honor the
// one-line suppression on the guarded use.

#ifndef TOPK_TRACY_H_
#define TOPK_TRACY_H_

namespace topk {

template <typename Tracer>
inline void BadDeref(Tracer* tracer) {
  tracer->RecordInstant("boom");  // null when tracing is off
}

template <typename Tracer>
inline void GuardedDeref(Tracer* query_tracer) {
  if (query_tracer != nullptr) {
    query_tracer->Clear();  // lint: tracer-ok fixture suppression
  }
}

}  // namespace topk

#endif  // TOPK_TRACY_H_
