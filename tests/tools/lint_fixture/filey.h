// Lint self-test fixture (linted, never compiled): the io rule must
// flag the raw ::open below (raw file I/O outside an em/ directory),
// and honor the one-line suppression.

#ifndef TOPK_FILEY_H_
#define TOPK_FILEY_H_

#include <fcntl.h>
#include <unistd.h>

namespace topk {

inline int BadOpen(const char* path) {
  return ::open(path, O_RDONLY);
}

inline int JustifiedSync(int fd) {
  return ::fsync(fd);  // lint: io-ok fixture suppression
}

}  // namespace topk

#endif  // TOPK_FILEY_H_
