// Lint self-test fixture (linted, never compiled): the function rule
// must flag the bare std::function member below — this file sits under
// a core/ directory, where owning type-erasure is banned — and honor
// the one-line suppression.

#ifndef TOPK_CORE_FUNKY_H_
#define TOPK_CORE_FUNKY_H_

#include <functional>

namespace topk {

struct BadCallback {
  std::function<void(int)> on_emit;  // may heap-allocate per construction
};

struct JustifiedCallback {
  std::function<void(int)> hook;  // lint: function-ok fixture suppression
};

}  // namespace topk

#endif  // TOPK_CORE_FUNKY_H_
