// Regression fixture for single-file invocation: this header is fully
// lint-clean, and its guard is what BOTH invocation styles must derive
// — `lint.py <fixture-dir>` (rel src/core/cleanly.h, SRC stripped) and
// `lint.py .../src/core/cleanly.h` (root = the nearest `src` ancestor).
// Before the file_root() fix, the single-file form fell back to
// Path(".") and expected a guard derived from the full invocation path,
// flagging this clean header.

#ifndef TOPK_CORE_CLEANLY_H_
#define TOPK_CORE_CLEANLY_H_

namespace topk {

inline int Cleanly() { return 7; }

}  // namespace topk

#endif  // TOPK_CORE_CLEANLY_H_
