# Exercises tools/summarize_bench.py failure modes via `cmake -P` (so the
# default ctest sweep covers the tool without a pytest dependency).
#
# Invoked from tests/CMakeLists.txt as:
#   cmake -DPYTHON=... -DSCRIPT=... -DFIXTURES=... -P summarize_bench_test.cmake
#
# A well-formed bench output must summarize cleanly (exit 0 and render the
# serve metrics row); malformed metrics JSON, a missing key, and a missing
# input file must each fail with a nonzero exit and a diagnostic — silent
# half-rendered summaries would be mistaken for clean runs when diffed
# against EXPERIMENTS.md.

foreach(var PYTHON SCRIPT FIXTURES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

function(expect_run rc_want out_want)
  # Remaining args: command line after ${PYTHON} ${SCRIPT}.
  execute_process(
    COMMAND ${PYTHON} ${SCRIPT} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc_want STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "expected success, got rc=${rc}\nargs: ${ARGN}\nstderr: ${err}")
  endif()
  if(rc_want STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "expected failure, got rc=0\nargs: ${ARGN}\nstdout: ${out}")
  endif()
  if(out_want AND NOT "${out}${err}" MATCHES "${out_want}")
    message(FATAL_ERROR "output does not match \"${out_want}\"\nargs: ${ARGN}\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

expect_run(zero "p50=0.8us"      ${FIXTURES}/good_bench_output.txt)
expect_run(zero "max=2.2us"      ${FIXTURES}/good_bench_output.txt)
expect_run(zero "deadline_exceeded=2 degraded=6" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "BM_Thm1CoreSet" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "slow: 2.2us batch=1 slot=17 work=4096 status=deadline_exceeded" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "off ns/q" ${FIXTURES}/good_bench_output.txt)
expect_run(nonzero "malformed metrics JSON" ${FIXTURES}/bad_json_bench_output.txt)
expect_run(nonzero "missing expected key"   ${FIXTURES}/missing_key_bench_output.txt)
expect_run(nonzero "cannot read"            ${FIXTURES}/no_such_file.txt)

message(STATUS "summarize_bench.py: all failure-mode checks passed")
