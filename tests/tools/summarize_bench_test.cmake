# Exercises tools/summarize_bench.py failure modes via `cmake -P` (so the
# default ctest sweep covers the tool without a pytest dependency).
#
# Invoked from tests/CMakeLists.txt as:
#   cmake -DPYTHON=... -DSCRIPT=... -DFIXTURES=... -P summarize_bench_test.cmake
#
# A well-formed bench output must summarize cleanly (exit 0 and render the
# serve metrics row); malformed metrics JSON, a missing key, and a missing
# input file must each fail with a nonzero exit and a diagnostic — silent
# half-rendered summaries would be mistaken for clean runs when diffed
# against EXPERIMENTS.md.

foreach(var PYTHON SCRIPT FIXTURES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

function(expect_run rc_want out_want)
  # Remaining args: command line after ${PYTHON} ${SCRIPT}.
  execute_process(
    COMMAND ${PYTHON} ${SCRIPT} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc_want STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "expected success, got rc=${rc}\nargs: ${ARGN}\nstderr: ${err}")
  endif()
  if(rc_want STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "expected failure, got rc=0\nargs: ${ARGN}\nstdout: ${out}")
  endif()
  if(out_want AND NOT "${out}${err}" MATCHES "${out_want}")
    message(FATAL_ERROR "output does not match \"${out_want}\"\nargs: ${ARGN}\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

expect_run(zero "p50=0.8us"      ${FIXTURES}/good_bench_output.txt)
expect_run(zero "max=2.2us"      ${FIXTURES}/good_bench_output.txt)
expect_run(zero "deadline_exceeded=2 degraded=6" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "BM_Thm1CoreSet" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "slow: 2.2us batch=1 slot=17 work=4096 status=deadline_exceeded" ${FIXTURES}/good_bench_output.txt)
expect_run(zero "off ns/q" ${FIXTURES}/good_bench_output.txt)
expect_run(nonzero "malformed metrics JSON" ${FIXTURES}/bad_json_bench_output.txt)
expect_run(nonzero "missing expected key"   ${FIXTURES}/missing_key_bench_output.txt)
expect_run(nonzero "cannot read"            ${FIXTURES}/no_such_file.txt)

# --json baseline mode: the serve table row and metrics_json merge into
# one record per (structure, threads); an input without bench_serve
# metrics must fail rather than write an empty baseline.
expect_run(zero "" --json baseline_tmp.json ${FIXTURES}/good_bench_output.txt)
file(READ baseline_tmp.json baseline_json)
file(REMOVE baseline_tmp.json)
foreach(want "\"qps\": 104065" "\"structure\": \"CoreSetTopK\""
        "\"threads\": 4" "\"p99\": 1898.0" "\"batch_ms\": 1.23")
  if(NOT baseline_json MATCHES "${want}")
    message(FATAL_ERROR "--json baseline missing ${want}\n${baseline_json}")
  endif()
endforeach()
expect_run(nonzero "no bench_serve metrics"
           --json baseline_tmp.json ${FIXTURES}/no_serve_bench_output.txt)

message(STATUS "summarize_bench.py: all failure-mode checks passed")
