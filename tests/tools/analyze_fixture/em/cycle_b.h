// Include-cycle sabotage, half 2 (see cycle_a.h).

#include "em/cycle_a.h"

namespace topk {

inline int SabCycleB() { return 0; }

}  // namespace topk
