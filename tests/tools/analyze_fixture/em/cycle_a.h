// Include-cycle sabotage, half 1: same-module includes are layering-
// legal, but the a -> b -> a cycle must be flagged once.

#include "em/cycle_b.h"

namespace topk {

inline int SabCycleA() { return 0; }

}  // namespace topk
