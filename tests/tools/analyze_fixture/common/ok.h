// Clean common-module header: no findings expected.

namespace topk {

struct SabPoint {
  double weight = 0.0;
  unsigned long long id = 0;
};

}  // namespace topk
