// Layering sabotage: common is the bottom layer and may not include
// core. analyze.py must flag the include below as an upward edge.

#include "core/hot.h"

namespace topk {

inline int SabUsesCore() { return 0; }

}  // namespace topk
