// Charge-site sabotage: mutating the issuance counters outside
// core/sink.h double-counts every internal delegation. The two bare
// mutations must be flagged; the read and the suppressed mutation must
// not be.

#include "common/ok.h"

namespace topk {

struct SabStats {
  unsigned long long prioritized_queries;
  unsigned long long elements_emitted;
};

inline unsigned long long SabCheat(SabStats* stats, unsigned long n) {
  ++stats->prioritized_queries;                       // FLAG
  stats->elements_emitted += n;                       // FLAG
  const unsigned long long seen = stats->prioritized_queries;  // ok: read
  stats->elements_emitted += n;  // analyze: charge-site-ok fixture: quiet
  return seen;
}

}  // namespace topk
