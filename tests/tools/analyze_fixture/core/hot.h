// Hotpath-alloc sabotage: the QueryInto body below breaks the
// zero-allocation steady-state contract three ways (owning vector
// local, `new`, push_back onto a member). The ScratchVec local, the
// .vec() reference, the out-parameter, and the suppressed line must
// NOT be flagged; nor may anything in the allocating Query() compat
// overload (hot-path scoping is by function name, `*Into`).

#include <vector>

#include "common/ok.h"

namespace topk {

class SabHotStructure {
 public:
  void QueryInto(int q, unsigned long k, Scratch* scratch,
                 std::vector<SabPoint>* out) const {
    out->clear();
    std::vector<SabPoint> pool;                     // FLAG: owning local
    double* slab = new double[k];                   // FLAG: new
    std::vector<int> oops;  // analyze: hotpath-alloc-ok fixture: quiet
    ScratchVec<SabPoint> borrowed = scratch->Borrow<SabPoint>();
    borrowed.push_back(SabPoint{});                 // ok: scratch-backed
    std::vector<SabPoint>& vref = borrowed.vec();
    vref.push_back(SabPoint{});                     // ok: .vec() ref
    out->push_back(SabPoint{});                     // ok: recycled out
    bad_.push_back(SabPoint{});                     // FLAG: member recv
    (void)q;
    (void)pool;
    (void)slab;
    (void)oops;
  }

  // Allocating compat overload: deliberately outside the hot set.
  std::vector<SabPoint> Query(int q, unsigned long k) const {
    std::vector<SabPoint> result;
    result.push_back(SabPoint{});
    (void)q;
    (void)k;
    return result;
  }

 private:
  mutable std::vector<SabPoint> bad_;  // analyze: posture-ok fixture
};

}  // namespace topk
