// The two-class posture hole, demonstrably open in tools/lint.py and
// closed by tools/analyze.py: lint's `mutable` rule is file-scoped, so
// the kThreadSafeQuery marker on SabSafeOuter makes the WHOLE file pass
// — including SabCacheyInner's unmarked mutable query state, which
// serve::ShareableTopKStructure (a per-class check) would happily share
// across worker threads. tests/tools/analyze_selftest.cmake runs BOTH
// tools over this header and asserts lint exits clean while analyze
// reports the [posture] finding.
//
// This header is lint-conformant on purpose (guard, namespace, no bare
// assert): the point is that lint has no rule violation to see here.

#ifndef TOPK_TWO_CLASS_H_
#define TOPK_TWO_CLASS_H_

#include <cstdint>

namespace topk {

class SabCacheyInner {
 public:
  uint64_t Lookup(uint64_t key) const {
    last_key_ = key;  // hidden query-time mutation under const
    return last_key_;
  }

 private:
  mutable uint64_t last_key_ = 0;
};

class SabSafeOuter {
 public:
  static constexpr bool kThreadSafeQuery = false;

  uint64_t Probe(uint64_t key) const { return inner_.Lookup(key); }

 private:
  SabCacheyInner inner_;
};

}  // namespace topk

#endif  // TOPK_TWO_CLASS_H_
