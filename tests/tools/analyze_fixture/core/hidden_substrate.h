// Hidden-substrate sabotage for the posture rule's alias recursion:
// SabEmish carries kExternalMemory (single-threaded query state, like
// the EM structures). SabBadWrapper stores one but neither re-exports
// it through a substrate alias nor declares its own marker, so
// serve::ShareableTopKStructure would see no marker at all and admit a
// thread-unsafe composite — that is the finding. SabGoodWrapper (alias
// export) and SabChainWrapper (export through an alias CHAIN, the way
// the concept recurses) are clean, as are the mutex member and the
// suppressed cache.

#include <mutex>

#include "common/ok.h"

namespace topk {

class SabEmish {
 public:
  static constexpr bool kExternalMemory = true;
};

class SabBadWrapper {
 public:
  int Size() const { return 0; }

 private:
  SabEmish inner_;  // FLAG: marker hidden from the shareability gate
};

class SabGoodWrapper {
 public:
  using Prioritized = SabEmish;

 private:
  SabEmish inner_;  // ok: exported, the concept recurses through it
};

class SabChainWrapper {
 public:
  using Prioritized = SabGoodWrapper;

 private:
  SabGoodWrapper inner_;  // ok: exported through the alias chain
};

class SabMutexed {
 private:
  mutable std::mutex mu_;  // ok: inherently thread-safe type
};

class SabSuppressed {
 private:
  mutable int hits_ = 0;  // analyze: posture-ok fixture: documented
};

}  // namespace topk
