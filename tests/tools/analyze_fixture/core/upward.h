// Layering sabotage: core sits below serve in the module DAG, so the
// first include is an upward edge; the second names a file that does
// not exist under the root (a typo'd path clang would catch only in a
// TU that includes this header).

#include "core/nonexistent.h"
#include "serve/widget.h"

namespace topk {

inline int SabUpward() { return 0; }

}  // namespace topk
