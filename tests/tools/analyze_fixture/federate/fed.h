// Clean federate-module header (federate sits on top of serve and may
// include it); the sabotage is the reverse edge in
// serve/uses_federate.h.

#include "serve/widget.h"

namespace topk::federate {

struct SabFed {
  serve::SabWidget w;
};

}  // namespace topk::federate
