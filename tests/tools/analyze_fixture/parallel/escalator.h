// Layering sabotage: parallel is vocabulary below core and serve (its
// only declared dependency is common), so reaching up into serve is an
// upward edge; the common include next to it must stay clean.

#include "common/ok.h"
#include "serve/widget.h"

namespace topk::parallel {

inline int SabEscalator() { return 0; }

}  // namespace topk::parallel
