// Layering sabotage: federate is the TOP of the serving stack — only
// tests and benches may include it. serve reaching up into federate
// inverts the coordinator-over-engine design; analyze.py must flag it.

#include "federate/fed.h"

namespace topk::serve {

inline int SabUsesFederate() { return 0; }

}  // namespace topk::serve
