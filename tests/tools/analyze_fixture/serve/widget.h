// Clean serve-module header (serve may include common).

#include "common/ok.h"

namespace topk::serve {

struct SabWidget {
  SabPoint p;
};

}  // namespace topk::serve
