# Self-test for tools/analyze.py via `cmake -P` (so the default ctest
# sweep covers the four whole-program rules without a pytest
# dependency).
#
# Invoked from tests/CMakeLists.txt as:
#   cmake -DPYTHON=... -DSCRIPT=... -DLINT=... -DFIXTURE=...
#         -P analyze_selftest.cmake
#
# The sabotage fixture under tests/tools/analyze_fixture holds one
# deliberate violation per facet of each rule, plus neighbouring clean
# and suppressed code that must NOT fire:
#   layering       an upward include (common -> core), an undeclared
#                  edge (core -> serve), an upward edge out of the
#                  intra-query parallelism module (parallel -> serve),
#                  an upward edge into the federation layer
#                  (serve -> federate), an unresolvable include, and a
#                  two-file include cycle (em/cycle_a <-> em/cycle_b)
#   charge-site    `++` and `+=` on issuance counters outside
#                  core/sink.h (a read and a suppressed mutation stay
#                  clean)
#   hotpath-alloc  an owning std::vector local, a `new`, and a
#                  push_back onto a non-scratch member, all inside a
#                  *Into hot body (ScratchVec locals, .vec() refs,
#                  out-parameters, and the allocating Query() compat
#                  overload stay clean)
#   posture        a class with its own unmarked mutable member while a
#                  SIBLING class in the same file carries the marker
#                  (the file-scope hole lint.py cannot see), and a
#                  wrapper hiding a posture-marked substrate without an
#                  alias export (exported and chained wrappers stay
#                  clean)
# Exactly thirteen findings total — a fourteenth means a suppression
# or an approved pattern regressed; fewer means a rule stopped firing.
#
# The final block is the acceptance demonstration for the per-class
# posture rule: lint.py (file-scope `mutable` check) must PASS the
# two-class header that analyze.py flags.

foreach(var PYTHON SCRIPT LINT FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} ${FIXTURE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(rc EQUAL 0)
  message(FATAL_ERROR "expected the sabotage fixture to be flagged; "
                      "analyze exited clean\nstdout: ${out}")
endif()

# layering: upward edge, undeclared edge, unresolved include, cycle.
foreach(finding
        "uses_core\\.h:4: \\[layering\\].*'common' may not include 'core'"
        "upward\\.h:6: \\[layering\\].*does not resolve"
        "upward\\.h:7: \\[layering\\].*'core' may not include 'serve'"
        "escalator\\.h:6: \\[layering\\].*'parallel' may not include 'serve'"
        "uses_federate\\.h:5: \\[layering\\].*'serve' may not include 'federate'"
        "cycle_b\\.h:3: \\[layering\\] include cycle: em/cycle_a\\.h")
  if(NOT out MATCHES "${finding}")
    message(FATAL_ERROR "missing expected [layering] finding matching "
                        "'${finding}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endforeach()

# charge-site: ++ and += on issuance counters outside core/sink.h.
foreach(line 16 17)
  if(NOT out MATCHES "cheater\\.h:${line}: \\[charge-site\\]")
    message(FATAL_ERROR "missing expected [charge-site] finding at "
                        "cheater.h:${line}\nstdout: ${out}\n"
                        "stderr: ${err}")
  endif()
endforeach()

# hotpath-alloc: owning local, new, push_back on a non-scratch member.
foreach(finding
        "hot\\.h:19: \\[hotpath-alloc\\] owning std::vector local"
        "hot\\.h:20: \\[hotpath-alloc\\] `new`"
        "hot\\.h:27: \\[hotpath-alloc\\] push_back on `bad_`")
  if(NOT out MATCHES "${finding}")
    message(FATAL_ERROR "missing expected [hotpath-alloc] finding "
                        "matching '${finding}'\nstdout: ${out}\n"
                        "stderr: ${err}")
  endif()
endforeach()

# posture: per-class marker hole + hidden unexported substrate.
if(NOT out MATCHES "two_class\\.h:28: \\[posture\\] class SabCacheyInner")
  message(FATAL_ERROR "missing the expected per-class [posture] finding "
                      "at two_class.h:28\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES
   "hidden_substrate\\.h:27: \\[posture\\] class SabBadWrapper")
  message(FATAL_ERROR "missing the expected hidden-substrate [posture] "
                      "finding at hidden_substrate.h:27\nstdout: ${out}\n"
                      "stderr: ${err}")
endif()

if(NOT err MATCHES "13 finding")
  message(FATAL_ERROR "expected exactly 13 findings (a suppression or "
                      "approved pattern regressed, or a rule stopped "
                      "firing)\nstdout: ${out}\nstderr: ${err}")
endif()

# Acceptance demonstration: the two-class posture hole passes lint.py's
# file-scope mutable rule (the sibling's marker covers the whole file)
# while analyze.py flags it per class above. If lint.py starts flagging
# it, the fixture no longer demonstrates the hole; update both tools'
# docs before loosening this.
execute_process(
  COMMAND ${PYTHON} ${LINT} ${FIXTURE}/core/two_class.h
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "expected lint.py to PASS the two-class posture "
                      "hole (file-scope mutable rule) that analyze.py "
                      "flags per class; it found something instead\n"
                      "stdout: ${lint_out}\nstderr: ${lint_err}")
endif()

message(STATUS "analyze.py: layering/charge-site/hotpath-alloc/posture "
               "self-test passed (13 findings; lint-vs-analyze posture "
               "hole demonstrated)")
