# Self-test for tools/lint.py's sleep rule via `cmake -P` (so the
# default ctest sweep covers the rule without a pytest dependency).
#
# Invoked from tests/CMakeLists.txt as:
#   cmake -DPYTHON=... -DSCRIPT=... -DFIXTURE=... -P lint_selftest.cmake
#
# The fixture holds one bare sleep_for (must be flagged), one suppressed
# via `// lint: sleep-ok` (must not be), and one under a fault/
# directory (sanctioned home, must not be). Exactly one finding total —
# a second finding means a suppression or sanction regressed; zero
# means the rule stopped firing.

foreach(var PYTHON SCRIPT FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} ${FIXTURE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(rc EQUAL 0)
  message(FATAL_ERROR "expected the bare sleep_for to be flagged; lint "
                      "exited clean\nstdout: ${out}")
endif()
if(NOT out MATCHES "sleepy\\.h:13: \\[sleep\\]")
  message(FATAL_ERROR "missing the expected [sleep] finding at "
                      "sleepy.h:13\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "1 finding")
  message(FATAL_ERROR "expected exactly 1 finding (suppression or the "
                      "fault/ sanction regressed)\nstdout: ${out}\n"
                      "stderr: ${err}")
endif()

message(STATUS "lint.py: sleep-rule self-test passed")
