# Self-test for tools/lint.py's sleep and tracer rules via `cmake -P`
# (so the default ctest sweep covers the rules without a pytest
# dependency).
#
# Invoked from tests/CMakeLists.txt as:
#   cmake -DPYTHON=... -DSCRIPT=... -DFIXTURE=... -P lint_selftest.cmake
#
# The fixture holds, for the sleep rule: one bare sleep_for (must be
# flagged), one suppressed via `// lint: sleep-ok` (must not be), and
# one under a fault/ directory (sanctioned home, must not be); for the
# tracer rule: one bare `tracer->` dereference (must be flagged) and
# one suppressed via `// lint: tracer-ok` (must not be); for the
# function rule: one bare std::function member under a core/ directory
# (must be flagged) and one suppressed via `// lint: function-ok` (must
# not be); for the epoch rule: one bare non-atomic member of an
# epoch-published type (must be flagged), plus an `// epoch:`-annotated
# member, a std::atomic member, a suppressed member, and an unmarked
# type (none flagged); for the io rule: one raw ::open outside an em/
# directory (must be flagged), one suppressed via `// lint: io-ok`
# (must not be), and raw I/O under an em/ directory (sanctioned home,
# must not be). Exactly five findings total — a sixth means a
# suppression or sanction regressed; fewer means a rule stopped firing.

foreach(var PYTHON SCRIPT FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} ${FIXTURE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(rc EQUAL 0)
  message(FATAL_ERROR "expected the bare sleep_for and tracer-> to be "
                      "flagged; lint exited clean\nstdout: ${out}")
endif()
if(NOT out MATCHES "sleepy\\.h:13: \\[sleep\\]")
  message(FATAL_ERROR "missing the expected [sleep] finding at "
                      "sleepy.h:13\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "tracy\\.h:12: \\[tracer\\]")
  message(FATAL_ERROR "missing the expected [tracer] finding at "
                      "tracy.h:12\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "funky\\.h:14: \\[function\\]")
  message(FATAL_ERROR "missing the expected [function] finding at "
                      "core/funky.h:14\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "epochy\\.h:17: \\[epoch\\]")
  message(FATAL_ERROR "missing the expected [epoch] finding at "
                      "epochy.h:17\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT out MATCHES "filey\\.h:14: \\[io\\]")
  message(FATAL_ERROR "missing the expected [io] finding at "
                      "filey.h:14\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "5 finding")
  message(FATAL_ERROR "expected exactly 5 findings (a suppression or "
                      "sanction regressed)\nstdout: ${out}\n"
                      "stderr: ${err}")
endif()

# Single-file invocation regression: passing a clean header directly
# (not via its directory) must derive the same guard as the directory
# sweep. Before the file_root() fix, the root fell back to Path(".") and
# the guard was derived from the full invocation path, flagging clean
# headers with a spurious prefix.
execute_process(
  COMMAND ${PYTHON} ${SCRIPT} ${FIXTURE}/src/core/cleanly.h
  RESULT_VARIABLE single_rc
  OUTPUT_VARIABLE single_out
  ERROR_VARIABLE single_err)
if(NOT single_rc EQUAL 0)
  message(FATAL_ERROR "single-file invocation flagged a clean header "
                      "(guard root derivation regressed)\n"
                      "stdout: ${single_out}\nstderr: ${single_err}")
endif()

message(STATUS
        "lint.py: sleep/tracer/function/epoch/io + single-file self-test "
        "passed")
