// FunctionRef (the ThreadPool dispatch type): lambdas with captures,
// plain function pointers, and stateful function objects, standalone
// and through ThreadPool::RunOnAll.

#include <atomic>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/function_ref.h"
#include "serve/thread_pool.h"

namespace topk {
namespace {

int TimesTwo(int x) { return 2 * x; }

TEST(FunctionRef, FunctionPointerCallee) {
  FunctionRef<int(int)> f = &TimesTwo;
  EXPECT_EQ(f(21), 42);
  FunctionRef<int(int)> g = TimesTwo;  // decays identically
  EXPECT_EQ(g(5), 10);
}

TEST(FunctionRef, CapturingLambdaCallee) {
  int base = 100;
  auto lambda = [&base](int x) { return base + x; };
  FunctionRef<int(int)> f = lambda;
  EXPECT_EQ(f(1), 101);
  base = 200;  // referenced, not copied: sees the update
  EXPECT_EQ(f(1), 201);
}

TEST(FunctionRef, MutatingCalleeStatePersists) {
  size_t calls = 0;
  auto lambda = [&calls]() { ++calls; };
  FunctionRef<void()> f = lambda;
  f();
  f();
  EXPECT_EQ(calls, 2u);
}

TEST(FunctionRef, VoidReturnDiscardsCalleeResult) {
  int hits = 0;
  auto lambda = [&hits](int x) {
    hits += x;
    return hits;  // non-void callee behind a void signature
  };
  FunctionRef<void(int)> f = lambda;
  f(3);
  EXPECT_EQ(hits, 3);
}

std::atomic<size_t>* g_pointer_target = nullptr;
void BumpTarget(size_t) {
  g_pointer_target->fetch_add(1, std::memory_order_relaxed);
}

TEST(ThreadPool, RunOnAllWithCapturingLambda) {
  serve::ThreadPool pool(4);
  std::vector<size_t> seen(pool.num_threads(), 0);
  std::atomic<size_t> total{0};
  pool.RunOnAll([&](size_t worker) {
    seen[worker] = worker + 1;
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 4u);
  for (size_t t = 0; t < seen.size(); ++t) EXPECT_EQ(seen[t], t + 1);
}

TEST(ThreadPool, RunOnAllWithFunctionPointer) {
  serve::ThreadPool pool(3);
  std::atomic<size_t> count{0};
  g_pointer_target = &count;
  pool.RunOnAll(&BumpTarget);
  g_pointer_target = nullptr;
  EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPool, BackToBackRegionsReuseWorkers) {
  serve::ThreadPool pool(2);
  std::atomic<size_t> count{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunOnAll(
        [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(count.load(), 100u);
}

}  // namespace
}  // namespace topk
