// The O(n)-space interval-tree prioritized stabbing structure, including
// its use as an alternative Theorem 4 instantiation.

#include "interval/interval_tree_stab.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "interval/interval.h"
#include "interval/stab_max.h"
#include "test_util.h"

namespace topk {
namespace {

using interval::Interval;
using interval::IntervalTreeStab;
using interval::SlabStabMax;
using interval::StabProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Interval> RandomIntervals(size_t n, Rng* rng, double span) {
  std::vector<Interval> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng->NextDouble();
    out[i] = Interval{a, a + rng->NextDouble() * span,
                      rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

std::vector<Interval> Collect(const IntervalTreeStab& s, double q,
                              double tau) {
  std::vector<Interval> out;
  s.QueryPrioritized(q, tau, [&out](const Interval& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

TEST(IntervalTreeStab, EmptyInput) {
  IntervalTreeStab s({});
  EXPECT_TRUE(Collect(s, 0.5, kNegInf).empty());
}

TEST(IntervalTreeStab, StabAtCenterReportsWholeNode) {
  // All intervals share the point 5.0, which becomes the root center.
  std::vector<Interval> data;
  for (uint64_t i = 1; i <= 20; ++i) {
    data.push_back({5.0 - static_cast<double>(i), 5.0 + static_cast<double>(i),
                    static_cast<double>(i), i});
  }
  IntervalTreeStab s(data);
  EXPECT_EQ(Collect(s, 5.0, kNegInf).size(), 20u);
  EXPECT_EQ(Collect(s, 5.0, 10.5).size(), 10u);
}

TEST(IntervalTreeStab, DegenerateAllIdentical) {
  std::vector<Interval> data;
  for (uint64_t i = 1; i <= 50; ++i) {
    data.push_back({1.0, 2.0, static_cast<double>(i), i});
  }
  IntervalTreeStab s(data);
  EXPECT_EQ(Collect(s, 1.5, kNegInf).size(), 50u);
  EXPECT_EQ(Collect(s, 1.0, kNegInf).size(), 50u);
  EXPECT_TRUE(Collect(s, 0.9, kNegInf).empty());
}

TEST(IntervalTreeStab, EarlyTermination) {
  Rng rng(1);
  IntervalTreeStab s(RandomIntervals(2000, &rng, 1.0));
  size_t seen = 0;
  s.QueryPrioritized(0.5, kNegInf, [&seen](const Interval&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u);
}

struct Param {
  size_t n;
  uint64_t seed;
  double span;
};

class TreeStabSweep : public ::testing::TestWithParam<Param> {};

TEST_P(TreeStabSweep, MatchesBruteForce) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Interval> data = RandomIntervals(p.n, &rng, p.span);
  IntervalTreeStab s(data);
  for (int trial = 0; trial < 60; ++trial) {
    const double q = rng.NextDouble() * (1.0 + p.span);
    const double tau_pool[] = {kNegInf, 10.0, 300.0, 900.0};
    const double tau = tau_pool[trial % 4];
    auto got = Collect(s, q, tau);
    auto want = test::BrutePrioritized<StabProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "q=" << q << " tau=" << tau;
  }
  // Probe exact endpoints too (slab boundary / center cases).
  for (size_t i = 0; i < std::min<size_t>(p.n, 25); ++i) {
    for (double q : {data[i].lo, data[i].hi}) {
      auto got = Collect(s, q, kNegInf);
      auto want = test::BrutePrioritized<StabProblem>(data, q, kNegInf);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeStabSweep,
    ::testing::Values(Param{1, 1, 0.1}, Param{2, 2, 0.1},
                      Param{50, 3, 0.2}, Param{500, 4, 0.05},
                      Param{3000, 5, 0.3}, Param{2000, 6, 1.5}));

// Alternative Theorem 4 instantiation: both reductions over the O(n)-
// space prioritized structure.
TEST(IntervalTreeStab, WorksUnderBothReductions) {
  Rng rng(7);
  std::vector<Interval> data = RandomIntervals(3000, &rng, 0.3);
  CoreSetTopK<StabProblem, IntervalTreeStab> thm1(data);
  SampledTopK<StabProblem, IntervalTreeStab, SlabStabMax> thm2(data);
  for (int trial = 0; trial < 10; ++trial) {
    const double q = rng.NextDouble() * 1.3;
    for (size_t k : {size_t{1}, size_t{10}, size_t{150}}) {
      auto want = test::BruteTopK<StabProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want));
    }
  }
}

}  // namespace
}  // namespace topk
