// 2D orthogonal range reporting: range-tree prioritized and max
// structures, plus both reductions.

#include "range2d/range_tree.h"

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range2d/point2d.h"
#include "test_util.h"

namespace topk {
namespace {

using range2d::Range2DProblem;
using range2d::RangeTreeMax;
using range2d::RangeTreePrioritized;
using range2d::Rect2;
using range2d::WPoint2D;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<WPoint2D> RandomPoints(size_t n, Rng* rng) {
  std::vector<WPoint2D> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng->NextDouble(), rng->NextDouble(),
              rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

// Many duplicate coordinates and weights.
std::vector<WPoint2D> GridPoints(size_t n, Rng* rng) {
  std::vector<WPoint2D> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {static_cast<double>(rng->Below(12)),
              static_cast<double>(rng->Below(12)),
              static_cast<double>(rng->Below(9)), i + 1};
  }
  return out;
}

std::vector<WPoint2D> Collect(const RangeTreePrioritized& s, const Rect2& q,
                              double tau) {
  std::vector<WPoint2D> out;
  s.QueryPrioritized(q, tau, [&out](const WPoint2D& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(RangeTreePrioritized, EmptyAndSingle) {
  RangeTreePrioritized empty({});
  EXPECT_TRUE(Collect(empty, {0, 1, 0, 1}, kNegInf).empty());
  RangeTreePrioritized one({{0.5, 0.5, 3.0, 1}});
  EXPECT_EQ(Collect(one, {0.5, 0.5, 0.5, 0.5}, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(one, {0.6, 1, 0, 1}, kNegInf).empty());
  EXPECT_TRUE(Collect(one, {0, 1, 0, 0.4}, kNegInf).empty());
}

TEST(RangeTreePrioritized, EarlyTermination) {
  Rng rng(1);
  RangeTreePrioritized s(RandomPoints(2000, &rng));
  size_t seen = 0;
  s.QueryPrioritized({0, 1, 0, 1}, kNegInf, [&seen](const WPoint2D&) {
    ++seen;
    return seen < 12;
  });
  EXPECT_EQ(seen, 12u);
}

struct Param {
  size_t n;
  uint64_t seed;
  bool grid;
};

class Range2DSweep : public ::testing::TestWithParam<Param> {};

TEST_P(Range2DSweep, PrioritizedMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<WPoint2D> data =
      p.grid ? GridPoints(p.n, &rng) : RandomPoints(p.n, &rng);
  RangeTreePrioritized s(data);
  const double m = p.grid ? 12.0 : 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    double x1 = rng.NextDouble() * m, x2 = rng.NextDouble() * m;
    double y1 = rng.NextDouble() * m, y2 = rng.NextDouble() * m;
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    const double tau = p.grid ? (trial % 2 ? kNegInf : 4.0)
                              : (trial % 2 ? kNegInf : 500.0);
    auto got = Collect(s, {x1, x2, y1, y2}, tau);
    auto want = test::BrutePrioritized<Range2DProblem>(
        data, {x1, x2, y1, y2}, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
  }
}

TEST_P(Range2DSweep, MaxMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 17);
  std::vector<WPoint2D> data =
      p.grid ? GridPoints(p.n, &rng) : RandomPoints(p.n, &rng);
  RangeTreeMax s(data);
  const double m = p.grid ? 12.0 : 1.0;
  for (int trial = 0; trial < 60; ++trial) {
    double x1 = rng.NextDouble() * m, x2 = rng.NextDouble() * m;
    double y1 = rng.NextDouble() * m, y2 = rng.NextDouble() * m;
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    auto got = s.QueryMax({x1, x2, y1, y2});
    auto want = test::BruteMax<Range2DProblem>(data, {x1, x2, y1, y2});
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Range2DSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{60, 3, false}, Param{500, 4, false},
                      Param{3000, 5, false}, Param{400, 6, true},
                      Param{2000, 7, true}));

TEST(Range2D, BothReductionsMatchBrute) {
  Rng rng(9);
  std::vector<WPoint2D> data = RandomPoints(5000, &rng);
  CoreSetTopK<Range2DProblem, RangeTreePrioritized> thm1(data);
  SampledTopK<Range2DProblem, RangeTreePrioritized, RangeTreeMax> thm2(data);
  for (int trial = 0; trial < 10; ++trial) {
    double x1 = rng.NextDouble(), x2 = rng.NextDouble();
    double y1 = rng.NextDouble(), y2 = rng.NextDouble();
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    const Rect2 q{x1, x2, y1, y2};
    for (size_t k : {size_t{1}, size_t{10}, size_t{200}, size_t{5000}}) {
      auto want = test::BruteTopK<Range2DProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want))
          << "thm1 k=" << k;
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want))
          << "thm2 k=" << k;
    }
  }
}

// Duplicate weights: the max structure's local tie-break must agree
// with the global (weight, id) order.
TEST(Range2D, MaxTieBreaksGlobally) {
  std::vector<WPoint2D> data;
  for (uint64_t i = 1; i <= 256; ++i) {
    data.push_back({static_cast<double>(i % 16), static_cast<double>(i / 16),
                    1.0, i});  // all weights equal
  }
  RangeTreeMax s(data);
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    double x1 = rng.NextDouble() * 16, x2 = rng.NextDouble() * 16;
    double y1 = rng.NextDouble() * 16, y2 = rng.NextDouble() * 16;
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    auto got = s.QueryMax({x1, x2, y1, y2});
    auto want = test::BruteMax<Range2DProblem>(data, {x1, x2, y1, y2});
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id);
    }
  }
}

}  // namespace
}  // namespace topk
