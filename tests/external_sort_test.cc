// External merge sort: correctness across run/pass regimes and the
// Aggarwal–Vitter I/O pass structure.

#include "em/external_sort.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::ExternalSortVector;
using em::PagedArray;
using range1d::Point1D;

constexpr auto kByX = [](const Point1D& a, const Point1D& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.id < b.id;
};

std::vector<Point1D> Drain(const PagedArray<Point1D>& arr) {
  std::vector<Point1D> out;
  arr.ForRange(0, arr.size(), [&out](const Point1D& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(ExternalSort, EmptyAndSingle) {
  BlockDevice dev(512);
  BufferPool pool(&dev, 64);
  auto sorted0 = ExternalSortVector(&pool, std::vector<Point1D>{},
                                    /*memory_words=*/4096, kByX);
  EXPECT_EQ(sorted0.size(), 0u);
  auto sorted1 = ExternalSortVector(
      &pool, std::vector<Point1D>{{0.5, 1.0, 1}}, 4096, kByX);
  ASSERT_EQ(sorted1.size(), 1u);
  EXPECT_EQ(sorted1.Get(0).id, 1u);
}

struct Param {
  size_t n;
  size_t memory_words;
  uint64_t seed;
};

class SortSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SortSweep, SortsCorrectly) {
  const Param p = GetParam();
  BlockDevice dev(512);
  BufferPool pool(&dev, 256);
  Rng rng(p.seed);
  std::vector<Point1D> data = test::RandomPoints1D(p.n, &rng);
  auto sorted = ExternalSortVector(&pool, data, p.memory_words, kByX);
  ASSERT_EQ(sorted.size(), data.size());
  std::vector<Point1D> got = Drain(sorted);
  std::vector<Point1D> want = data;
  std::sort(want.begin(), want.end(), kByX);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortSweep,
    ::testing::Values(
        Param{100, 1 << 20, 1},    // single in-memory run
        Param{5000, 4096, 2},      // several runs, one merge pass
        Param{20000, 1500, 3},     // tiny memory: multiple passes
        Param{20000, 600, 4},      // minimum memory (2 blocks): 2-way
        Param{777, 640, 5}));

TEST(ExternalSort, IoCountMatchesPassStructure) {
  BlockDevice dev(512);  // 21 Point1D per page
  BufferPool pool(&dev, 8);
  Rng rng(6);
  const size_t n = 21 * 256;  // exactly 256 pages
  std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
  PagedArray<Point1D> staged(&pool, data);
  pool.FlushAll();
  dev.ResetCounters();

  // memory = 4 pages of items => runs of 4 pages; fan-in = 3.
  const size_t memory_words = 4 * 21 * 3;  // 4 pages * 21 items * 3 words
  auto sorted = em::ExternalSort(&pool, staged, memory_words, kByX);
  pool.FlushAll();
  ASSERT_EQ(sorted.size(), n);

  // 64 runs, then ceil_log3(64) = 4 merge passes; each pass reads and
  // writes every page once (plus pool-boundary slack).
  const double pages = 256;
  const double passes = 1 /*run formation*/ + 4 /*merges*/;
  const double expected = 2 * pages * passes;
  EXPECT_LT(static_cast<double>(dev.counters().total()), expected * 1.25);
  EXPECT_GT(static_cast<double>(dev.counters().total()), expected * 0.75);
}

}  // namespace
}  // namespace topk
