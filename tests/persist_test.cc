// The file-backed persistence layer: FileStorage over a real file,
// the FileBlockDevice substitution rule (same I/O counts as the
// in-memory simulator for the same operation sequence), PageRef::Fresh
// accounting, and whole-structure checkpoint reopen — a built
// EmBPlusTree / EmRange1dPrioritized / EmKdTree comes back from its
// manifest without rebuilding, answers queries exactly, and costs a
// fraction of the build's I/O (the E26 cold-start claim).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dominance/point3.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/checkpoint.h"
#include "em/em_kdtree.h"
#include "em/em_range1d.h"
#include "em/file_block_device.h"
#include "em/storage.h"
#include "fault/crash_point.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using dominance::DominanceGeo;
using dominance::DominanceProblem;
using dominance::Point3;
using em::BlockDevice;
using em::BufferPool;
using em::EmBPlusTree;
using em::EmRange1dPrioritized;
using em::FileBlockDevice;
using em::FileStorage;
using em::IoCounters;
using em::IoResult;
using em::ManifestStore;
using em::MemStorage;
using em::PageRef;
using range1d::Point1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::string TempPath(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());  // a stale file would change reopen state
  return path;
}

TEST(FileStorage, WriteReadSyncTruncateAndReopen) {
  const std::string path = TempPath("topk_file_storage.bin");
  {
    FileStorage fs(path);
    EXPECT_EQ(fs.size(), 0u);
    const uint8_t a[] = {1, 2, 3, 4, 5};
    ASSERT_EQ(fs.Write(0, a, sizeof(a)), IoResult::kOk);
    // A write past the end zero-fills the gap, like ftruncate.
    const uint8_t b[] = {9, 8};
    ASSERT_EQ(fs.Write(10, b, sizeof(b)), IoResult::kOk);
    EXPECT_EQ(fs.size(), 12u);
    uint8_t got[12];
    fs.Read(0, sizeof(got), got);
    const uint8_t want[12] = {1, 2, 3, 4, 5, 0, 0, 0, 0, 0, 9, 8};
    EXPECT_EQ(std::memcmp(got, want, sizeof(want)), 0);
    ASSERT_EQ(fs.Sync(), IoResult::kOk);
    ASSERT_EQ(fs.Truncate(11), IoResult::kOk);
    EXPECT_EQ(fs.size(), 11u);
  }
  // Reopen: size and bytes persist across the process boundary.
  FileStorage fs(path);
  EXPECT_EQ(fs.size(), 11u);
  uint8_t got[11];
  fs.Read(0, sizeof(got), got);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[4], 5);
  EXPECT_EQ(got[10], 9);
  std::remove(path.c_str());
}

// --- the substitution rule -------------------------------------------

struct WorkloadResult {
  std::vector<std::vector<uint64_t>> ids;
  IoCounters build;
  IoCounters total;
};

// One fixed build + query workload, parameterized only by the device.
WorkloadResult RunWorkload(BlockDevice* dev) {
  WorkloadResult out;
  BufferPool pool(dev, 16);
  Rng rng(11);
  EmRange1dPrioritized pri(&pool, test::RandomPoints1D(4000, &rng));
  pool.FlushAll();
  out.build = dev->counters();
  for (int trial = 0; trial < 12; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    const double tau = trial % 3 == 0 ? kNegInf : 400.0;
    std::vector<Point1D> got;
    pri.QueryPrioritized({a, b}, tau, [&](const Point1D& p) {
      got.push_back(p);
      return true;
    });
    out.ids.push_back(test::SortedIdsOf(got));
  }
  out.total = dev->counters();
  return out;
}

// The tentpole contract: a BufferPool stacked on the file-backed device
// produces the SAME read/write counts as on the in-memory simulator,
// for a real workload, on both a MemStorage and an actual file — so the
// simulator's exact-I/O tests speak for the durable backend too.
TEST(FileBlockDevice, MatchesSimulatorIoCountsExactly) {
  BlockDevice sim(512);
  const WorkloadResult want = RunWorkload(&sim);
  ASSERT_GT(want.build.writes, 0u);
  ASSERT_GT(want.total.reads, 0u);

  MemStorage mem;
  FileBlockDevice over_mem(&mem, 512);
  const WorkloadResult got_mem = RunWorkload(&over_mem);
  EXPECT_EQ(got_mem.ids, want.ids);
  EXPECT_EQ(got_mem.build.writes, want.build.writes);
  EXPECT_EQ(got_mem.build.reads, want.build.reads);
  EXPECT_EQ(got_mem.total.writes, want.total.writes);
  EXPECT_EQ(got_mem.total.reads, want.total.reads);

  const std::string path = TempPath("topk_device_equiv.bin");
  FileStorage file(path);
  FileBlockDevice over_file(&file, 512);
  const WorkloadResult got_file = RunWorkload(&over_file);
  EXPECT_EQ(got_file.ids, want.ids);
  EXPECT_EQ(got_file.total.writes, want.total.writes);
  EXPECT_EQ(got_file.total.reads, want.total.reads);
  std::remove(path.c_str());
}

// --- PageRef::Fresh (ISSUE satellite) --------------------------------

// Fresh carries PinFresh's accounting contract through RAII: no read on
// pin (the frame starts zeroed), one write per page at write-back, and
// the unpin always runs.
TEST(PageRefFresh, ChargesNoReadAndOneWritePerPage) {
  BlockDevice dev(256);
  BufferPool pool(&dev, 4);
  const uint64_t id = dev.Allocate();
  {
    PageRef ref = PageRef::Fresh(&pool, id);
    for (size_t i = 0; i < 256; ++i) {
      ref.data()[i] = static_cast<uint8_t>(i * 3);
    }
  }
  EXPECT_EQ(dev.counters().reads, 0u);
  EXPECT_EQ(dev.counters().writes, 0u);  // still resident and dirty
  pool.FlushAll();
  EXPECT_EQ(dev.counters().writes, 1u);

  // A second pool sees the flushed bytes: exactly one read, content
  // intact.
  BufferPool pool2(&dev, 4);
  {
    PageRef ref(&pool2, id);
    EXPECT_EQ(ref.data()[30], static_cast<uint8_t>(90));
  }
  EXPECT_EQ(dev.counters().reads, 1u);
}

TEST(PageRefFresh, EvictionWritesBackWithoutEverReading) {
  BlockDevice dev(256);
  BufferPool pool(&dev, 4);
  for (int i = 0; i < 6; ++i) {
    const uint64_t id = dev.Allocate();
    PageRef ref = PageRef::Fresh(&pool, id);
    std::memset(ref.data(), i + 1, 256);
  }
  // 6 fresh pages through 4 frames: exactly 2 evictions, zero reads.
  EXPECT_EQ(dev.counters().writes, 2u);
  EXPECT_EQ(dev.counters().reads, 0u);
}

// --- whole-structure checkpoint reopen -------------------------------

std::vector<std::vector<uint64_t>> Range1dAnswers(
    const EmRange1dPrioritized& pri, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint64_t>> out;
  for (int trial = 0; trial < 10; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    std::vector<Point1D> got;
    pri.QueryPrioritized({a, b}, trial % 2 == 0 ? kNegInf : 500.0,
                         [&](const Point1D& p) {
                           got.push_back(p);
                           return true;
                         });
    out.push_back(test::SortedIdsOf(got));
  }
  return out;
}

TEST(Checkpoint, EmRange1dPrioritizedReopensWithoutRebuild) {
  MemStorage dev_storage;
  MemStorage manifest_storage;
  ManifestStore manifests(&manifest_storage);
  Rng rng(13);
  const std::vector<Point1D> data = test::RandomPoints1D(5000, &rng);

  uint64_t build_writes = 0;
  {
    FileBlockDevice device(&dev_storage, 512);
    BufferPool pool(&device, 16);
    EmRange1dPrioritized pri(&pool, data);
    pool.FlushAll();
    build_writes = device.counters().writes;
    ASSERT_TRUE(em::SaveStructure(&device, pri, &manifests, &dev_storage));
    const auto want = Range1dAnswers(pri, 77);

    // Reopen in a "new process": fresh device + pool over the same
    // durable bytes.
    FileBlockDevice device2(&dev_storage, 512);
    BufferPool pool2(&device2, 16);
    EmRange1dPrioritized reopened;
    ASSERT_TRUE(em::LoadStructure(&pool2, &manifests, &reopened));
    ASSERT_EQ(reopened.size(), data.size());
    const uint64_t reopen_reads = device2.counters().reads;
    EXPECT_EQ(device2.counters().writes, 0u);  // reopen writes nothing
    EXPECT_EQ(Range1dAnswers(reopened, 77), want);
    // Exact vs brute force, not just vs the original instance.
    Rng qrng(99);
    for (int trial = 0; trial < 6; ++trial) {
      double a = qrng.NextDouble(), b = qrng.NextDouble();
      if (a > b) std::swap(a, b);
      std::vector<Point1D> got;
      reopened.QueryPrioritized({a, b}, kNegInf, [&](const Point1D& p) {
        got.push_back(p);
        return true;
      });
      ASSERT_EQ(test::SortedIdsOf(got),
                test::SortedIdsOf(test::BrutePrioritized<Range1DProblem>(
                    data, {a, b}, kNegInf)));
    }
    // The cold-start economics: reopening reads the meta blob, not the
    // dataset.
    EXPECT_LT(reopen_reads, build_writes / 4);
    EXPECT_GT(build_writes, 100u);
  }
}

TEST(Checkpoint, EmKdTreeReopensAndAnswersMaxQueries) {
  using EmDominance = em::EmKdTree<DominanceProblem, DominanceGeo>;
  MemStorage dev_storage;
  MemStorage manifest_storage;
  ManifestStore manifests(&manifest_storage);
  Rng rng(17);
  std::vector<Point3> data(2000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = Point3{rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
                     rng.NextDouble() * 1000.0, i + 1};
  }

  FileBlockDevice device(&dev_storage, 4096);
  BufferPool pool(&device, 32);
  EmDominance tree(&pool, data);
  pool.FlushAll();
  ASSERT_TRUE(em::SaveStructure(&device, tree, &manifests, &dev_storage));

  FileBlockDevice device2(&dev_storage, 4096);
  BufferPool pool2(&device2, 32);
  EmDominance reopened;
  ASSERT_TRUE(em::LoadStructure(&pool2, &manifests, &reopened));
  ASSERT_EQ(reopened.size(), data.size());
  EXPECT_EQ(device2.counters().writes, 0u);
  Rng qrng(18);
  for (int trial = 0; trial < 25; ++trial) {
    const Point3 q{qrng.NextDouble(), qrng.NextDouble(), qrng.NextDouble(),
                   0, 0};
    const auto got = reopened.QueryMax(q);
    const auto want = test::BruteMax<DominanceProblem>(data, q);
    ASSERT_EQ(got.has_value(), want.has_value()) << "trial " << trial;
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id) << "trial " << trial;
    }
  }
}

// A save that dies mid-protocol (here: the manifest commit write is
// dropped) leaves the PREVIOUS checkpoint authoritative; a later retry
// supersedes it.
TEST(Checkpoint, FailedSaveLeavesPreviousCheckpointAuthoritative) {
  MemStorage dev_storage;
  MemStorage manifest_storage;
  ManifestStore manifests(&manifest_storage);
  Rng rng(19);
  const std::vector<Point1D> data1 = test::RandomPoints1D(600, &rng);
  const std::vector<Point1D> data2 = test::RandomPoints1D(900, &rng);

  FileBlockDevice device(&dev_storage, 512);
  BufferPool pool(&device, 16);
  EmBPlusTree t1(&pool, data1);
  pool.FlushAll();
  ASSERT_TRUE(em::SaveStructure(&device, t1, &manifests, &dev_storage));

  EmBPlusTree t2(&pool, data2);
  pool.FlushAll();
  // Crash at the manifest write: blob pages land, the commit does not.
  fault::CrashClock clock(/*crash_at=*/0);
  fault::CrashPointStorage dying(&manifest_storage, &clock);
  ManifestStore dying_manifests(&dying);
  EXPECT_FALSE(
      em::SaveStructure(&device, t2, &dying_manifests, &dev_storage));

  EmBPlusTree loaded;
  ASSERT_TRUE(em::LoadStructure(&pool, &manifests, &loaded));
  EXPECT_EQ(loaded.size(), data1.size());  // generation 1 still rules

  ASSERT_TRUE(em::SaveStructure(&device, t2, &manifests, &dev_storage));
  ASSERT_TRUE(em::LoadStructure(&pool, &manifests, &loaded));
  EXPECT_EQ(loaded.size(), data2.size());
}

// Dual-slot atomicity at the byte level: a commit whose slot write is
// torn mid-byte falls back to the previous generation; one whose write
// was fully flushed (sync pending) may surface as the new generation.
// Both are legal crash outcomes; neither loses both slots.
TEST(ManifestStore, TornCommitFallsBackFlushedCommitMaySurvive) {
  MemStorage storage;
  ManifestStore manifests(&storage);
  // Each generation's record differs through its TAIL bytes (the blob
  // refs), not just the generation field — a torn hybrid of new-head +
  // old-tail must actually be detectable, and identical tails would
  // make the hybrid a byte-perfect copy of the new record.
  auto record_for = [](uint64_t generation) {
    em::ManifestRecord rec;
    rec.page_size = 512;
    rec.generation = generation;
    rec.wal_seq = generation * 100;
    rec.payload.first_page = generation * 7;
    rec.payload.page_count = generation + 1;
    rec.payload.length = generation * 1000;
    rec.payload.crc = static_cast<uint32_t>(generation * 0x9E3779B9u);
    rec.meta.first_page = generation * 11 + 3;
    rec.meta.crc = static_cast<uint32_t>(~generation);
    return rec;
  };
  ASSERT_TRUE(manifests.Commit(record_for(1)));
  ASSERT_TRUE(manifests.Commit(record_for(2)));

  for (const size_t torn_bytes : {size_t{1}, size_t{17}, size_t{60}}) {
    MemStorage copy = storage;  // durable state with gens {1, 2}
    fault::CrashClock clock(/*crash_at=*/1);  // write lands, sync dropped
    fault::CrashPointStorage dying(&copy, &clock);
    ManifestStore dying_store(&dying);
    EXPECT_FALSE(dying_store.Commit(record_for(3)));
    copy.SimulateCrash(/*flushed_ops=*/0, torn_bytes);
    const auto recs = ManifestStore(&copy).LoadAll();
    ASSERT_FALSE(recs.empty());
    EXPECT_EQ(recs.front().generation, 2u) << "torn at " << torn_bytes;
  }

  // Fully flushed but un-synced: the in-flight commit survives whole.
  MemStorage copy = storage;
  fault::CrashClock clock(/*crash_at=*/1);
  fault::CrashPointStorage dying(&copy, &clock);
  ManifestStore dying_store(&dying);
  EXPECT_FALSE(dying_store.Commit(record_for(3)));
  copy.SimulateCrash(/*flushed_ops=*/1);
  const auto recs = ManifestStore(&copy).LoadAll();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs.front().generation, 3u);
}

// MemStorage's crash model itself: survivors are the synced image plus
// a chosen prefix of pending ops, plus an optional torn fragment of the
// next write.
TEST(MemStorage, SimulateCrashKeepsExactlyThePrefix) {
  MemStorage s;
  const uint8_t a[4] = {1, 1, 1, 1};
  const uint8_t b[4] = {2, 2, 2, 2};
  const uint8_t c[4] = {3, 3, 3, 3};
  ASSERT_EQ(s.Write(0, a, 4), IoResult::kOk);
  ASSERT_EQ(s.Sync(), IoResult::kOk);
  ASSERT_EQ(s.Write(4, b, 4), IoResult::kOk);
  ASSERT_EQ(s.Write(8, c, 4), IoResult::kOk);
  EXPECT_EQ(s.pending_ops(), 2u);

  s.SimulateCrash(/*flushed_ops=*/1, /*torn_bytes=*/2);
  ASSERT_EQ(s.size(), 10u);  // a + b + first 2 bytes of c
  uint8_t got[10];
  s.Read(0, 10, got);
  const uint8_t want[10] = {1, 1, 1, 1, 2, 2, 2, 2, 3, 3};
  EXPECT_EQ(std::memcmp(got, want, 10), 0);
  EXPECT_EQ(s.pending_ops(), 0u);  // post-crash state is all durable
}

}  // namespace
}  // namespace topk
