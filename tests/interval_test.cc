// Interval stabbing (Theorem 4): the prioritized segment-tree structure,
// the folklore slab stabbing-max, and both reductions end to end.

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "interval/interval.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"
#include "test_util.h"

namespace topk {
namespace {

using interval::Interval;
using interval::SegmentStabbing;
using interval::SlabStabMax;
using interval::StabProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Interval> RandomIntervals(size_t n, Rng* rng,
                                      double span = 0.1) {
  std::vector<Interval> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng->NextDouble();
    const double len = rng->NextDouble() * span;
    out[i] = Interval{a, a + len, rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

// Intervals with heavily shared endpoints (grid coordinates).
std::vector<Interval> GridIntervals(size_t n, Rng* rng) {
  std::vector<Interval> out(n);
  for (size_t i = 0; i < n; ++i) {
    double a = static_cast<double>(rng->Below(20));
    double b = static_cast<double>(rng->Below(20));
    if (a > b) std::swap(a, b);
    out[i] = Interval{a, b, static_cast<double>(rng->Below(50)), i + 1};
  }
  return out;
}

std::vector<Interval> Collect(const SegmentStabbing& s, double q,
                              double tau) {
  std::vector<Interval> out;
  s.QueryPrioritized(q, tau, [&out](const Interval& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

TEST(SegmentStabbing, EmptyInput) {
  SegmentStabbing s({});
  EXPECT_TRUE(Collect(s, 0.5, kNegInf).empty());
}

TEST(SegmentStabbing, PointIntervalAndEndpoints) {
  SegmentStabbing s({{1.0, 1.0, 5.0, 1}, {1.0, 2.0, 7.0, 2}});
  EXPECT_EQ(Collect(s, 1.0, kNegInf).size(), 2u);  // both contain 1.0
  EXPECT_EQ(Collect(s, 2.0, kNegInf).size(), 1u);  // closed right end
  EXPECT_EQ(Collect(s, 1.5, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(s, 0.99, kNegInf).empty());
  EXPECT_TRUE(Collect(s, 2.01, kNegInf).empty());
}

TEST(SegmentStabbing, EarlyTermination) {
  Rng rng(1);
  SegmentStabbing s(RandomIntervals(2000, &rng, /*span=*/1.0));
  size_t seen = 0;
  s.QueryPrioritized(0.5, kNegInf, [&seen](const Interval&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u);
}

TEST(SegmentStabbing, NoDuplicateEmissions) {
  Rng rng(2);
  std::vector<Interval> data = GridIntervals(500, &rng);
  SegmentStabbing s(data);
  for (double q : {0.0, 1.0, 5.0, 7.5, 19.0, 20.0}) {
    auto got = Collect(s, q, kNegInf);
    std::vector<uint64_t> ids = test::SortedIdsOf(got);
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

struct Param {
  size_t n;
  uint64_t seed;
  bool grid;
};

class StabSweep : public ::testing::TestWithParam<Param> {};

TEST_P(StabSweep, PrioritizedMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Interval> data =
      p.grid ? GridIntervals(p.n, &rng) : RandomIntervals(p.n, &rng);
  SegmentStabbing s(data);
  const double xmax = p.grid ? 20.0 : 1.1;
  for (int trial = 0; trial < 60; ++trial) {
    const double q = rng.NextDouble() * xmax;
    const double tau_pool[] = {kNegInf, 10.0, 300.0, 900.0};
    const double tau = tau_pool[trial % 4];
    auto got = Collect(s, q, tau);
    auto want = test::BrutePrioritized<StabProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "q=" << q << " tau=" << tau;
  }
}

TEST_P(StabSweep, MaxMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 100);
  std::vector<Interval> data =
      p.grid ? GridIntervals(p.n, &rng) : RandomIntervals(p.n, &rng);
  SlabStabMax sm(data);
  const double xmax = p.grid ? 20.0 : 1.1;
  for (int trial = 0; trial < 100; ++trial) {
    const double q = rng.NextDouble() * xmax;
    auto got = sm.QueryMax(q);
    auto want = test::BruteMax<StabProblem>(data, q);
    ASSERT_EQ(got.has_value(), want.has_value()) << "q=" << q;
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id) << "q=" << q;
    }
  }
}

TEST_P(StabSweep, MaxAtExactEndpoints) {
  const Param p = GetParam();
  Rng rng(p.seed + 200);
  std::vector<Interval> data =
      p.grid ? GridIntervals(p.n, &rng) : RandomIntervals(p.n, &rng);
  SlabStabMax sm(data);
  for (size_t i = 0; i < std::min<size_t>(data.size(), 40); ++i) {
    for (double q : {data[i].lo, data[i].hi}) {
      auto got = sm.QueryMax(q);
      auto want = test::BruteMax<StabProblem>(data, q);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StabSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{50, 3, false}, Param{500, 4, false},
                      Param{3000, 5, false}, Param{100, 6, true},
                      Param{1000, 7, true}));

// End-to-end: both reductions on interval stabbing (Theorem 4).
class StabTopKSweep : public ::testing::TestWithParam<Param> {};

TEST_P(StabTopKSweep, BothReductionsMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 300);
  std::vector<Interval> data =
      p.grid ? GridIntervals(p.n, &rng) : RandomIntervals(p.n, &rng, 0.3);
  CoreSetTopK<StabProblem, SegmentStabbing> thm1(data);
  SampledTopK<StabProblem, SegmentStabbing, SlabStabMax> thm2(data);
  const double xmax = p.grid ? 20.0 : 1.1;
  for (int trial = 0; trial < 15; ++trial) {
    const double q = rng.NextDouble() * xmax;
    for (size_t k : {size_t{1}, size_t{3}, size_t{20}, size_t{200}, p.n}) {
      auto want = test::BruteTopK<StabProblem>(data, q, k);
      auto got1 = thm1.Query(q, k);
      auto got2 = thm2.Query(q, k);
      ASSERT_EQ(test::IdsOf(got1), test::IdsOf(want))
          << "thm1 q=" << q << " k=" << k;
      ASSERT_EQ(test::IdsOf(got2), test::IdsOf(want))
          << "thm2 q=" << q << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StabTopKSweep,
    ::testing::Values(Param{10, 1, false}, Param{300, 2, false},
                      Param{2000, 3, false}, Param{800, 4, true},
                      Param{5000, 5, false}));

}  // namespace
}  // namespace topk
