// Theorem 1 reduction: exactness against brute force across sizes, k
// regimes (k <= f, f < k < n/2, k >= n/2), option ablations, and unlucky
// samples (fallback path).

#include "core/core_set_topk.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

// Under -DTOPK_AUDIT=ON the substrate is audit::CheckedPrioritized
// (contract verification on every prioritized query in the sweep).
using TopK = CoreSetTopK<Range1DProblem,
                         test::MaybeAudited<PrioritySearchTree,
                                            Range1DProblem>>;

TEST(CoreSetTopK, EmptyInput) {
  TopK topk({});
  EXPECT_TRUE(topk.Query({0, 1}, 5).empty());
}

TEST(CoreSetTopK, KZero) {
  Rng rng(1);
  TopK topk(test::RandomPoints1D(100, &rng));
  EXPECT_TRUE(topk.Query({0, 1}, 0).empty());
}

TEST(CoreSetTopK, EmptyPredicate) {
  Rng rng(2);
  TopK topk(test::RandomPoints1D(100, &rng));
  EXPECT_TRUE(topk.Query({2.0, 3.0}, 5).empty());
  EXPECT_TRUE(topk.Query({0.7, 0.2}, 5).empty());  // inverted
}

TEST(CoreSetTopK, KBeyondMatchCountReturnsAllMatches) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(200, &rng);
  TopK topk(data);
  const Range1D q{0.4, 0.6};
  auto got = topk.Query(q, 10'000);
  auto want = test::BruteTopK<Range1DProblem>(data, q, 10'000);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

TEST(CoreSetTopK, FClampedAboveCoreSetRank) {
  Rng rng(4);
  ReductionOptions opts;
  opts.constant_scale = 1.0;
  TopK topk(test::RandomPoints1D(5000, &rng), opts);
  EXPECT_GE(topk.f(), CoreSetRank(5000, Range1DProblem::kLambda, 1.0));
}

TEST(CoreSetTopK, StatsAreCharged) {
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(2000, &rng);
  TopK topk(data);
  QueryStats stats;
  topk.Query({0.0, 1.0}, 3, &stats);
  EXPECT_GT(stats.prioritized_queries, 0u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

struct Param {
  size_t n;
  uint64_t seed;
  double scale;
};

class CoreSetSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CoreSetSweep, MatchesBruteForceAcrossKRegimes) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = test::RandomPoints1D(p.n, &rng);
  ReductionOptions opts;
  opts.constant_scale = p.scale;
  opts.seed = p.seed * 977;
  TopK topk(data, opts);
  topk.AuditInvariants();

  std::vector<size_t> ks = {1, 2, 3, 10, 50};
  ks.push_back(topk.f());          // boundary k = f
  ks.push_back(topk.f() + 1);      // just above
  ks.push_back(2 * topk.f());      // large-k core-set path
  ks.push_back(p.n / 2);           // scan threshold
  ks.push_back(p.n);               // everything
  for (int trial = 0; trial < 12; ++trial) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    if (trial % 4 == 0) {  // include full-domain queries
      a = 0.0;
      b = 1.0;
    }
    const Range1D q{a, b};
    for (size_t k : ks) {
      if (k == 0) continue;
      auto got = topk.Query(q, k);
      auto want = test::BruteTopK<Range1DProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
          << "n=" << p.n << " k=" << k << " scale=" << p.scale
          << " q=[" << a << "," << b << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoreSetSweep,
    ::testing::Values(Param{1, 1, 1.0}, Param{2, 2, 1.0}, Param{10, 3, 1.0},
                      Param{100, 4, 1.0}, Param{1000, 5, 1.0},
                      Param{5000, 6, 1.0}, Param{20000, 7, 1.0},
                      // Aggressive constant ablation: smaller core-sets,
                      // more fallbacks, still exact.
                      Param{5000, 8, 0.05}, Param{20000, 9, 0.02},
                      Param{20000, 10, 0.1}));

// With tiny constants the structure leans on its verified fallback; the
// answers must stay exact and fallbacks must actually fire at least once
// across many queries (otherwise the test is vacuous).
TEST(CoreSetTopK, UnluckySamplesFallBackAndStayExact) {
  Rng rng(123);
  std::vector<Point1D> data = test::RandomPoints1D(30000, &rng);
  ReductionOptions opts;
  opts.constant_scale = 0.01;
  opts.seed = 99;
  TopK topk(data, opts);
  QueryStats stats;
  for (int trial = 0; trial < 60; ++trial) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    const size_t k = 1 + static_cast<size_t>(rng.Below(200));
    auto got = topk.Query({a, b}, k, &stats);
    auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, k);
    ASSERT_EQ(test::IdsOf(got), test::IdsOf(want));
  }
  // Not asserted as > 0 strictly by theory, but with scale 0.01 the
  // chain is essentially guaranteed to be defeated somewhere.
  EXPECT_GT(stats.fallbacks + stats.full_scans, 0u);
}

}  // namespace
}  // namespace topk
