// Wide differential sweep: many seeds x every 1D-range top-k
// implementation in the library against brute force and against each
// other. This is the library's "consistency court": every structure
// answers the same queries, all answers must be bit-identical (the
// (weight, id) order is a strict total order, so there is exactly one
// correct output).

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "interval/interval_kd.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"
#include "range1d/count_tree.h"
#include "range1d/direct_topk.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, AllRange1DImplementationsAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n = 500 + rng.Below(4000);
  std::vector<Point1D> data = (seed % 3 == 0)
                                  ? test::ClumpedPoints1D(n, &rng)
                                  : test::RandomPoints1D(n, &rng);

  ReductionOptions opts;
  opts.seed = seed * 1337;
  opts.constant_scale = (seed % 4 == 0) ? 0.05 : 1.0;  // stress fallbacks

  CoreSetTopK<Range1DProblem, range1d::PrioritySearchTree> thm1(data, opts);
  SampledTopK<Range1DProblem, range1d::PrioritySearchTree,
              range1d::RangeMax>
      thm2_static(data, opts);
  SampledTopK<Range1DProblem, range1d::DynamicPst, range1d::DynamicRangeMax>
      thm2_dynamic(data, opts);
  BinarySearchTopK<Range1DProblem, range1d::PrioritySearchTree> baseline(
      data);
  CountingTopK<Range1DProblem, range1d::PrioritySearchTree,
               range1d::CountTree>
      counting(data);
  range1d::HeapSelectTopK direct(data);
  ScanTopK<Range1DProblem> scan(data);

  const double xmax = (seed % 3 == 0) ? static_cast<double>(n) : 1.0;
  for (int trial = 0; trial < 8; ++trial) {
    double a = rng.NextDouble() * xmax, b = rng.NextDouble() * xmax;
    if (a > b) std::swap(a, b);
    const Range1D q{a, b};
    const size_t ks[] = {1, 1 + rng.Below(30), n / 3, n};
    for (size_t k : ks) {
      if (k == 0) continue;
      auto want = test::BruteTopK<Range1DProblem>(data, q, k);
      const auto want_ids = test::IdsOf(want);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), want_ids) << "thm1";
      ASSERT_EQ(test::IdsOf(thm2_static.Query(q, k)), want_ids)
          << "thm2_static";
      ASSERT_EQ(test::IdsOf(thm2_dynamic.Query(q, k)), want_ids)
          << "thm2_dynamic";
      ASSERT_EQ(test::IdsOf(baseline.Query(q, k)), want_ids) << "baseline";
      ASSERT_EQ(test::IdsOf(counting.Query(q, k)), want_ids) << "counting";
      ASSERT_EQ(test::IdsOf(direct.Query(q, k)), want_ids) << "direct";
      ASSERT_EQ(test::IdsOf(scan.Query(q, k)), want_ids) << "scan";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeedSweep,
                         ::testing::Range<uint64_t>(1, 25));

// The kd-tree interval substrate against the segment-tree one.
class StabSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StabSeedSweep, KdAndSegTreeSubstratesAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n = 300 + rng.Below(3000);
  std::vector<interval::Interval> data(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextDouble();
    data[i] = {a, a + rng.NextDouble() * 0.3, rng.NextDouble() * 1000.0,
               i + 1};
  }
  interval::IntervalKdTree kd(data);
  interval::SegmentStabbing seg(data);
  SampledTopK<interval::StabProblem, interval::IntervalKdTree,
              interval::IntervalKdTree>
      thm2_kd(data);
  SampledTopK<interval::StabProblem, interval::SegmentStabbing,
              interval::SlabStabMax>
      thm2_seg(data);

  for (int trial = 0; trial < 15; ++trial) {
    const double q = rng.NextDouble() * 1.3;
    // Max agreement.
    auto kd_max = kd.QueryMax(q);
    auto want_max = test::BruteMax<interval::StabProblem>(data, q);
    ASSERT_EQ(kd_max.has_value(), want_max.has_value());
    if (kd_max.has_value()) {
      ASSERT_EQ(kd_max->id, want_max->id);
    }
    // Prioritized agreement.
    std::vector<interval::Interval> got;
    kd.QueryPrioritized(q, 500.0, [&got](const interval::Interval& e) {
      got.push_back(e);
      return true;
    });
    auto want =
        test::BrutePrioritized<interval::StabProblem>(data, q, 500.0);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    // Top-k agreement between the two Theorem 2 instantiations.
    for (size_t k : {size_t{1}, size_t{25}}) {
      auto want_topk = test::BruteTopK<interval::StabProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm2_kd.Query(q, k)), test::IdsOf(want_topk));
      ASSERT_EQ(test::IdsOf(thm2_seg.Query(q, k)), test::IdsOf(want_topk));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, StabSeedSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace topk
