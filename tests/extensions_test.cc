// Extensions: the logarithmic method (static -> insert-only dynamic)
// and the direct heap-selection top-k.

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/logarithmic_method.h"
#include "core/sampled_topk.h"
#include "interval/interval.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using interval::Interval;
using interval::SegmentStabbing;
using interval::SlabStabMax;
using interval::StabProblem;
using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// ---- LogarithmicMethod ---------------------------------------------------

using DynStab = LogarithmicMethod<SegmentStabbing>;
using DynStabMax = LogarithmicMethod<SlabStabMax>;

Interval RandomInterval(Rng* rng, uint64_t id) {
  const double a = rng->NextDouble();
  return {a, a + rng->NextDouble() * 0.2, rng->NextDouble() * 1000.0, id};
}

TEST(LogarithmicMethod, BucketCountStaysLogarithmic) {
  Rng rng(1);
  DynStab s(std::vector<Interval>{});
  for (uint64_t i = 1; i <= 1000; ++i) s.Insert(RandomInterval(&rng, i));
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_LE(s.num_buckets(), 11u);  // <= log2(1000) + 1
}

TEST(LogarithmicMethod, PrioritizedMatchesBruteUnderInsertions) {
  Rng rng(2);
  DynStab s(std::vector<Interval>{});
  std::vector<Interval> shadow;
  for (uint64_t i = 1; i <= 1200; ++i) {
    const Interval e = RandomInterval(&rng, i);
    s.Insert(e);
    shadow.push_back(e);
    if (i % 100 == 0) {
      for (int trial = 0; trial < 10; ++trial) {
        const double q = rng.NextDouble() * 1.2;
        const double tau = trial % 2 ? kNegInf : 500.0;
        std::vector<Interval> got;
        s.QueryPrioritized(q, tau, [&got](const Interval& e2) {
          got.push_back(e2);
          return true;
        });
        auto want = test::BrutePrioritized<StabProblem>(shadow, q, tau);
        ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
      }
    }
  }
}

TEST(LogarithmicMethod, MaxMatchesBruteUnderInsertions) {
  Rng rng(3);
  DynStabMax s(std::vector<Interval>{});
  std::vector<Interval> shadow;
  for (uint64_t i = 1; i <= 800; ++i) {
    const Interval e = RandomInterval(&rng, i);
    s.Insert(e);
    shadow.push_back(e);
    if (i % 50 == 0) {
      const double q = rng.NextDouble() * 1.2;
      auto got = s.QueryMax(q);
      auto want = test::BruteMax<StabProblem>(shadow, q);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id);
      }
    }
  }
}

TEST(LogarithmicMethod, EarlyTerminationAcrossBuckets) {
  Rng rng(4);
  DynStab s(std::vector<Interval>{});
  for (uint64_t i = 1; i <= 500; ++i) {
    s.Insert({0.0, 1.0, static_cast<double>(i), i});  // all cover 0.5
  }
  size_t seen = 0;
  s.QueryPrioritized(0.5, kNegInf, [&seen](const Interval&) {
    ++seen;
    return seen < 7;
  });
  EXPECT_EQ(seen, 7u);
}

// Insert-only dynamic Theorem 2 over purely static interval structures.
TEST(LogarithmicMethod, InsertOnlySampledTopK) {
  Rng rng(5);
  SampledTopK<StabProblem, DynStab, DynStabMax> topk(
      std::vector<Interval>{});
  std::vector<Interval> shadow;
  for (uint64_t i = 1; i <= 2500; ++i) {
    const Interval e = RandomInterval(&rng, i);
    topk.Insert(e);
    shadow.push_back(e);
    if (i % 250 == 0) {
      const double q = rng.NextDouble() * 1.2;
      for (size_t k : {size_t{1}, size_t{15}, size_t{200}}) {
        auto got = topk.Query(q, k);
        auto want = test::BruteTopK<StabProblem>(shadow, q, k);
        ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
            << "i=" << i << " k=" << k;
      }
    }
  }
  // Global rebuilding must have engaged (2500 inserts from empty).
  EXPECT_GT(topk.num_sample_levels(), 0u);
}

// ---- HeapSelectTopK ------------------------------------------------------

TEST(HeapSelectTopK, EmptyAndEdgeCases) {
  HeapSelectTopK s({});
  EXPECT_TRUE(s.Query({0, 1}, 5).empty());
  Rng rng(6);
  HeapSelectTopK s2(test::RandomPoints1D(100, &rng));
  EXPECT_TRUE(s2.Query({0, 1}, 0).empty());
  EXPECT_TRUE(s2.Query({0.7, 0.2}, 5).empty());  // inverted
  EXPECT_EQ(s2.Query({0, 1}, 1000).size(), 100u);
}

struct Param {
  size_t n;
  uint64_t seed;
  bool clumped;
};

class HeapSelectSweep : public ::testing::TestWithParam<Param> {};

TEST_P(HeapSelectSweep, MatchesBruteForce) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = p.clumped
                                  ? test::ClumpedPoints1D(p.n, &rng)
                                  : test::RandomPoints1D(p.n, &rng);
  HeapSelectTopK s(data);
  const double xmax = p.clumped ? static_cast<double>(p.n) : 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    double a = rng.NextDouble() * xmax, b = rng.NextDouble() * xmax;
    if (a > b) std::swap(a, b);
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}, p.n}) {
      if (k == 0) continue;
      auto got = s.Query({a, b}, k);
      auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
          << "n=" << p.n << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeapSelectSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{100, 3, false}, Param{5000, 4, false},
                      Param{2000, 5, true}));

TEST(HeapSelectTopK, TouchesFewNodesForSmallK) {
  Rng rng(7);
  std::vector<Point1D> data = test::RandomPoints1D(1 << 16, &rng);
  HeapSelectTopK s(data);
  QueryStats stats;
  auto got = s.Query({0.2, 0.8}, 10, &stats);
  ASSERT_EQ(got.size(), 10u);
  // O(log n + k) pops; generous bound.
  EXPECT_LT(stats.nodes_visited, 200u);
}

}  // namespace
}  // namespace topk
