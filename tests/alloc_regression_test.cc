// Zero-allocation steady state: once a QueryEngine's per-worker scratch
// arenas and recycled result slots are warm, serving a batch performs
// ZERO heap allocations — for all four reductions, on both the plain
// and the cost-budgeted (BudgetedTopKInto) paths. Counted by replacing
// the global operator new/delete in this TU; any allocation anywhere in
// the process during the measured window fails the test, so the
// assertion covers the engine, the reductions, the substrates, and the
// accounting layer at once.
//
// Skipped under ASan/TSan: sanitizers interpose on the allocator and
// replacing operator new underneath them is not supported.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "federate/coordinator.h"
#include "federate/shard_map.h"
#include "range1d/count_tree.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/epoch.h"
#include "test_util.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TOPK_ALLOC_COUNTING_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TOPK_ALLOC_COUNTING_DISABLED 1
#endif
#endif

// GCC inlines through the replaced operator new below, sees malloc, and
// then flags the free() in the replaced operator delete as mismatched —
// a false positive: the replaced pair IS malloc/free, consistently.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Relaxed is enough: the measured window is bracketed by the
// QueryBatchInto barrier, which orders the workers' counts.
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

#ifndef TOPK_ALLOC_COUNTING_DISABLED
// Counting allocator: every allocation in the process ticks the
// counter. Aligned (over-aligned-type) variants are intentionally NOT
// replaced — the default ones are malloc-family too, so the pairs stay
// consistent — and nothing on the query path uses over-aligned types.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  std::abort();  // no exceptions in this codebase
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // !TOPK_ALLOC_COUNTING_DISABLED

namespace topk {
namespace {

using range1d::CountTree;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
using Counting = CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;

constexpr size_t kN = 1500;

std::vector<Point1D> Data() {
  Rng rng(1234);
  return test::RandomPoints1D(kN, &rng);
}

// Diverse single-worker batch: mixed k, mixed ranges, one cost-budgeted
// request (the BudgetedTopKInto staged path). One worker makes the
// request->worker assignment deterministic, so the warm-up batches warm
// exactly the pools the measured batches use.
template <typename Structure>
void ExpectZeroAllocSteadyState(const Structure& s) {
  using Engine = serve::QueryEngine<Structure>;
  typename Engine::Options options;
  options.num_threads = 1;
  Engine engine(&s, options);

  Rng rng(99);
  std::vector<typename Engine::Request> requests;
  for (size_t i = 0; i < 24; ++i) {
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    typename Engine::Request r;
    r.predicate = Range1D{lo, hi};
    r.k = 1 + i * 7 % 60;
    requests.push_back(r);
  }
  {
    // Staged-doubling path: a budget small enough to degrade sometimes,
    // deterministic because query-time work is deterministic.
    typename Engine::Request budgeted;
    budgeted.predicate = Range1D{0.1, 0.9};
    budgeted.k = 40;
    budgeted.cost_budget = 500;
    requests.push_back(budgeted);
  }

  std::vector<typename Engine::Result> results;
  for (int warm = 0; warm < 3; ++warm) {
    engine.QueryBatchInto(requests, &results);
  }

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    engine.QueryBatchInto(requests, &results);
  }
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "steady-state batches allocated";

  // The recycled-slot path must still produce exact answers.
  const std::vector<Point1D> data = Data();
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok()) continue;
    EXPECT_EQ(test::IdsOf(results[i].elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  data, requests[i].predicate, requests[i].k)))
        << "request " << i;
  }
}

// Multi-worker batch. Request-to-worker assignment is a race (the
// self-scheduling cursor), so a parked worker can sit out many fast
// batches and then serve its first request COLD mid-measurement;
// Warmup() primes every worker's arena on every request, making the
// steady state independent of the assignment. The slot buffers are
// deterministic regardless (slot i always answers request i).
template <typename Structure>
void ExpectZeroAllocSteadyStateThreaded(const Structure& s) {
  using Engine = serve::QueryEngine<Structure>;
  typename Engine::Options options;
  options.num_threads = 4;
  Engine engine(&s, options);

  Rng rng(321);
  std::vector<typename Engine::Request> requests;
  for (size_t i = 0; i < 32; ++i) {
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    typename Engine::Request r;
    r.predicate = Range1D{lo, hi};
    r.k = 1 + i * 5 % 50;
    requests.push_back(r);
  }

  engine.Warmup(requests);
  std::vector<typename Engine::Result> results;
  for (int warm = 0; warm < 2; ++warm) {
    engine.QueryBatchInto(requests, &results);
  }

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    engine.QueryBatchInto(requests, &results);
  }
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "steady-state threaded batches allocated";
}

// Intra-query-parallel steady state: the sharded flat kernel borrows
// every per-shard pool from the request worker's own Scratch, so once
// Warmup() has primed the arenas (pools never shrink) a warm engine
// with intra_query_workers > 1 also serves at exactly 0 allocs/request.
// Needs n >= parallel::kMinShardedN so the mirrors engage, and deep ks
// (k >= n/2 and k > |q(D)|) so the degenerate fetches actually shard;
// one request worker keeps assignment deterministic while the shard
// helpers run the measured window concurrently.
template <typename Structure>
void ExpectZeroAllocSteadyStateIntraParallel(const Structure& s,
                                             size_t n) {
  using Engine = serve::QueryEngine<Structure>;
  typename Engine::Options options;
  options.num_threads = 1;
  options.intra_query_workers = 4;
  options.unclamped_intra_query_workers = true;
  Engine engine(&s, options);
  ASSERT_EQ(engine.intra_query_workers(), 4u);

  Rng rng(808);
  std::vector<typename Engine::Request> requests;
  for (size_t i = 0; i < 24; ++i) {
    double lo = static_cast<double>(rng.Below(n / 4 + 1));
    double hi = static_cast<double>(rng.Below(n / 4 + 1));
    if (lo > hi) std::swap(lo, hi);
    typename Engine::Request r;
    r.predicate = Range1D{lo, hi};
    // Every third request deep enough to shard the terminal fetch; the
    // rest keep the small-k paths (and their serial pools) warm too.
    r.k = (i % 3 == 0) ? n / 2 + 1 + i : 1 + i * 7 % 60;
    requests.push_back(r);
  }

  engine.Warmup(requests);
  std::vector<typename Engine::Result> results;
  for (int warm = 0; warm < 3; ++warm) {
    engine.QueryBatchInto(requests, &results);
  }

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    engine.QueryBatchInto(requests, &results);
  }
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "intra-query-parallel steady state allocated";
}

#ifdef TOPK_ALLOC_COUNTING_DISABLED
#define TOPK_SKIP_UNDER_SANITIZERS() \
  GTEST_SKIP() << "allocation counting disabled under sanitizers"
#else
#define TOPK_SKIP_UNDER_SANITIZERS() (void)0
#endif

TEST(AllocRegression, CoreSetTopKZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  Thm1 s(Data());
  ExpectZeroAllocSteadyState(s);
  ExpectZeroAllocSteadyStateThreaded(s);
}

TEST(AllocRegression, SampledTopKZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  Thm2 s(Data());
  ExpectZeroAllocSteadyState(s);
  ExpectZeroAllocSteadyStateThreaded(s);
}

TEST(AllocRegression, BinarySearchTopKZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  Baseline s(Data());
  ExpectZeroAllocSteadyState(s);
  ExpectZeroAllocSteadyStateThreaded(s);
}

TEST(AllocRegression, CountingTopKZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  Counting s(Data());
  ExpectZeroAllocSteadyState(s);
  ExpectZeroAllocSteadyStateThreaded(s);
}

// Sharded-kernel data: big enough for every mirror to engage.
std::vector<Point1D> ShardableData() {
  Rng rng(4321);
  return test::ClumpedPoints1D(5000, &rng);
}

TEST(AllocRegression, IntraQueryParallelZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  {
    Thm1 s(ShardableData());
    ExpectZeroAllocSteadyStateIntraParallel(s, 5000);
  }
  {
    Thm2 s(ShardableData());
    ExpectZeroAllocSteadyStateIntraParallel(s, 5000);
  }
  {
    Baseline s(ShardableData());
    ExpectZeroAllocSteadyStateIntraParallel(s, 5000);
  }
  {
    Counting s(ShardableData());
    ExpectZeroAllocSteadyStateIntraParallel(s, 5000);
  }
}

// Epoch-pinned query path (PR's serve-during-mutation mode): acquiring
// the per-batch epoch pin is a slot store + pointer compare — no
// allocation — so the steady state stays at zero allocs/request, even
// straddling a Publish (writer-side allocation happens outside the
// measured window; the engine's arenas stay warm across the swap
// because the republished structure serves the same workload).
TEST(AllocRegression, EpochPinnedPathZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  serve::EpochManager<Thm2> epochs{Thm2(Data())};
  using Engine = serve::QueryEngine<Thm2>;
  Engine::Options options;
  options.num_threads = 1;
  Engine engine(&epochs, options);

  Rng rng(555);
  std::vector<Engine::Request> requests;
  for (size_t i = 0; i < 24; ++i) {
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    Engine::Request r;
    r.predicate = Range1D{lo, hi};
    r.k = 1 + i * 7 % 60;
    requests.push_back(r);
  }

  std::vector<Engine::Result> results;
  for (int warm = 0; warm < 3; ++warm) {
    engine.QueryBatchInto(requests, &results);
  }

  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    engine.QueryBatchInto(requests, &results);
  }
  uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "epoch-pinned steady state allocated";
  EXPECT_EQ(engine.last_batch_epoch(), 1u);

  // Rotate the epoch (unmeasured — the writer side allocates by
  // design), re-warm once, and the pinned path must be zero again.
  epochs.Publish(Thm2(Data()));
  engine.QueryBatchInto(requests, &results);
  before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    engine.QueryBatchInto(requests, &results);
  }
  allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "post-publish steady state allocated";
  EXPECT_EQ(engine.last_batch_epoch(), 2u);

  const std::vector<Point1D> data = Data();
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(test::IdsOf(results[i].elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  data, requests[i].predicate, requests[i].k)))
        << "request " << i;
  }
}

// Federated steady state: once the coordinator's per-shard request and
// result slots, merge pool, and the caller's out buffer are warm, a
// full all-shards-healthy fan-out (scatter + TA rounds + merge +
// k-select) allocates nothing — and so does the cache-hit path, which
// never even fans out. Distinct queries with distinct ks keep both
// paths honest.
TEST(AllocRegression, FederatedFanoutAndCacheHitZeroSteadyStateAllocs) {
  TOPK_SKIP_UNDER_SANITIZERS();
  const std::vector<Point1D> data = Data();
  auto parts = federate::PartitionById(data, 3);
  std::vector<Thm2> structures;
  structures.reserve(parts.size());
  for (auto& p : parts) structures.emplace_back(std::move(p));
  std::vector<std::unique_ptr<serve::QueryEngine<Thm2>>> engines;
  std::vector<federate::Coordinator<Thm2>::Shard> shards;
  for (Thm2& s : structures) {
    engines.push_back(std::make_unique<serve::QueryEngine<Thm2>>(
        &s, serve::QueryEngine<Thm2>::Options{}));
    shards.push_back({engines.back().get(), nullptr});
  }
  // Direct-mapped: size the cache so the 12 distinct keys land in
  // distinct slots (collisions evict, which would turn repeats into
  // deterministic miss+refill cycles and halve the hit tally).
  federate::Coordinator<Thm2> coord(std::move(shards),
                                    {.cache_entries = 1024});

  Rng rng(777);
  std::vector<Range1D> queries;
  std::vector<size_t> ks;
  for (size_t i = 0; i < 12; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    queries.push_back({lo, hi});
    ks.push_back(1 + i * 9 % 70);
  }
  std::vector<Point1D> out;

  // Cache-hit path: warm fills, then every repeat is a hit.
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(coord.QueryInto(queries[i], ks[i], &out),
              serve::ResultStatus::kOk);
  }
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    for (size_t i = 0; i < queries.size(); ++i) {
      coord.QueryInto(queries[i], ks[i], &out);
    }
  }
  uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "federated cache-hit path allocated";
  EXPECT_GE(coord.stats().cache_hits, 5 * queries.size());

  // Full fan-out path: cache off, warm one sweep, then measure.
  std::vector<federate::Coordinator<Thm2>::Shard> shards2;
  for (auto& e : engines) shards2.push_back({e.get(), nullptr});
  federate::Coordinator<Thm2> nocache(std::move(shards2), {});
  for (int warm = 0; warm < 3; ++warm) {
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(nocache.QueryInto(queries[i], ks[i], &out),
                serve::ResultStatus::kOk);
    }
  }
  before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 5; ++it) {
    for (size_t i = 0; i < queries.size(); ++i) {
      nocache.QueryInto(queries[i], ks[i], &out);
    }
  }
  allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "federated fan-out path allocated";
  EXPECT_EQ(nocache.stats().cache_hits, 0u);

  // Both paths exact against brute force.
  for (size_t i = 0; i < queries.size(); ++i) {
    coord.QueryInto(queries[i], ks[i], &out);
    EXPECT_EQ(test::IdsOf(out),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  data, queries[i], ks[i])))
        << "query " << i;
  }
}

// The compatibility Query() overloads own a throwaway Scratch — they
// may allocate, but must return bit-identical answers to the scratch
// path (the engine results are checked against brute force above; this
// pins the two entry points to each other directly).
TEST(AllocRegression, CompatQueryMatchesScratchPath) {
  const std::vector<Point1D> data = Data();
  Thm1 s(data);
  Scratch scratch;
  std::vector<Point1D> out;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    double lo = rng.NextDouble();
    double hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Range1D q{lo, hi};
    const size_t k = 1 + static_cast<size_t>(i) % 40;
    s.QueryInto(q, k, &scratch, &out);
    EXPECT_EQ(test::IdsOf(out), test::IdsOf(s.Query(q, k)));
  }
  EXPECT_EQ(scratch.outstanding(), 0u);
}

}  // namespace
}  // namespace topk
