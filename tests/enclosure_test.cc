// 2D point enclosure (Theorem 5): the two-level prioritized and max
// structures (including the hybrid small-node arena) and both reductions.

#include "enclosure/enclosure_structures.h"

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "enclosure/rect.h"
#include "test_util.h"

namespace topk {
namespace {

using enclosure::EnclosureMax;
using enclosure::EnclosurePrioritized;
using enclosure::EnclosureProblem;
using enclosure::Point2;
using enclosure::Rect;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Rect> RandomRects(size_t n, Rng* rng, double span = 0.2) {
  std::vector<Rect> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble(), y = rng->NextDouble();
    out[i] = Rect{x, x + rng->NextDouble() * span,
                  y, y + rng->NextDouble() * span,
                  rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

// Grid-aligned rectangles: many shared endpoints, duplicate weights.
std::vector<Rect> GridRects(size_t n, Rng* rng) {
  std::vector<Rect> out(n);
  for (size_t i = 0; i < n; ++i) {
    double x1 = static_cast<double>(rng->Below(10));
    double x2 = static_cast<double>(rng->Below(10));
    double y1 = static_cast<double>(rng->Below(10));
    double y2 = static_cast<double>(rng->Below(10));
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    out[i] = Rect{x1, x2, y1, y2, static_cast<double>(rng->Below(40)), i + 1};
  }
  return out;
}

std::vector<Rect> Collect(const EnclosurePrioritized& s, const Point2& q,
                          double tau) {
  std::vector<Rect> out;
  s.QueryPrioritized(q, tau, [&out](const Rect& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

TEST(EnclosurePrioritized, EmptyInput) {
  EnclosurePrioritized s({});
  EXPECT_TRUE(Collect(s, {0.5, 0.5}, kNegInf).empty());
}

TEST(EnclosurePrioritized, SingleRectCorners) {
  EnclosurePrioritized s({{1, 2, 3, 4, 10.0, 1}});
  EXPECT_EQ(Collect(s, {1, 3}, kNegInf).size(), 1u);
  EXPECT_EQ(Collect(s, {2, 4}, kNegInf).size(), 1u);
  EXPECT_EQ(Collect(s, {1.5, 3.5}, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(s, {0.99, 3.5}, kNegInf).empty());
  EXPECT_TRUE(Collect(s, {1.5, 4.01}, kNegInf).empty());
}

TEST(EnclosurePrioritized, EarlyTermination) {
  Rng rng(1);
  EnclosurePrioritized s(RandomRects(2000, &rng, 1.0));
  size_t seen = 0;
  s.QueryPrioritized({0.5, 0.5}, kNegInf, [&seen](const Rect&) {
    ++seen;
    return seen < 6;
  });
  EXPECT_EQ(seen, 6u);
}

TEST(EnclosureMax, EmptyAndMisses) {
  EnclosureMax m({});
  EXPECT_FALSE(m.QueryMax({0, 0}).has_value());
  EnclosureMax m2({{0, 1, 0, 1, 5.0, 1}});
  EXPECT_FALSE(m2.QueryMax({2, 0.5}).has_value());
  EXPECT_TRUE(m2.QueryMax({1, 1}).has_value());
}

struct Param {
  size_t n;
  uint64_t seed;
  bool grid;
};

class EnclosureSweep : public ::testing::TestWithParam<Param> {};

TEST_P(EnclosureSweep, PrioritizedMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Rect> data =
      p.grid ? GridRects(p.n, &rng) : RandomRects(p.n, &rng);
  EnclosurePrioritized s(data);
  const double m = p.grid ? 10.0 : 1.2;
  for (int trial = 0; trial < 40; ++trial) {
    const Point2 q{rng.NextDouble() * m, rng.NextDouble() * m};
    const double tau_pool[] = {kNegInf, 5.0, 300.0, 900.0};
    const double tau = p.grid ? (trial % 2 ? kNegInf : 20.0)
                              : tau_pool[trial % 4];
    auto got = Collect(s, q, tau);
    auto want = test::BrutePrioritized<EnclosureProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "q=(" << q.x << "," << q.y << ") tau=" << tau;
  }
}

TEST_P(EnclosureSweep, MaxMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 50);
  std::vector<Rect> data =
      p.grid ? GridRects(p.n, &rng) : RandomRects(p.n, &rng);
  EnclosureMax s(data);
  const double m = p.grid ? 10.0 : 1.2;
  for (int trial = 0; trial < 60; ++trial) {
    const Point2 q{rng.NextDouble() * m, rng.NextDouble() * m};
    auto got = s.QueryMax(q);
    auto want = test::BruteMax<EnclosureProblem>(data, q);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id);
    }
  }
  // Exact-corner probes.
  for (size_t i = 0; i < std::min<size_t>(data.size(), 20); ++i) {
    const Point2 corners[] = {{data[i].x1, data[i].y1},
                              {data[i].x2, data[i].y2},
                              {data[i].x1, data[i].y2}};
    for (const Point2& q : corners) {
      auto got = s.QueryMax(q);
      auto want = test::BruteMax<EnclosureProblem>(data, q);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnclosureSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{60, 3, false}, Param{400, 4, false},
                      Param{2500, 5, false}, Param{300, 6, true},
                      Param{1500, 7, true}));

// Theorem 5 end to end: the dating-site query under both reductions.
class EnclosureTopKSweep : public ::testing::TestWithParam<Param> {};

TEST_P(EnclosureTopKSweep, BothReductionsMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 90);
  std::vector<Rect> data =
      p.grid ? GridRects(p.n, &rng) : RandomRects(p.n, &rng, 0.5);
  CoreSetTopK<EnclosureProblem, EnclosurePrioritized> thm1(data);
  SampledTopK<EnclosureProblem, EnclosurePrioritized, EnclosureMax> thm2(
      data);
  const double m = p.grid ? 10.0 : 1.2;
  for (int trial = 0; trial < 10; ++trial) {
    const Point2 q{rng.NextDouble() * m, rng.NextDouble() * m};
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}, p.n}) {
      auto want = test::BruteTopK<EnclosureProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want))
          << "thm1 k=" << k;
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want))
          << "thm2 k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnclosureTopKSweep,
    ::testing::Values(Param{50, 1, false}, Param{500, 2, false},
                      Param{3000, 3, false}, Param{1000, 4, true}));

}  // namespace
}  // namespace topk
