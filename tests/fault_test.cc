// The fault-injection subsystem: failpoint determinism, the injector's
// site registry, the faulty / retrying block-device decorators and
// their accounting identities, and the buffer pool's poisoned-frame
// graceful degradation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "fault/failpoint.h"
#include "fault/faulty_block_device.h"
#include "fault/retrying_block_device.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::IoResult;
using fault::FailPoint;
using fault::FailPointConfig;
using fault::FaultyBlockDevice;
using fault::Injector;
using fault::RetryingBlockDevice;

// --- FailPoint ------------------------------------------------------------

TEST(FailPoint, EveryNthFiresOnExactSchedule) {
  FailPoint p({.every_nth = 3}, /*seed=*/0);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(p.Trigger());
  const std::vector<bool> want = {false, false, true, false, false,
                                  true,  false, false, true,  false};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(p.calls(), 10u);
  EXPECT_EQ(p.triggers(), 3u);
}

TEST(FailPoint, EveryCallFiresAlways) {
  FailPoint p({.every_nth = 1}, 0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(p.Trigger());
  EXPECT_EQ(p.triggers(), 5u);
}

TEST(FailPoint, UnconfiguredNeverFires) {
  FailPoint p({}, 7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.Trigger());
  EXPECT_EQ(p.calls(), 100u);
  EXPECT_EQ(p.triggers(), 0u);
}

TEST(FailPoint, ProbabilityIsSeedDeterministic) {
  const FailPointConfig cfg{.probability = 0.3};
  FailPoint a(cfg, 42), b(cfg, 42), other(cfg, 43);
  std::vector<bool> sa, sb, so;
  for (int i = 0; i < 500; ++i) {
    sa.push_back(a.Trigger());
    sb.push_back(b.Trigger());
    so.push_back(other.Trigger());
  }
  EXPECT_EQ(sa, sb);          // same seed => same schedule, replayable
  EXPECT_NE(sa, so);          // different seed => different schedule
  EXPECT_GT(a.triggers(), 0u);
  EXPECT_LT(a.triggers(), 500u);  // p = 0.3 is neither never nor always
}

// --- Injector -------------------------------------------------------------

TEST(Injector, UnarmedSitesNeverFireAndCountNothing) {
  Injector inj(1);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(inj.Trigger("nope"));
  EXPECT_EQ(inj.calls("nope"), 0u);
  EXPECT_EQ(inj.Find("nope"), nullptr);
}

TEST(Injector, SiteScheduleIsIndependentOfArmOrder) {
  const FailPointConfig cfg{.probability = 0.5};
  Injector ab(9), ba(9);
  ab.Arm("site.a", cfg);
  ab.Arm("site.b", cfg);
  ba.Arm("site.b", cfg);
  ba.Arm("site.a", cfg);
  std::vector<bool> a1, a2, b1, b2;
  for (int i = 0; i < 200; ++i) {
    a1.push_back(ab.Trigger("site.a"));
    b1.push_back(ab.Trigger("site.b"));
    a2.push_back(ba.Trigger("site.a"));
    b2.push_back(ba.Trigger("site.b"));
  }
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(a1, b1);  // distinct sites get distinct streams
}

TEST(Injector, DisarmStopsFiringAndRearmRestartsTheSchedule) {
  Injector inj(3);
  inj.Arm("s", {.every_nth = 2});
  EXPECT_FALSE(inj.Trigger("s"));
  EXPECT_TRUE(inj.Trigger("s"));
  inj.Disarm("s");
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(inj.Trigger("s"));
  // Re-arming resets the call counter: the schedule starts over.
  inj.Arm("s", {.every_nth = 2});
  EXPECT_FALSE(inj.Trigger("s"));
  EXPECT_TRUE(inj.Trigger("s"));
  EXPECT_EQ(inj.triggers("s"), 1u);
  EXPECT_EQ(inj.calls("s"), 2u);
}

// --- FaultyBlockDevice ----------------------------------------------------

TEST(FaultyBlockDevice, FailedTransfersAreNeverCounted) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  Injector inj(1);
  FaultyBlockDevice faulty(&base, &inj);
  std::vector<uint8_t> buf(64, 3);
  ASSERT_EQ(faulty.TryWrite(p, buf.data()), IoResult::kOk);
  EXPECT_EQ(base.counters().writes, 1u);

  inj.Arm(fault::kReadFaultSite, {.every_nth = 1});
  std::vector<uint8_t> out(64, 0);
  EXPECT_EQ(faulty.TryRead(p, out.data()), IoResult::kTransientFailure);
  EXPECT_EQ(out[0], 0);                    // transfer did not happen
  EXPECT_EQ(base.counters().reads, 0u);    // ... and was not charged
  EXPECT_EQ(faulty.read_faults(), 1u);
  EXPECT_EQ(inj.triggers(fault::kReadFaultSite), 1u);

  inj.DisarmAll();
  ASSERT_EQ(faulty.TryRead(p, out.data()), IoResult::kOk);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(base.counters().reads, 1u);
}

TEST(FaultyBlockDevice, WriteFaultsAndAlternatingSchedule) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  Injector inj(1);
  FaultyBlockDevice faulty(&base, &inj);
  inj.Arm(fault::kWriteFaultSite, {.every_nth = 2});
  std::vector<uint8_t> buf(64, 9);
  ASSERT_EQ(faulty.TryWrite(p, buf.data()), IoResult::kOk);
  EXPECT_EQ(faulty.TryWrite(p, buf.data()), IoResult::kTransientFailure);
  ASSERT_EQ(faulty.TryWrite(p, buf.data()), IoResult::kOk);
  EXPECT_EQ(faulty.write_faults(), 1u);
  EXPECT_EQ(base.counters().writes, 2u);
}

TEST(FaultyBlockDevice, LatencySpikesAreAccountedNotSlept) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  std::vector<uint8_t> buf(64, 0);
  ASSERT_EQ(base.TryWrite(p, buf.data()), IoResult::kOk);
  Injector inj(5);
  FaultyBlockDevice faulty(&base, &inj, {.spike_ns = 250});
  inj.Arm(fault::kLatencySite, {.every_nth = 2});
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(faulty.TryRead(p, buf.data()), IoResult::kOk);
  }
  EXPECT_EQ(faulty.latency_spikes(), 3u);
  EXPECT_EQ(faulty.simulated_latency_ns(), 750u);
}

// --- RetryingBlockDevice --------------------------------------------------

TEST(RetryingBlockDevice, AbsorbedFaultsLeaveIoCountsIdentical) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  std::vector<uint8_t> buf(64, 11);
  ASSERT_EQ(base.TryWrite(p, buf.data()), IoResult::kOk);

  Injector inj(2);
  FaultyBlockDevice faulty(&base, &inj);
  RetryingBlockDevice retry(&faulty, {.max_attempts = 3});
  // Every 2nd read attempt faults; with 3 attempts every fault is
  // absorbed, so the caller sees only successes.
  inj.Arm(fault::kReadFaultSite, {.every_nth = 2});
  base.ResetCounters();
  std::vector<uint8_t> out(64, 0);
  for (int i = 0; i < 8; ++i) {
    out[0] = 0;
    ASSERT_EQ(retry.TryRead(p, out.data()), IoResult::kOk);
    EXPECT_EQ(out[0], 11);
  }
  // Identical to the fault-free run: one successful read per call.
  EXPECT_EQ(base.counters().reads, 8u);
  EXPECT_EQ(base.counters().giveups, 0u);
  // The accounting identity: every injected fault became a retry.
  EXPECT_EQ(base.counters().retries, faulty.read_faults());
  EXPECT_GT(faulty.read_faults(), 0u);
  EXPECT_GT(retry.simulated_backoff_ns(), 0u);
}

TEST(RetryingBlockDevice, ExhaustedRetriesSurfaceAsGiveup) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  Injector inj(2);
  FaultyBlockDevice faulty(&base, &inj);
  RetryingBlockDevice retry(&faulty, {.max_attempts = 4});
  inj.Arm(fault::kReadFaultSite, {.every_nth = 1});  // unrecoverable
  std::vector<uint8_t> out(64);
  EXPECT_EQ(retry.TryRead(p, out.data()), IoResult::kTransientFailure);
  EXPECT_EQ(base.counters().reads, 0u);
  EXPECT_EQ(base.counters().retries, 3u);  // attempts 1..3 re-tried
  EXPECT_EQ(base.counters().giveups, 1u);  // attempt 4 gave up
  EXPECT_EQ(faulty.read_faults(),
            base.counters().retries + base.counters().giveups);
}

TEST(RetryingBlockDevice, BackoffGrowsGeometrically) {
  BlockDevice base(64);
  const uint64_t p = base.Allocate();
  Injector inj(2);
  FaultyBlockDevice faulty(&base, &inj);
  RetryingBlockDevice retry(
      &faulty,
      {.max_attempts = 4, .backoff_base_ns = 100, .backoff_multiplier = 2.0});
  inj.Arm(fault::kReadFaultSite, {.every_nth = 1});
  std::vector<uint8_t> out(64);
  EXPECT_EQ(retry.TryRead(p, out.data()), IoResult::kTransientFailure);
  // Three waits between four attempts: 100 + 200 + 400.
  EXPECT_EQ(retry.simulated_backoff_ns(), 700u);
}

// --- BufferPool graceful degradation --------------------------------------

struct FaultyPoolFixture {
  BlockDevice base{128};
  Injector inj{17};
  FaultyBlockDevice faulty{&base, &inj};
  RetryingBlockDevice retry{&faulty, {.max_attempts = 2}};
  BufferPool pool{&retry, 4};

  uint64_t WritePage(uint8_t fill) {
    const uint64_t p = base.Allocate();
    std::vector<uint8_t> buf(128, fill);
    TOPK_CHECK(base.TryWrite(p, buf.data()) == em::IoResult::kOk);
    return p;
  }
};

TEST(BufferPoolFaults, GiveupPoisonsFrameInsteadOfAborting) {
  FaultyPoolFixture fx;
  const uint64_t p = fx.WritePage(55);
  fx.inj.Arm(fault::kReadFaultSite, {.every_nth = 1});  // every read dies

  uint8_t* data = fx.pool.Pin(p);  // does NOT abort
  EXPECT_EQ(data[0], 0);           // zero-filled, well-formed bytes
  EXPECT_TRUE(fx.pool.io_failed());
  EXPECT_EQ(fx.pool.io_failures(), 1u);
  fx.pool.Unpin(p);  // last pin drops the poisoned frame

  // The poisoned frame was never cached: after the fault clears, the
  // next pin re-reads the device and sees the real bytes.
  fx.inj.DisarmAll();
  EXPECT_TRUE(fx.pool.ConsumeIoFailure());
  EXPECT_FALSE(fx.pool.ConsumeIoFailure());  // consumed exactly once
  data = fx.pool.Pin(p);
  EXPECT_EQ(data[0], 55);
  fx.pool.Unpin(p);
  EXPECT_FALSE(fx.pool.io_failed());
}

TEST(BufferPoolFaults, AbsorbedRetriesAreInvisibleToThePool) {
  FaultyPoolFixture fx;
  const uint64_t p = fx.WritePage(77);
  // One fault then success: max_attempts = 2 absorbs it.
  fx.inj.Arm(fault::kReadFaultSite, {.every_nth = 2});
  // Schedule: call 1 ok ... make the first attempt the faulting one by
  // burning call 1 on a scratch page.
  const uint64_t scratch = fx.WritePage(1);
  std::vector<uint8_t> buf(128);
  ASSERT_EQ(fx.retry.TryRead(scratch, buf.data()), IoResult::kOk);

  uint8_t* data = fx.pool.Pin(p);  // attempt faults (call 2), retry ok
  EXPECT_EQ(data[0], 77);
  EXPECT_FALSE(fx.pool.io_failed());
  EXPECT_EQ(fx.base.counters().retries, 1u);
  EXPECT_EQ(fx.base.counters().giveups, 0u);
  fx.pool.Unpin(p);
}

using BufferPoolFaultDeathTest = ::testing::Test;

TEST(BufferPoolFaultDeathTest, MarkDirtyPinOnUnreadablePageAborts) {
  // A read-for-write pin cannot substitute zeroes for the real page
  // without silent data loss — it stays fatal by design.
  FaultyPoolFixture fx;
  const uint64_t p = fx.WritePage(1);
  fx.inj.Arm(fault::kReadFaultSite, {.every_nth = 1});
  EXPECT_DEATH(fx.pool.Pin(p, /*mark_dirty=*/true), "TOPK_CHECK");
}

}  // namespace
}  // namespace topk
