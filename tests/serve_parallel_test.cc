// Intra-query parallelism: the sharded flat-scan kernel and its wiring
// through all four reductions and the serving engine.
//
// The contract under test (DESIGN.md "intra-query parallelism
// contract"): threading a parallel::Context through QueryInto must be
// invisible — bit-identical results to the serial path at every shard
// count, including under heavy duplicate weights where only the strict
// (weight, id) order makes the per-shard merge deterministic. The
// sweeps run tie-heavy inputs (ClumpedPoints1D and an even heavier
// variant) through serial AND sharded paths of Theorem 1, Theorem 2,
// the binary-search baseline, and the counting reduction, asserting
// exact test::IdsOf equality against brute force. Under -DTOPK_AUDIT=ON
// the prioritized substrate is contract-checked per emission and the
// kernel recounts every sharded scan serially, so these sweeps double
// as the audit-tree coverage for the per-shard emission contract.
//
// Runs under TSan via the tsan preset's `-R serve` sweep — WorkerPool's
// generation handshake and the shard-private pool slots are the
// concurrency under test.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/kselect.h"
#include "common/random.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "parallel/worker_pool.h"
#include "range1d/count_tree.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Pri = test::MaybeAudited<PrioritySearchTree, Range1DProblem>;
using Thm1 = CoreSetTopK<Range1DProblem, Pri>;
using Thm2 = SampledTopK<Range1DProblem, Pri,
                         test::MaybeAuditedMax<RangeMax, Range1DProblem>>;
using Baseline = BinarySearchTopK<Range1DProblem, Pri>;
using Counting = CountingTopK<Range1DProblem, Pri, CountTree>;

// Even heavier ties than ClumpedPoints1D: a handful of distinct
// weights across thousands of elements, so every per-shard top-k pool
// is wall-to-wall duplicates and only the (weight, id) tie-break keeps
// the merge deterministic.
std::vector<Point1D> SaturatedTies(size_t n, Rng* rng) {
  std::vector<Point1D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].x = static_cast<double>(rng->Below(n / 4 + 1));
    pts[i].weight = static_cast<double>(rng->Below(5));
    pts[i].id = i + 1;
  }
  return pts;
}

// Mirrors serve::QueryEngine's dispatch: the reductions take the
// Context after the tracer, except CountingTopK whose QueryInto has no
// tracer parameter.
template <typename S>
void QueryIntoPar(const S& s, const Range1D& q, size_t k,
                  Scratch* scratch, std::vector<Point1D>* out,
                  QueryStats* stats, parallel::Context* par) {
  if constexpr (requires {
                  s.QueryInto(q, k, scratch, out, stats, nullptr, par);
                }) {
    s.QueryInto(q, k, scratch, out, stats, /*tracer=*/nullptr, par);
  } else {
    s.QueryInto(q, k, scratch, out, stats, par);
  }
}

// Sweeps every k regime of `s` over tie-heavy queries, serial and at
// several shard counts, demanding exact equality with brute force (and
// hence with the serial path) every time.
template <typename S>
void ExpectParallelMatchesSerial(const S& s,
                                 const std::vector<Point1D>& data,
                                 uint64_t seed) {
  const size_t n = data.size();
  Rng rng(seed);
  parallel::Context two(2);
  parallel::Context five(5);
  std::vector<parallel::Context*> contexts = {nullptr, &two, &five};
  Scratch scratch;
  std::vector<Point1D> got;
  const size_t ks[] = {1, 3, 16, 100, n / 3, n / 2 + 1, n + 7};
  for (int trial = 0; trial < 8; ++trial) {
    double lo = static_cast<double>(rng.Below(n / 4 + 1));
    double hi = static_cast<double>(rng.Below(n / 4 + 1));
    if (lo > hi) std::swap(lo, hi);
    const Range1D q{lo, hi};
    for (size_t k : ks) {
      const std::vector<Point1D> want =
          test::BruteTopK<Range1DProblem>(data, q, k);
      for (parallel::Context* par : contexts) {
        QueryStats stats;
        QueryIntoPar(s, q, k, &scratch, &got, &stats, par);
        ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
            << "k=" << k << " shards="
            << (par == nullptr ? 1 : par->shards()) << " q=[" << lo
            << "," << hi << "]";
      }
    }
  }
}

// --- WorkerPool ----------------------------------------------------------

TEST(WorkerPool, RunsEveryShardCallerIsShardZero) {
  parallel::WorkerPool pool(4);
  EXPECT_EQ(pool.shards(), 4u);
  std::vector<int> hits(4, 0);
  // Per-shard slots are full ints, not vector<bool> bits: shards write
  // disjoint memory locations, which is the kernel's own discipline.
  std::vector<int> on_caller(4, 0);
  const std::thread::id caller = std::this_thread::get_id();
  // Several generations through the same parked helpers.
  for (int round = 0; round < 50; ++round) {
    pool.RunShards([&](size_t s) {
      ++hits[s];
      on_caller[s] = std::this_thread::get_id() == caller ? 1 : 0;
    });
  }
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(hits[s], 50) << s;
  EXPECT_EQ(on_caller[0], 1);
  for (size_t s = 1; s < 4; ++s) EXPECT_EQ(on_caller[s], 0) << s;
}

TEST(WorkerPool, SingleShardRunsInline) {
  parallel::WorkerPool pool(1);
  int hits = 0;
  pool.RunShards([&](size_t s) {
    EXPECT_EQ(s, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

// --- FlatScanTopKInto ----------------------------------------------------

TEST(FlatScan, ExactCountAndTopKAtEveryShardCount) {
  Rng rng(101);
  const size_t n = 6000;
  const std::vector<Point1D> data = test::ClumpedPoints1D(n, &rng);
  const parallel::FlatMirror<Point1D> mirror(data);
  ASSERT_EQ(mirror.size(), n);
  Scratch scratch;
  parallel::Context three(3);
  parallel::Context eight(8);
  std::vector<Point1D> got;
  for (int trial = 0; trial < 12; ++trial) {
    double lo = static_cast<double>(rng.Below(n / 4 + 1));
    double hi = static_cast<double>(rng.Below(n / 4 + 1));
    if (lo > hi) std::swap(lo, hi);
    const Range1D q{lo, hi};
    // Mix unthresholded scans with tau cuts landing inside the
    // duplicate-weight plateaus.
    const double tau =
        trial % 3 == 0
            ? -std::numeric_limits<double>::infinity()
            : static_cast<double>(rng.Below(n / 8 + 1));
    const std::vector<Point1D> matches =
        test::BrutePrioritized<Range1DProblem>(data, q, tau);
    for (size_t k : {size_t{0}, size_t{1}, size_t{17}, size_t{500}}) {
      std::vector<Point1D> want = matches;
      SelectTopK(&want, k);
      for (parallel::Context* par :
           {static_cast<parallel::Context*>(nullptr), &three, &eight}) {
        const size_t matched = parallel::FlatScanTopKInto<Range1DProblem>(
            mirror, q, tau, k, par, &scratch, &got);
        EXPECT_EQ(matched, matches.size());
        ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
            << "k=" << k << " tau=" << tau;
      }
    }
  }
}

TEST(FlatScan, DynamicMirrorTracksAddRemove) {
  Rng rng(55);
  std::vector<Point1D> data = test::ClumpedPoints1D(5000, &rng);
  parallel::FlatMirror<Point1D> mirror(data);
  Scratch scratch;
  parallel::Context four(4);
  std::vector<Point1D> got;
  for (int round = 0; round < 6; ++round) {
    // Remove a swath, add replacements with fresh ids.
    for (int i = 0; i < 200; ++i) {
      const size_t victim = rng.Below(data.size());
      mirror.Remove(data[victim].id);
      data[victim] = data.back();
      data.pop_back();
    }
    for (int i = 0; i < 150; ++i) {
      Point1D e;
      e.x = static_cast<double>(rng.Below(1000));
      e.weight = static_cast<double>(rng.Below(400));
      e.id = 1'000'000u + static_cast<uint64_t>(round) * 1000u +
             static_cast<uint64_t>(i);
      mirror.Add(e);
      data.push_back(e);
    }
    ASSERT_EQ(mirror.size(), data.size());
    const Range1D q{100.0, 900.0};
    std::vector<Point1D> want =
        test::BruteTopK<Range1DProblem>(data, q, 64);
    const size_t matched = parallel::FlatScanTopKInto<Range1DProblem>(
        mirror, q, -std::numeric_limits<double>::infinity(), 64, &four,
        &scratch, &got);
    EXPECT_EQ(matched,
              test::BrutePrioritized<Range1DProblem>(
                  data, q, -std::numeric_limits<double>::infinity())
                  .size());
    ASSERT_EQ(test::IdsOf(got), test::IdsOf(want)) << "round " << round;
  }
}

// --- Reductions: serial == sharded under heavy ties ----------------------

TEST(ParallelReductions, Thm1TieHeavySweep) {
  Rng rng(7001);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  ExpectParallelMatchesSerial(Thm1(data), data, 1);
}

TEST(ParallelReductions, Thm2TieHeavySweep) {
  Rng rng(7002);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  ExpectParallelMatchesSerial(Thm2(data), data, 2);
}

TEST(ParallelReductions, BaselineTieHeavySweep) {
  Rng rng(7003);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  ExpectParallelMatchesSerial(Baseline(data), data, 3);
}

TEST(ParallelReductions, CountingTieHeavySweep) {
  Rng rng(7004);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  ExpectParallelMatchesSerial(Counting(data), data, 4);
}

TEST(ParallelReductions, SaturatedTiesStayDeterministic) {
  Rng rng(7005);
  const std::vector<Point1D> data = SaturatedTies(8000, &rng);
  ExpectParallelMatchesSerial(Thm1(data), data, 5);
  ExpectParallelMatchesSerial(Thm2(data), data, 6);
  ExpectParallelMatchesSerial(Baseline(data), data, 7);
  ExpectParallelMatchesSerial(Counting(data), data, 8);
}

// The sharded full scan charges its issuance exactly once, post-merge:
// one prioritized query, every match emitted — the same counters the
// serial degenerate fetch would have charged.
TEST(ParallelReductions, ShardedFullScanChargesIssuanceOnce) {
  Rng rng(7006);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  // At the paper's constants f is degenerate (f > n) and every k takes
  // the chain; shrink the constants so k >= n/2 exceeds f and the
  // full-scan branch is the one under test.
  const Thm1 thm1(data, {.constant_scale = 0.01});
  const Range1D q{0.0, static_cast<double>(data.size())};
  const size_t k = data.size() / 2 + 1;  // k >= n/2: the full scan
  ASSERT_LT(thm1.f(), k);
  const size_t all = test::BrutePrioritized<Range1DProblem>(
                         data, q, -std::numeric_limits<double>::infinity())
                         .size();
  parallel::Context four(4);
  Scratch scratch;
  std::vector<Point1D> got;
  QueryStats stats;
  thm1.QueryInto(q, k, &scratch, &got, &stats, nullptr, &four);
  EXPECT_EQ(stats.prioritized_queries, 1u);
  EXPECT_EQ(stats.elements_emitted, all);
  EXPECT_EQ(stats.full_scans, 1u);
  EXPECT_EQ(test::IdsOf(got),
            test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, k)));
}

// --- Engine integration --------------------------------------------------

TEST(ParallelEngine, IntraQueryWorkersStayExactAndComposable) {
  Rng rng(7100);
  const std::vector<Point1D> data = test::ClumpedPoints1D(6000, &rng);
  const Thm2 thm2(data);
  std::vector<serve::Request<Range1D>> requests;
  for (size_t i = 0; i < 48; ++i) {
    double lo = static_cast<double>(rng.Below(1501));
    double hi = static_cast<double>(rng.Below(1501));
    if (lo > hi) std::swap(lo, hi);
    // Mostly small k, every 6th deep enough to shard (k >= n/2 and the
    // degenerate terminal scan).
    const size_t k = (i % 6 == 0) ? data.size() / 2 + 3 : 1 + i % 16;
    requests.push_back({{lo, hi}, k});
  }
  for (size_t threads : {size_t{1}, size_t{2}}) {
    for (size_t intra : {size_t{1}, size_t{4}}) {
      serve::QueryEngine<Thm2> engine(
          &thm2, {.num_threads = threads,
                  .intra_query_workers = intra,
                  .unclamped_intra_query_workers = true});
      EXPECT_EQ(engine.intra_query_workers(), intra);
      engine.Warmup(requests);
      std::vector<serve::QueryEngine<Thm2>::Result> results;
      engine.QueryBatchInto(requests, &results);
      engine.QueryBatchInto(requests, &results);  // recycled slots
      ASSERT_EQ(results.size(), requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_TRUE(results[i].ok()) << i;
        ASSERT_EQ(test::IdsOf(results[i].elements),
                  test::IdsOf(test::BruteTopK<Range1DProblem>(
                      data, requests[i].predicate, requests[i].k)))
            << "request " << i << " threads=" << threads
            << " intra=" << intra;
      }
    }
  }
}

TEST(ParallelEngine, OversubscriptionClampNeverExceedsHardware) {
  Rng rng(7200);
  const std::vector<Point1D> data = test::ClumpedPoints1D(4100, &rng);
  const Baseline baseline(data);
  const size_t hw = std::thread::hardware_concurrency();
  serve::QueryEngine<Baseline> engine(
      &baseline, {.num_threads = 2, .intra_query_workers = 1024});
  if (hw > 0) {
    EXPECT_LE(2 * engine.intra_query_workers(), hw < 2 ? 2 : hw);
  }
  // Clamped or not, answers stay exact.
  std::vector<serve::Request<Range1D>> requests = {
      {{0.0, 2000.0}, 100}, {{10.0, 10.0}, 5}};
  const auto results = engine.QueryBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(test::IdsOf(results[i].elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  data, requests[i].predicate, requests[i].k)));
  }
}

}  // namespace
}  // namespace topk
