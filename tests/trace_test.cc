// src/trace/: span nesting/ordering invariants, bounded-buffer drop
// accounting, counter-argument merging, the QueryStats self-attribution
// telescoping contract on the real reductions, and the shape of the
// Chrome trace-event export.

#include "trace/tracer.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"
#include "trace/chrome_json.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;
using trace::Tracer;

uint64_t ArgOr0(const Tracer::Event& e, const char* name) {
  for (size_t i = 0; i < e.num_args; ++i) {
    if (std::strcmp(e.arg_names[i], name) == 0) return e.arg_values[i];
  }
  return 0;
}

bool HasArg(const Tracer::Event& e, const char* name) {
  for (size_t i = 0; i < e.num_args; ++i) {
    if (std::strcmp(e.arg_names[i], name) == 0) return true;
  }
  return false;
}

// The cost-attribution contract: summed over every span, the per-field
// self counts reproduce the query's QueryStats totals exactly.
QueryStats SumSelfCounts(const Tracer& tracer) {
  QueryStats sum;
  for (const Tracer::Event& e : tracer.events()) {
    if (e.kind != Tracer::EventKind::kSpan) continue;
    QueryStats::ForEachField([&sum, &e](const char* name, auto member) {
      sum.*member += ArgOr0(e, name);
    });
  }
  return sum;
}

void ExpectStatsEqual(const QueryStats& want, const QueryStats& got) {
  QueryStats::ForEachField([&](const char* name, auto member) {
    EXPECT_EQ(want.*member, got.*member) << "field " << name;
  });
}

TEST(Tracer, SpansCloseInLifoOrderWithParentIds) {
  Tracer tracer(16);
  {
    trace::Span root(&tracer, "root");
    EXPECT_EQ(tracer.open_depth(), 1u);
    {
      trace::Span child(&tracer, "child");
      trace::Span grandchild(&tracer, "grandchild");
      EXPECT_EQ(tracer.open_depth(), 3u);
    }
    trace::Span sibling(&tracer, "sibling");
  }
  EXPECT_EQ(tracer.open_depth(), 0u);
  ASSERT_EQ(tracer.events().size(), 4u);
  // Close order: grandchild, child, sibling, root.
  EXPECT_STREQ(tracer.events()[0].name, "grandchild");
  EXPECT_STREQ(tracer.events()[1].name, "child");
  EXPECT_STREQ(tracer.events()[2].name, "sibling");
  EXPECT_STREQ(tracer.events()[3].name, "root");
  const uint64_t root_id = tracer.events()[3].id;
  const uint64_t child_id = tracer.events()[1].id;
  EXPECT_EQ(tracer.events()[3].parent, 0u);
  EXPECT_EQ(tracer.events()[1].parent, root_id);
  EXPECT_EQ(tracer.events()[0].parent, child_id);
  EXPECT_EQ(tracer.events()[2].parent, root_id);
  // A span starts no later than it ends and contains its children.
  const Tracer::Event& root_e = tracer.events()[3];
  const Tracer::Event& gc_e = tracer.events()[0];
  EXPECT_LE(root_e.start_ns, gc_e.start_ns);
  EXPECT_GE(root_e.start_ns + root_e.dur_ns, gc_e.start_ns + gc_e.dur_ns);
}

TEST(Tracer, InstantsAttachToEnclosingSpan) {
  Tracer tracer(16);
  trace::Instant(&tracer, "orphan");  // top level: parent 0
  uint64_t root_id = 0;
  {
    trace::Span root(&tracer, "root");
    trace::Instant(&tracer, "inside");
  }
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].kind, Tracer::EventKind::kInstant);
  EXPECT_EQ(tracer.events()[0].parent, 0u);
  root_id = tracer.events()[2].id;
  EXPECT_STREQ(tracer.events()[1].name, "inside");
  EXPECT_EQ(tracer.events()[1].parent, root_id);
  EXPECT_EQ(tracer.events()[1].dur_ns, 0u);
}

TEST(Tracer, BufferFullDropsNewestAndCounts) {
  Tracer tracer(2);
  for (int i = 0; i < 4; ++i) trace::Instant(&tracer, "tick");
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  trace::Instant(&tracer, "tick");
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(Tracer, CounterArgsMergeByName) {
  Tracer tracer(16);
  {
    trace::Span span(&tracer, "io");
    trace::Count(&tracer, "em_read", 1);
    trace::Count(&tracer, "em_read", 2);
    trace::Count(&tracer, "em_write", 5);
  }
  // A count with no open span has nothing to attach to: dropped.
  trace::Count(&tracer, "em_read", 99);
  ASSERT_EQ(tracer.events().size(), 1u);
  const Tracer::Event& e = tracer.events()[0];
  EXPECT_EQ(e.num_args, 2u);
  EXPECT_EQ(ArgOr0(e, "em_read"), 3u);
  EXPECT_EQ(ArgOr0(e, "em_write"), 5u);
}

TEST(Tracer, NullTracerPathIsANoop) {
  // Every helper must tolerate a null tracer (the disabled hot path).
  trace::Span span(nullptr, "nothing");
  span.Arg("x", 1);
  trace::Count(nullptr, "y", 2);
  trace::Instant(nullptr, "z");
}

TEST(Tracer, SelfCountsSubtractChildGrowth) {
  Tracer tracer(16);
  QueryStats stats;
  {
    trace::Span parent(&tracer, "parent", &stats);
    stats.nodes_visited += 10;
    {
      trace::Span child(&tracer, "child", &stats);
      stats.nodes_visited += 7;
      stats.elements_emitted += 3;
    }
    stats.nodes_visited += 5;
  }
  ASSERT_EQ(tracer.events().size(), 2u);
  const Tracer::Event& child = tracer.events()[0];
  const Tracer::Event& parent = tracer.events()[1];
  EXPECT_EQ(ArgOr0(child, "nodes_visited"), 7u);
  EXPECT_EQ(ArgOr0(child, "elements_emitted"), 3u);
  EXPECT_EQ(ArgOr0(parent, "nodes_visited"), 15u);  // 10 + 5, child's 7 out
  EXPECT_FALSE(HasArg(parent, "elements_emitted"));  // zero self: omitted
  ExpectStatsEqual(stats, SumSelfCounts(tracer));
}

TEST(Tracer, SelfCountsTelescopeOnTheorem1) {
  Rng rng(7);
  std::vector<Point1D> data = test::RandomPoints1D(4096, &rng);
  CoreSetTopK<Range1DProblem, PrioritySearchTree> topk(data);
  Tracer tracer(1 << 14);
  Rng qrng(8);
  for (int rep = 0; rep < 20; ++rep) {
    const double a = qrng.NextDouble();
    const double b = qrng.NextDouble();
    const Range1D q{std::min(a, b), std::max(a, b)};
    const size_t k = 1 + qrng.Below(200);
    QueryStats stats;
    auto got = topk.Query(q, k, &stats, &tracer);
    auto want = test::BruteTopK<Range1DProblem>(data, q, k);
    EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
    ASSERT_EQ(tracer.dropped(), 0u);
    ASSERT_EQ(tracer.open_depth(), 0u);
    ExpectStatsEqual(stats, SumSelfCounts(tracer));
    // The root span records which regime served the query.
    const Tracer::Event& root = tracer.events().back();
    EXPECT_STREQ(root.name, "thm1_query");
    EXPECT_EQ(ArgOr0(root, "k"), k);
    tracer.Clear();
  }
}

TEST(Tracer, SelfCountsTelescopeOnTheorem2) {
  Rng rng(9);
  std::vector<Point1D> data = test::RandomPoints1D(4096, &rng);
  SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> topk(data);
  Tracer tracer(1 << 14);
  Rng qrng(10);
  for (int rep = 0; rep < 20; ++rep) {
    const double a = qrng.NextDouble();
    const double b = qrng.NextDouble();
    const Range1D q{std::min(a, b), std::max(a, b)};
    const size_t k = 1 + qrng.Below(200);
    QueryStats stats;
    auto got = topk.Query(q, k, &stats, &tracer);
    auto want = test::BruteTopK<Range1DProblem>(data, q, k);
    EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
    ASSERT_EQ(tracer.dropped(), 0u);
    ASSERT_EQ(tracer.open_depth(), 0u);
    ExpectStatsEqual(stats, SumSelfCounts(tracer));
    // Every recorded round carries a verdict code.
    for (const Tracer::Event& e : tracer.events()) {
      if (e.kind == Tracer::EventKind::kSpan &&
          std::strcmp(e.name, "thm2_round") == 0) {
        EXPECT_TRUE(HasArg(e, "verdict"));
        EXPECT_LE(ArgOr0(e, "verdict"), 3u);
      }
    }
    tracer.Clear();
  }
}

TEST(ChromeJson, ExportsWellFormedEvents) {
  Tracer tracer(16);
  {
    trace::Span root(&tracer, "thm1_query");
    root.Arg("k", 5);
    trace::Instant(&tracer, "fallback");
  }
  const std::string json = trace::ChromeTraceJson({&tracer, nullptr});
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thm1_query\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":5}"), std::string::npos);
  // Null tracers are skipped, not rendered.
  EXPECT_EQ(json.find("\"tid\":1"), std::string::npos);
}

}  // namespace
}  // namespace topk
