// The reverse reduction (Section 1.2): prioritized reporting from a
// top-k structure by k-doubling.

#include "core/topk_to_prioritized.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/scan_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

template <typename Wrapped>
std::vector<Point1D> Collect(const Wrapped& w, const Range1D& q, double tau) {
  std::vector<Point1D> out;
  w.QueryPrioritized(q, tau, [&out](const Point1D& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(TopKToPrioritized, EmptyStructure) {
  TopKToPrioritized<ScanTopK<Range1DProblem>> w{
      ScanTopK<Range1DProblem>({})};
  EXPECT_TRUE(Collect(w, {0, 1}, kNegInf).empty());
}

TEST(TopKToPrioritized, MatchesBruteForceOverScan) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(777, &rng);
  TopKToPrioritized<ScanTopK<Range1DProblem>> w{
      ScanTopK<Range1DProblem>(data), /*initial_k=*/4};
  for (int trial = 0; trial < 30; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    for (double tau : {kNegInf, 100.0, 500.0, 999.0}) {
      auto got = Collect(w, {a, b}, tau);
      auto want = test::BrutePrioritized<Range1DProblem>(data, {a, b}, tau);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    }
  }
}

// Round trip: prioritized -> top-k (Theorem 1) -> prioritized.
TEST(TopKToPrioritized, RoundTripThroughCoreSetTopK) {
  Rng rng(2);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  using TopK = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  TopKToPrioritized<TopK> w{TopK(data)};
  for (int trial = 0; trial < 10; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    for (double tau : {kNegInf, 250.0, 900.0}) {
      auto got = Collect(w, {a, b}, tau);
      auto want = test::BrutePrioritized<Range1DProblem>(data, {a, b}, tau);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    }
  }
}

TEST(TopKToPrioritized, EarlyTerminationStops) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(500, &rng);
  TopKToPrioritized<ScanTopK<Range1DProblem>> w{
      ScanTopK<Range1DProblem>(data)};
  size_t seen = 0;
  w.QueryPrioritized({0.0, 1.0}, kNegInf, [&seen](const Point1D&) {
    ++seen;
    return seen < 7;
  });
  EXPECT_EQ(seen, 7u);
}

TEST(TopKToPrioritized, EmitsInDescendingWeightOrder) {
  Rng rng(4);
  std::vector<Point1D> data = test::RandomPoints1D(400, &rng);
  TopKToPrioritized<ScanTopK<Range1DProblem>> w{
      ScanTopK<Range1DProblem>(data)};
  auto got = Collect(w, {0.0, 1.0}, 300.0);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(HeavierThan(got[i - 1], got[i]));
  }
}

}  // namespace
}  // namespace topk
