// Edge behaviour of the reductions that the main sweeps don't isolate:
// option plumbing (sigma, block size, seeds), the k >= n/2 scan path,
// skewed weight distributions, and tiny-n boundary conditions.

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;

// Exponentially skewed weights: the regime where rank sampling sees
// extreme weight gaps (stresses the "distinct weights" arithmetic and
// the k-selection comparators).
std::vector<Point1D> SkewedPoints(size_t n, Rng* rng) {
  std::vector<Point1D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].x = rng->NextDouble();
    pts[i].weight = std::exp(20.0 * rng->NextDouble());  // 8 decades
    pts[i].id = i + 1;
  }
  return pts;
}

TEST(ReductionEdges, SkewedWeightsStayExact) {
  Rng rng(1);
  std::vector<Point1D> data = SkewedPoints(8000, &rng);
  Thm1 thm1(data);
  Thm2 thm2(data);
  for (int trial = 0; trial < 10; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    for (size_t k : {size_t{1}, size_t{64}, size_t{4000}}) {
      auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({a, b}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query({a, b}, k)), test::IdsOf(want));
    }
  }
}

TEST(ReductionEdges, LargeKTakesScanPathAndIsExact) {
  Rng rng(2);
  // n large enough that f < n/2, so k = n/2 > f reaches the scan branch
  // (for k <= f the top-f machinery answers without scanning).
  std::vector<Point1D> data = test::RandomPoints1D(40000, &rng);
  Thm1 thm1(data);
  ASSERT_LT(thm1.f(), 20000u);
  QueryStats stats;
  auto got = thm1.Query({0.0, 1.0}, 20000, &stats);  // k == n/2
  EXPECT_EQ(stats.full_scans, 1u);
  auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, 20000);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

TEST(ReductionEdges, SigmaControlsLadderDensity) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(100000, &rng);
  ReductionOptions sparse;
  sparse.sigma = 0.5;  // K_i grows 1.5x per level
  ReductionOptions dense;
  dense.sigma = 0.05;  // paper's 1/20
  Thm2 s(data, sparse), d(data, dense);
  EXPECT_LT(s.num_sample_levels(), d.num_sample_levels());
  // Both remain exact.
  for (size_t k : {size_t{5}, size_t{500}}) {
    auto want = test::BruteTopK<Range1DProblem>(data, {0.3, 0.7}, k);
    EXPECT_EQ(test::IdsOf(s.Query({0.3, 0.7}, k)), test::IdsOf(want));
    EXPECT_EQ(test::IdsOf(d.Query({0.3, 0.7}, k)), test::IdsOf(want));
  }
}

TEST(ReductionEdges, BlockSizeScalesF) {
  Rng rng(4);
  std::vector<Point1D> data = test::RandomPoints1D(50000, &rng);
  ReductionOptions small_b;
  small_b.block_size = 64;
  ReductionOptions big_b;
  big_b.block_size = 512;
  Thm1 a(data, small_b), b(data, big_b);
  EXPECT_LT(a.f(), b.f());  // f = 12*lambda*B*Q_pri grows with B
  auto want = test::BruteTopK<Range1DProblem>(data, {0.2, 0.9}, 33);
  EXPECT_EQ(test::IdsOf(a.Query({0.2, 0.9}, 33)), test::IdsOf(want));
  EXPECT_EQ(test::IdsOf(b.Query({0.2, 0.9}, 33)), test::IdsOf(want));
}

TEST(ReductionEdges, TinyInputsEveryK) {
  Rng rng(5);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{8}}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    Thm1 thm1(data);
    Thm2 thm2(data);
    for (size_t k = 1; k <= n + 2; ++k) {
      auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({0.0, 1.0}, k)), test::IdsOf(want))
          << "n=" << n << " k=" << k;
      ASSERT_EQ(test::IdsOf(thm2.Query({0.0, 1.0}, k)), test::IdsOf(want))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(ReductionEdges, AllWeightsEqual) {
  // Ties everywhere: (weight, id) must fully determine every answer.
  std::vector<Point1D> data;
  for (uint64_t i = 1; i <= 2000; ++i) {
    data.push_back({static_cast<double>(i % 97) / 97.0, 42.0, i});
  }
  Thm1 thm1(data);
  Thm2 thm2(data);
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    for (size_t k : {size_t{1}, size_t{10}, size_t{500}}) {
      auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({a, b}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query({a, b}, k)), test::IdsOf(want));
    }
  }
}

}  // namespace
}  // namespace topk
