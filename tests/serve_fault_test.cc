// The serving layer's graceful-degradation contract: staged budgeted
// queries, per-request deadlines and cost budgets, bounded-batch
// admission control, cooperative cancellation — and the per-slot
// ResultStatus semantics (see serve/result.h). Also the concurrency
// story: two engines sharing one Metrics registry (exercised under
// TSan via CI's -R serve filter).

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/budgeted_query.h"
#include "core/scan_topk.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;
using serve::MetricsSnapshot;
using serve::ResultStatus;

using Scan = ScanTopK<Range1DProblem>;

// First `m` entries of `full` — the heaviest-first prefix a degraded
// result must equal.
std::vector<uint64_t> PrefixIds(const std::vector<Point1D>& full, size_t m) {
  std::vector<uint64_t> ids = test::IdsOf(full);
  if (ids.size() > m) ids.resize(m);
  return ids;
}

// --- BudgetedTopK ---------------------------------------------------------

TEST(BudgetedTopK, RunsToCompletionWhenNeverStopped) {
  Rng rng(1);
  const auto data = test::RandomPoints1D(800, &rng);
  Scan scan(data);
  const Range1D q{0.1, 0.9};
  auto r = BudgetedTopK(scan, q, 8, [] { return false; });
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.stages, 4u);  // k' = 1, 2, 4, 8
  EXPECT_EQ(test::IdsOf(r.elements),
            test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, 8)));
}

TEST(BudgetedTopK, StopAfterAnyStageYieldsCorrectPrefix) {
  Rng rng(2);
  const auto data = test::RandomPoints1D(800, &rng);
  Scan scan(data);
  const Range1D q{0.0, 1.0};
  const auto want = test::BruteTopK<Range1DProblem>(data, q, 32);
  for (size_t stop_after : {size_t{1}, size_t{2}, size_t{3}}) {
    size_t stages = 0;
    auto r = BudgetedTopK(scan, q, 32,
                          [&] { return ++stages >= stop_after; });
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.stages, stop_after);
    // Stage s answered top-2^{s-1}: a literal prefix of the true top-k.
    EXPECT_EQ(test::IdsOf(r.elements),
              PrefixIds(want, size_t{1} << (stop_after - 1)));
  }
}

TEST(BudgetedTopK, SmallAnswersCompleteRegardlessOfStop) {
  Rng rng(3);
  const auto data = test::RandomPoints1D(100, &rng);
  Scan scan(data);
  // k = 0 and a predicate matching nothing: complete immediately, and
  // the stop predicate (always true) never turns them into failures.
  auto zero = BudgetedTopK(scan, Range1D{0.0, 1.0}, 0, [] { return true; });
  EXPECT_TRUE(zero.complete);
  EXPECT_TRUE(zero.elements.empty());
  auto none = BudgetedTopK(scan, Range1D{2.0, 3.0}, 5, [] { return true; });
  EXPECT_TRUE(none.complete);
  EXPECT_TRUE(none.elements.empty());
  // More k than matches: the structure runs dry (a stage returns fewer
  // than k' elements) and the answer completes without reaching k.
  auto all = BudgetedTopK(scan, Range1D{0.0, 1.0}, 1000, [] { return false; });
  EXPECT_TRUE(all.complete);
  EXPECT_EQ(all.elements.size(), 100u);
}

// --- QueryEngine: budgets -------------------------------------------------

struct Fixture {
  std::vector<Point1D> data;
  explicit Fixture(size_t n, uint64_t seed) {
    Rng rng(seed);
    data = test::RandomPoints1D(n, &rng);
  }
};

TEST(QueryEngineFaults, CostBudgetDegradesToCorrectPrefix) {
  Fixture fx(400, 11);
  Scan scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Scan> engine(&scan, {.num_threads = 1}, &metrics);

  const Range1D q{0.0, 1.0};
  const auto want = test::BruteTopK<Range1DProblem>(fx.data, q, 64);
  // One scan costs > n work units, so budget 1 stops after stage 1
  // (top-1) and budget 3n admits three stages (top-4); budget 0 means
  // unlimited.
  const uint64_t n = fx.data.size();
  std::vector<serve::Request<Range1D>> reqs = {
      {q, 64, /*cost_budget=*/1},
      {q, 64, /*cost_budget=*/3 * n},
      {q, 64, /*cost_budget=*/0},
  };
  auto results = engine.QueryBatch(reqs);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(results[0].status, ResultStatus::kDegraded);
  EXPECT_EQ(test::IdsOf(results[0].elements), PrefixIds(want, 1));
  EXPECT_EQ(results[1].status, ResultStatus::kDegraded);
  EXPECT_FALSE(results[1].elements.empty());
  EXPECT_EQ(test::IdsOf(results[1].elements),
            PrefixIds(want, results[1].elements.size()));
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(test::IdsOf(results[2].elements), test::IdsOf(want));

  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.queries, 3u);
  EXPECT_EQ(m.ok, 1u);
  EXPECT_EQ(m.degraded, 2u);
  EXPECT_EQ(m.shed, 0u);
}

TEST(QueryEngineFaults, GenerousBudgetStaysExact) {
  Fixture fx(500, 12);
  Scan scan(fx.data);
  serve::QueryEngine<Scan> engine(&scan, {.num_threads = 2});
  std::vector<serve::Request<Range1D>> reqs;
  Rng rng(13);
  for (int i = 0; i < 12; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    reqs.push_back({{a, b}, 1 + static_cast<size_t>(i),
                    /*cost_budget=*/1u << 24});
  }
  auto results = engine.QueryBatch(reqs);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(test::IdsOf(results[i].elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  fx.data, reqs[i].predicate, reqs[i].k)))
        << i;
  }
}

// --- QueryEngine: deadlines -----------------------------------------------

TEST(QueryEngineFaults, ExpiredDeadlineReturnsFlaggedEmptyPrefix) {
  Fixture fx(300, 14);
  Scan scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Scan> engine(&scan, {.num_threads = 1}, &metrics);
  // 1 ns after batch start is in the past by the time any worker picks
  // the request up; a sibling request with no deadline must be exact.
  std::vector<serve::Request<Range1D>> reqs = {
      {{0.0, 1.0}, 10, /*cost_budget=*/0, /*deadline_ns=*/1},
      {{0.0, 1.0}, 10},
  };
  auto results = engine.QueryBatch(reqs);
  EXPECT_EQ(results[0].status, ResultStatus::kDeadlineExceeded);
  EXPECT_TRUE(results[0].elements.empty());
  EXPECT_TRUE(results[1].ok());

  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.ok, 1u);
  // The expired request touched the structure zero times: exactly one
  // full scan was charged.
  EXPECT_EQ(m.stats.full_scans, 1u);
  EXPECT_EQ(m.stats.nodes_visited, fx.data.size());
}

// --- QueryEngine: admission control and cancellation ----------------------

TEST(QueryEngineFaults, OverflowingBatchIsShedWithZeroStructureTouches) {
  Fixture fx(250, 15);
  Scan scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Scan> engine(
      &scan, {.num_threads = 2, .max_batch = 2}, &metrics);
  std::vector<serve::Request<Range1D>> reqs(6, {{0.0, 1.0}, 5});
  auto results = engine.QueryBatch(reqs);
  ASSERT_EQ(results.size(), 6u);
  const auto want = test::BruteTopK<Range1DProblem>(fx.data, {0.0, 1.0}, 5);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(test::IdsOf(results[i].elements), test::IdsOf(want));
  }
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(results[i].status, ResultStatus::kShed) << i;
    EXPECT_TRUE(results[i].elements.empty()) << i;
  }
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.queries, 2u);  // shed slots are not "served"
  EXPECT_EQ(m.shed, 4u);
  EXPECT_EQ(m.ok, 2u);
  EXPECT_EQ(m.latency.count(), 2u);
  // ScanTopK charges exactly n nodes per executed query — the shed
  // slots contributed nothing.
  EXPECT_EQ(m.stats.nodes_visited, 2 * fx.data.size());
  EXPECT_EQ(m.stats.full_scans, 2u);
}

TEST(QueryEngineFaults, CancelShedsTheNextBatchThenClears) {
  Fixture fx(200, 16);
  Scan scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Scan> engine(&scan, {.num_threads = 2}, &metrics);
  std::vector<serve::Request<Range1D>> reqs(4, {{0.0, 1.0}, 3});

  engine.Cancel();
  EXPECT_TRUE(engine.cancel_requested());
  auto cancelled = engine.QueryBatch(reqs);
  for (const auto& r : cancelled) {
    EXPECT_EQ(r.status, ResultStatus::kShed);
  }
  EXPECT_EQ(metrics.Snapshot().stats.nodes_visited, 0u);

  // The flag cleared with the batch: the next one serves normally.
  EXPECT_FALSE(engine.cancel_requested());
  auto served = engine.QueryBatch(reqs);
  const auto want = test::BruteTopK<Range1DProblem>(fx.data, {0.0, 1.0}, 3);
  for (const auto& r : served) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(test::IdsOf(r.elements), test::IdsOf(want));
  }
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.shed, 4u);
  EXPECT_EQ(m.ok, 4u);
  EXPECT_EQ(m.queries, 4u);
}

// --- Metrics: status accounting and JSON ----------------------------------

TEST(QueryEngineFaults, StatusCountsPartitionTheBatch) {
  Fixture fx(300, 17);
  Scan scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Scan> engine(
      &scan, {.num_threads = 1, .max_batch = 3}, &metrics);
  std::vector<serve::Request<Range1D>> reqs = {
      {{0.0, 1.0}, 8},                                       // ok
      {{0.0, 1.0}, 8, /*cost_budget=*/1},                    // degraded
      {{0.0, 1.0}, 8, /*cost_budget=*/0, /*deadline_ns=*/1}, // late
      {{0.0, 1.0}, 8},                                       // shed
  };
  engine.QueryBatch(reqs);
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.ok, 1u);
  EXPECT_EQ(m.degraded, 1u);
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(m.ok + m.degraded + m.deadline_exceeded, m.queries);

  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"results\":{\"ok\":1,\"degraded\":1,\"shed\":1,"
                      "\"deadline_exceeded\":1}"),
            std::string::npos)
      << json;
}

TEST(ResultStatusNames, CoverEveryStatus) {
  EXPECT_STREQ(serve::ToString(ResultStatus::kOk), "ok");
  EXPECT_STREQ(serve::ToString(ResultStatus::kDegraded), "degraded");
  EXPECT_STREQ(serve::ToString(ResultStatus::kShed), "shed");
  EXPECT_STREQ(serve::ToString(ResultStatus::kDeadlineExceeded),
               "deadline_exceeded");
}

// --- Shared Metrics across engines (the TSan target) ----------------------

// Two engines with private thread pools absorb into ONE registry from
// two caller threads at once. Totals must be exact — TSan (CI's serve
// filter) additionally proves the absence of data races on the shared
// registry.
TEST(SharedMetrics, TwoEnginesAbsorbConcurrently) {
  Fixture fx(600, 18);
  Scan scan(fx.data);
  HeapSelectTopK direct(fx.data);
  serve::Metrics shared;
  serve::QueryEngine<Scan> e1(&scan, {.num_threads = 2}, &shared);
  serve::QueryEngine<HeapSelectTopK> e2(&direct, {.num_threads = 2},
                                        &shared);
  std::vector<serve::Request<Range1D>> reqs(8, {{0.2, 0.8}, 4});

  constexpr int kBatches = 6;
  std::thread t1([&] {
    for (int i = 0; i < kBatches; ++i) e1.QueryBatch(reqs);
  });
  std::thread t2([&] {
    for (int i = 0; i < kBatches; ++i) e2.QueryBatch(reqs);
  });
  t1.join();
  t2.join();

  const MetricsSnapshot m = shared.Snapshot();
  EXPECT_EQ(m.batches, 2u * kBatches);
  EXPECT_EQ(m.queries, 2u * kBatches * reqs.size());
  EXPECT_EQ(m.ok, m.queries);
  EXPECT_EQ(m.latency.count(), m.queries);
  // ScanTopK's half of the work is exactly n nodes per query.
  EXPECT_GE(m.stats.nodes_visited,
            uint64_t{kBatches} * reqs.size() * fx.data.size());
}

}  // namespace
}  // namespace topk
