// Regression tests for centralized issuance charging (core/sink.h).
//
// QueryStats::prioritized_queries and ::elements_emitted are charged at
// ISSUANCE, in IssuePrioritized, and nowhere else. Two consequences are
// pinned here:
//
//   1. No double counting: swapping a reduction's substrate for the
//      transparent audit::CheckedPrioritized wrapper (which delegates
//      every query to the bare structure) leaves every QueryStats field
//      bit-identical — if implementations or wrappers also charged
//      issuance, the wrapped runs would count each query twice.
//   2. No invisible queries: a prioritized query issued OUTSIDE
//      MonitoredQuery — notably against the reverse reduction
//      TopKToPrioritized, whose QueryPrioritized used to be invisible —
//      is charged exactly once when routed through IssuePrioritized.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/checked_prioritized.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "core/topk_to_prioritized.h"
#include "range1d/count_tree.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Checked = audit::CheckedPrioritized<PrioritySearchTree,
                                          Range1DProblem>;

void ExpectStatsEqual(const QueryStats& want, const QueryStats& got) {
  QueryStats::ForEachField([&](const char* name, auto member) {
    EXPECT_EQ(want.*member, got.*member) << "field " << name;
  });
}

// Runs the same query sweep against `plain` and `mirrored` (same data,
// same seed, substrates differing only by the transparent wrapper) and
// requires identical counters.
template <typename Plain, typename Mirrored>
void SweepAndCompare(const Plain& plain, const Mirrored& mirrored) {
  Rng qrng(99);
  for (int rep = 0; rep < 30; ++rep) {
    const double a = qrng.NextDouble();
    const double b = qrng.NextDouble();
    const Range1D q{std::min(a, b), std::max(a, b)};
    const size_t k = 1 + qrng.Below(300);
    QueryStats plain_stats;
    QueryStats mirrored_stats;
    auto got = plain.Query(q, k, &plain_stats);
    auto got_mirrored = mirrored.Query(q, k, &mirrored_stats);
    ASSERT_EQ(test::IdsOf(got), test::IdsOf(got_mirrored));
    ExpectStatsEqual(plain_stats, mirrored_stats);
  }
}

TEST(StatsAccounting, Theorem1ChargesMatchAuditMirror) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  CoreSetTopK<Range1DProblem, PrioritySearchTree> plain(data);
  CoreSetTopK<Range1DProblem, Checked> mirrored(data);
  SweepAndCompare(plain, mirrored);
}

TEST(StatsAccounting, Theorem2ChargesMatchAuditMirror) {
  Rng rng(2);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> plain(data);
  SampledTopK<Range1DProblem, Checked, RangeMax> mirrored(data);
  SweepAndCompare(plain, mirrored);
}

TEST(StatsAccounting, BinarySearchChargesMatchAuditMirror) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  BinarySearchTopK<Range1DProblem, PrioritySearchTree> plain(data);
  BinarySearchTopK<Range1DProblem, Checked> mirrored(data);
  SweepAndCompare(plain, mirrored);
}

TEST(StatsAccounting, CountingChargesMatchAuditMirror) {
  Rng rng(4);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  CountingTopK<Range1DProblem, PrioritySearchTree, CountTree> plain(data);
  CountingTopK<Range1DProblem, Checked, CountTree> mirrored(data);
  SweepAndCompare(plain, mirrored);
}

// The regression the satellite names: a prioritized query against the
// reverse reduction, issued directly (not via MonitoredQuery), must be
// visible in the counters — exactly one query, every emission counted.
TEST(StatsAccounting, DirectIssuanceOnReverseReductionIsVisible) {
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(2000, &rng);
  // HeapSelectTopK issues no prioritized queries of its own (it walks
  // the tree directly), so every count below comes from IssuePrioritized.
  TopKToPrioritized<HeapSelectTopK> pri{HeapSelectTopK(data)};
  const Range1D q{0.2, 0.8};
  const double tau = 500.0;

  QueryStats stats;
  std::vector<Point1D> got;
  IssuePrioritized(
      pri, q, tau,
      [&got](const Point1D& e) {
        got.push_back(e);
        return true;
      },
      &stats);
  auto want = test::BrutePrioritized<Range1DProblem>(data, q, tau);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
  EXPECT_EQ(stats.prioritized_queries, 1u);
  EXPECT_EQ(stats.elements_emitted, got.size());
  EXPECT_GT(stats.nodes_visited, 0u);  // structural work still charged
}

TEST(StatsAccounting, MonitoredQueryOnReverseReductionChargesOnce) {
  Rng rng(6);
  std::vector<Point1D> data = test::RandomPoints1D(2000, &rng);
  TopKToPrioritized<HeapSelectTopK> pri{HeapSelectTopK(data)};
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  QueryStats stats;
  const Range1D q{0.1, 0.9};
  MonitoredResult<Point1D> r = MonitoredQuery(pri, q, kNegInf, 64, &stats);
  EXPECT_TRUE(r.hit_budget);
  EXPECT_EQ(r.elements.size(), 64u);
  EXPECT_EQ(stats.prioritized_queries, 1u);
  // The budget cut-off element is collected, so collected == emitted.
  EXPECT_EQ(stats.elements_emitted, 64u);
}

// elements_emitted counts emissions, not matches: a sink that stops the
// query early is charged exactly for what the structure produced.
TEST(StatsAccounting, EarlyStopChargesExactlyTheEmissions) {
  Rng rng(7);
  std::vector<Point1D> data = test::RandomPoints1D(500, &rng);
  PrioritySearchTree pst(data);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  QueryStats stats;
  uint64_t seen = 0;
  const Range1D q{0.0, 1.0};
  IssuePrioritized(
      pst, q, kNegInf,
      [&seen](const Point1D&) {
        ++seen;
        return seen < 10;  // the 10th emission stops the query
      },
      &stats);
  EXPECT_EQ(stats.prioritized_queries, 1u);
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(stats.elements_emitted, seen);  // not the ~500 matches
}

}  // namespace
}  // namespace topk
