// Shared test helpers: deterministic data generators and brute-force
// reference implementations every structure is validated against.

#ifndef TOPK_TESTS_TEST_UTIL_H_
#define TOPK_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "audit/checked_max.h"
#include "audit/checked_prioritized.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/weighted.h"
#include "range1d/point1d.h"

namespace topk::test {

// Substrate aliases for the brute-force sweeps: under -DTOPK_AUDIT=ON
// (CMake option TOPK_AUDIT) every reduction runs over the
// contract-verifying audit wrappers, so a substrate that emits a
// duplicate, ignores a stop, or returns a non-maximal max aborts the
// sweep at the violating query instead of surfacing as a wrong answer
// (or not at all).
#ifdef TOPK_AUDIT
template <typename S, typename P>
using MaybeAudited = audit::CheckedPrioritized<S, P>;
template <typename S, typename P>
using MaybeAuditedMax = audit::CheckedMax<S, P>;
#else
template <typename S, typename P>
using MaybeAudited = S;
template <typename S, typename P>
using MaybeAuditedMax = S;
#endif

// n weighted 1D points with x in [0, 1) and unique ids; weights are
// random but distinct-by-id ties never arise in practice.
inline std::vector<range1d::Point1D> RandomPoints1D(size_t n, Rng* rng) {
  std::vector<range1d::Point1D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].x = rng->NextDouble();
    pts[i].weight = rng->NextDouble() * 1000.0;
    pts[i].id = i + 1;
  }
  return pts;
}

// As above, but with many duplicate x coordinates (stress for split
// logic) and duplicate weights (stress for id tie-breaking).
inline std::vector<range1d::Point1D> ClumpedPoints1D(size_t n, Rng* rng) {
  std::vector<range1d::Point1D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].x = static_cast<double>(rng->Below(n / 4 + 1));
    pts[i].weight = static_cast<double>(rng->Below(n / 8 + 1));
    pts[i].id = i + 1;
  }
  return pts;
}

// Brute-force top-k for any problem.
template <typename Problem>
std::vector<typename Problem::Element> BruteTopK(
    const std::vector<typename Problem::Element>& data,
    const typename Problem::Predicate& q, size_t k) {
  std::vector<typename Problem::Element> pool;
  for (const auto& e : data) {
    if (Problem::Matches(q, e)) pool.push_back(e);
  }
  SelectTopK(&pool, k);
  return pool;
}

// Brute-force prioritized reporting, sorted by descending weight.
template <typename Problem>
std::vector<typename Problem::Element> BrutePrioritized(
    const std::vector<typename Problem::Element>& data,
    const typename Problem::Predicate& q, double tau) {
  std::vector<typename Problem::Element> out;
  for (const auto& e : data) {
    if (Problem::Matches(q, e) && MeetsThreshold(e, tau)) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), ByWeightDesc());
  return out;
}

// Brute-force max.
template <typename Problem>
std::optional<typename Problem::Element> BruteMax(
    const std::vector<typename Problem::Element>& data,
    const typename Problem::Predicate& q) {
  std::optional<typename Problem::Element> best;
  for (const auto& e : data) {
    if (!Problem::Matches(q, e)) continue;
    if (!best.has_value() || HeavierThan(e, *best)) best = e;
  }
  return best;
}

// Ids of a result vector, for order-insensitive comparisons.
template <typename E>
std::vector<uint64_t> IdsOf(const std::vector<E>& v) {
  std::vector<uint64_t> ids;
  ids.reserve(v.size());
  for (const E& e : v) ids.push_back(e.id);
  return ids;
}

template <typename E>
std::vector<uint64_t> SortedIdsOf(std::vector<E> v) {
  std::vector<uint64_t> ids = IdsOf(v);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace topk::test

#endif  // TOPK_TESTS_TEST_UTIL_H_
