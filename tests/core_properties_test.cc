// Cross-cutting properties of the core framework:
//   * the structure concepts accept every shipped structure;
//   * MonitoredQuery budget semantics at exact boundaries;
//   * determinism: same data + seed => identical structures and answers;
//   * emission-order independence: the reductions stay exact over a
//     prioritized structure that emits in the most adversarial order
//     (ascending weight — the opposite of every shipped structure);
//   * results are always sorted heaviest-first;
//   * QueryStats accumulation.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/checked_prioritized.h"
#include "circle/circular.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/problem.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "dominance/point3.h"
#include "enclosure/enclosure_structures.h"
#include "halfspace/halfspace_structures.h"
#include "interval/interval_tree_stab.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"
#include "range1d/count_tree.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/shareable.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// --- Concepts accept every shipped structure ---------------------------

static_assert(ProblemDef<Range1DProblem>);
static_assert(ProblemDef<interval::StabProblem>);
static_assert(ProblemDef<enclosure::EnclosureProblem>);
static_assert(ProblemDef<halfspace::HalfplaneProblem>);
static_assert(ProblemDef<dominance::DominanceProblem>);
static_assert(ProblemDef<circle::CircularProblem>);

static_assert(PrioritizedStructure<PrioritySearchTree, Range1DProblem>);
static_assert(PrioritizedStructure<range1d::DynamicPst, Range1DProblem>);
static_assert(
    PrioritizedStructure<interval::SegmentStabbing, interval::StabProblem>);
static_assert(PrioritizedStructure<interval::IntervalTreeStab,
                                   interval::StabProblem>);
static_assert(PrioritizedStructure<enclosure::EnclosurePrioritized,
                                   enclosure::EnclosureProblem>);
static_assert(PrioritizedStructure<halfspace::HalfspacePrioritized,
                                   halfspace::HalfplaneProblem>);
static_assert(PrioritizedStructure<dominance::DominanceKdTree,
                                   dominance::DominanceProblem>);
static_assert(
    PrioritizedStructure<circle::CircularKdTree, circle::CircularProblem>);

static_assert(MaxStructure<RangeMax, Range1DProblem>);
static_assert(MaxStructure<range1d::DynamicRangeMax, Range1DProblem>);
static_assert(MaxStructure<interval::SlabStabMax, interval::StabProblem>);
static_assert(
    MaxStructure<enclosure::EnclosureMax, enclosure::EnclosureProblem>);
static_assert(
    MaxStructure<halfspace::HalfspaceMax, halfspace::HalfplaneProblem>);
static_assert(
    MaxStructure<dominance::DominanceKdTree, dominance::DominanceProblem>);

// --- Negative concept tests ---------------------------------------------
// Each Broken* structure mangles exactly one signature requirement and
// must fail its concept. If one of these static_asserts ever fails, the
// concept stopped checking that requirement — the contract gate has a
// hole, not the structure.

// Missing QueryCostBound: the reductions size f and the K_i ladder from
// it, so a prioritized structure without it is unusable.
struct BrokenNoCostBound {
  using Element = Point1D;
  size_t size() const { return 0; }
  template <typename Emit>
  void QueryPrioritized(const Range1D&, double, Emit&&,
                        QueryStats*) const {}
};
static_assert(!PrioritizedStructure<BrokenNoCostBound, Range1DProblem>);

// Non-const query path: the concepts require querying through a const
// reference, so hidden mutation fails here, not at engine build time.
struct BrokenNonConstQuery {
  using Element = Point1D;
  size_t size() const { return 0; }
  static double QueryCostBound(size_t, size_t) { return 1.0; }
  template <typename Emit>
  void QueryPrioritized(const Range1D&, double, Emit&&, QueryStats*) {}
};
static_assert(!PrioritizedStructure<BrokenNonConstQuery, Range1DProblem>);

// Missing size(): cost monitoring computes budgets from it.
struct BrokenNoSize {
  using Element = Point1D;
  static double QueryCostBound(size_t, size_t) { return 1.0; }
  template <typename Emit>
  void QueryPrioritized(const Range1D&, double, Emit&&,
                        QueryStats*) const {}
};
static_assert(!PrioritizedStructure<BrokenNoSize, Range1DProblem>);

// Max structure that dropped the stats out-param.
struct BrokenMaxNoStats {
  using Element = Point1D;
  size_t size() const { return 0; }
  static double QueryCostBound(size_t, size_t) { return 1.0; }
  std::optional<Point1D> QueryMax(const Range1D&) const { return {}; }
};
static_assert(!MaxStructure<BrokenMaxNoStats, Range1DProblem>);

// Counter whose Count does not return a count.
struct BrokenCounterVoidCount {
  using Element = Point1D;
  size_t size() const { return 0; }
  void Count(const Range1D&, double, QueryStats*) const {}
};
static_assert(!CounterStructure<BrokenCounterVoidCount, Range1DProblem>);
static_assert(CounterStructure<range1d::CountTree, Range1DProblem>);

// Insert without Erase is not a dynamic structure.
struct BrokenInsertOnly {
  void Insert(const Point1D&) {}
};
static_assert(!DynamicStructure<BrokenInsertOnly, Range1DProblem>);
static_assert(DynamicStructure<range1d::DynamicPst, Range1DProblem>);
static_assert(!DynamicStructure<PrioritySearchTree, Range1DProblem>);

// A problem without the polynomial-boundedness exponent.
struct BrokenProblemNoLambda {
  using Element = Point1D;
  using Predicate = Range1D;
  static bool Matches(const Range1D&, const Point1D&) { return true; }
};
static_assert(!ProblemDef<BrokenProblemNoLambda>);

// A factory must produce exactly the substrate type.
struct WrongTypeFactory {
  std::vector<Point1D> operator()(std::vector<Point1D> data) const {
    return data;
  }
};
static_assert(
    StructureFactory<DirectFactory<PrioritySearchTree>,
                     PrioritySearchTree, Point1D>);
static_assert(
    !StructureFactory<WrongTypeFactory, PrioritySearchTree, Point1D>);

// Every reduction must export its substrate aliases — they are what
// lets serve/shareable.h's thread-sharing gate recurse into substrate
// markers; deleting one silently blinds the gate, so pin them here.
static_assert(requires {
  typename CoreSetTopK<Range1DProblem, PrioritySearchTree>::Prioritized;
  typename BinarySearchTopK<Range1DProblem,
                            PrioritySearchTree>::Prioritized;
  typename SampledTopK<Range1DProblem, PrioritySearchTree,
                       RangeMax>::Prioritized;
  typename SampledTopK<Range1DProblem, PrioritySearchTree,
                       RangeMax>::MaxSubstrate;
  typename CountingTopK<Range1DProblem, PrioritySearchTree,
                        range1d::CountTree>::Prioritized;
  typename CountingTopK<Range1DProblem, PrioritySearchTree,
                        range1d::CountTree>::CounterStructure;
});

// --- Thread-shareability gate (serve/shareable.h) ------------------------

// A memoizing top-k structure: Query is const but caches the last answer
// in a mutable member — correct single-threaded, a data race under the
// engine. Its mutable query state is declared via the kThreadSafeQuery
// marker and the gate rejects it. (The *undeclared* variant — a mutable
// member with no marker — is exactly what tools/lint.py's mutable-member
// check flags in src/; the type system cannot see it.)
class MemoizedTopK {
 public:
  using Element = Point1D;
  using Predicate = Range1D;
  static constexpr bool kThreadSafeQuery = false;

  explicit MemoizedTopK(std::vector<Point1D> data)
      : data_(std::move(data)) {}
  size_t size() const { return data_.size(); }
  std::vector<Point1D> Query(const Range1D& q, size_t k,
                             QueryStats* stats = nullptr) const {
    (void)stats;
    cache_ = test::BruteTopK<Range1DProblem>(data_, q, k);
    return cache_;
  }

 private:
  std::vector<Point1D> data_;
  mutable std::vector<Point1D> cache_;  // lint: mutable-ok (marker above)
};
static_assert(serve::TopKStructure<MemoizedTopK>);
static_assert(!serve::ShareableTopKStructure<MemoizedTopK>);

// A leaf with the EM marker is rejected outright...
struct FakeEmTopK {
  using Element = Point1D;
  using Predicate = Range1D;
  static constexpr bool kExternalMemory = true;
  size_t size() const { return 0; }
  std::vector<Point1D> Query(const Range1D&, size_t, QueryStats*) const {
    return {};
  }
};
static_assert(!serve::ShareableTopKStructure<FakeEmTopK>);

// ...and the gate recurses through an exported substrate alias.
struct WrapsFakeEm {
  using Element = Point1D;
  using Predicate = Range1D;
  using Prioritized = FakeEmTopK;
  size_t size() const { return 0; }
  std::vector<Point1D> Query(const Range1D&, size_t, QueryStats*) const {
    return {};
  }
};
static_assert(!serve::ShareableTopKStructure<WrapsFakeEm>);

// The same wrapper WITHOUT the alias would sail through — the gate
// cannot see what a type hides. That is why the substrate-alias exports
// are pinned by the requires static_assert above and why new reductions
// must export theirs.
struct HidesFakeEm {
  using Element = Point1D;
  using Predicate = Range1D;
  size_t size() const { return 0; }
  std::vector<Point1D> Query(const Range1D&, size_t, QueryStats*) const {
    return {};
  }
 private:
  [[maybe_unused]] FakeEmTopK hidden_;
};
static_assert(serve::ShareableTopKStructure<HidesFakeEm>);

// The audit wrappers forward shareability through their substrate alias:
// auditing a RAM-backed reduction keeps it engine-shareable.
static_assert(serve::ShareableTopKStructure<CoreSetTopK<
    Range1DProblem,
    audit::CheckedPrioritized<PrioritySearchTree, Range1DProblem>>>);

// --- MonitoredQuery boundary semantics ----------------------------------

TEST(MonitoredQuery, BudgetBoundaries) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(100, &rng);
  PrioritySearchTree pst(data);
  const Range1D all{0.0, 1.0};

  auto r0 = MonitoredQuery(pst, all, kNegInf, 0, nullptr);
  EXPECT_TRUE(r0.hit_budget);
  EXPECT_TRUE(r0.elements.empty());

  // budget == |result|: every element is fetched but the budget is hit,
  // so the caller cannot distinguish completeness — exactly the paper's
  // "4K+1" idiom requires one extra slot.
  auto r100 = MonitoredQuery(pst, all, kNegInf, 100, nullptr);
  EXPECT_TRUE(r100.hit_budget);
  EXPECT_EQ(r100.elements.size(), 100u);

  auto r101 = MonitoredQuery(pst, all, kNegInf, 101, nullptr);
  EXPECT_FALSE(r101.hit_budget);
  EXPECT_EQ(r101.elements.size(), 100u);
}

TEST(MonitoredQuery, ChargesStats) {
  Rng rng(2);
  PrioritySearchTree pst(test::RandomPoints1D(100, &rng));
  QueryStats stats;
  MonitoredQuery(pst, Range1D{0.0, 1.0}, kNegInf, 50, &stats);
  EXPECT_EQ(stats.prioritized_queries, 1u);
  EXPECT_EQ(stats.elements_emitted, 50u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

// --- Determinism --------------------------------------------------------

TEST(Determinism, SameSeedSameAnswersAndStats) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(20000, &rng);
  ReductionOptions opts;
  opts.seed = 777;
  using S = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  S a(data, opts), b(data, opts);
  EXPECT_EQ(a.f(), b.f());
  EXPECT_EQ(a.num_chain_levels(), b.num_chain_levels());
  for (int trial = 0; trial < 20; ++trial) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    QueryStats sa, sb;
    auto ra = a.Query({lo, hi}, 25, &sa);
    auto rb = b.Query({lo, hi}, 25, &sb);
    EXPECT_EQ(test::IdsOf(ra), test::IdsOf(rb));
    EXPECT_EQ(sa.nodes_visited, sb.nodes_visited);
    EXPECT_EQ(sa.fallbacks, sb.fallbacks);
  }
}

TEST(Determinism, DifferentSeedsStillExact) {
  Rng rng(4);
  std::vector<Point1D> data = test::RandomPoints1D(10000, &rng);
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ReductionOptions opts;
    opts.seed = seed;
    SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> s(data, opts);
    auto got = s.Query({0.1, 0.9}, 40);
    auto want = test::BruteTopK<Range1DProblem>(data, {0.1, 0.9}, 40);
    EXPECT_EQ(test::IdsOf(got), test::IdsOf(want)) << "seed=" << seed;
  }
}

// --- Emission-order independence ----------------------------------------

// A deliberately hostile prioritized structure: correct result set, but
// emitted in ASCENDING weight order (the least helpful order possible).
class AscendingPri {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit AscendingPri(std::vector<Point1D> data) : data_(std::move(data)) {
    std::sort(data_.begin(), data_.end(), [](const auto& a, const auto& b) {
      return !HeavierThan(a, b);
    });
  }

  size_t size() const { return data_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return PrioritySearchTree::QueryCostBound(n, block_size);
  }

  template <typename Emit>
  void QueryPrioritized(const Range1D& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    AddNodes(stats, 1);
    for (const Point1D& p : data_) {  // ascending weight
      if (Range1DProblem::Matches(q, p) && MeetsThreshold(p, tau)) {
        if (!emit(p)) return;
      }
    }
  }

 private:
  std::vector<Point1D> data_;  // ascending by weight
};

static_assert(PrioritizedStructure<AscendingPri, Range1DProblem>);

// Every reduction must stay exact over the hostile emitter: nothing may
// assume descending (or any) emission order from a prioritized structure.
TEST(EmissionOrder, ReductionsExactOverAscendingEmitter) {
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(8000, &rng);
  CoreSetTopK<Range1DProblem, AscendingPri> thm1(data);
  SampledTopK<Range1DProblem, AscendingPri, RangeMax> thm2(data);
  BinarySearchTopK<Range1DProblem, AscendingPri> baseline(data);
  CountingTopK<Range1DProblem, AscendingPri, range1d::CountTree>
      counting(data);
  for (int trial = 0; trial < 15; ++trial) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    for (size_t k : {size_t{1}, size_t{20}, size_t{500}, size_t{8000}}) {
      auto want = test::BruteTopK<Range1DProblem>(data, {lo, hi}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({lo, hi}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query({lo, hi}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(baseline.Query({lo, hi}, k)),
                test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(counting.Query({lo, hi}, k)),
                test::IdsOf(want));
    }
  }
}

// --- Output ordering invariant -------------------------------------------

TEST(OutputOrder, AlwaysHeaviestFirst) {
  Rng rng(6);
  std::vector<Point1D> data = test::ClumpedPoints1D(5000, &rng);
  CoreSetTopK<Range1DProblem, PrioritySearchTree> thm1(data);
  SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> thm2(data);
  BinarySearchTopK<Range1DProblem, PrioritySearchTree> base(data);
  auto check_sorted = [](const std::vector<Point1D>& result) {
    for (size_t i = 1; i < result.size(); ++i) {
      ASSERT_TRUE(HeavierThan(result[i - 1], result[i]));
    }
  };
  for (int trial = 0; trial < 10; ++trial) {
    const double lo = rng.NextDouble() * 5000, hi = lo + 2000;
    check_sorted(thm1.Query({lo, hi}, 100));
    check_sorted(thm2.Query({lo, hi}, 100));
    check_sorted(base.Query({lo, hi}, 100));
  }
}

// --- Stats accumulation ---------------------------------------------------

TEST(QueryStatsTest, AccumulateAndReset) {
  QueryStats a, b;
  a.nodes_visited = 5;
  a.rounds = 2;
  b.nodes_visited = 7;
  b.fallbacks = 1;
  a += b;
  EXPECT_EQ(a.nodes_visited, 12u);
  EXPECT_EQ(a.rounds, 2u);
  EXPECT_EQ(a.fallbacks, 1u);
  a.Reset();
  EXPECT_EQ(a.nodes_visited, 0u);
  EXPECT_EQ(a.fallbacks, 0u);
}

}  // namespace
}  // namespace topk
