// Convex hull, extreme-point binary search, and onion peeling.

#include "halfspace/convex.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "halfspace/convex_layers.h"
#include "halfspace/point2.h"
#include "test_util.h"

namespace topk {
namespace {

using halfspace::ConvexHull;
using halfspace::ConvexLayers;
using halfspace::Halfplane;
using halfspace::HalfplaneProblem;
using halfspace::Point2W;

std::vector<Point2W> RandomPoints(size_t n, Rng* rng) {
  std::vector<Point2W> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Point2W{rng->NextDouble() * 2 - 1, rng->NextDouble() * 2 - 1,
                     rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

std::vector<Point2W> GridPoints(size_t side, Rng* rng) {
  std::vector<Point2W> out;
  uint64_t id = 1;
  for (size_t i = 0; i < side; ++i) {
    for (size_t j = 0; j < side; ++j) {
      out.push_back(Point2W{static_cast<double>(i), static_cast<double>(j),
                            rng->NextDouble() * 100, id++});
    }
  }
  return out;
}

double BruteMaxDot(const std::vector<Point2W>& pts, double nx, double ny) {
  double best = -1e300;
  for (const Point2W& p : pts) best = std::max(best, nx * p.x + ny * p.y);
  return best;
}

TEST(ConvexHull, SmallCases) {
  EXPECT_TRUE(ConvexHull(std::vector<Point2W>{}).empty());
  ConvexHull one({{1, 2, 0, 1}});
  EXPECT_EQ(one.num_vertices(), 1u);
  EXPECT_DOUBLE_EQ(one.MaxDot(1, 0), 1.0);
  ConvexHull two({{0, 0, 0, 1}, {1, 1, 0, 2}});
  EXPECT_EQ(two.num_vertices(), 2u);
  EXPECT_DOUBLE_EQ(two.MaxDot(1, 1), 2.0);
}

TEST(ConvexHull, CollinearInput) {
  std::vector<Point2W> pts;
  for (uint64_t i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(2 * i), 0,
                   i + 1});
  }
  ConvexHull hull(pts);
  EXPECT_EQ(hull.num_vertices(), 2u);  // strict hull: endpoints only
  EXPECT_DOUBLE_EQ(hull.MaxDot(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(hull.MaxDot(-1, 0), 0.0);
}

TEST(ConvexHull, VerticalLineInput) {
  std::vector<Point2W> pts;
  for (uint64_t i = 0; i < 8; ++i) {
    pts.push_back({1.0, static_cast<double>(i), 0, i + 1});
  }
  ConvexHull hull(pts);
  EXPECT_EQ(hull.num_vertices(), 2u);
  EXPECT_DOUBLE_EQ(hull.MaxDot(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(hull.MaxDot(0, -1), 0.0);
}

TEST(ConvexHull, ExtremeMatchesLinearScanOnLargeHulls) {
  // Points on a circle -> all are hull vertices -> exercises the binary
  // search path (m > 32).
  Rng rng(3);
  std::vector<Point2W> pts;
  const size_t m = 500;
  for (size_t i = 0; i < m; ++i) {
    const double a = 2 * 3.14159265358979 * static_cast<double>(i) /
                     static_cast<double>(m);
    pts.push_back({std::cos(a), std::sin(a), 0.0, i + 1});
  }
  ConvexHull hull(pts);
  ASSERT_GT(hull.num_vertices(), 32u);
  for (int trial = 0; trial < 500; ++trial) {
    const double a = rng.NextDouble() * 2 * 3.14159265358979;
    const double nx = std::cos(a), ny = std::sin(a);
    EXPECT_NEAR(hull.MaxDot(nx, ny), BruteMaxDot(pts, nx, ny), 1e-9);
  }
  // Axis directions (vertical-edge corner cases).
  for (auto [nx, ny] : {std::pair{1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0},
                        {0.0, -1.0}}) {
    EXPECT_NEAR(hull.MaxDot(nx, ny), BruteMaxDot(pts, nx, ny), 1e-9);
  }
}

TEST(ConvexHull, ExtremeOnGridWithVerticalEdges) {
  Rng rng(4);
  std::vector<Point2W> pts = GridPoints(30, &rng);  // big square grid
  ConvexHull hull(pts);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.NextDouble() * 2 * 3.14159265358979;
    const double nx = std::cos(a), ny = std::sin(a);
    EXPECT_NEAR(hull.MaxDot(nx, ny), BruteMaxDot(pts, nx, ny), 1e-9);
  }
}

TEST(ConvexLayers, EveryPointOnExactlyOneLayer) {
  Rng rng(5);
  std::vector<Point2W> pts = RandomPoints(1000, &rng);
  ConvexLayers layers(pts);
  size_t total = 0;
  std::vector<uint64_t> seen;
  for (size_t l = 0; l < layers.num_layers(); ++l) {
    total += layers.layer(l).num_vertices();
    for (const Point2W& v : layers.layer(l).ring()) seen.push_back(v.id);
  }
  EXPECT_EQ(total, pts.size());
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(ConvexLayers, DuplicatePointsSurviveToDeeperLayers) {
  std::vector<Point2W> pts;
  for (uint64_t i = 1; i <= 6; ++i) pts.push_back({1.0, 1.0, 0, i});
  ConvexLayers layers(pts);
  size_t total = 0;
  for (size_t l = 0; l < layers.num_layers(); ++l) {
    total += layers.layer(l).num_vertices();
  }
  EXPECT_EQ(total, 6u);
}

TEST(ConvexLayers, ReportMatchesBruteForce) {
  Rng rng(6);
  for (size_t n : {size_t{1}, size_t{2}, size_t{40}, size_t{500}}) {
    std::vector<Point2W> pts = RandomPoints(n, &rng);
    ConvexLayers layers(pts);
    for (int trial = 0; trial < 40; ++trial) {
      const double a = rng.NextDouble() * 2 * 3.14159265358979;
      const Halfplane h{std::cos(a), std::sin(a),
                        rng.NextDouble() * 2 - 1};
      std::vector<Point2W> got;
      layers.Report(
          h,
          [&got](const Point2W& p) {
            got.push_back(p);
            return true;
          },
          nullptr);
      std::vector<Point2W> want;
      for (const Point2W& p : pts) {
        if (HalfplaneProblem::Matches(h, p)) want.push_back(p);
      }
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
          << "n=" << n << " h=(" << h.nx << "," << h.ny << "," << h.c << ")";
    }
  }
}

TEST(ConvexLayers, ReportOnGrid) {
  Rng rng(7);
  std::vector<Point2W> pts = GridPoints(12, &rng);
  ConvexLayers layers(pts);
  for (int trial = 0; trial < 60; ++trial) {
    const double a = rng.NextDouble() * 2 * 3.14159265358979;
    const Halfplane h{std::cos(a), std::sin(a), rng.NextDouble() * 12 - 2};
    std::vector<Point2W> got;
    layers.Report(
        h,
        [&got](const Point2W& p) {
          got.push_back(p);
          return true;
        },
        nullptr);
    std::vector<Point2W> want;
    for (const Point2W& p : pts) {
      if (HalfplaneProblem::Matches(h, p)) want.push_back(p);
    }
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
  }
}

TEST(ConvexLayers, EarlyTermination) {
  Rng rng(8);
  ConvexLayers layers(RandomPoints(400, &rng));
  size_t seen = 0;
  const bool finished = layers.Report(
      Halfplane{1, 0, -10},  // everything qualifies
      [&seen](const Point2W&) {
        ++seen;
        return seen < 11;
      },
      nullptr);
  EXPECT_FALSE(finished);
  EXPECT_EQ(seen, 11u);
}

}  // namespace
}  // namespace topk
