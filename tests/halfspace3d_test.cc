// 3D halfspace reporting over the kd-tree (Theorem 3's d >= 3 story)
// plus degenerate-input stress for every kd-tree-backed problem.

#include "halfspace/halfspace3d.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "circle/circular.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "dominance/point3.h"
#include "test_util.h"

namespace topk {
namespace {

using dominance::Point3;
using halfspace::Halfspace3;
using halfspace::Halfspace3KdTree;
using halfspace::Halfspace3Problem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Point3> RandomPoints3(size_t n, Rng* rng) {
  std::vector<Point3> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Point3{rng->NextDouble() * 2 - 1, rng->NextDouble() * 2 - 1,
                    rng->NextDouble() * 2 - 1, rng->NextDouble() * 1000.0,
                    i + 1};
  }
  return out;
}

Halfspace3 RandomHalfspace(Rng* rng) {
  // Random direction via normalized gaussian-ish (three uniforms are
  // fine for coverage purposes).
  const double a = rng->NextDouble() * 6.28318530718;
  const double z = rng->NextDouble() * 2 - 1;
  const double r = std::sqrt(std::max(0.0, 1 - z * z));
  return {r * std::cos(a), r * std::sin(a), z, rng->NextDouble() * 2 - 1};
}

TEST(Halfspace3, EmptyInput) {
  Halfspace3KdTree t({});
  EXPECT_FALSE(t.QueryMax({1, 0, 0, 0}).has_value());
}

struct Param {
  size_t n;
  uint64_t seed;
};

class Halfspace3Sweep : public ::testing::TestWithParam<Param> {};

TEST_P(Halfspace3Sweep, PrioritizedAndMaxMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point3> data = RandomPoints3(p.n, &rng);
  Halfspace3KdTree t(data);
  for (int trial = 0; trial < 40; ++trial) {
    const Halfspace3 q = RandomHalfspace(&rng);
    const double tau_pool[] = {kNegInf, 100.0, 600.0, 950.0};
    const double tau = tau_pool[trial % 4];
    std::vector<Point3> got;
    t.QueryPrioritized(q, tau, [&got](const Point3& e) {
      got.push_back(e);
      return true;
    });
    auto want = test::BrutePrioritized<Halfspace3Problem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));

    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<Halfspace3Problem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Halfspace3Sweep,
                         ::testing::Values(Param{1, 1}, Param{2, 2},
                                           Param{64, 3}, Param{1000, 4},
                                           Param{4000, 5}));

TEST(Halfspace3, BothReductionsMatchBrute) {
  Rng rng(7);
  std::vector<Point3> data = RandomPoints3(3000, &rng);
  CoreSetTopK<Halfspace3Problem, Halfspace3KdTree> thm1(data);
  SampledTopK<Halfspace3Problem, Halfspace3KdTree, Halfspace3KdTree> thm2(
      data);
  for (int trial = 0; trial < 8; ++trial) {
    const Halfspace3 q = RandomHalfspace(&rng);
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
      auto want = test::BruteTopK<Halfspace3Problem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want));
    }
  }
}

// Degenerate inputs through the kd-tree problems: all points identical,
// all collinear, all coplanar.
TEST(KdTreeDegenerate, IdenticalPoints) {
  std::vector<Point3> data;
  for (uint64_t i = 1; i <= 300; ++i) {
    data.push_back({0.5, 0.5, 0.5, static_cast<double>(i), i});
  }
  Halfspace3KdTree t(data);
  auto got = t.QueryMax({1, 0, 0, 0.5});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 300u);
  EXPECT_FALSE(t.QueryMax({1, 0, 0, 0.51}).has_value());

  SampledTopK<Halfspace3Problem, Halfspace3KdTree, Halfspace3KdTree> thm2(
      data);
  auto top = thm2.Query({1, 0, 0, 0.0}, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].id, 300u);
  EXPECT_EQ(top[4].id, 296u);
}

TEST(KdTreeDegenerate, CollinearPoints) {
  Rng rng(8);
  std::vector<Point3> data;
  for (uint64_t i = 1; i <= 500; ++i) {
    const double v = static_cast<double>(i) / 500.0;
    data.push_back({v, v, v, rng.NextDouble() * 100, i});
  }
  Halfspace3KdTree t(data);
  for (int trial = 0; trial < 20; ++trial) {
    const Halfspace3 q = RandomHalfspace(&rng);
    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<Halfspace3Problem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

TEST(KdTreeDegenerate, CoincidentCirclePoints) {
  std::vector<circle::WPoint2> data;
  for (uint64_t i = 1; i <= 200; ++i) {
    data.push_back({1.0, 2.0, static_cast<double>(i % 13), i});
  }
  circle::CircularKdTree t(data);
  auto got = t.QueryMax({1.0, 2.0, 0.0});
  auto want = test::BruteMax<circle::CircularProblem>(data, {1.0, 2.0, 0.0});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, want->id);
  size_t count = 0;
  t.QueryPrioritized({1.0, 2.0, 0.0}, kNegInf,
                     [&count](const circle::WPoint2&) {
                       ++count;
                       return true;
                     });
  EXPECT_EQ(count, 200u);
}

}  // namespace
}  // namespace topk
