// Write-ahead log: framing, commit semantics, and the torn-tail
// contract (ISSUE satellite) — for EVERY truncation length within the
// last record of a committed log, Replay recovers exactly the pre-tail
// state, never aborts, truncates the torn tail, and a re-replay over
// the truncated log is a byte-for-byte no-op. Byte-level bit flips over
// the whole last record get the same treatment via the CRC.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "em/storage.h"
#include "em/wal.h"
#include "fault/failpoint.h"
#include "fault/faulty_storage.h"

namespace topk {
namespace {

using em::IoResult;
using em::MemStorage;
using em::WriteAheadLog;

// Deterministic payload for record `seq`: seq bytes of a seq-derived
// pattern (distinct lengths exercise framing at every alignment).
std::vector<uint8_t> PayloadFor(uint64_t seq) {
  std::vector<uint8_t> p(3 + static_cast<size_t>(seq) * 5);
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<uint8_t>(seq * 37 + i * 11);
  }
  return p;
}

struct Replayed {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> records;
  WriteAheadLog::ReplayStats stats;
};

Replayed ReplayAll(WriteAheadLog* wal, uint64_t after_seq = 0) {
  Replayed out;
  out.stats = wal->Replay(
      after_seq, [&](uint64_t seq, const uint8_t* p, uint32_t n) {
        out.records.emplace_back(seq, std::vector<uint8_t>(p, p + n));
      });
  return out;
}

// Appends records 1..count and commits; returns each record's
// exclusive end offset in the log (end_of[i] = bytes after record i+1).
std::vector<uint64_t> AppendCommitted(WriteAheadLog* wal, uint64_t count) {
  std::vector<uint64_t> end_of;
  for (uint64_t seq = 1; seq <= count; ++seq) {
    const std::vector<uint8_t> p = PayloadFor(seq);
    EXPECT_TRUE(wal->Append(seq, p.data(),
                            static_cast<uint32_t>(p.size())));
    end_of.push_back(wal->bytes());
  }
  EXPECT_TRUE(wal->Commit());
  return end_of;
}

TEST(Wal, AppendCommitReplayRoundTrip) {
  MemStorage storage;
  WriteAheadLog wal(&storage);
  AppendCommitted(&wal, 5);

  Replayed r = ReplayAll(&wal);
  ASSERT_EQ(r.records.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(r.records[seq - 1].first, seq);
    EXPECT_EQ(r.records[seq - 1].second, PayloadFor(seq));
  }
  EXPECT_EQ(r.stats.valid_records, 5u);
  EXPECT_EQ(r.stats.visited, 5u);
  EXPECT_EQ(r.stats.last_seq, 5u);
  EXPECT_EQ(r.stats.truncated_bytes, 0u);

  // The idempotence gate: records at or below after_seq are scanned
  // (they still count as valid) but not visited.
  Replayed partial = ReplayAll(&wal, /*after_seq=*/3);
  ASSERT_EQ(partial.records.size(), 2u);
  EXPECT_EQ(partial.records[0].first, 4u);
  EXPECT_EQ(partial.stats.valid_records, 5u);
  Replayed none = ReplayAll(&wal, /*after_seq=*/5);
  EXPECT_TRUE(none.records.empty());
  EXPECT_EQ(none.stats.valid_records, 5u);
}

TEST(Wal, EmptyLogReplaysNothing) {
  MemStorage storage;
  WriteAheadLog wal(&storage);
  Replayed r = ReplayAll(&wal);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.stats.valid_records, 0u);
  EXPECT_EQ(r.stats.truncated_bytes, 0u);
}

// The satellite's core sweep: truncate a committed log at EVERY byte
// length (covering in particular every cut within the last record) and
// demand exact pre-tail recovery plus idempotent re-replay.
TEST(Wal, TruncationSweepRecoversExactPreTailState) {
  MemStorage golden;
  WriteAheadLog golden_wal(&golden);
  const std::vector<uint64_t> end_of = AppendCommitted(&golden_wal, 4);
  const std::vector<uint8_t> image = golden.durable_bytes();
  ASSERT_EQ(image.size(), end_of.back());

  for (uint64_t cut = 0; cut <= image.size(); ++cut) {
    MemStorage storage;
    if (cut > 0) {
      ASSERT_EQ(storage.Write(0, image.data(), cut), IoResult::kOk);
    }
    ASSERT_EQ(storage.Sync(), IoResult::kOk);

    // Records wholly within the cut survive; everything else is tail.
    uint64_t survivors = 0;
    while (survivors < end_of.size() && end_of[survivors] <= cut) {
      ++survivors;
    }
    const uint64_t keep = survivors == 0 ? 0 : end_of[survivors - 1];

    WriteAheadLog wal(&storage);
    Replayed r = ReplayAll(&wal);
    ASSERT_EQ(r.records.size(), survivors) << "cut=" << cut;
    for (uint64_t i = 0; i < survivors; ++i) {
      ASSERT_EQ(r.records[i].first, i + 1) << "cut=" << cut;
      ASSERT_EQ(r.records[i].second, PayloadFor(i + 1)) << "cut=" << cut;
    }
    ASSERT_EQ(r.stats.truncated_bytes, cut - keep) << "cut=" << cut;
    ASSERT_EQ(wal.bytes(), keep) << "cut=" << cut;

    // Idempotent re-replay: same records, nothing more to truncate.
    Replayed again = ReplayAll(&wal);
    ASSERT_EQ(again.records.size(), survivors) << "cut=" << cut;
    ASSERT_EQ(again.stats.truncated_bytes, 0u) << "cut=" << cut;
    ASSERT_EQ(wal.bytes(), keep) << "cut=" << cut;

    // And the log remains appendable: the next record replays cleanly.
    const std::vector<uint8_t> next = PayloadFor(survivors + 1);
    ASSERT_TRUE(wal.Append(survivors + 1, next.data(),
                           static_cast<uint32_t>(next.size())));
    ASSERT_TRUE(wal.Commit());
    Replayed extended = ReplayAll(&wal);
    ASSERT_EQ(extended.records.size(), survivors + 1) << "cut=" << cut;
    ASSERT_EQ(extended.records.back().first, survivors + 1);
  }
}

// Every single-bit corruption anywhere in the last record — header
// length, CRC, seq, or payload — costs exactly that record: the CRC (or
// short-record framing, when the flipped length field overshoots)
// truncates it, earlier records replay intact, and a re-replay is a
// no-op.
TEST(Wal, BitFlipSweepOverLastRecordDropsExactlyThatRecord) {
  MemStorage golden;
  WriteAheadLog golden_wal(&golden);
  const std::vector<uint64_t> end_of = AppendCommitted(&golden_wal, 3);
  const std::vector<uint8_t> image = golden.durable_bytes();
  const uint64_t last_begin = end_of[1];

  for (uint64_t byte = last_begin; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = image;
      corrupt[byte] = static_cast<uint8_t>(
          corrupt[byte] ^ (uint8_t{1} << bit));
      MemStorage storage;
      ASSERT_EQ(storage.Write(0, corrupt.data(), corrupt.size()),
                IoResult::kOk);
      ASSERT_EQ(storage.Sync(), IoResult::kOk);

      WriteAheadLog wal(&storage);
      Replayed r = ReplayAll(&wal);
      ASSERT_EQ(r.records.size(), 2u) << "byte=" << byte << " bit=" << bit;
      ASSERT_EQ(r.records[1].second, PayloadFor(2));
      ASSERT_EQ(wal.bytes(), last_begin) << "byte=" << byte;
      Replayed again = ReplayAll(&wal);
      ASSERT_EQ(again.stats.truncated_bytes, 0u) << "byte=" << byte;
      ASSERT_EQ(again.records.size(), 2u) << "byte=" << byte;
    }
  }
}

// A torn append (fault-injected prefix landing + reported failure)
// rolls itself back: the log stays clean for the NEXT append, and
// nothing of the torn record is ever replayed.
TEST(Wal, TornAppendRollsBackAndLogStaysAppendable) {
  MemStorage storage;
  fault::Injector inj(7);
  fault::FaultyStorage faulty(&storage, &inj);
  WriteAheadLog wal(&faulty);
  AppendCommitted(&wal, 3);
  const uint64_t clean_bytes = wal.bytes();

  inj.Arm(fault::kTornWriteSite, {.every_nth = 1});
  const std::vector<uint8_t> p4 = PayloadFor(4);
  EXPECT_FALSE(wal.Append(4, p4.data(), static_cast<uint32_t>(p4.size())));
  EXPECT_EQ(faulty.torn_writes(), 1u);
  EXPECT_EQ(wal.bytes(), clean_bytes);  // rollback removed the fragment
  inj.DisarmAll();

  // The retried append lands where the torn one briefly lived.
  ASSERT_TRUE(wal.Append(4, p4.data(), static_cast<uint32_t>(p4.size())));
  ASSERT_TRUE(wal.Commit());
  Replayed r = ReplayAll(&wal);
  ASSERT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.records.back().first, 4u);
  EXPECT_EQ(r.records.back().second, p4);
  EXPECT_EQ(r.stats.truncated_bytes, 0u);
}

// A short fsync means NOT committed: the record must not survive a
// crash that drops the un-synced tail, and the commit-failure rollback
// keeps the volatile log clean for the retry.
TEST(Wal, ShortSyncIsNotACommit) {
  MemStorage storage;
  fault::Injector inj(8);
  fault::FaultyStorage faulty(&storage, &inj);
  WriteAheadLog wal(&faulty);
  AppendCommitted(&wal, 2);

  inj.Arm(fault::kShortSyncSite, {.every_nth = 1});
  const std::vector<uint8_t> p3 = PayloadFor(3);
  ASSERT_TRUE(wal.Append(3, p3.data(), static_cast<uint32_t>(p3.size())));
  EXPECT_FALSE(wal.Commit());
  EXPECT_EQ(faulty.short_syncs(), 1u);
  inj.DisarmAll();

  // Crash with nothing flushed since the last good sync: records 1-2.
  storage.SimulateCrash(/*flushed_ops=*/0);
  WriteAheadLog reopened(&storage);
  Replayed r = ReplayAll(&reopened);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.stats.last_seq, 2u);
}

TEST(Wal, ResetEmptiesDurably) {
  MemStorage storage;
  WriteAheadLog wal(&storage);
  AppendCommitted(&wal, 3);
  ASSERT_TRUE(wal.Reset());
  EXPECT_EQ(wal.bytes(), 0u);
  storage.SimulateCrash(/*flushed_ops=*/0);  // reset already synced
  Replayed r = ReplayAll(&wal);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.stats.truncated_bytes, 0u);
}

}  // namespace
}  // namespace topk
