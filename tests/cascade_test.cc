// Fractional cascading: positions must match independent binary
// searches at every node of every root-to-leaf walk; the cascaded 2D
// stabbing max must agree with the plain one and with brute force.

#include "common/cascade.h"

#include <array>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sampled_topk.h"
#include "enclosure/enclosure_max_fc.h"
#include "enclosure/enclosure_structures.h"
#include "enclosure/rect.h"
#include "test_util.h"

namespace topk {
namespace {

using enclosure::EnclosureMax;
using enclosure::EnclosureMaxCascading;
using enclosure::EnclosureProblem;
using enclosure::Point2;
using enclosure::Rect;

// Builds a random binary tree with random catalogs and checks the
// cascading cursor against std::lower_bound at every node.
TEST(FractionalCascading, MatchesDirectSearchOnRandomTrees) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t num_nodes = 1 + rng.Below(60);
    std::vector<std::vector<double>> catalogs(num_nodes);
    std::vector<std::array<int32_t, 2>> children(
        num_nodes, std::array<int32_t, 2>{-1, -1});
    // Nodes 1..num_nodes-1 attach to a random earlier node with a free
    // slot; construction keeps it a forest rooted at 0.
    for (size_t v = 1; v < num_nodes; ++v) {
      while (true) {
        const size_t parent = rng.Below(v);
        const int side = static_cast<int>(rng.Below(2));
        if (children[parent][side] < 0) {
          children[parent][side] = static_cast<int32_t>(v);
          break;
        }
        if (children[parent][0] >= 0 && children[parent][1] >= 0) continue;
      }
    }
    for (auto& catalog : catalogs) {
      const size_t m = rng.Below(30);
      for (size_t i = 0; i < m; ++i) {
        catalog.push_back(static_cast<double>(rng.Below(50)));
      }
      std::sort(catalog.begin(), catalog.end());
    }
    FractionalCascading fc(catalogs, children, 0);

    for (int q = 0; q < 40; ++q) {
      const double y = static_cast<double>(rng.Below(52)) - 1.0;
      // Random walk from the root.
      FractionalCascading::Cursor cur = fc.Start(y);
      int32_t v = 0;
      while (v >= 0) {
        const size_t expected = static_cast<size_t>(
            std::lower_bound(catalogs[v].begin(), catalogs[v].end(), y) -
            catalogs[v].begin());
        ASSERT_EQ(fc.NativeLowerBound(cur), expected)
            << "node " << v << " y=" << y;
        const int side = static_cast<int>(rng.Below(2));
        const int32_t next = children[v][side];
        if (next < 0) break;
        cur = fc.Descend(cur, side, y);
        v = next;
      }
    }
  }
}

TEST(FractionalCascading, AugmentedSizeWithinTwiceNative) {
  Rng rng(2);
  const size_t num_nodes = 127;  // complete tree
  std::vector<std::vector<double>> catalogs(num_nodes);
  std::vector<std::array<int32_t, 2>> children(
      num_nodes, std::array<int32_t, 2>{-1, -1});
  for (size_t v = 0; 2 * v + 2 < num_nodes; ++v) {
    children[v] = {static_cast<int32_t>(2 * v + 1),
                   static_cast<int32_t>(2 * v + 2)};
  }
  size_t native_total = 0;
  for (auto& catalog : catalogs) {
    const size_t m = 5 + rng.Below(20);
    native_total += m;
    for (size_t i = 0; i < m; ++i) catalog.push_back(rng.NextDouble());
    std::sort(catalog.begin(), catalog.end());
  }
  FractionalCascading fc(catalogs, children, 0);
  EXPECT_LE(fc.augmented_size(), 2 * native_total + num_nodes);
}

std::vector<Rect> RandomRects(size_t n, Rng* rng, double span = 0.2) {
  std::vector<Rect> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble(), y = rng->NextDouble();
    out[i] = Rect{x, x + rng->NextDouble() * span,
                  y, y + rng->NextDouble() * span,
                  rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

TEST(EnclosureMaxCascading, EmptyAndSingle) {
  EnclosureMaxCascading empty({});
  EXPECT_FALSE(empty.QueryMax({0.5, 0.5}).has_value());
  EnclosureMaxCascading one({{0, 1, 0, 1, 5.0, 1}});
  EXPECT_TRUE(one.QueryMax({0.5, 0.5}).has_value());
  EXPECT_TRUE(one.QueryMax({1, 1}).has_value());
  EXPECT_FALSE(one.QueryMax({1.1, 0.5}).has_value());
}

TEST(EnclosureMaxCascading, MatchesPlainAndBrute) {
  Rng rng(3);
  for (size_t n : {size_t{1}, size_t{50}, size_t{500}, size_t{3000}}) {
    std::vector<Rect> data = RandomRects(n, &rng);
    EnclosureMax plain(data);
    EnclosureMaxCascading cascaded(data);
    for (int trial = 0; trial < 60; ++trial) {
      const Point2 q{rng.NextDouble() * 1.2, rng.NextDouble() * 1.2};
      auto want = test::BruteMax<EnclosureProblem>(data, q);
      auto got_plain = plain.QueryMax(q);
      auto got_fc = cascaded.QueryMax(q);
      ASSERT_EQ(got_fc.has_value(), want.has_value()) << "n=" << n;
      if (want.has_value()) {
        ASSERT_EQ(got_fc->id, want->id) << "n=" << n;
        ASSERT_EQ(got_plain->id, want->id) << "n=" << n;
      }
    }
    // Exact corners (catalog boundary cases for the cascaded search).
    for (size_t i = 0; i < std::min<size_t>(n, 25); ++i) {
      for (const Point2& q : {Point2{data[i].x1, data[i].y1},
                              Point2{data[i].x2, data[i].y2}}) {
        auto want = test::BruteMax<EnclosureProblem>(data, q);
        auto got = cascaded.QueryMax(q);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want.has_value()) {
          ASSERT_EQ(got->id, want->id);
        }
      }
    }
  }
}

// The cascaded structure is a drop-in max structure for Theorem 2.
TEST(EnclosureMaxCascading, WorksUnderSampledTopK) {
  Rng rng(4);
  std::vector<Rect> data = RandomRects(2000, &rng, 0.4);
  SampledTopK<EnclosureProblem, enclosure::EnclosurePrioritized,
              EnclosureMaxCascading>
      thm2(data);
  for (int trial = 0; trial < 8; ++trial) {
    const Point2 q{rng.NextDouble(), rng.NextDouble()};
    for (size_t k : {size_t{1}, size_t{20}, size_t{300}}) {
      auto want = test::BruteTopK<EnclosureProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want));
    }
  }
}

}  // namespace
}  // namespace topk
