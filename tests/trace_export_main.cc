// Emits a live engine's metrics JSON and Chrome trace JSON for
// tests/tools/trace_roundtrip.py, which re-parses both with a real JSON
// parser and asserts the cost-attribution contract end to end: per-span
// self counts summed over every tracer equal the merged QueryStats
// totals field by field. Also emits a synthetic saturated-counter
// snapshot so the renderer's no-truncation guarantee is validated by
// json.loads, not just by substring checks.
//
// Output (one JSON document per line, prefixed by a label):
//   metrics_json {...}
//   chrome_trace {...}
//   saturated_json {...}

#include <cstdint>
#include <cstdio>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/result.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

std::vector<Point1D> MakeData(size_t n, Rng* rng) {
  std::vector<Point1D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i].x = rng->NextDouble();
    pts[i].weight = rng->NextDouble() * 1000.0;
    pts[i].id = i + 1;
  }
  return pts;
}

int Run() {
  Rng rng(42);
  CoreSetTopK<Range1DProblem, PrioritySearchTree> structure(
      MakeData(8192, &rng));

  serve::Metrics metrics;
  serve::QueryEngine<CoreSetTopK<Range1DProblem, PrioritySearchTree>>
      engine(&structure,
             {.num_threads = 2,
              .trace_capacity = size_t{1} << 16,
              .slow_query_ns = 1},
             &metrics);

  std::vector<serve::Request<Range1D>> requests;
  for (size_t i = 0; i < 64; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    serve::Request<Range1D> r{{lo, hi}, 1 + i % 32};
    // A few requests exercise the budgeted (staged-doubling) path so
    // its spans participate in the roundtrip too.
    if (i % 8 == 0) r.cost_budget = 1 << 20;  // generous: completes
    requests.push_back(r);
  }
  const auto results = engine.QueryBatch(requests);
  TOPK_CHECK_EQ(results.size(), requests.size());
  for (size_t t = 0; t < engine.num_tracers(); ++t) {
    TOPK_CHECK_EQ(engine.tracer(t).dropped(), 0u);
  }

  std::printf("metrics_json %s\n", metrics.ToJson().c_str());
  std::printf("chrome_trace %s\n", engine.ChromeTraceJson().c_str());

  // Saturated counters: the renderer must produce parseable JSON even
  // at the extremes the old fixed-size buffer truncated.
  constexpr uint64_t kSat = std::numeric_limits<uint64_t>::max();
  serve::MetricsSnapshot sat;
  sat.queries = kSat;
  sat.batches = kSat;
  sat.ok = kSat;
  sat.degraded = kSat;
  sat.shed = kSat;
  sat.deadline_exceeded = kSat;
  QueryStats::ForEachField(
      [&sat](const char*, auto member) { sat.stats.*member = kSat; });
  for (int i = 0; i < 4; ++i) sat.latency.Record(kSat);
  for (uint64_t i = 0; i < serve::MetricsSnapshot::kMaxSlowQueries; ++i) {
    sat.RecordSlow({kSat - i, kSat, kSat, kSat,
                    serve::ResultStatus::kDeadlineExceeded});
  }
  std::printf("saturated_json %s\n", serve::ToJson(sat).c_str());
  return 0;
}

}  // namespace
}  // namespace topk

int main() { return topk::Run(); }
