#include "range1d/range_max.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

TEST(RangeMax, EmptyInput) {
  RangeMax rm({});
  EXPECT_EQ(rm.size(), 0u);
  EXPECT_FALSE(rm.QueryMax({0, 1}).has_value());
}

TEST(RangeMax, SinglePoint) {
  RangeMax rm({{0.5, 3.0, 9}});
  auto hit = rm.QueryMax({0.0, 1.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 9u);
  EXPECT_FALSE(rm.QueryMax({0.6, 1.0}).has_value());
  EXPECT_FALSE(rm.QueryMax({0.0, 0.4}).has_value());
  EXPECT_TRUE(rm.QueryMax({0.5, 0.5}).has_value());
}

TEST(RangeMax, EmptyRangeBetweenPoints) {
  RangeMax rm({{0.1, 1, 1}, {0.9, 2, 2}});
  EXPECT_FALSE(rm.QueryMax({0.2, 0.8}).has_value());
  EXPECT_FALSE(rm.QueryMax({0.95, 0.05}).has_value());  // inverted range
}

struct Param {
  size_t n;
  uint64_t seed;
  bool clumped;
};

class RangeMaxSweep : public ::testing::TestWithParam<Param> {};

TEST_P(RangeMaxSweep, MatchesBruteForce) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = p.clumped
                                  ? test::ClumpedPoints1D(p.n, &rng)
                                  : test::RandomPoints1D(p.n, &rng);
  RangeMax rm(data);
  const double xmax = p.clumped ? static_cast<double>(p.n) : 1.0;
  for (int trial = 0; trial < 100; ++trial) {
    double a = rng.NextDouble() * xmax;
    double b = rng.NextDouble() * xmax;
    if (a > b) std::swap(a, b);
    auto got = rm.QueryMax({a, b});
    auto want = test::BruteMax<Range1DProblem>(data, {a, b});
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      EXPECT_EQ(got->id, want->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RangeMaxSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{5, 3, false}, Param{33, 4, false},
                      Param{256, 5, false}, Param{1000, 6, false},
                      Param{1023, 7, false}, Param{500, 8, true},
                      Param{2048, 9, true}));

}  // namespace
}  // namespace topk
