// Theorem 2 reduction: exactness across k regimes, round accounting,
// and behaviour on tiny inputs (no sample levels).

#include "core/sampled_topk.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

// Under -DTOPK_AUDIT=ON both substrates are audit wrappers (contract
// verification on every prioritized/max query in the sweep).
using TopK = SampledTopK<
    Range1DProblem,
    test::MaybeAudited<PrioritySearchTree, Range1DProblem>,
    test::MaybeAuditedMax<RangeMax, Range1DProblem>>;

TEST(SampledTopK, EmptyInput) {
  TopK topk({});
  EXPECT_TRUE(topk.Query({0, 1}, 5).empty());
  EXPECT_EQ(topk.num_sample_levels(), 0u);
}

TEST(SampledTopK, TinyInputHasNoLevelsButAnswers) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(50, &rng);
  TopK topk(data);
  EXPECT_EQ(topk.num_sample_levels(), 0u);  // n/4 < B * Q_max
  auto got = topk.Query({0.0, 1.0}, 5);
  auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, 5);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

TEST(SampledTopK, LevelLadderGrowsGeometrically) {
  Rng rng(2);
  TopK topk(test::RandomPoints1D(100000, &rng));
  ASSERT_GT(topk.num_sample_levels(), 1u);
  // Expected |R_i| = n / K_i decays geometrically; check loosely on the
  // endpoints.
  EXPECT_GT(topk.sample_level_size(0),
            topk.sample_level_size(topk.num_sample_levels() - 1));
}

TEST(SampledTopK, RoundsAreCounted) {
  Rng rng(3);
  TopK topk(test::RandomPoints1D(50000, &rng));
  QueryStats stats;
  topk.Query({0.0, 1.0}, 100, &stats);
  EXPECT_GE(stats.rounds + stats.full_scans, 1u);
}

struct Param {
  size_t n;
  uint64_t seed;
};

class SampledSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SampledSweep, MatchesBruteForceAcrossKRegimes) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = test::RandomPoints1D(p.n, &rng);
  ReductionOptions opts;
  opts.seed = p.seed * 31;
  TopK topk(data, opts);
  topk.AuditInvariants();

  std::vector<size_t> ks = {1, 2, 7, 64, 100, 1000, p.n / 2, p.n};
  for (int trial = 0; trial < 12; ++trial) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    if (trial % 4 == 0) {
      a = 0.0;
      b = 1.0;
    }
    const Range1D q{a, b};
    for (size_t k : ks) {
      if (k == 0) continue;
      auto got = topk.Query(q, k);
      auto want = test::BruteTopK<Range1DProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
          << "n=" << p.n << " k=" << k << " q=[" << a << "," << b << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampledSweep,
                         ::testing::Values(Param{1, 1}, Param{10, 2},
                                           Param{100, 3}, Param{1000, 4},
                                           Param{5000, 5}, Param{30000, 6},
                                           Param{100000, 7}));

}  // namespace
}  // namespace topk
