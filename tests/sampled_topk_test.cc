// Theorem 2 reduction: exactness across k regimes, round accounting,
// and behaviour on tiny inputs (no sample levels).

#include "core/sampled_topk.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/reduction_options.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

// Under -DTOPK_AUDIT=ON both substrates are audit wrappers (contract
// verification on every prioritized/max query in the sweep).
using TopK = SampledTopK<
    Range1DProblem,
    test::MaybeAudited<PrioritySearchTree, Range1DProblem>,
    test::MaybeAuditedMax<RangeMax, Range1DProblem>>;

// Dynamic instantiation for the update sweeps; the audit wrappers keep
// a brute-force mirror in lockstep through Insert/Erase and expose
// ForEach, so the converse membership audit runs under TOPK_AUDIT.
using DynTopK = SampledTopK<
    Range1DProblem,
    test::MaybeAudited<DynamicPst, Range1DProblem>,
    test::MaybeAuditedMax<DynamicRangeMax, Range1DProblem>>;

TEST(SampledTopK, EmptyInput) {
  TopK topk({});
  EXPECT_TRUE(topk.Query({0, 1}, 5).empty());
  EXPECT_EQ(topk.num_sample_levels(), 0u);
}

TEST(SampledTopK, TinyInputHasNoLevelsButAnswers) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(50, &rng);
  TopK topk(data);
  EXPECT_EQ(topk.num_sample_levels(), 0u);  // n/4 < B * Q_max
  auto got = topk.Query({0.0, 1.0}, 5);
  auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, 5);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

TEST(SampledTopK, LevelLadderGrowsGeometrically) {
  Rng rng(2);
  TopK topk(test::RandomPoints1D(100000, &rng));
  ASSERT_GT(topk.num_sample_levels(), 1u);
  // Expected |R_i| = n / K_i decays geometrically; check loosely on the
  // endpoints.
  EXPECT_GT(topk.sample_level_size(0),
            topk.sample_level_size(topk.num_sample_levels() - 1));
}

TEST(SampledTopK, RoundsAreCounted) {
  Rng rng(3);
  TopK topk(test::RandomPoints1D(50000, &rng));
  QueryStats stats;
  topk.Query({0.0, 1.0}, 100, &stats);
  EXPECT_GE(stats.rounds + stats.full_scans, 1u);
}

struct Param {
  size_t n;
  uint64_t seed;
};

class SampledSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SampledSweep, MatchesBruteForceAcrossKRegimes) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = test::RandomPoints1D(p.n, &rng);
  ReductionOptions opts;
  opts.seed = p.seed * 31;
  TopK topk(data, opts);
  topk.AuditInvariants();

  std::vector<size_t> ks = {1, 2, 7, 64, 100, 1000, p.n / 2, p.n};
  for (int trial = 0; trial < 12; ++trial) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    if (trial % 4 == 0) {
      a = 0.0;
      b = 1.0;
    }
    const Range1D q{a, b};
    for (size_t k : ks) {
      if (k == 0) continue;
      auto got = topk.Query(q, k);
      auto want = test::BruteTopK<Range1DProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
          << "n=" << p.n << " k=" << k << " q=[" << a << "," << b << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampledSweep,
                         ::testing::Values(Param{1, 1}, Param{10, 2},
                                           Param{100, 3}, Param{1000, 4},
                                           Param{5000, 5}, Param{30000, 6},
                                           Param{100000, 7}));

// --- Dynamic path: membership bookkeeping regressions --------------------

// Regression for the membership_ clobber: Insert used to overwrite
// membership_[id] for a live id, orphaning the old level list — Erase
// then left stale elements in those levels' max structures and stale
// heavier tau values caused permanent round misses. The fix rejects the
// duplicate outright (ids are element identity: the (weight, id) total
// order and Erase-by-id both depend on uniqueness). Against the pre-fix
// code the second Insert succeeds silently and this death test fails.
TEST(SampledTopKDynamicDeath, ReinsertingLiveIdAborts) {
  Rng rng(41);
  std::vector<Point1D> data = test::RandomPoints1D(5000, &rng);
  ReductionOptions opts;
  opts.seed = 43;
  DynTopK topk(data, opts);
  ASSERT_GT(topk.num_sample_levels(), 0u);  // the clobber needs levels
  // Any live id triggers it — membership is complete, not just sampled.
  Point1D dup = data[17];
  dup.weight += 1.0;
  EXPECT_DEATH(topk.Insert(dup), "TOPK_CHECK");
}

// Insert-erase-reinsert cycles must leave every level's max structure
// exactly consistent with membership_ (AuditInvariants cross-checks the
// reference counts in all builds and enumerates the levels under
// TOPK_AUDIT), and queries exact.
TEST(SampledTopKDynamic, InsertEraseReinsertKeepsLevelsConsistent) {
  Rng rng(44);
  std::vector<Point1D> data = test::RandomPoints1D(6000, &rng);
  ReductionOptions opts;
  opts.seed = 45;
  DynTopK topk(data, opts);
  ASSERT_GT(topk.num_sample_levels(), 0u);
  // Cycle a fixed cohort: erase, then re-insert the SAME ids (legal —
  // they are dead between the two), many times. A lost or stale
  // membership entry breaks the per-level reference-count balance.
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (size_t i = 0; i < 64; ++i) {
      topk.Erase(data[i * 7]);
    }
    topk.AuditInvariants();
    for (size_t i = 0; i < 64; ++i) {
      topk.Insert(data[i * 7]);
    }
    topk.AuditInvariants();
  }
  for (size_t k : {size_t{1}, size_t{10}, size_t{200}}) {
    auto got = topk.Query({0.0, 1.0}, k);
    auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, k);
    EXPECT_EQ(test::IdsOf(got), test::IdsOf(want)) << "k=" << k;
  }
}

// --- Dynamic path: mixed Insert/Erase/Query brute-force sweep ------------

struct DynParam {
  size_t n;
  uint64_t seed;
};

class DynamicSweep : public ::testing::TestWithParam<DynParam> {};

// Deterministic mixed schedule: grow past the 2x rebuild threshold,
// then shrink below the 1/2 threshold (both rebuild directions), with
// brute-force-checked queries and audit sweeps interleaved throughout.
TEST_P(DynamicSweep, MixedUpdatesMatchBruteForce) {
  const DynParam p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> mirror = test::RandomPoints1D(p.n, &rng);
  ReductionOptions opts;
  opts.seed = p.seed * 17 + 1;
  DynTopK topk(mirror, opts);
  uint64_t next_id = 1'000'000;

  const auto check = [&] {
    topk.AuditInvariants();
    ASSERT_EQ(topk.size(), mirror.size());
    for (int trial = 0; trial < 3; ++trial) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      if (trial == 0) {
        a = 0.0;
        b = 1.0;
      }
      const Range1D q{a, b};
      for (size_t k : {size_t{1}, size_t{8}, size_t{100},
                       mirror.size() + 1}) {
        auto got = topk.Query(q, k);
        auto want = test::BruteTopK<Range1DProblem>(mirror, q, k);
        ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
            << "n=" << mirror.size() << " k=" << k << " q=[" << a << ","
            << b << "]";
      }
    }
  };

  check();
  // Grow to ~2.5x: crosses n > 2 * built_n at least once. Checks run
  // between 64-op bursts — the audited dev build pays O(n) per query,
  // so the cadence bounds total audit cost while still straddling the
  // rebuild thresholds.
  const size_t grow_target = p.n * 5 / 2 + 4;
  while (mirror.size() < grow_target) {
    for (int burst = 0; burst < 64 && mirror.size() < grow_target;
         ++burst) {
      if (!mirror.empty() && rng.Bernoulli(0.25)) {
        const size_t victim = rng.Below(mirror.size());
        topk.Erase(mirror[victim]);
        mirror[victim] = mirror.back();
        mirror.pop_back();
      } else {
        const Point1D e{rng.NextDouble(), rng.NextDouble() * 1e6,
                        next_id++};
        topk.Insert(e);
        mirror.push_back(e);
      }
    }
    check();
  }
  // Shrink to ~1/5 of the grown size: crosses n < built_n / 2.
  const size_t shrink_target = grow_target / 5;
  while (mirror.size() > shrink_target) {
    for (int burst = 0; burst < 96 && mirror.size() > shrink_target;
         ++burst) {
      const size_t victim = rng.Below(mirror.size());
      topk.Erase(mirror[victim]);
      mirror[victim] = mirror.back();
      mirror.pop_back();
    }
    check();
  }
}

INSTANTIATE_TEST_SUITE_P(DynSweep, DynamicSweep,
                         ::testing::Values(DynParam{16, 1},
                                           DynParam{300, 2},
                                           DynParam{2500, 3}));

}  // namespace
}  // namespace topk
