// Epoch/snapshot serving: the EpochManager reader/writer protocol, and
// a QueryEngine serving brute-force-exact answers WHILE a mutator
// thread applies Insert/Erase batches and republishes — the tentpole
// contract: readers never block on the writer, every batch's answers
// are exactly the published snapshot it pinned, and retired epochs free
// once their last in-flight batch drains (leak-checked under ASan; the
// whole file runs under TSan via the ci tsan job's `-R serve` sweep).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reduction_options.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "serve/engine.h"
#include "serve/epoch.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

// The paper's dynamic Theorem 2 instantiation (treap PST + augmented
// treap range max) — what the mutator actually mutates.
using DynTopK = SampledTopK<Range1DProblem, DynamicPst, DynamicRangeMax>;
using Scan = ScanTopK<Range1DProblem>;

static_assert(serve::ShareableTopKStructure<DynTopK>);

std::vector<serve::Request<Range1D>> MakeRequests(size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const size_t k = (i % 7 == 0) ? 150 : 1 + i % 12;
    requests.push_back({{lo, hi}, k});
  }
  return requests;
}

// --- EpochManager protocol ----------------------------------------------

TEST(EpochManager, PinsHoldRetiredEpochsUntilReleased) {
  Rng rng(5);
  std::vector<Point1D> v1 = test::RandomPoints1D(50, &rng);
  std::vector<Point1D> v2 = test::RandomPoints1D(80, &rng);
  serve::EpochManager<Scan> epochs{Scan(v1)};
  EXPECT_EQ(epochs.current_seq(), 1u);
  EXPECT_EQ(epochs.live_epochs(), 1u);

  const size_t slot = epochs.RegisterReader();
  auto pin = epochs.Acquire(slot);
  EXPECT_EQ(pin.seq(), 1u);
  EXPECT_EQ(pin.get()->size(), v1.size());

  // Publishing under a live pin retires but must NOT free epoch 1.
  EXPECT_EQ(epochs.Publish(Scan(v2)), 2u);
  EXPECT_EQ(epochs.current_seq(), 2u);
  EXPECT_EQ(epochs.live_epochs(), 2u);
  // The pinned (retired) epoch still answers from its own snapshot.
  EXPECT_EQ(pin.get()->size(), v1.size());
  EXPECT_EQ(test::IdsOf(pin.get()->Query({0.0, 1.0}, 5)),
            test::IdsOf(test::BruteTopK<Range1DProblem>(v1, {0.0, 1.0},
                                                        5)));

  // A fresh Acquire on another slot sees the new epoch.
  const size_t slot2 = epochs.RegisterReader();
  auto pin2 = epochs.Acquire(slot2);
  EXPECT_EQ(pin2.seq(), 2u);
  EXPECT_EQ(pin2.get()->size(), v2.size());
  pin2.Release();

  // Still pinned: nothing to collect. Released: epoch 1 frees.
  EXPECT_EQ(epochs.CollectRetired(), 0u);
  pin.Release();
  EXPECT_TRUE(pin.empty());
  EXPECT_EQ(epochs.CollectRetired(), 1u);
  EXPECT_EQ(epochs.live_epochs(), 1u);
}

TEST(EpochManager, RepinAfterReleaseTracksCurrent) {
  Rng rng(6);
  serve::EpochManager<Scan> epochs(Scan(test::RandomPoints1D(20, &rng)));
  const size_t slot = epochs.RegisterReader();
  for (uint64_t want = 1; want <= 5; ++want) {
    auto pin = epochs.Acquire(slot);
    EXPECT_EQ(pin.seq(), want);
    pin.Release();
    epochs.Publish(Scan(test::RandomPoints1D(20 + want, &rng)));
  }
  // No pins live: every retired epoch collects.
  epochs.CollectRetired();
  EXPECT_EQ(epochs.live_epochs(), 1u);
}

// --- Engine in epoch mode, single-threaded rotation ----------------------

TEST(EpochEngine, BatchesTrackPublishedSnapshotsExactly) {
  Rng rng(31);
  std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  ReductionOptions opts;
  opts.seed = 32;
  serve::EpochManager<DynTopK> epochs(DynTopK(data, opts));
  serve::Metrics metrics;
  serve::QueryEngine<DynTopK> engine(&epochs, {.num_threads = 2},
                                     &metrics);
  const auto requests = MakeRequests(48, 33);

  std::vector<std::vector<Point1D>> snapshots(1, data);  // seq-1 -> [0]
  std::vector<serve::QueryEngine<DynTopK>::Result> results;
  uint64_t next_id = 500'000;
  for (int round = 0; round < 6; ++round) {
    engine.QueryBatchInto(requests, &results);
    const uint64_t seq = engine.last_batch_epoch();
    ASSERT_EQ(seq, static_cast<uint64_t>(round + 1));
    const std::vector<Point1D>& snap = snapshots[seq - 1];
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      ASSERT_EQ(test::IdsOf(results[i].elements),
                test::IdsOf(test::BruteTopK<Range1DProblem>(
                    snap, requests[i].predicate, requests[i].k)))
          << "round " << round << " request " << i;
    }
    // Mutate a copy through the DYNAMIC path and publish it: the next
    // batch must see exactly this snapshot.
    std::vector<Point1D> next = snapshots.back();
    ReductionOptions ropts;
    ropts.seed = 1000 + static_cast<uint64_t>(round);
    DynTopK shadow(next, ropts);
    for (int u = 0; u < 50; ++u) {
      if (!next.empty() && u % 2 == 0) {
        const size_t victim = rng.Below(next.size());
        shadow.Erase(next[victim]);
        next[victim] = next.back();
        next.pop_back();
      } else {
        const Point1D e{rng.NextDouble(), rng.NextDouble() * 1e6,
                        next_id++};
        shadow.Insert(e);
        next.push_back(e);
      }
    }
    snapshots.push_back(std::move(next));
    epochs.Publish(std::move(shadow));
  }
  // All batches drained (pins are per-batch): everything retired frees.
  epochs.CollectRetired();
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(metrics.Snapshot().queries, 6 * requests.size());
}

// --- The tentpole: serving DURING mutation -------------------------------

// A live mutator thread republishes mutated snapshots as fast as it can
// while the engine (2+ workers) serves batches. Every request of every
// batch must be brute-force-exact against the snapshot of the epoch the
// batch pinned; afterwards the retired chain drains to exactly one live
// epoch. Runs under TSan (ci tsan job, -R serve) and TOPK_AUDIT.
TEST(EpochEngine, ConcurrentMutatorServesBruteForceExactAnswers) {
  Rng rng(71);
  const std::vector<Point1D> initial = test::RandomPoints1D(2500, &rng);
  ReductionOptions opts;
  opts.seed = 72;
  serve::EpochManager<DynTopK> epochs(DynTopK(initial, opts));

  // seq -> the element multiset of that epoch. The writer records the
  // snapshot BEFORE Publish makes it reachable, so a reader can always
  // look up whatever epoch it pinned.
  std::mutex mu;
  std::map<uint64_t, std::vector<Point1D>> snapshots;
  snapshots[1] = initial;

  serve::QueryEngine<DynTopK> engine(&epochs, {.num_threads = 3});
  const auto requests = MakeRequests(40, 73);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Rng mrng(74);
    std::vector<Point1D> live = initial;
    uint64_t next_id = 900'000;
    uint64_t seq = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      // Apply one update batch through the dynamic path on a shadow
      // built from the last published state.
      ReductionOptions sopts;
      sopts.seed = 75 + seq;
      DynTopK shadow(live, sopts);
      for (int u = 0; u < 60; ++u) {
        if (!live.empty() && mrng.Bernoulli(0.5)) {
          const size_t victim = mrng.Below(live.size());
          shadow.Erase(live[victim]);
          live[victim] = live.back();
          live.pop_back();
        } else {
          const Point1D e{mrng.NextDouble(), mrng.NextDouble() * 1e6,
                          next_id++};
          shadow.Insert(e);
          live.push_back(e);
        }
      }
      ++seq;
      {
        const std::lock_guard<std::mutex> lock(mu);
        snapshots[seq] = live;
      }
      const uint64_t published = epochs.Publish(std::move(shadow));
      EXPECT_EQ(published, seq);
    }
  });

  std::vector<serve::QueryEngine<DynTopK>::Result> results;
  uint64_t first_seq = 0, last_seq = 0;
  for (int batch = 0; batch < 30; ++batch) {
    engine.QueryBatchInto(requests, &results);
    const uint64_t seq = engine.last_batch_epoch();
    if (batch == 0) first_seq = seq;
    last_seq = seq;
    std::vector<Point1D> snap;
    {
      const std::lock_guard<std::mutex> lock(mu);
      snap = snapshots.at(seq);
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "batch " << batch;
      ASSERT_EQ(test::IdsOf(results[i].elements),
                test::IdsOf(test::BruteTopK<Range1DProblem>(
                    snap, requests[i].predicate, requests[i].k)))
          << "batch " << batch << " epoch " << seq << " request " << i;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();

  // The engine pinned monotonically advancing epochs (sanity that the
  // rotation actually happened under load on multi-core machines; on a
  // single pinned core the mutator may only get a few publishes in).
  EXPECT_GE(last_seq, first_seq);

  // All pins are per-batch and every batch drained: the whole retired
  // chain frees (ASan would flag anything left at process exit).
  epochs.CollectRetired();
  EXPECT_EQ(epochs.live_epochs(), 1u);
}

}  // namespace
}  // namespace topk
