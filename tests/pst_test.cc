#include "range1d/pst.h"

#include <cstddef>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/sink.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Point1D> Collect(const PrioritySearchTree& pst, const Range1D& q,
                             double tau) {
  std::vector<Point1D> out;
  pst.QueryPrioritized(q, tau, [&out](const Point1D& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(PrioritySearchTree, EmptyInput) {
  PrioritySearchTree pst({});
  EXPECT_EQ(pst.size(), 0u);
  EXPECT_TRUE(Collect(pst, {0, 1}, kNegInf).empty());
}

TEST(PrioritySearchTree, SinglePoint) {
  PrioritySearchTree pst({{0.5, 10.0, 1}});
  EXPECT_EQ(Collect(pst, {0, 1}, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(pst, {0.6, 1}, kNegInf).empty());
  EXPECT_TRUE(Collect(pst, {0, 1}, 10.5).empty());
  EXPECT_EQ(Collect(pst, {0, 1}, 10.0).size(), 1u);  // inclusive tau
  EXPECT_EQ(Collect(pst, {0.5, 0.5}, kNegInf).size(), 1u);  // point range
}

TEST(PrioritySearchTree, EarlyTerminationStops) {
  Rng rng(5);
  PrioritySearchTree pst(test::RandomPoints1D(1000, &rng));
  size_t seen = 0;
  pst.QueryPrioritized({0.0, 1.0}, kNegInf, [&seen](const Point1D&) {
    ++seen;
    return seen < 10;
  });
  EXPECT_EQ(seen, 10u);
}

TEST(PrioritySearchTree, ForEachEnumeratesEverything) {
  Rng rng(6);
  std::vector<Point1D> data = test::RandomPoints1D(257, &rng);
  PrioritySearchTree pst(data);
  std::vector<Point1D> all;
  pst.ForEach([&all](const Point1D& p) { all.push_back(p); });
  EXPECT_EQ(test::SortedIdsOf(all), test::SortedIdsOf(data));
}

TEST(PrioritySearchTree, OutputSensitiveNodeCount) {
  // With tau at the 99.9th percentile, the query should touch far fewer
  // nodes than n.
  Rng rng(7);
  std::vector<Point1D> data = test::RandomPoints1D(1 << 15, &rng);
  PrioritySearchTree pst(data);
  QueryStats stats;
  auto r = MonitoredQuery(pst, Range1D{0.0, 1.0}, 999.0, data.size(), &stats);
  EXPECT_FALSE(r.hit_budget);
  // ~33 qualifying points expected; allow generous slack but demand
  // strong sublinearity.
  EXPECT_LT(stats.nodes_visited, data.size() / 20);
}

struct SweepParam {
  size_t n;
  uint64_t seed;
  bool clumped;
};

class PstSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PstSweep, MatchesBruteForce) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  std::vector<Point1D> data =
      param.clumped ? test::ClumpedPoints1D(param.n, &rng)
                    : test::RandomPoints1D(param.n, &rng);
  PrioritySearchTree pst(data);
  ASSERT_EQ(pst.size(), data.size());

  const double xmax = param.clumped ? static_cast<double>(param.n) : 1.0;
  for (int trial = 0; trial < 50; ++trial) {
    double a = rng.NextDouble() * xmax;
    double b = rng.NextDouble() * xmax;
    if (a > b) std::swap(a, b);
    const double tau_pool[] = {kNegInf, 0.0, 250.0, 600.0, 990.0};
    const double tau = tau_pool[trial % 5];
    std::vector<Point1D> got = Collect(pst, {a, b}, tau);
    std::vector<Point1D> want =
        test::BrutePrioritized<Range1DProblem>(data, {a, b}, tau);
    EXPECT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "n=" << param.n << " q=[" << a << "," << b << "] tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PstSweep,
    ::testing::Values(SweepParam{2, 1, false}, SweepParam{3, 2, false},
                      SweepParam{10, 3, false}, SweepParam{64, 4, false},
                      SweepParam{100, 5, false}, SweepParam{1000, 6, false},
                      SweepParam{4096, 7, false}, SweepParam{100, 8, true},
                      SweepParam{1000, 9, true}, SweepParam{777, 10, true}));

}  // namespace
}  // namespace topk
