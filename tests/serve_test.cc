// The serving layer: latency histogram quantiles, metrics registry and
// JSON export, the thread-shareability concept, and the batched query
// engine — whose results must be exactly the single-threaded,
// brute-force-validated answers at every thread count.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "em/em_range1d.h"
#include "range1d/count_tree.h"
#include "range1d/direct_topk.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/histogram.h"
#include "serve/metrics.h"
#include "serve/shareable.h"
#include "serve/thread_pool.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;
using serve::LatencyHistogram;
using serve::MetricsSnapshot;

// --- Shareability concept -----------------------------------------------

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
using Counting = CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;

static_assert(serve::ShareableTopKStructure<Thm1>);
static_assert(serve::ShareableTopKStructure<Thm2>);
static_assert(serve::ShareableTopKStructure<Baseline>);
static_assert(serve::ShareableTopKStructure<Counting>);
static_assert(serve::ShareableTopKStructure<ScanTopK<Range1DProblem>>);
static_assert(serve::ShareableTopKStructure<HeapSelectTopK>);

// EM substrates mutate their BufferPool on every (even read-only)
// query; they and every reduction stacked on them must be rejected.
static_assert(serve::UsesExternalMemory<em::EmBPlusTree>());
static_assert(serve::UsesExternalMemory<em::EmRange1dPrioritized>());
static_assert(!serve::ShareableTopKStructure<
              CoreSetTopK<Range1DProblem, em::EmRange1dPrioritized>>);
static_assert(
    !serve::ShareableTopKStructure<SampledTopK<
        Range1DProblem, em::EmRange1dPrioritized, em::EmBPlusTree>>);

// --- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.PercentileNs(50.0), 0.0);
}

TEST(LatencyHistogram, ExactStatsAndBucketedQuantiles) {
  LatencyHistogram h;
  // 100 values: 1..100.
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min_ns(), 1u);
  EXPECT_EQ(h.max_ns(), 100u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 50.5);
  // Log-bucketed estimates: within a factor of 2 of the true quantile.
  EXPECT_GE(h.PercentileNs(50.0), 32.0);
  EXPECT_LE(h.PercentileNs(50.0), 64.0);
  EXPECT_GE(h.PercentileNs(99.0), 64.0);
  EXPECT_LE(h.PercentileNs(99.0), 100.0);  // clamped to the exact max
  // p0/p100 clamp to the exactly tracked extremes.
  EXPECT_EQ(h.PercentileNs(0.0), 1.0);
  EXPECT_EQ(h.PercentileNs(100.0), 100.0);
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.Record(rng.Below(1u << 20));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.PercentileNs(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (uint64_t v : {5u, 80u, 3000u}) {
    a.Record(v);
    both.Record(v);
  }
  for (uint64_t v : {1u, 1u << 16}) {
    b.Record(v);
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min_ns(), both.min_ns());
  EXPECT_EQ(a.max_ns(), both.max_ns());
  EXPECT_DOUBLE_EQ(a.mean_ns(), both.mean_ns());
  for (double p : {10.0, 50.0, 95.0}) {
    EXPECT_DOUBLE_EQ(a.PercentileNs(p), both.PercentileNs(p));
  }
}

// --- Metrics / JSON export ----------------------------------------------

TEST(Metrics, JsonContainsEveryQueryStatsField) {
  serve::Metrics metrics;
  MetricsSnapshot s;
  s.queries = 3;
  s.batches = 1;
  s.stats.nodes_visited = 42;
  s.latency.Record(1000);
  metrics.Absorb(s);
  const std::string json = metrics.ToJson();
  // The export iterates QueryStats::ForEachField, so a counter added to
  // QueryStats must show up here with no serve-layer change.
  QueryStats::ForEachField([&json](const char* name, auto) {
    EXPECT_NE(json.find(std::string("\"") + name + "\":"),
              std::string::npos)
        << "missing stats field in JSON: " << name;
  });
  EXPECT_NE(json.find("\"queries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_visited\":42"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, AbsorbAccumulates) {
  serve::Metrics metrics;
  for (int i = 0; i < 3; ++i) {
    MetricsSnapshot s;
    s.queries = 10;
    s.batches = 1;
    s.stats.full_scans = 2;
    metrics.Absorb(s);
  }
  const MetricsSnapshot total = metrics.Snapshot();
  EXPECT_EQ(total.queries, 30u);
  EXPECT_EQ(total.batches, 3u);
  EXPECT_EQ(total.stats.full_scans, 6u);
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryWorkerEachRegion) {
  serve::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(4, 0);
  for (int round = 1; round <= 3; ++round) {
    pool.RunOnAll([&hits](size_t w) { ++hits[w]; });
    for (int h : hits) EXPECT_EQ(h, round);
  }
}

// --- QueryEngine ----------------------------------------------------------

struct ServeFixture {
  std::vector<Point1D> data;
  std::vector<serve::Request<Range1D>> requests;

  explicit ServeFixture(size_t n, size_t num_requests, uint64_t seed) {
    Rng rng(seed);
    data = test::RandomPoints1D(n, &rng);
    requests.reserve(num_requests);
    for (size_t i = 0; i < num_requests; ++i) {
      double lo = rng.NextDouble(), hi = rng.NextDouble();
      if (lo > hi) std::swap(lo, hi);
      // Mixed k: mostly small, some deep.
      const size_t k = (i % 7 == 0) ? 200 : 1 + i % 16;
      requests.push_back({{lo, hi}, k});
    }
  }
};

template <typename S>
void ExpectBatchExact(const S& structure, const ServeFixture& fx,
                      size_t num_threads) {
  serve::Metrics metrics;
  serve::QueryEngine<S> engine(&structure, {.num_threads = num_threads},
                               &metrics);
  auto results = engine.QueryBatch(fx.requests);
  ASSERT_EQ(results.size(), fx.requests.size());
  uint64_t returned = 0;
  for (size_t i = 0; i < fx.requests.size(); ++i) {
    auto want = test::BruteTopK<Range1DProblem>(
        fx.data, fx.requests[i].predicate, fx.requests[i].k);
    EXPECT_TRUE(results[i].ok()) << "request " << i;
    ASSERT_EQ(test::IdsOf(results[i].elements), test::IdsOf(want))
        << "request " << i << " at " << num_threads << " threads";
    returned += results[i].elements.size();
  }
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.queries, fx.requests.size());
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.stats.results_returned, returned);
  EXPECT_EQ(m.latency.count(), fx.requests.size());
}

TEST(QueryEngine, ExactAtEveryThreadCountOverEveryStructure) {
  ServeFixture fx(4000, 64, 11);
  Thm1 thm1(fx.data);
  Baseline baseline(fx.data);
  HeapSelectTopK direct(fx.data);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ExpectBatchExact(thm1, fx, threads);
    ExpectBatchExact(baseline, fx, threads);
    ExpectBatchExact(direct, fx, threads);
  }
}

TEST(QueryEngine, MultiThreadMatchesSingleThreadExactly) {
  ServeFixture fx(6000, 128, 12);
  Thm2 thm2(fx.data);
  serve::QueryEngine<Thm2> one(&thm2, {.num_threads = 1});
  serve::QueryEngine<Thm2> four(&thm2, {.num_threads = 4});
  const auto a = one.QueryBatch(fx.requests);
  const auto b = four.QueryBatch(fx.requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(test::IdsOf(a[i].elements), test::IdsOf(b[i].elements))
        << "request " << i;
  }
}

// Deterministic accounting: ScanTopK charges exactly one full scan and
// n node visits per query, so the merged thread-local tallies must sum
// to exact totals no matter how requests landed on workers.
TEST(QueryEngine, ThreadLocalStatsMergeToExactTotals) {
  ServeFixture fx(500, 48, 13);
  ScanTopK<Range1DProblem> scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<ScanTopK<Range1DProblem>> engine(
      &scan, {.num_threads = 4}, &metrics);
  engine.QueryBatch(fx.requests);
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.stats.full_scans, fx.requests.size());
  EXPECT_EQ(m.stats.nodes_visited, fx.requests.size() * fx.data.size());
}

TEST(QueryEngine, EdgeBatches) {
  ServeFixture fx(300, 4, 14);
  Thm1 thm1(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Thm1> engine(&thm1, {.num_threads = 4}, &metrics);

  // Empty batch: no queries, still one batch in the registry.
  EXPECT_TRUE(engine.QueryBatch({}).empty());
  EXPECT_EQ(metrics.Snapshot().batches, 1u);

  // Fewer requests than workers, and k = 0 answers.
  std::vector<serve::Request<Range1D>> tiny = {{{0.0, 1.0}, 5},
                                               {{0.2, 0.4}, 0}};
  auto results = engine.QueryBatch(tiny);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(test::IdsOf(results[0].elements),
            test::IdsOf(test::BruteTopK<Range1DProblem>(fx.data,
                                                        {0.0, 1.0}, 5)));
  EXPECT_TRUE(results[1].elements.empty());
  EXPECT_EQ(metrics.Snapshot().queries, 2u);

  // Batches accumulate in the shared registry.
  engine.QueryBatch(fx.requests);
  EXPECT_EQ(metrics.Snapshot().batches, 3u);
  EXPECT_EQ(metrics.Snapshot().queries, 2u + fx.requests.size());
}

// An empty structure served concurrently (degenerate but legal).
TEST(QueryEngine, EmptyStructure) {
  ScanTopK<Range1DProblem> empty({});
  serve::QueryEngine<ScanTopK<Range1DProblem>> engine(
      &empty, {.num_threads = 2});
  auto results = engine.QueryBatch({{{0.0, 1.0}, 3}, {{0.5, 0.6}, 1}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].elements.empty());
  EXPECT_TRUE(results[1].elements.empty());
}

}  // namespace
}  // namespace topk
