// The serving layer: latency histogram quantiles, metrics registry and
// JSON export, the thread-shareability concept, and the batched query
// engine — whose results must be exactly the single-threaded,
// brute-force-validated answers at every thread count.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "em/em_range1d.h"
#include "range1d/count_tree.h"
#include "range1d/direct_topk.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/histogram.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "serve/shareable.h"
#include "serve/thread_pool.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;
using serve::LatencyHistogram;
using serve::MetricsSnapshot;

// --- Shareability concept -----------------------------------------------

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
using Counting = CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;

static_assert(serve::ShareableTopKStructure<Thm1>);
static_assert(serve::ShareableTopKStructure<Thm2>);
static_assert(serve::ShareableTopKStructure<Baseline>);
static_assert(serve::ShareableTopKStructure<Counting>);
static_assert(serve::ShareableTopKStructure<ScanTopK<Range1DProblem>>);
static_assert(serve::ShareableTopKStructure<HeapSelectTopK>);

// EM substrates mutate their BufferPool on every (even read-only)
// query; they and every reduction stacked on them must be rejected.
static_assert(serve::UsesExternalMemory<em::EmBPlusTree>());
static_assert(serve::UsesExternalMemory<em::EmRange1dPrioritized>());
static_assert(!serve::ShareableTopKStructure<
              CoreSetTopK<Range1DProblem, em::EmRange1dPrioritized>>);
static_assert(
    !serve::ShareableTopKStructure<SampledTopK<
        Range1DProblem, em::EmRange1dPrioritized, em::EmBPlusTree>>);

// --- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.PercentileNs(50.0), 0.0);
}

TEST(LatencyHistogram, ExactStatsAndBucketedQuantiles) {
  LatencyHistogram h;
  // 100 values: 1..100.
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min_ns(), 1u);
  EXPECT_EQ(h.max_ns(), 100u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 50.5);
  // Log-bucketed estimates: within a factor of 2 of the true quantile.
  EXPECT_GE(h.PercentileNs(50.0), 32.0);
  EXPECT_LE(h.PercentileNs(50.0), 64.0);
  EXPECT_GE(h.PercentileNs(99.0), 64.0);
  EXPECT_LE(h.PercentileNs(99.0), 100.0);  // clamped to the exact max
  // p0/p100 clamp to the exactly tracked extremes.
  EXPECT_EQ(h.PercentileNs(0.0), 1.0);
  EXPECT_EQ(h.PercentileNs(100.0), 100.0);
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.Record(rng.Below(1u << 20));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.PercentileNs(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (uint64_t v : {5u, 80u, 3000u}) {
    a.Record(v);
    both.Record(v);
  }
  for (uint64_t v : {1u, 1u << 16}) {
    b.Record(v);
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min_ns(), both.min_ns());
  EXPECT_EQ(a.max_ns(), both.max_ns());
  EXPECT_DOUBLE_EQ(a.mean_ns(), both.mean_ns());
  for (double p : {10.0, 50.0, 95.0}) {
    EXPECT_DOUBLE_EQ(a.PercentileNs(p), both.PercentileNs(p));
  }
}

// Property: merging an empty histogram — default-constructed or freshly
// Reset() (whose min/max sit at the UINT64_MAX/0 sentinels) — is an
// exact no-op in either direction. The sentinels must never clobber the
// exactly tracked min/max nor leak into the percentile clamps; this is
// the engine's per-batch tally recycling (Reset then Merge) in
// miniature.
TEST(LatencyHistogram, MergeWithEmptyOrResetIsANoOp) {
  Rng rng(33);
  const double kPs[] = {0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0};
  for (int trial = 0; trial < 50; ++trial) {
    LatencyHistogram h;
    const size_t n = 1 + rng.Below(200);
    for (size_t i = 0; i < n; ++i) {
      // Log-uniform spread so sparse buckets and extremes occur.
      h.Record(rng.Below(uint64_t{1} << (1 + rng.Below(24))));
    }
    const LatencyHistogram before = h;

    LatencyHistogram empty;  // never recorded into
    LatencyHistogram reset;  // recorded into, then wiped
    for (int i = 0; i < 5; ++i) reset.Record(rng.Below(1u << 20));
    reset.Reset();

    h.Merge(empty);
    h.Merge(reset);
    EXPECT_EQ(h.count(), before.count());
    EXPECT_EQ(h.min_ns(), before.min_ns());
    EXPECT_EQ(h.max_ns(), before.max_ns());
    EXPECT_DOUBLE_EQ(h.mean_ns(), before.mean_ns());
    for (double p : kPs) {
      EXPECT_DOUBLE_EQ(h.PercentileNs(p), before.PercentileNs(p));
    }

    // Other direction: the sentinels of the empty ACCUMULATOR must be
    // overwritten by the merged-in data, not min/max'd into it.
    for (LatencyHistogram* acc : {&empty, &reset}) {
      acc->Merge(before);
      EXPECT_EQ(acc->count(), before.count());
      EXPECT_EQ(acc->min_ns(), before.min_ns());
      EXPECT_EQ(acc->max_ns(), before.max_ns());
      EXPECT_DOUBLE_EQ(acc->mean_ns(), before.mean_ns());
      for (double p : kPs) {
        EXPECT_DOUBLE_EQ(acc->PercentileNs(p), before.PercentileNs(p));
      }
    }
  }
}

// --- Metrics / JSON export ----------------------------------------------

TEST(Metrics, JsonContainsEveryQueryStatsField) {
  serve::Metrics metrics;
  MetricsSnapshot s;
  s.queries = 3;
  s.batches = 1;
  s.stats.nodes_visited = 42;
  s.latency.Record(1000);
  metrics.Absorb(s);
  const std::string json = metrics.ToJson();
  // The export iterates QueryStats::ForEachField, so a counter added to
  // QueryStats must show up here with no serve-layer change.
  QueryStats::ForEachField([&json](const char* name, auto) {
    EXPECT_NE(json.find(std::string("\"") + name + "\":"),
              std::string::npos)
        << "missing stats field in JSON: " << name;
  });
  EXPECT_NE(json.find("\"queries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_visited\":42"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, AbsorbAccumulates) {
  serve::Metrics metrics;
  for (int i = 0; i < 3; ++i) {
    MetricsSnapshot s;
    s.queries = 10;
    s.batches = 1;
    s.stats.full_scans = 2;
    metrics.Absorb(s);
  }
  const MetricsSnapshot total = metrics.Snapshot();
  EXPECT_EQ(total.queries, 30u);
  EXPECT_EQ(total.batches, 3u);
  EXPECT_EQ(total.stats.full_scans, 6u);
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryWorkerEachRegion) {
  serve::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(4, 0);
  for (int round = 1; round <= 3; ++round) {
    pool.RunOnAll([&hits](size_t w) { ++hits[w]; });
    for (int h : hits) EXPECT_EQ(h, round);
  }
}

// --- QueryEngine ----------------------------------------------------------

struct ServeFixture {
  std::vector<Point1D> data;
  std::vector<serve::Request<Range1D>> requests;

  explicit ServeFixture(size_t n, size_t num_requests, uint64_t seed) {
    Rng rng(seed);
    data = test::RandomPoints1D(n, &rng);
    requests.reserve(num_requests);
    for (size_t i = 0; i < num_requests; ++i) {
      double lo = rng.NextDouble(), hi = rng.NextDouble();
      if (lo > hi) std::swap(lo, hi);
      // Mixed k: mostly small, some deep.
      const size_t k = (i % 7 == 0) ? 200 : 1 + i % 16;
      requests.push_back({{lo, hi}, k});
    }
  }
};

template <typename S>
void ExpectBatchExact(const S& structure, const ServeFixture& fx,
                      size_t num_threads) {
  serve::Metrics metrics;
  serve::QueryEngine<S> engine(&structure, {.num_threads = num_threads},
                               &metrics);
  auto results = engine.QueryBatch(fx.requests);
  ASSERT_EQ(results.size(), fx.requests.size());
  uint64_t returned = 0;
  for (size_t i = 0; i < fx.requests.size(); ++i) {
    auto want = test::BruteTopK<Range1DProblem>(
        fx.data, fx.requests[i].predicate, fx.requests[i].k);
    EXPECT_TRUE(results[i].ok()) << "request " << i;
    ASSERT_EQ(test::IdsOf(results[i].elements), test::IdsOf(want))
        << "request " << i << " at " << num_threads << " threads";
    returned += results[i].elements.size();
  }
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.queries, fx.requests.size());
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.stats.results_returned, returned);
  EXPECT_EQ(m.latency.count(), fx.requests.size());
}

TEST(QueryEngine, ExactAtEveryThreadCountOverEveryStructure) {
  ServeFixture fx(4000, 64, 11);
  Thm1 thm1(fx.data);
  Baseline baseline(fx.data);
  HeapSelectTopK direct(fx.data);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ExpectBatchExact(thm1, fx, threads);
    ExpectBatchExact(baseline, fx, threads);
    ExpectBatchExact(direct, fx, threads);
  }
}

// Warmup primes every worker's scratch arena concurrently (each worker
// serves every request into a throwaway slot); it must leave no trace
// in the metrics and not perturb subsequent batches. Runs under TSan
// via the tsan preset's serve sweep — Warmup and the batch path are the
// two concurrent users of the per-worker arenas.
TEST(QueryEngine, WarmupIsInvisibleAndBatchesStayExact) {
  ServeFixture fx(4000, 48, 14);
  Thm2 thm2(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Thm2> engine(&thm2, {.num_threads = 4}, &metrics);
  engine.Warmup(fx.requests);
  EXPECT_EQ(metrics.Snapshot().queries, 0u);
  std::vector<serve::QueryEngine<Thm2>::Result> results;
  engine.QueryBatchInto(fx.requests, &results);
  engine.QueryBatchInto(fx.requests, &results);  // recycled slots
  ASSERT_EQ(results.size(), fx.requests.size());
  for (size_t i = 0; i < fx.requests.size(); ++i) {
    EXPECT_EQ(test::IdsOf(results[i].elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  fx.data, fx.requests[i].predicate, fx.requests[i].k)))
        << "request " << i;
  }
  EXPECT_EQ(metrics.Snapshot().queries, 2 * fx.requests.size());
}

TEST(QueryEngine, MultiThreadMatchesSingleThreadExactly) {
  ServeFixture fx(6000, 128, 12);
  Thm2 thm2(fx.data);
  serve::QueryEngine<Thm2> one(&thm2, {.num_threads = 1});
  serve::QueryEngine<Thm2> four(&thm2, {.num_threads = 4});
  const auto a = one.QueryBatch(fx.requests);
  const auto b = four.QueryBatch(fx.requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(test::IdsOf(a[i].elements), test::IdsOf(b[i].elements))
        << "request " << i;
  }
}

// Deterministic accounting: ScanTopK charges exactly one full scan and
// n node visits per query, so the merged thread-local tallies must sum
// to exact totals no matter how requests landed on workers.
TEST(QueryEngine, ThreadLocalStatsMergeToExactTotals) {
  ServeFixture fx(500, 48, 13);
  ScanTopK<Range1DProblem> scan(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<ScanTopK<Range1DProblem>> engine(
      &scan, {.num_threads = 4}, &metrics);
  engine.QueryBatch(fx.requests);
  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.stats.full_scans, fx.requests.size());
  EXPECT_EQ(m.stats.nodes_visited, fx.requests.size() * fx.data.size());
}

TEST(QueryEngine, EdgeBatches) {
  ServeFixture fx(300, 4, 14);
  Thm1 thm1(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Thm1> engine(&thm1, {.num_threads = 4}, &metrics);

  // Empty batch: no queries, still one batch in the registry.
  EXPECT_TRUE(engine.QueryBatch({}).empty());
  EXPECT_EQ(metrics.Snapshot().batches, 1u);

  // Fewer requests than workers, and k = 0 answers.
  std::vector<serve::Request<Range1D>> tiny = {{{0.0, 1.0}, 5},
                                               {{0.2, 0.4}, 0}};
  auto results = engine.QueryBatch(tiny);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(test::IdsOf(results[0].elements),
            test::IdsOf(test::BruteTopK<Range1DProblem>(fx.data,
                                                        {0.0, 1.0}, 5)));
  EXPECT_TRUE(results[1].elements.empty());
  EXPECT_EQ(metrics.Snapshot().queries, 2u);

  // Batches accumulate in the shared registry.
  engine.QueryBatch(fx.requests);
  EXPECT_EQ(metrics.Snapshot().batches, 3u);
  EXPECT_EQ(metrics.Snapshot().queries, 2u + fx.requests.size());
}

// An empty structure served concurrently (degenerate but legal).
TEST(QueryEngine, EmptyStructure) {
  ScanTopK<Range1DProblem> empty({});
  serve::QueryEngine<ScanTopK<Range1DProblem>> engine(
      &empty, {.num_threads = 2});
  auto results = engine.QueryBatch({{{0.0, 1.0}, 3}, {{0.5, 0.6}, 1}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].elements.empty());
  EXPECT_TRUE(results[1].elements.empty());
}

// --- LatencyHistogram vs exact percentiles -------------------------------

// Property sweep: the log-bucketed estimate must land inside the bucket
// of the EXACT nearest-rank percentile (the rank walk visits the same
// bucket), and inside the exactly tracked [min, max] envelope.
TEST(LatencyHistogram, EstimateStaysInsideTheExactValuesBucket) {
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    LatencyHistogram h;
    std::vector<uint64_t> values;
    const size_t n = 1 + rng.Below(400);
    for (size_t i = 0; i < n; ++i) {
      // Log-uniform spread so many buckets (and sparse ones) occur.
      const uint64_t v = rng.Below(uint64_t{1} << (1 + rng.Below(24)));
      values.push_back(v);
      h.Record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p :
         {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      // Same nearest-rank convention as PercentileNs.
      uint64_t rank = static_cast<uint64_t>(
          p / 100.0 * static_cast<double>(n) + 0.5);
      if (rank < 1) rank = 1;
      if (rank > n) rank = n;
      const uint64_t exact = values[rank - 1];
      const double got = h.PercentileNs(p);
      const uint64_t bw = std::bit_width(exact);
      const double lo =
          bw == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (bw - 1));
      const double hi = bw == 0 ? 1.0 : lo * 2.0;
      EXPECT_GE(got, lo) << "p" << p << " exact " << exact;
      EXPECT_LE(got, hi) << "p" << p << " exact " << exact;
      EXPECT_GE(got, static_cast<double>(values.front()));
      EXPECT_LE(got, static_cast<double>(values.back()));
    }
  }
}

// --- Slow-query log ------------------------------------------------------

TEST(MetricsSlowQueries, KeepsTopByLatencySortedDescending) {
  MetricsSnapshot s;
  for (uint64_t l : {50u, 10u, 90u, 30u, 70u, 20u, 80u, 40u, 60u, 100u,
                     5u, 95u}) {
    s.RecordSlow({l, 1, l, 0, serve::ResultStatus::kOk});
  }
  ASSERT_EQ(s.slow_queries.size(), MetricsSnapshot::kMaxSlowQueries);
  EXPECT_EQ(s.slow_queries.front().latency_ns, 100u);
  for (size_t i = 1; i < s.slow_queries.size(); ++i) {
    EXPECT_GE(s.slow_queries[i - 1].latency_ns,
              s.slow_queries[i].latency_ns);
  }
  EXPECT_EQ(s.slow_queries.back().latency_ns, 40u);  // 5..30 fell out
}

TEST(MetricsSlowQueries, MergeCombinesAndRebounds) {
  MetricsSnapshot a, b;
  for (uint64_t l = 1; l <= 8; ++l) {
    a.RecordSlow({l * 10, 1, l, 0, serve::ResultStatus::kOk});
    b.RecordSlow({l * 10 + 5, 2, l, 0, serve::ResultStatus::kDegraded});
  }
  a.Merge(b);
  ASSERT_EQ(a.slow_queries.size(), MetricsSnapshot::kMaxSlowQueries);
  // Interleaved top-8 of both logs: 85, 80, 75, 70, ...
  EXPECT_EQ(a.slow_queries.front().latency_ns, 85u);
  EXPECT_EQ(a.slow_queries.back().latency_ns, 50u);
}

TEST(MetricsSlowQueries, RenderedInJsonOnlyWhenPresent) {
  MetricsSnapshot s;
  EXPECT_EQ(serve::ToJson(s).find("slow_queries"), std::string::npos);
  s.RecordSlow({1234, 7, 3, 42, serve::ResultStatus::kDeadlineExceeded});
  const std::string json = serve::ToJson(s);
  EXPECT_NE(json.find("\"slow_queries\":[{\"latency_ns\":1234,\"batch\":7,"
                      "\"slot\":3,\"work\":42,"
                      "\"status\":\"deadline_exceeded\"}]"),
            std::string::npos);
}

// --- JSON export under saturated counters --------------------------------

// Regression: the old renderer snprintf-ed into a fixed 256-byte buffer;
// counters near UINT64_MAX (and the huge doubles they imply) truncated
// the output into malformed JSON. Every value must now render in full.
TEST(Metrics, ToJsonSurvivesSaturatedCounters) {
  constexpr uint64_t kSat = std::numeric_limits<uint64_t>::max();
  MetricsSnapshot s;
  s.queries = kSat;
  s.batches = kSat;
  s.ok = kSat;
  s.degraded = kSat;
  s.shed = kSat;
  s.deadline_exceeded = kSat;
  QueryStats::ForEachField(
      [&s](const char*, auto member) { s.stats.*member = kSat; });
  for (int i = 0; i < 4; ++i) s.latency.Record(kSat);
  for (uint64_t i = 0; i < MetricsSnapshot::kMaxSlowQueries; ++i) {
    s.RecordSlow({kSat - i, kSat, kSat, kSat,
                  serve::ResultStatus::kDeadlineExceeded});
  }
  const std::string json = serve::ToJson(s);
  // Every saturated counter appears verbatim — no truncation anywhere.
  EXPECT_NE(json.find("\"queries\":18446744073709551615"),
            std::string::npos);
  EXPECT_NE(json.find("\"max\":18446744073709551615"), std::string::npos);
  // Structurally balanced and terminated (json.loads-level validation
  // runs in the trace_roundtrip ctest).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\0'), std::string::npos);
}

// --- Engine tracing ------------------------------------------------------

uint64_t SpanArgOr0(const trace::Tracer::Event& e, const char* name) {
  for (size_t i = 0; i < e.num_args; ++i) {
    if (std::strcmp(e.arg_names[i], name) == 0) return e.arg_values[i];
  }
  return 0;
}

// End-to-end attribution: with tracing on, the per-span self counts
// summed across every tracer reproduce the merged QueryStats exactly,
// and the slow-query log fills (threshold 1 ns). Runs under TSan in CI
// (tsan job runs ctest -R serve): per-worker tracers must not race.
TEST(QueryEngine, TracingAttributesEveryCounter) {
  ServeFixture fx(3000, 48, 15);
  Thm1 thm1(fx.data);
  serve::Metrics metrics;
  serve::QueryEngine<Thm1> engine(&thm1,
                                  {.num_threads = 3,
                                   .trace_capacity = 1 << 14,
                                   .slow_query_ns = 1},
                                  &metrics);
  auto results = engine.QueryBatch(fx.requests);
  ASSERT_EQ(results.size(), fx.requests.size());
  for (size_t i = 0; i < fx.requests.size(); ++i) {
    auto want = test::BruteTopK<Range1DProblem>(
        fx.data, fx.requests[i].predicate, fx.requests[i].k);
    EXPECT_EQ(test::IdsOf(results[i].elements), test::IdsOf(want));
  }

  ASSERT_TRUE(engine.tracing_enabled());
  ASSERT_EQ(engine.num_tracers(), engine.num_threads() + 1);
  QueryStats sum;
  size_t request_spans = 0;
  for (size_t t = 0; t < engine.num_tracers(); ++t) {
    const trace::Tracer& tracer = engine.tracer(t);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.open_depth(), 0u);
    for (const trace::Tracer::Event& e : tracer.events()) {
      if (e.kind != trace::Tracer::EventKind::kSpan) continue;
      if (std::strcmp(e.name, "request") == 0) ++request_spans;
      QueryStats::ForEachField([&sum, &e](const char* name, auto member) {
        sum.*member += SpanArgOr0(e, name);
      });
    }
  }
  EXPECT_EQ(request_spans, fx.requests.size());
  const MetricsSnapshot m = metrics.Snapshot();
  QueryStats::ForEachField([&m, &sum](const char* name, auto member) {
    EXPECT_EQ(m.stats.*member, sum.*member) << "field " << name;
  });

  // Threshold 1 ns: every request is "slow", so the log is full and
  // descending.
  ASSERT_EQ(m.slow_queries.size(), MetricsSnapshot::kMaxSlowQueries);
  for (size_t i = 1; i < m.slow_queries.size(); ++i) {
    EXPECT_GE(m.slow_queries[i - 1].latency_ns,
              m.slow_queries[i].latency_ns);
  }

  const std::string json = engine.ChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"batch\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("coordinator"), std::string::npos);

  // ClearTraces drops events but keeps tracing armed.
  engine.ClearTraces();
  for (size_t t = 0; t < engine.num_tracers(); ++t) {
    EXPECT_TRUE(engine.tracer(t).events().empty());
  }

  // Options::trace_capacity == 0 (the default): no tracers at all.
  serve::QueryEngine<Thm1> off(&thm1, {.num_threads = 2});
  EXPECT_FALSE(off.tracing_enabled());
  EXPECT_EQ(off.num_tracers(), 0u);
}

}  // namespace
}  // namespace topk
