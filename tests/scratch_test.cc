// The scratch arena: borrow/return semantics, capacity recycling,
// per-type pools, move-only handle behavior, and the outstanding-handle
// ledger the destructor enforces.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/scratch.h"
#include "range1d/point1d.h"

namespace topk {
namespace {

using range1d::Point1D;

TEST(Scratch, BorrowReturnsEmptyVec) {
  Scratch s;
  ScratchVec<int> v = s.Borrow<int>();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(s.outstanding(), 1u);
}

TEST(Scratch, ReturnOnDestructionKeepsCapacity) {
  Scratch s;
  const int* data = nullptr;
  size_t grown_capacity = 0;
  {
    ScratchVec<int> v = s.Borrow<int>();
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    data = v.vec().data();
    grown_capacity = v.vec().capacity();
  }
  EXPECT_EQ(s.outstanding(), 0u);
  EXPECT_EQ(s.free_count<int>(), 1u);
  // The next borrow hands the same grown buffer back, cleared.
  ScratchVec<int> v2 = s.Borrow<int>();
  EXPECT_TRUE(v2.empty());
  EXPECT_EQ(v2.vec().capacity(), grown_capacity);
  EXPECT_EQ(v2.vec().data(), data);
  EXPECT_EQ(s.free_count<int>(), 0u);
}

TEST(Scratch, DistinctTypesGetDistinctPools) {
  Scratch s;
  {
    ScratchVec<int> a = s.Borrow<int>();
    ScratchVec<double> b = s.Borrow<double>();
    ScratchVec<Point1D> c = s.Borrow<Point1D>();
    a.push_back(1);
    b.push_back(2.0);
    c.push_back(Point1D{});
    EXPECT_EQ(s.outstanding(), 3u);
  }
  EXPECT_EQ(s.outstanding(), 0u);
  EXPECT_EQ(s.num_pools(), 3u);
  EXPECT_EQ(s.free_count<int>(), 1u);
  EXPECT_EQ(s.free_count<double>(), 1u);
  EXPECT_EQ(s.free_count<Point1D>(), 1u);
}

TEST(Scratch, ConcurrentBorrowsOfOneTypeGetDistinctBuffers) {
  Scratch s;
  ScratchVec<int> a = s.Borrow<int>();
  ScratchVec<int> b = s.Borrow<int>();
  a.push_back(1);
  b.push_back(2);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2);
  EXPECT_EQ(s.outstanding(), 2u);
}

TEST(Scratch, MoveTransfersOwnership) {
  Scratch s;
  ScratchVec<int> a = s.Borrow<int>();
  a.push_back(7);
  ScratchVec<int> b = std::move(a);
  // One live handle: the move emptied `a`, so only b returns the buffer.
  EXPECT_EQ(s.outstanding(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 7);
}

TEST(Scratch, MoveAssignReturnsTheOverwrittenBuffer) {
  Scratch s;
  ScratchVec<int> a = s.Borrow<int>();
  ScratchVec<int> b = s.Borrow<int>();
  EXPECT_EQ(s.outstanding(), 2u);
  b = std::move(a);  // b's original buffer goes back to the pool
  EXPECT_EQ(s.outstanding(), 1u);
  EXPECT_EQ(s.free_count<int>(), 1u);
}

TEST(Scratch, OptionalResetRecyclesMidQuery) {
  // The reductions' idiom: extract a scalar from a borrowed pool, reset
  // the optional, and the very next borrow reuses the buffer.
  Scratch s;
  std::optional<ScratchVec<int>> probe = s.Borrow<int>();
  for (int i = 0; i < 100; ++i) probe->push_back(i);
  const int* data = probe->vec().data();
  probe.reset();
  ScratchVec<int> fetch = s.Borrow<int>();
  EXPECT_EQ(fetch.vec().data(), data);
}

TEST(Scratch, SteadyStateReusesOneBuffer) {
  Scratch s;
  for (int round = 0; round < 10; ++round) {
    ScratchVec<int> v = s.Borrow<int>();
    for (int i = 0; i < 64; ++i) v.push_back(i);
  }
  // All ten rounds cycled a single pooled buffer.
  EXPECT_EQ(s.free_count<int>(), 1u);
  EXPECT_EQ(s.outstanding(), 0u);
}

}  // namespace
}  // namespace topk
