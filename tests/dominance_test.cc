// 3D dominance (Theorem 6): the weight-augmented kd-tree as prioritized
// and max structure, plus both reductions.

#include "dominance/point3.h"

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "test_util.h"

namespace topk {
namespace {

using dominance::DominanceKdTree;
using dominance::DominanceProblem;
using dominance::Point3;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Point3> RandomPoints3(size_t n, Rng* rng) {
  std::vector<Point3> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Point3{rng->NextDouble(), rng->NextDouble(), rng->NextDouble(),
                    rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

std::vector<Point3> Collect(const DominanceKdTree& t, const Point3& q,
                            double tau) {
  std::vector<Point3> out;
  t.QueryPrioritized(q, tau, [&out](const Point3& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

TEST(DominanceKdTree, EmptyInput) {
  DominanceKdTree t({});
  EXPECT_TRUE(Collect(t, {1, 1, 1}, kNegInf).empty());
  EXPECT_FALSE(t.QueryMax({1, 1, 1}).has_value());
}

TEST(DominanceKdTree, BoundaryInclusive) {
  DominanceKdTree t({{0.5, 0.5, 0.5, 1.0, 1}});
  EXPECT_EQ(Collect(t, {0.5, 0.5, 0.5}, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(t, {0.5, 0.5, 0.49}, kNegInf).empty());
  EXPECT_TRUE(Collect(t, {0.49, 0.5, 0.5}, kNegInf).empty());
}

TEST(DominanceKdTree, EarlyTermination) {
  Rng rng(1);
  DominanceKdTree t(RandomPoints3(2000, &rng));
  size_t seen = 0;
  t.QueryPrioritized({1, 1, 1}, kNegInf, [&seen](const Point3&) {
    ++seen;
    return seen < 9;
  });
  EXPECT_EQ(seen, 9u);
}

TEST(DominanceKdTree, MaxPruningIsSubstantial) {
  Rng rng(2);
  std::vector<Point3> data = RandomPoints3(1 << 15, &rng);
  DominanceKdTree t(data);
  QueryStats stats;
  auto got = t.QueryMax({0.9, 0.9, 0.9}, &stats);
  ASSERT_TRUE(got.has_value());
  EXPECT_LT(stats.nodes_visited, data.size() / 8);
}

struct Param {
  size_t n;
  uint64_t seed;
};

class DominanceSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DominanceSweep, PrioritizedAndMaxMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point3> data = RandomPoints3(p.n, &rng);
  DominanceKdTree t(data);
  for (int trial = 0; trial < 40; ++trial) {
    const Point3 q{rng.NextDouble() * 1.2, rng.NextDouble() * 1.2,
                   rng.NextDouble() * 1.2, 0, 0};
    const double tau_pool[] = {kNegInf, 100.0, 600.0, 950.0};
    const double tau = tau_pool[trial % 4];
    auto got = Collect(t, q, tau);
    auto want = test::BrutePrioritized<DominanceProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));

    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<DominanceProblem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DominanceSweep,
                         ::testing::Values(Param{1, 1}, Param{2, 2},
                                           Param{50, 3}, Param{500, 4},
                                           Param{4000, 5}));

class DominanceTopKSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DominanceTopKSweep, BothReductionsMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 40);
  std::vector<Point3> data = RandomPoints3(p.n, &rng);
  CoreSetTopK<DominanceProblem, DominanceKdTree> thm1(data);
  SampledTopK<DominanceProblem, DominanceKdTree, DominanceKdTree> thm2(data);
  for (int trial = 0; trial < 10; ++trial) {
    const Point3 q{0.3 + rng.NextDouble() * 0.9,
                   0.3 + rng.NextDouble() * 0.9,
                   0.3 + rng.NextDouble() * 0.9, 0, 0};
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}, p.n}) {
      auto want = test::BruteTopK<DominanceProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want))
          << "thm1 k=" << k;
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want))
          << "thm2 k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DominanceTopKSweep,
                         ::testing::Values(Param{100, 1}, Param{1000, 2},
                                           Param{5000, 3}));

}  // namespace
}  // namespace topk
