#include "common/kselect.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/weighted.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;

TEST(WeightOrder, HeavierThanIsStrictTotalOrder) {
  Point1D a{0, 1.0, 1}, b{0, 2.0, 2}, c{0, 2.0, 3};
  EXPECT_TRUE(HeavierThan(b, a));
  EXPECT_FALSE(HeavierThan(a, b));
  // Equal weights break ties by id.
  EXPECT_TRUE(HeavierThan(c, b));
  EXPECT_FALSE(HeavierThan(b, c));
  EXPECT_FALSE(HeavierThan(b, b));
}

TEST(WeightOrder, MeetsThresholdIsInclusive) {
  Point1D a{0, 5.0, 1};
  EXPECT_TRUE(MeetsThreshold(a, 5.0));
  EXPECT_TRUE(MeetsThreshold(a, 4.9));
  EXPECT_FALSE(MeetsThreshold(a, 5.1));
}

TEST(KSelect, EmptyPool) {
  std::vector<Point1D> pool;
  SelectTopK(&pool, 5);
  EXPECT_TRUE(pool.empty());
}

TEST(KSelect, KZeroClearsPool) {
  std::vector<Point1D> pool{{0, 1, 1}, {0, 2, 2}};
  SelectTopK(&pool, 0);
  EXPECT_TRUE(pool.empty());
}

TEST(KSelect, KLargerThanPoolKeepsAllSorted) {
  std::vector<Point1D> pool{{0, 1, 1}, {0, 3, 2}, {0, 2, 3}};
  SelectTopK(&pool, 10);
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[0].id, 2u);
  EXPECT_EQ(pool[1].id, 3u);
  EXPECT_EQ(pool[2].id, 1u);
}

TEST(KSelect, SelectsExactTopKDescending) {
  Rng rng(7);
  for (size_t n : {1u, 2u, 17u, 100u, 1000u}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    for (size_t k : {size_t{1}, n / 2, n}) {
      std::vector<Point1D> expected = data;
      std::sort(expected.begin(), expected.end(), ByWeightDesc());
      if (expected.size() > k) expected.resize(k);

      std::vector<Point1D> pool = data;
      SelectTopK(&pool, k);
      EXPECT_EQ(test::IdsOf(pool), test::IdsOf(expected));
    }
  }
}

TEST(KSelect, UnorderedVariantKeepsSameSet) {
  Rng rng(11);
  std::vector<Point1D> data = test::RandomPoints1D(500, &rng);
  std::vector<Point1D> sorted = data;
  SelectTopK(&sorted, 40);
  std::vector<Point1D> unordered = data;
  SelectTopKUnordered(&unordered, 40);
  EXPECT_EQ(test::SortedIdsOf(sorted), test::SortedIdsOf(unordered));
}

TEST(KSelect, DuplicateWeightsResolvedById) {
  Rng rng(13);
  std::vector<Point1D> data = test::ClumpedPoints1D(300, &rng);
  std::vector<Point1D> pool = data;
  SelectTopK(&pool, 25);
  std::vector<Point1D> expected = data;
  std::sort(expected.begin(), expected.end(), ByWeightDesc());
  expected.resize(25);
  EXPECT_EQ(test::IdsOf(pool), test::IdsOf(expected));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(4);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4700);
  EXPECT_LT(heads, 5300);
}

}  // namespace
}  // namespace topk
