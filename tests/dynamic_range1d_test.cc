// Dynamic 1D structures (treap PST + augmented-treap range max) and the
// dynamic SampledTopK built from them: randomized interleavings of
// Insert/Erase/Query validated against a brute-force shadow copy.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sampled_topk.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Point1D> Collect(const DynamicPst& pst, const Range1D& q,
                             double tau) {
  std::vector<Point1D> out;
  pst.QueryPrioritized(q, tau, [&out](const Point1D& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(DynamicPst, EmptyAndSingle) {
  DynamicPst pst;
  EXPECT_EQ(pst.size(), 0u);
  EXPECT_TRUE(Collect(pst, {0, 1}, kNegInf).empty());
  pst.Insert({0.5, 7.0, 1});
  EXPECT_EQ(pst.size(), 1u);
  EXPECT_EQ(Collect(pst, {0, 1}, kNegInf).size(), 1u);
  pst.Erase({0.5, 7.0, 1});
  EXPECT_EQ(pst.size(), 0u);
  EXPECT_TRUE(Collect(pst, {0, 1}, kNegInf).empty());
}

TEST(DynamicPst, RandomInterleavingMatchesBrute) {
  Rng rng(11);
  DynamicPst pst;
  std::vector<Point1D> shadow;
  uint64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.Below(10);
    if (op < 6 || shadow.empty()) {
      Point1D p{rng.NextDouble(), rng.NextDouble() * 100, next_id++};
      pst.Insert(p);
      shadow.push_back(p);
    } else {
      const size_t idx = rng.Below(shadow.size());
      pst.Erase(shadow[idx]);
      shadow[idx] = shadow.back();
      shadow.pop_back();
    }
    ASSERT_EQ(pst.size(), shadow.size());
    if (step % 50 == 0) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      const double tau = rng.Bernoulli(0.5) ? kNegInf : 50.0;
      auto got = Collect(pst, {a, b}, tau);
      auto want =
          test::BrutePrioritized<Range1DProblem>(shadow, {a, b}, tau);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    }
  }
}

TEST(DynamicPst, HeapOrderGivesEarlyTerminationOnHeaviest) {
  // The root is the global max, so a budget-1 query with tau = -inf must
  // return the heaviest matching point when the whole domain matches.
  Rng rng(12);
  std::vector<Point1D> data = test::RandomPoints1D(500, &rng);
  DynamicPst pst(data);
  std::vector<Point1D> got;
  pst.QueryPrioritized({0.0, 1.0}, kNegInf, [&got](const Point1D& p) {
    got.push_back(p);
    return false;
  });
  ASSERT_EQ(got.size(), 1u);
  auto want = test::BruteMax<Range1DProblem>(data, {0.0, 1.0});
  EXPECT_EQ(got[0].id, want->id);
}

TEST(DynamicRangeMax, EmptyAndSingle) {
  DynamicRangeMax rm;
  EXPECT_FALSE(rm.QueryMax({0, 1}).has_value());
  rm.Insert({0.3, 9.0, 4});
  auto hit = rm.QueryMax({0.0, 1.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 4u);
  EXPECT_FALSE(rm.QueryMax({0.4, 1.0}).has_value());
  rm.Erase({0.3, 9.0, 4});
  EXPECT_FALSE(rm.QueryMax({0.0, 1.0}).has_value());
}

TEST(DynamicRangeMax, RandomInterleavingMatchesBrute) {
  Rng rng(13);
  DynamicRangeMax rm;
  std::vector<Point1D> shadow;
  uint64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.Below(10);
    if (op < 6 || shadow.empty()) {
      Point1D p{rng.NextDouble(), rng.NextDouble() * 100, next_id++};
      rm.Insert(p);
      shadow.push_back(p);
    } else {
      const size_t idx = rng.Below(shadow.size());
      rm.Erase(shadow[idx]);
      shadow[idx] = shadow.back();
      shadow.pop_back();
    }
    if (step % 25 == 0) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      auto got = rm.QueryMax({a, b});
      auto want = test::BruteMax<Range1DProblem>(shadow, {a, b});
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id);
      }
    }
  }
}

TEST(DynamicRangeMax, DuplicateXCoordinates) {
  DynamicRangeMax rm;
  std::vector<Point1D> shadow;
  for (uint64_t i = 1; i <= 64; ++i) {
    Point1D p{0.5, static_cast<double>(i % 7), i};
    rm.Insert(p);
    shadow.push_back(p);
  }
  auto got = rm.QueryMax({0.5, 0.5});
  auto want = test::BruteMax<Range1DProblem>(shadow, {0.5, 0.5});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, want->id);
}

using DynTopK = SampledTopK<Range1DProblem, DynamicPst, DynamicRangeMax>;

TEST(DynamicSampledTopK, InterleavedUpdatesStayExact) {
  Rng rng(14);
  std::vector<Point1D> data = test::RandomPoints1D(4000, &rng);
  std::vector<Point1D> shadow = data;
  DynTopK topk(data);
  uint64_t next_id = 1'000'000;
  for (int step = 0; step < 800; ++step) {
    const uint64_t op = rng.Below(10);
    if (op < 5) {
      Point1D p{rng.NextDouble(), rng.NextDouble() * 1000, next_id++};
      topk.Insert(p);
      shadow.push_back(p);
    } else {
      const size_t idx = rng.Below(shadow.size());
      topk.Erase(shadow[idx]);
      shadow[idx] = shadow.back();
      shadow.pop_back();
    }
    if (step % 20 == 0) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      const size_t k = 1 + static_cast<size_t>(rng.Below(40));
      auto got = topk.Query({a, b}, k);
      auto want = test::BruteTopK<Range1DProblem>(shadow, {a, b}, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want)) << "step=" << step;
    }
  }
}

TEST(DynamicSampledTopK, GrowFromEmptyTriggersRebuild) {
  Rng rng(15);
  DynTopK topk(std::vector<Point1D>{});
  std::vector<Point1D> shadow;
  for (uint64_t i = 1; i <= 3000; ++i) {
    Point1D p{rng.NextDouble(), rng.NextDouble() * 1000, i};
    topk.Insert(p);
    shadow.push_back(p);
  }
  EXPECT_EQ(topk.size(), 3000u);
  // After growing 3000x from empty, rebuilds must have created sample
  // levels (a never-rebuilt structure would have none).
  EXPECT_GT(topk.num_sample_levels(), 0u);
  auto got = topk.Query({0.2, 0.8}, 25);
  auto want = test::BruteTopK<Range1DProblem>(shadow, {0.2, 0.8}, 25);
  EXPECT_EQ(test::IdsOf(got), test::IdsOf(want));
}

TEST(DynamicSampledTopK, ShrinkToEmpty) {
  Rng rng(16);
  std::vector<Point1D> data = test::RandomPoints1D(500, &rng);
  DynTopK topk(data);
  for (const Point1D& p : data) topk.Erase(p);
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_TRUE(topk.Query({0.0, 1.0}, 5).empty());
}

}  // namespace
}  // namespace topk
