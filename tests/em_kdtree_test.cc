// External-memory kd-tree: correctness vs brute force for dominance and
// circular predicates, I/O accounting, and the reductions over it.

#include "em/em_kdtree.h"

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "circle/circular.h"
#include "common/random.h"
#include "core/sampled_topk.h"
#include "dominance/point3.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "test_util.h"

namespace topk {
namespace {

using circle::CircularGeo;
using circle::CircularProblem;
using circle::Disk;
using circle::WPoint2;
using dominance::DominanceGeo;
using dominance::DominanceProblem;
using dominance::Point3;
using em::BlockDevice;
using em::BufferPool;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using EmDominance = em::EmKdTree<DominanceProblem, DominanceGeo>;
using EmCircular = em::EmKdTree<CircularProblem, CircularGeo>;

struct Fx {
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<BufferPool> pool;
  explicit Fx(size_t page = 4096, size_t frames = 32)
      : dev(std::make_unique<BlockDevice>(page)),
        pool(std::make_unique<BufferPool>(dev.get(), frames)) {}
};

std::vector<Point3> RandomPoints3(size_t n, Rng* rng) {
  std::vector<Point3> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Point3{rng->NextDouble(), rng->NextDouble(), rng->NextDouble(),
                    rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

TEST(EmKdTree, EmptyInput) {
  Fx fx;
  EmDominance t(fx.pool.get(), {});
  EXPECT_FALSE(t.QueryMax({1, 1, 1, 0, 0}).has_value());
  size_t count = 0;
  t.QueryPrioritized({1, 1, 1, 0, 0}, kNegInf, [&count](const Point3&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0u);
}

struct Param {
  size_t n;
  uint64_t seed;
  size_t page;
};

class EmKdSweep : public ::testing::TestWithParam<Param> {};

TEST_P(EmKdSweep, DominanceMatchesBrute) {
  const Param p = GetParam();
  Fx fx(p.page);
  Rng rng(p.seed);
  std::vector<Point3> data = RandomPoints3(p.n, &rng);
  EmDominance t(fx.pool.get(), data);
  for (int trial = 0; trial < 30; ++trial) {
    const Point3 q{rng.NextDouble() * 1.2, rng.NextDouble() * 1.2,
                   rng.NextDouble() * 1.2, 0, 0};
    const double tau_pool[] = {kNegInf, 200.0, 700.0, 980.0};
    const double tau = tau_pool[trial % 4];
    std::vector<Point3> got;
    t.QueryPrioritized(q, tau, [&got](const Point3& e) {
      got.push_back(e);
      return true;
    });
    auto want = test::BrutePrioritized<DominanceProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "n=" << p.n << " page=" << p.page;

    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<DominanceProblem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmKdSweep,
    ::testing::Values(Param{1, 1, 4096}, Param{2, 2, 4096},
                      Param{100, 3, 4096}, Param{3000, 4, 4096},
                      // Tiny pages: one node per page (worst layout).
                      Param{500, 5, 128},
                      // Page holding a few nodes.
                      Param{2000, 6, 512}));

TEST(EmKdTree, CircularMatchesBrute) {
  Fx fx;
  Rng rng(7);
  std::vector<WPoint2> data(2000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.NextDouble(), rng.NextDouble(),
               rng.NextDouble() * 1000.0, i + 1};
  }
  EmCircular t(fx.pool.get(), data);
  for (int trial = 0; trial < 40; ++trial) {
    const Disk q{rng.NextDouble(), rng.NextDouble(),
                 rng.NextDouble() * 0.4};
    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<CircularProblem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

TEST(EmKdTree, MaxQueryIsIoEfficient) {
  Fx fx(4096, 16);
  Rng rng(8);
  std::vector<Point3> data = RandomPoints3(1 << 15, &rng);
  EmDominance t(fx.pool.get(), data);
  fx.pool->FlushAll();
  fx.dev->ResetCounters();
  auto got = t.QueryMax({0.9, 0.9, 0.9, 0, 0});
  ASSERT_TRUE(got.has_value());
  // ~900 pages total; branch-and-bound should touch a small fraction.
  EXPECT_LT(fx.dev->counters().reads, 120u);
}

TEST(EmKdTree, SampledTopKOverEmKdTree) {
  Fx fx(4096, 64);
  Rng rng(9);
  std::vector<Point3> data = RandomPoints3(8000, &rng);
  auto factory = [&fx](std::vector<Point3> v) {
    return EmDominance(fx.pool.get(), std::move(v));
  };
  SampledTopK<DominanceProblem, EmDominance, EmDominance,
              decltype(factory), decltype(factory)>
      thm2(data, {}, factory, factory);
  for (int trial = 0; trial < 6; ++trial) {
    const Point3 q{0.4 + rng.NextDouble() * 0.8,
                   0.4 + rng.NextDouble() * 0.8,
                   0.4 + rng.NextDouble() * 0.8, 0, 0};
    for (size_t k : {size_t{1}, size_t{25}, size_t{400}}) {
      auto want = test::BruteTopK<DominanceProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want));
    }
  }
  EXPECT_GT(fx.dev->counters().total(), 0u);
}

}  // namespace
}  // namespace topk
