// Circular range reporting (Corollary 1): disk predicate over the
// kd-tree, the lifting-trick identity, and both reductions.

#include "circle/circular.h"

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "test_util.h"

namespace topk {
namespace {

using circle::CircularKdTree;
using circle::CircularProblem;
using circle::Disk;
using circle::WPoint2;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<WPoint2> RandomPoints2(size_t n, Rng* rng) {
  std::vector<WPoint2> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = WPoint2{rng->NextDouble(), rng->NextDouble(),
                     rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

std::vector<WPoint2> Collect(const CircularKdTree& t, const Disk& q,
                             double tau) {
  std::vector<WPoint2> out;
  t.QueryPrioritized(q, tau, [&out](const WPoint2& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

TEST(Circular, LiftingTrickIdentity) {
  // Disk membership in the plane == halfspace membership on the
  // paraboloid, for random points and disks.
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const Disk q{rng.NextDouble() * 2 - 1, rng.NextDouble() * 2 - 1,
                 rng.NextDouble()};
    const double x = rng.NextDouble() * 2 - 1;
    const double y = rng.NextDouble() * 2 - 1;
    const bool in_disk = CircularProblem::Matches(q, {x, y, 0, 0});
    EXPECT_EQ(in_disk, circle::LiftedHalfspaceContains(q, x, y));
  }
}

TEST(Circular, BoundaryInclusive) {
  CircularKdTree t({{1.0, 0.0, 5.0, 1}});
  EXPECT_EQ(Collect(t, {0, 0, 1.0}, kNegInf).size(), 1u);
  EXPECT_TRUE(Collect(t, {0, 0, 0.999}, kNegInf).empty());
}

TEST(Circular, ZeroRadiusHitsExactPoint) {
  CircularKdTree t({{0.25, 0.75, 1.0, 1}, {0.5, 0.5, 2.0, 2}});
  auto hits = Collect(t, {0.25, 0.75, 0.0}, kNegInf);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
}

struct Param {
  size_t n;
  uint64_t seed;
};

class CircularSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CircularSweep, PrioritizedAndMaxMatchBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<WPoint2> data = RandomPoints2(p.n, &rng);
  CircularKdTree t(data);
  for (int trial = 0; trial < 40; ++trial) {
    const Disk q{rng.NextDouble(), rng.NextDouble(),
                 rng.NextDouble() * 0.5};
    const double tau_pool[] = {kNegInf, 100.0, 600.0, 950.0};
    const double tau = tau_pool[trial % 4];
    auto got = Collect(t, q, tau);
    auto want = test::BrutePrioritized<CircularProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));

    auto gmax = t.QueryMax(q);
    auto wmax = test::BruteMax<CircularProblem>(data, q);
    ASSERT_EQ(gmax.has_value(), wmax.has_value());
    if (gmax.has_value()) {
      ASSERT_EQ(gmax->id, wmax->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CircularSweep,
                         ::testing::Values(Param{1, 1}, Param{2, 2},
                                           Param{64, 3}, Param{512, 4},
                                           Param{4000, 5}));

TEST(Circular, BothReductionsMatchBrute) {
  Rng rng(9);
  std::vector<WPoint2> data = RandomPoints2(4000, &rng);
  CoreSetTopK<CircularProblem, CircularKdTree> thm1(data);
  SampledTopK<CircularProblem, CircularKdTree, CircularKdTree> thm2(data);
  for (int trial = 0; trial < 10; ++trial) {
    const Disk q{rng.NextDouble(), rng.NextDouble(),
                 0.2 + rng.NextDouble() * 0.6};
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}, size_t{4000}}) {
      auto want = test::BruteTopK<CircularProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want));
    }
  }
}

}  // namespace
}  // namespace topk
