// Federated scatter-gather serving: the hash shard map, the
// coordinator's TA-style early-terminating merge (bitwise-exact vs a
// single engine over the union, for all four reductions at every shard
// count), the epoch-invalidated result cache, per-shard partial
// failure (degraded answers exact over survivors), and the coordinator
// under a live publisher — every answer exactly the per-shard
// snapshots it reports. Runs under TSan via the ci tsan job's `-R
// serve` sweep; the concurrent-publisher test is the target.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/reduction_options.h"
#include "core/sampled_topk.h"
#include "federate/coordinator.h"
#include "federate/shard_map.h"
#include "range1d/count_tree.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/epoch.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
using Counting = CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;
using DynTopK = SampledTopK<Range1DProblem, DynamicPst, DynamicRangeMax>;

// --- Shard map -----------------------------------------------------------

TEST(ShardMap, PartitionIsDisjointCompleteAndBalanced) {
  Rng rng(41);
  const auto data = test::RandomPoints1D(20000, &rng);
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{5}, size_t{8}}) {
    const auto parts = federate::PartitionById(data, num_shards);
    ASSERT_EQ(parts.size(), num_shards);
    std::vector<Point1D> reunion;
    for (size_t s = 0; s < num_shards; ++s) {
      for (const Point1D& e : parts[s]) {
        // Placement is a pure function of the id.
        EXPECT_EQ(federate::ShardOf(e.id, num_shards), s);
        reunion.push_back(e);
      }
      // The mixed hash keeps dense sequential ids spread out: no shard
      // more than 25% off the even split at this n.
      const double even =
          static_cast<double>(data.size()) / static_cast<double>(num_shards);
      EXPECT_GT(static_cast<double>(parts[s].size()), 0.75 * even);
      EXPECT_LT(static_cast<double>(parts[s].size()), 1.25 * even);
    }
    // Union of the parts is exactly the input (ids are unique).
    EXPECT_EQ(test::SortedIdsOf(reunion), test::SortedIdsOf(data));
  }
}

TEST(ShardMap, MixIdIsDeterministicAndSpreadsDenseIds) {
  EXPECT_EQ(federate::MixId(42), federate::MixId(42));
  std::set<uint64_t> low3;
  for (uint64_t id = 1; id <= 64; ++id) {
    low3.insert(federate::MixId(id) % 8);
  }
  EXPECT_EQ(low3.size(), 8u);  // dense ids reach every residue
}

// --- Exactness across shard counts and reductions ------------------------

// One federation: data hash-partitioned into S shards, one static
// engine per shard, a coordinator in front. Holds the shard structures
// so engine pointers stay valid for the coordinator's lifetime.
template <typename S>
struct Federation {
  std::vector<S> structures;
  std::vector<std::unique_ptr<serve::QueryEngine<S>>> engines;
  std::unique_ptr<federate::Coordinator<S>> coord;
};

template <typename S>
Federation<S> MakeStatic(
    const std::vector<Point1D>& data, size_t num_shards,
    const typename federate::Coordinator<S>::Options& options = {}) {
  Federation<S> f;
  auto parts = federate::PartitionById(data, num_shards);
  f.structures.reserve(num_shards);
  for (auto& p : parts) f.structures.emplace_back(std::move(p));
  std::vector<typename federate::Coordinator<S>::Shard> shards;
  for (size_t s = 0; s < num_shards; ++s) {
    f.engines.push_back(std::make_unique<serve::QueryEngine<S>>(
        &f.structures[s], typename serve::QueryEngine<S>::Options{}));
    shards.push_back({f.engines.back().get(), nullptr});
  }
  f.coord = std::make_unique<federate::Coordinator<S>>(std::move(shards),
                                                       options);
  return f;
}

template <typename S>
void ExpectFederatedExact(size_t num_shards, uint64_t seed) {
  Rng rng(seed);
  const auto data = test::RandomPoints1D(1500, &rng);
  auto fed = MakeStatic<S>(data, num_shards);
  const S whole(data);
  std::vector<Point1D> out;
  for (size_t i = 0; i < 40; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const size_t k = (i % 7 == 0) ? 300 : 1 + i % 17;
    const Range1D q{lo, hi};
    ASSERT_EQ(fed.coord->QueryInto(q, k, &out), serve::ResultStatus::kOk)
        << "S=" << num_shards << " query " << i;
    // Bitwise-identical to the single-engine answer over the union —
    // which is itself pinned to brute force.
    EXPECT_EQ(test::IdsOf(out), test::IdsOf(whole.Query(q, k)))
        << "S=" << num_shards << " query " << i;
    EXPECT_EQ(test::IdsOf(out),
              test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, k)))
        << "S=" << num_shards << " query " << i;
  }
  const serve::MetricsSnapshot& m = fed.coord->metrics();
  EXPECT_EQ(m.queries, 40u);
  EXPECT_EQ(m.ok, 40u);
}

constexpr size_t kShardCounts[] = {1, 2, 3, 5, 8};

TEST(Coordinator, Thm1ExactAtEveryShardCount) {
  for (size_t s : kShardCounts) ExpectFederatedExact<Thm1>(s, 100 + s);
}
TEST(Coordinator, Thm2ExactAtEveryShardCount) {
  for (size_t s : kShardCounts) ExpectFederatedExact<Thm2>(s, 200 + s);
}
TEST(Coordinator, BaselineExactAtEveryShardCount) {
  for (size_t s : kShardCounts) ExpectFederatedExact<Baseline>(s, 300 + s);
}
TEST(Coordinator, CountingExactAtEveryShardCount) {
  for (size_t s : kShardCounts) ExpectFederatedExact<Counting>(s, 400 + s);
}

// The exhaustive baseline answers identically, and the TA merge never
// pulls deeper than it (strictly shallower once k spans shards and the
// weight spread lets shards retire early).
TEST(Coordinator, EarlyTerminationPullsNoMoreThanExhaustive) {
  Rng rng(77);
  const auto data = test::RandomPoints1D(4000, &rng);
  const size_t kShards = 4;
  auto ta = MakeStatic<Thm2>(data, kShards);
  auto ex = MakeStatic<Thm2>(data, kShards, {.exhaustive = true});
  std::vector<Point1D> got_ta, got_ex;
  for (size_t i = 0; i < 24; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Range1D q{lo, hi};
    const size_t k = 64;
    ASSERT_EQ(ta.coord->QueryInto(q, k, &got_ta),
              serve::ResultStatus::kOk);
    ASSERT_EQ(ex.coord->QueryInto(q, k, &got_ex),
              serve::ResultStatus::kOk);
    EXPECT_EQ(test::IdsOf(got_ta), test::IdsOf(got_ex)) << "query " << i;
  }
  EXPECT_LE(ta.coord->stats().elements_pulled,
            ex.coord->stats().elements_pulled);
  // At k=64 over 4 shards the first-round ask is well under k, so on
  // random weights at least some queries must finish shallow.
  EXPECT_LT(ta.coord->stats().elements_pulled,
            ex.coord->stats().elements_pulled);
}

TEST(Coordinator, ZeroKAndEmptyRangeAreOkAndEmpty) {
  Rng rng(9);
  const auto data = test::RandomPoints1D(400, &rng);
  auto fed = MakeStatic<Thm1>(data, 3);
  std::vector<Point1D> out;
  EXPECT_EQ(fed.coord->QueryInto(Range1D{0.2, 0.8}, 0, &out),
            serve::ResultStatus::kOk);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fed.coord->QueryInto(Range1D{2.0, 3.0}, 10, &out),
            serve::ResultStatus::kOk);
  EXPECT_TRUE(out.empty());
  // k beyond the matching population: the whole population, exactly.
  EXPECT_EQ(fed.coord->QueryInto(Range1D{-1.0, 2.0}, 1000, &out),
            serve::ResultStatus::kOk);
  EXPECT_EQ(test::IdsOf(out),
            test::IdsOf(test::BruteTopK<Range1DProblem>(
                data, Range1D{-1.0, 2.0}, 1000)));
}

// --- Result cache --------------------------------------------------------

TEST(Coordinator, CacheHitSkipsFanoutAndStaysExact) {
  Rng rng(21);
  const auto data = test::RandomPoints1D(800, &rng);
  auto fed = MakeStatic<Thm2>(data, 3, {.cache_entries = 64});
  const Range1D q{0.1, 0.9};
  std::vector<Point1D> first, second;
  ASSERT_EQ(fed.coord->QueryInto(q, 12, &first), serve::ResultStatus::kOk);
  EXPECT_EQ(fed.coord->stats().cache_misses, 1u);
  const uint64_t fetches = fed.coord->stats().shard_fetches;
  ASSERT_EQ(fed.coord->QueryInto(q, 12, &second), serve::ResultStatus::kOk);
  EXPECT_EQ(fed.coord->stats().cache_hits, 1u);
  EXPECT_EQ(fed.coord->stats().shard_fetches, fetches);  // no fan-out
  EXPECT_EQ(test::IdsOf(second), test::IdsOf(first));
  // Same predicate, different k: distinct cache key, not a false hit.
  ASSERT_EQ(fed.coord->QueryInto(q, 5, &second), serve::ResultStatus::kOk);
  EXPECT_EQ(fed.coord->stats().cache_hits, 1u);
  EXPECT_EQ(test::IdsOf(second),
            test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, 5)));
}

// --- Epoch mode: publishes invalidate, answers track snapshots -----------

std::vector<Point1D> ShardPoints(uint64_t shard, uint64_t version,
                                 size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point1D> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.NextDouble(),
                   rng.NextDouble() * 1000.0,
                   shard * 1000000 + version * 10000 + i + 1});
  }
  return pts;
}

DynTopK BuildDyn(const std::vector<Point1D>& data, uint64_t seed) {
  ReductionOptions opts;
  opts.seed = seed;
  return DynTopK(data, opts);
}

TEST(Coordinator, PublishInvalidatesCacheAndAnswersTrackEpochs) {
  const size_t kShards = 3;
  std::vector<std::vector<Point1D>> v1(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    v1[s] = ShardPoints(s, 1, 300, 500 + s);
  }
  std::vector<std::unique_ptr<serve::EpochManager<DynTopK>>> managers;
  std::vector<std::unique_ptr<serve::QueryEngine<DynTopK>>> engines;
  std::vector<federate::Coordinator<DynTopK>::Shard> shards;
  for (size_t s = 0; s < kShards; ++s) {
    managers.push_back(std::make_unique<serve::EpochManager<DynTopK>>(
        BuildDyn(v1[s], 600 + s)));
    engines.push_back(std::make_unique<serve::QueryEngine<DynTopK>>(
        managers.back().get(),
        typename serve::QueryEngine<DynTopK>::Options{}));
    shards.push_back({engines.back().get(), managers.back().get()});
  }
  federate::Coordinator<DynTopK> coord(std::move(shards),
                                       {.cache_entries = 32});

  auto union_of = [&](const std::vector<std::vector<Point1D>>& per_shard) {
    std::vector<Point1D> all;
    for (const auto& part : per_shard) {
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  };

  const Range1D q{0.2, 0.9};
  const size_t k = 25;
  std::vector<Point1D> out;
  ASSERT_EQ(coord.QueryInto(q, k, &out), serve::ResultStatus::kOk);
  EXPECT_EQ(test::IdsOf(out),
            test::IdsOf(test::BruteTopK<Range1DProblem>(union_of(v1), q, k)));
  EXPECT_EQ(coord.last_epoch_seqs(),
            (std::vector<uint64_t>{1, 1, 1}));

  // Warm hit: same seqs, no fan-out.
  const uint64_t fetches = coord.stats().shard_fetches;
  ASSERT_EQ(coord.QueryInto(q, k, &out), serve::ResultStatus::kOk);
  EXPECT_EQ(coord.stats().cache_hits, 1u);
  EXPECT_EQ(coord.stats().shard_fetches, fetches);

  // Publish a new snapshot on shard 1: the cached seq vector is stale,
  // the entry invalidates, and the fresh answer is exact over the new
  // union with the bumped seq recorded.
  auto v2 = v1;
  v2[1] = ShardPoints(1, 2, 350, 700);
  managers[1]->Publish(BuildDyn(v2[1], 701));
  ASSERT_EQ(coord.QueryInto(q, k, &out), serve::ResultStatus::kOk);
  EXPECT_EQ(coord.stats().cache_invalidations, 1u);
  EXPECT_EQ(test::IdsOf(out),
            test::IdsOf(test::BruteTopK<Range1DProblem>(union_of(v2), q, k)));
  EXPECT_EQ(coord.last_epoch_seqs(),
            (std::vector<uint64_t>{1, 2, 1}));

  // And the refilled entry serves hits again at the new seqs.
  ASSERT_EQ(coord.QueryInto(q, k, &out), serve::ResultStatus::kOk);
  EXPECT_EQ(coord.stats().cache_hits, 2u);
}

// --- Partial failure -----------------------------------------------------

TEST(Coordinator, FaultedShardDegradesToExactSurvivorAnswer) {
  Rng rng(31);
  const auto data = test::RandomPoints1D(1200, &rng);
  const size_t kShards = 4;
  auto fed = MakeStatic<Thm1>(data, kShards, {.cache_entries = 16});
  auto parts = federate::PartitionById(data, kShards);
  std::vector<Point1D> survivors;
  for (size_t s = 0; s < kShards; ++s) {
    if (s == 2) continue;
    survivors.insert(survivors.end(), parts[s].begin(), parts[s].end());
  }

  const Range1D q{0.05, 0.95};
  std::vector<Point1D> out;
  ASSERT_EQ(fed.coord->QueryInto(q, 20, &out), serve::ResultStatus::kOk);

  fed.coord->SetShardHealthy(2, false);
  EXPECT_FALSE(fed.coord->shard_healthy(2));
  // Degraded, but EXACT over the surviving shards — and the warm cache
  // entry (computed over all 4 shards) must NOT be served.
  ASSERT_EQ(fed.coord->QueryInto(q, 20, &out),
            serve::ResultStatus::kDegraded);
  EXPECT_EQ(test::IdsOf(out),
            test::IdsOf(test::BruteTopK<Range1DProblem>(survivors, q, 20)));

  fed.coord->SetShardHealthy(2, true);
  ASSERT_EQ(fed.coord->QueryInto(q, 20, &out), serve::ResultStatus::kOk);
  EXPECT_EQ(test::IdsOf(out),
            test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, 20)));

  // Per-status tallies surface in the metrics snapshot (the JSON view).
  const serve::MetricsSnapshot& m = fed.coord->metrics();
  EXPECT_EQ(m.ok, 2u);
  EXPECT_EQ(m.degraded, 1u);
  EXPECT_NE(serve::ToJson(m).find("\"degraded\":1"), std::string::npos);
}

TEST(Coordinator, AllShardsUnhealthyIsEmptyDegraded) {
  Rng rng(32);
  const auto data = test::RandomPoints1D(200, &rng);
  auto fed = MakeStatic<Thm1>(data, 2);
  fed.coord->SetShardHealthy(0, false);
  fed.coord->SetShardHealthy(1, false);
  std::vector<Point1D> out{{0.0, 0.0, 99}};
  EXPECT_EQ(fed.coord->QueryInto(Range1D{0.0, 1.0}, 5, &out),
            serve::ResultStatus::kDegraded);
  EXPECT_TRUE(out.empty());
}

// A shard that degrades ITSELF (cost budget) bounds the merge: the
// coordinator's truncated answer must be an exact PREFIX of the true
// global top-k — never reordered, never wrong, just shorter.
TEST(Coordinator, BudgetDegradedAnswerIsPrefixOfGlobalTopK) {
  Rng rng(33);
  const auto data = test::RandomPoints1D(2000, &rng);
  auto fed = MakeStatic<Thm1>(data, 3, {.cost_budget = 400});
  std::vector<Point1D> out;
  bool saw_degraded = false;
  for (size_t i = 0; i < 16; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const Range1D q{lo, hi};
    const size_t k = 60;
    const auto status = fed.coord->QueryInto(q, k, &out);
    const auto want = test::BruteTopK<Range1DProblem>(data, q, k);
    const auto want_ids = test::IdsOf(want);
    const auto got_ids = test::IdsOf(out);
    if (status == serve::ResultStatus::kOk) {
      EXPECT_EQ(got_ids, want_ids) << "query " << i;
    } else {
      saw_degraded = true;
      ASSERT_LE(got_ids.size(), want_ids.size()) << "query " << i;
      for (size_t j = 0; j < got_ids.size(); ++j) {
        EXPECT_EQ(got_ids[j], want_ids[j]) << "query " << i << " pos " << j;
      }
    }
  }
  EXPECT_TRUE(saw_degraded) << "budget 400 never degraded — raise n?";
}

TEST(Coordinator, DeadlineExceededPropagates) {
  Rng rng(34);
  const auto data = test::RandomPoints1D(500, &rng);
  auto fed = MakeStatic<Thm1>(data, 2, {.deadline_ns = 1});
  std::vector<Point1D> out;
  EXPECT_EQ(fed.coord->QueryInto(Range1D{0.0, 1.0}, 10, &out),
            serve::ResultStatus::kDeadlineExceeded);
  // Whatever survived truncation is an exact prefix of the global
  // top-k (usually empty: a 1 ns deadline is late before any work).
  const auto want_ids = test::IdsOf(
      test::BruteTopK<Range1DProblem>(data, Range1D{0.0, 1.0}, 10));
  const auto got_ids = test::IdsOf(out);
  ASSERT_LE(got_ids.size(), want_ids.size());
  for (size_t j = 0; j < got_ids.size(); ++j) {
    EXPECT_EQ(got_ids[j], want_ids[j]) << "pos " << j;
  }
  EXPECT_EQ(fed.coord->metrics().deadline_exceeded, 1u);
}

// --- Live publisher: every answer exact for the snapshots it reports ----

// A writer republishes per-shard snapshots while the main thread
// queries through the coordinator. The coordinator pairs each answer
// with last_epoch_seqs(); the answer must be EXACTLY the brute-force
// top-k over the union of those per-shard versions — stable window or
// exhaustive fallback alike. This is the TSan target for the module.
TEST(Coordinator, ServesExactSnapshotsUnderConcurrentPublishes) {
  const size_t kShards = 2;
  const uint64_t kVersions = 8;
  // versions[s][v] backs seq v+1 on shard s.
  std::vector<std::vector<std::vector<Point1D>>> versions(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (uint64_t v = 0; v < kVersions; ++v) {
      versions[s].push_back(
          ShardPoints(s, v + 1, 150 + 20 * v, 900 + 10 * s + v));
    }
  }
  std::vector<std::unique_ptr<serve::EpochManager<DynTopK>>> managers;
  std::vector<std::unique_ptr<serve::QueryEngine<DynTopK>>> engines;
  std::vector<federate::Coordinator<DynTopK>::Shard> shards;
  for (size_t s = 0; s < kShards; ++s) {
    managers.push_back(std::make_unique<serve::EpochManager<DynTopK>>(
        BuildDyn(versions[s][0], 950 + s)));
    engines.push_back(std::make_unique<serve::QueryEngine<DynTopK>>(
        managers.back().get(),
        typename serve::QueryEngine<DynTopK>::Options{}));
    shards.push_back({engines.back().get(), managers.back().get()});
  }
  federate::Coordinator<DynTopK> coord(std::move(shards),
                                       {.cache_entries = 8});

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (uint64_t v = 1; v < kVersions; ++v) {
      for (size_t s = 0; s < kShards; ++s) {
        managers[s]->Publish(
            BuildDyn(versions[s][v], 970 + 10 * s + v));
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  const Range1D queries[] = {
      {0.0, 1.0}, {0.1, 0.6}, {0.4, 0.9}, {0.25, 0.35}};
  std::vector<Point1D> out;
  size_t validated = 0;
  auto run_one = [&](size_t i) {
    const Range1D q = queries[i % 4];
    const size_t k = 16 + (i % 3) * 8;
    ASSERT_EQ(coord.QueryInto(q, k, &out), serve::ResultStatus::kOk);
    const std::vector<uint64_t>& seqs = coord.last_epoch_seqs();
    std::vector<Point1D> snapshot_union;
    for (size_t s = 0; s < kShards; ++s) {
      ASSERT_GE(seqs[s], 1u);
      ASSERT_LE(seqs[s], kVersions);
      const auto& part = versions[s][seqs[s] - 1];
      snapshot_union.insert(snapshot_union.end(), part.begin(), part.end());
    }
    EXPECT_EQ(test::IdsOf(out),
              test::IdsOf(test::BruteTopK<Range1DProblem>(
                  snapshot_union, q, k)))
        << "query " << i << " seqs " << seqs[0] << "," << seqs[1];
    ++validated;
  };
  size_t i = 0;
  while (!writer_done.load(std::memory_order_acquire)) {
    run_one(i++);
  }
  writer.join();
  // A few more after the writer quiesced: must land on the final
  // snapshots exactly.
  for (size_t j = 0; j < 8; ++j) run_one(i++);
  EXPECT_EQ(coord.last_epoch_seqs(),
            (std::vector<uint64_t>{kVersions, kVersions}));
  EXPECT_GE(validated, 8u);
  EXPECT_EQ(coord.metrics().ok, coord.metrics().queries);
}

}  // namespace
}  // namespace topk
