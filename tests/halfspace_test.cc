// 2D halfplane reporting (Theorem 3, d = 2): the weight-tree prioritized
// and max structures, plus both reductions.

#include "halfspace/halfspace_structures.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "halfspace/point2.h"
#include "test_util.h"

namespace topk {
namespace {

using halfspace::Halfplane;
using halfspace::HalfplaneProblem;
using halfspace::HalfspaceMax;
using halfspace::HalfspacePrioritized;
using halfspace::Point2W;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<Point2W> RandomPoints(size_t n, Rng* rng) {
  std::vector<Point2W> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Point2W{rng->NextDouble() * 2 - 1, rng->NextDouble() * 2 - 1,
                     rng->NextDouble() * 1000.0, i + 1};
  }
  return out;
}

Halfplane RandomHalfplane(Rng* rng) {
  const double a = rng->NextDouble() * 2 * 3.14159265358979;
  return Halfplane{std::cos(a), std::sin(a), rng->NextDouble() * 2 - 1};
}

std::vector<Point2W> Collect(const HalfspacePrioritized& s,
                             const Halfplane& q, double tau) {
  std::vector<Point2W> out;
  s.QueryPrioritized(q, tau, [&out](const Point2W& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

TEST(HalfspacePrioritized, EmptyInput) {
  HalfspacePrioritized s({});
  EXPECT_TRUE(Collect(s, {1, 0, 0}, kNegInf).empty());
}

TEST(HalfspaceMax, EmptyAndMiss) {
  HalfspaceMax m({});
  EXPECT_FALSE(m.QueryMax({1, 0, 0}).has_value());
  HalfspaceMax m2({{0, 0, 5.0, 1}});
  EXPECT_FALSE(m2.QueryMax({1, 0, 1.0}).has_value());
  auto hit = m2.QueryMax({1, 0, -1.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 1u);
}

struct Param {
  size_t n;
  uint64_t seed;
};

class HalfspaceSweep : public ::testing::TestWithParam<Param> {};

TEST_P(HalfspaceSweep, PrioritizedMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point2W> data = RandomPoints(p.n, &rng);
  HalfspacePrioritized s(data);
  for (int trial = 0; trial < 40; ++trial) {
    const Halfplane q = RandomHalfplane(&rng);
    const double tau_pool[] = {kNegInf, 100.0, 600.0, 950.0};
    const double tau = tau_pool[trial % 4];
    auto got = Collect(s, q, tau);
    auto want = test::BrutePrioritized<HalfplaneProblem>(data, q, tau);
    ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
        << "n=" << p.n << " tau=" << tau;
  }
}

TEST_P(HalfspaceSweep, MaxMatchesBrute) {
  const Param p = GetParam();
  Rng rng(p.seed + 31);
  std::vector<Point2W> data = RandomPoints(p.n, &rng);
  HalfspaceMax s(data);
  for (int trial = 0; trial < 60; ++trial) {
    const Halfplane q = RandomHalfplane(&rng);
    auto got = s.QueryMax(q);
    auto want = test::BruteMax<HalfplaneProblem>(data, q);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HalfspaceSweep,
                         ::testing::Values(Param{1, 1}, Param{2, 2},
                                           Param{50, 3}, Param{400, 4},
                                           Param{2000, 5}));

TEST(Halfspace, BothReductionsMatchBrute) {
  Rng rng(9);
  std::vector<Point2W> data = RandomPoints(2500, &rng);
  CoreSetTopK<HalfplaneProblem, HalfspacePrioritized> thm1(data);
  SampledTopK<HalfplaneProblem, HalfspacePrioritized, HalfspaceMax> thm2(
      data);
  for (int trial = 0; trial < 8; ++trial) {
    const Halfplane q = RandomHalfplane(&rng);
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}, size_t{2500}}) {
      auto want = test::BruteTopK<HalfplaneProblem>(data, q, k);
      ASSERT_EQ(test::IdsOf(thm1.Query(q, k)), test::IdsOf(want))
          << "thm1 k=" << k;
      ASSERT_EQ(test::IdsOf(thm2.Query(q, k)), test::IdsOf(want))
          << "thm2 k=" << k;
    }
  }
}

}  // namespace
}  // namespace topk
