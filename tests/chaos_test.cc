// Chaos harness: a full EM top-k stack (CoreSetTopK over the Section
// 5.5 prioritized structure, paged through BufferPool) queried through
// a fault chain  pool -> RetryingBlockDevice -> FaultyBlockDevice ->
// BlockDevice, swept over deterministic fault schedules.
//
// The contracts under test (ISSUE acceptance criteria):
//   * results under absorbed faults are BITWISE-IDENTICAL to the
//     fault-free run, and so are the device's read/write counts (the
//     devices only count successful transfers);
//   * the accounting identity  faults injected == retries + giveups
//     holds exactly, with the injector's trigger counters agreeing;
//   * exhausted retries surface as a flagged FallibleResult — never an
//     abort, never a silently wrong answer — and the structure recovers
//     completely once the fault clears.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/reduction_options.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/em_range1d.h"
#include "em/fallible.h"
#include "fault/failpoint.h"
#include "fault/faulty_block_device.h"
#include "fault/retrying_block_device.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::FallibleResult;
using em::FallibleTopK;
using em::EmRange1dPrioritized;
using fault::FailPointConfig;
using fault::FaultyBlockDevice;
using fault::Injector;
using fault::RetryingBlockDevice;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

using EmTopK = CoreSetTopK<Range1DProblem, EmRange1dPrioritized>;

// One EM top-k stack behind a fault chain. The structure is BUILT with
// the injector disarmed (construction has no degradation story — a
// zeroed page during bulk load would silently corrupt the structure);
// faults are armed afterwards, for the query phase only.
struct ChaosFixture {
  BlockDevice base{512};
  Injector inj;
  FaultyBlockDevice faulty{&base, &inj};
  RetryingBlockDevice retry;
  BufferPool pool;
  std::unique_ptr<EmTopK> topk;
  std::unique_ptr<FallibleTopK<EmTopK>> fallible;

  ChaosFixture(const std::vector<Point1D>& data, uint64_t fault_seed,
               size_t max_attempts)
      : inj(fault_seed), retry(&faulty, {.max_attempts = max_attempts}),
        pool(&retry, 16) {
    auto pri_factory = [this](std::vector<Point1D> v) {
      return EmRange1dPrioritized(&pool, std::move(v));
    };
    topk = std::make_unique<EmTopK>(data, ReductionOptions{}, pri_factory);
    fallible = std::make_unique<FallibleTopK<EmTopK>>(topk.get(), &pool);
    TOPK_CHECK(!pool.ConsumeIoFailure());  // clean build
    base.ResetCounters();
  }
};

std::vector<std::pair<Range1D, size_t>> MakeQueries(size_t count,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Range1D, size_t>> qs;
  for (size_t i = 0; i < count; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    qs.push_back({{a, b}, (i % 5 == 0) ? 400 : 1 + i % 16});
  }
  return qs;
}

// Absorbed-fault sweep: at rates the retry budget can always cover
// (every_nth >= max_attempts would be the edge; here every fault is
// followed by successful attempts), the run must be indistinguishable
// from fault-free in both answers and I/O counts.
TEST(Chaos, AbsorbedFaultScheduleIsBitwiseInvisible) {
  Rng rng(21);
  const std::vector<Point1D> data = test::RandomPoints1D(6000, &rng);
  const auto queries = MakeQueries(24, 22);

  // Reference: fault-free run.
  ChaosFixture ref(data, /*fault_seed=*/0, /*max_attempts=*/3);
  std::vector<std::vector<uint64_t>> want_ids;
  for (const auto& [q, k] : queries) {
    FallibleResult<Point1D> r = ref.fallible->Query(q, k);
    ASSERT_FALSE(r.io_failed);
    want_ids.push_back(test::IdsOf(r.elements));
  }
  const uint64_t want_reads = ref.base.counters().reads;
  const uint64_t want_writes = ref.base.counters().writes;
  ASSERT_GT(want_reads, 0u);  // the workload really is EM-backed

  // Scripted schedules: every 7th and every 3rd read attempt faults;
  // with 3 attempts per transfer, every fault is absorbed.
  for (const uint64_t every_nth : {uint64_t{7}, uint64_t{3}}) {
    ChaosFixture fx(data, /*fault_seed=*/99, /*max_attempts=*/3);
    fx.inj.Arm(fault::kReadFaultSite, {.every_nth = every_nth});
    for (size_t i = 0; i < queries.size(); ++i) {
      FallibleResult<Point1D> r =
          fx.fallible->Query(queries[i].first, queries[i].second);
      ASSERT_FALSE(r.io_failed) << "schedule 1/" << every_nth;
      ASSERT_EQ(test::IdsOf(r.elements), want_ids[i])
          << "query " << i << " under schedule 1/" << every_nth;
    }
    // Bitwise-identical I/O: failed attempts are never counted.
    EXPECT_EQ(fx.base.counters().reads, want_reads);
    EXPECT_EQ(fx.base.counters().writes, want_writes);
    EXPECT_EQ(fx.base.counters().giveups, 0u);
    // Exact accounting identity against the injected schedule.
    EXPECT_GT(fx.faulty.read_faults(), 0u);
    EXPECT_EQ(fx.faulty.read_faults(),
              fx.inj.triggers(fault::kReadFaultSite));
    EXPECT_EQ(fx.base.counters().retries, fx.faulty.read_faults());
  }
}

// Random (Bernoulli) fault rates at 1% and 10%, fixed seeds. Flagged
// queries are allowed (a giveup needs max_attempts consecutive faults);
// every unflagged query must be exact, every flagged query must recover
// to the exact answer within a few re-asks (poisoned frames are never
// cached, so a re-ask re-reads the device with a fresh fault roll).
TEST(Chaos, RandomRateSweepNeverAbortsAndAlwaysRecovers) {
  Rng rng(31);
  const std::vector<Point1D> data = test::RandomPoints1D(6000, &rng);
  const auto queries = MakeQueries(16, 32);

  ChaosFixture ref(data, 0, 3);
  std::vector<std::vector<uint64_t>> want_ids;
  for (const auto& [q, k] : queries) {
    want_ids.push_back(test::IdsOf(ref.fallible->Query(q, k).elements));
  }

  for (const double rate : {0.01, 0.10}) {
    // max_attempts = 2 keeps giveups reachable at the 10% rate.
    ChaosFixture fx(data, /*fault_seed=*/77, /*max_attempts=*/2);
    fx.inj.Arm(fault::kReadFaultSite, {.probability = rate});
    uint64_t flagged = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      FallibleResult<Point1D> r =
          fx.fallible->Query(queries[i].first, queries[i].second);
      int re_asks = 0;
      while (r.io_failed) {
        ++flagged;
        ASSERT_LT(++re_asks, 64) << "query " << i << " never recovered";
        r = fx.fallible->Query(queries[i].first, queries[i].second);
      }
      ASSERT_EQ(test::IdsOf(r.elements), want_ids[i])
          << "query " << i << " at rate " << rate;
    }
    // The accounting identity holds at any rate, giveups included.
    EXPECT_EQ(fx.faulty.read_faults(),
              fx.base.counters().retries + fx.base.counters().giveups);
    EXPECT_EQ(fx.faulty.read_faults(),
              fx.inj.triggers(fault::kReadFaultSite));
    EXPECT_EQ(fx.pool.io_failures(), fx.base.counters().giveups);
    EXPECT_EQ(flagged == 0, fx.base.counters().giveups == 0);
  }
}

// Total outage: every read gives up. Queries come back flagged (never
// abort, never silently wrong), and once the outage clears the same
// stack serves exact answers again — no poisoned state lingers.
TEST(Chaos, TotalReadOutageFlagsEverythingThenRecovers) {
  Rng rng(41);
  const std::vector<Point1D> data = test::RandomPoints1D(3000, &rng);
  const auto queries = MakeQueries(8, 42);

  ChaosFixture fx(data, 5, 3);
  fx.inj.Arm(fault::kReadFaultSite, {.every_nth = 1});
  uint64_t flagged = 0;
  for (const auto& [q, k] : queries) {
    FallibleResult<Point1D> r = fx.fallible->Query(q, k);
    if (r.io_failed) ++flagged;
  }
  // Queries that needed any device read came back flagged; tiny ranges
  // may be answered from still-cached pages and stay exact.
  EXPECT_GT(flagged, 0u);
  EXPECT_GT(fx.base.counters().giveups, 0u);
  EXPECT_EQ(fx.base.counters().reads, 0u);  // nothing got through

  fx.inj.DisarmAll();
  for (const auto& [q, k] : queries) {
    FallibleResult<Point1D> r = fx.fallible->Query(q, k);
    ASSERT_FALSE(r.io_failed);
    ASSERT_EQ(test::IdsOf(r.elements),
              test::IdsOf(test::BruteTopK<Range1DProblem>(data, q, k)));
  }
}

// One full life of the stack — build, query, FlushAll — with BOTH
// fault sites armed in the same run (ISSUE satellite: mixed read+write
// schedules). Build and write-back absorb write faults through the
// retry budget exactly like query reads absorb read faults, the
// answers and the counted I/O stay bitwise-identical to the fault-free
// twin, and the accounting identity covers the two sites jointly:
//   read_faults + write_faults == retries + giveups (== retries here).
TEST(Chaos, MixedReadWriteFaultScheduleHoldsJointIdentity) {
  Rng rng(51);
  const std::vector<Point1D> data = test::RandomPoints1D(6000, &rng);
  const auto queries = MakeQueries(16, 52);

  // The armed run builds THROUGH the fault chain, so the twin must
  // count its build I/O too (no ResetCounters, unlike ChaosFixture).
  struct Stack {
    BlockDevice base{512};
    Injector inj;
    FaultyBlockDevice faulty{&base, &inj};
    RetryingBlockDevice retry;
    BufferPool pool;
    Stack(uint64_t seed, size_t max_attempts)
        : inj(seed), retry(&faulty, {.max_attempts = max_attempts}),
          pool(&retry, 16) {}
  };
  auto run = [&](Stack* s) {
    auto pri_factory = [s](std::vector<Point1D> v) {
      return EmRange1dPrioritized(&s->pool, std::move(v));
    };
    EmTopK topk(data, ReductionOptions{}, pri_factory);
    FallibleTopK<EmTopK> fallible(&topk, &s->pool);
    std::vector<std::vector<uint64_t>> ids;
    for (const auto& [q, k] : queries) {
      FallibleResult<Point1D> r = fallible.Query(q, k);
      EXPECT_FALSE(r.io_failed);
      ids.push_back(test::IdsOf(r.elements));
    }
    s->pool.FlushAll();
    return ids;
  };

  Stack ref(/*seed=*/0, /*max_attempts=*/3);
  const auto want_ids = run(&ref);
  ASSERT_GT(ref.base.counters().writes, 0u);  // build + flush wrote

  Stack fx(/*seed=*/99, /*max_attempts=*/3);
  // Absorbable rates on both sites: every_nth >= 2 never faults the
  // same transfer twice in a row, so 3 attempts always get through.
  fx.inj.Arm(fault::kReadFaultSite, {.every_nth = 7});
  fx.inj.Arm(fault::kWriteFaultSite, {.every_nth = 5});
  const auto got_ids = run(&fx);

  EXPECT_EQ(got_ids, want_ids);
  EXPECT_EQ(fx.base.counters().reads, ref.base.counters().reads);
  EXPECT_EQ(fx.base.counters().writes, ref.base.counters().writes);
  EXPECT_EQ(fx.base.counters().giveups, 0u);
  EXPECT_GT(fx.faulty.read_faults(), 0u);
  EXPECT_GT(fx.faulty.write_faults(), 0u);
  EXPECT_EQ(fx.faulty.read_faults() + fx.faulty.write_faults(),
            fx.base.counters().retries);
  EXPECT_EQ(fx.faulty.read_faults(), fx.inj.triggers(fault::kReadFaultSite));
  EXPECT_EQ(fx.faulty.write_faults(),
            fx.inj.triggers(fault::kWriteFaultSite));
}

// A write give-up reaching FlushAll stays FATAL by design: eviction
// write-back has no redo log to degrade onto, so the infallible Write
// wrapper aborts rather than silently dropping a dirty page (contrast
// the read path, which degrades to a flagged result).
TEST(ChaosDeathTest, WriteGiveupReachingFlushAllAborts) {
  Rng rng(61);
  const std::vector<Point1D> data = test::RandomPoints1D(400, &rng);
  ChaosFixture fx(data, /*fault_seed=*/9, /*max_attempts=*/2);
  // The build left dirty frames in the pool; a total write outage
  // exhausts the retry budget on the first write-back.
  fx.inj.Arm(fault::kWriteFaultSite, {.every_nth = 1});
  EXPECT_DEATH(fx.pool.FlushAll(), "TOPK_CHECK");
  // The death ran in the forked child; the parent's pool still holds
  // its dirty frames, so clear the outage before the fixture's own
  // destructor write-back.
  fx.inj.DisarmAll();
}

}  // namespace
}  // namespace topk
