// Rank sampling (Lemmas 1 and 3) and core-sets (Lemma 2): structural
// properties plus empirical validation of the probabilistic guarantees.

#include "core/rank_sampling.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/weighted.h"
#include "core/core_set.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;

TEST(PSample, ZeroProbabilityIsEmpty) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(100, &rng);
  EXPECT_TRUE(PSample(data, 0.0, &rng).empty());
  EXPECT_TRUE(PSample(data, -1.0, &rng).empty());
}

TEST(PSample, FullProbabilityKeepsAll) {
  Rng rng(2);
  std::vector<Point1D> data = test::RandomPoints1D(100, &rng);
  EXPECT_EQ(PSample(data, 1.0, &rng).size(), 100u);
  EXPECT_EQ(PSample(data, 2.0, &rng).size(), 100u);
}

TEST(PSample, SampleIsSubsetWithExpectedSize) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(20000, &rng);
  std::vector<Point1D> sample = PSample(data, 0.1, &rng);
  // Within 5 sigma of np = 2000 (sigma ~ 42).
  EXPECT_GT(sample.size(), 1780u);
  EXPECT_LT(sample.size(), 2220u);
  auto all = test::SortedIdsOf(data);
  for (const Point1D& p : sample) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), p.id));
  }
}

TEST(Lemma1Helpers, RankAndCondition) {
  EXPECT_EQ(Lemma1SampleRank(100, 0.1), 20u);
  EXPECT_EQ(Lemma1SampleRank(3, 0.5), 3u);
  EXPECT_TRUE(Lemma1ConditionHolds(1000, 0.1, 0.5));
  EXPECT_FALSE(Lemma1ConditionHolds(10, 0.001, 0.01));
}

// Empirical Lemma 1: with kp >= 3 ln(3/delta) and n >= 4k, the rank-
// ceil(2kp) sample element lands in ground rank [k, 4k] with probability
// >= 1 - delta.
TEST(Lemma1, EmpiricalSuccessProbability) {
  Rng rng(4);
  const size_t n = 4000, k = 100;
  const double delta = 0.2;
  const double p = 3.0 * std::log(3.0 / delta) / static_cast<double>(k);
  ASSERT_TRUE(Lemma1ConditionHolds(k, p, delta));
  ASSERT_GE(n, 4 * k);

  std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
  std::vector<Point1D> sorted = data;
  std::sort(sorted.begin(), sorted.end(), ByWeightDesc());

  const int trials = 400;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<Point1D> sample = PSample(data, p, &rng);
    const size_t r = Lemma1SampleRank(k, p);
    if (static_cast<double>(sample.size()) <=
        2.0 * static_cast<double>(k) * p) {
      continue;  // first bullet failed
    }
    std::sort(sample.begin(), sample.end(), ByWeightDesc());
    if (sample.size() < r) continue;
    const Point1D& e = sample[r - 1];
    size_t ground_rank = 0;
    for (; ground_rank < sorted.size(); ++ground_rank) {
      if (sorted[ground_rank].id == e.id) break;
    }
    ++ground_rank;  // 1-based
    if (ground_rank >= k && ground_rank <= 4 * k) ++successes;
  }
  // Lemma promises >= 1 - delta = 0.8; leave slack for test stability.
  EXPECT_GT(successes, static_cast<int>(0.7 * trials));
}

// Empirical Lemma 3: a (1/K)-sample's max has ground rank in (K, 4K]
// and the sample is non-empty, together with probability >= 0.09.
TEST(Lemma3, EmpiricalSuccessProbability) {
  Rng rng(5);
  const size_t n = 2000;
  const double K = 50.0;
  std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
  std::vector<Point1D> sorted = data;
  std::sort(sorted.begin(), sorted.end(), ByWeightDesc());

  const int trials = 2000;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<Point1D> sample = PSample(data, 1.0 / K, &rng);
    if (sample.empty()) continue;
    const Point1D* mx = &sample[0];
    for (const Point1D& e : sample) {
      if (HeavierThan(e, *mx)) mx = &e;
    }
    size_t ground_rank = 0;
    for (; ground_rank < sorted.size(); ++ground_rank) {
      if (sorted[ground_rank].id == mx->id) break;
    }
    ++ground_rank;
    const double rank = static_cast<double>(ground_rank);
    if (rank > K && rank <= 4 * K) ++successes;
  }
  EXPECT_GT(successes, static_cast<int>(0.09 * trials));
}

TEST(CoreSet, ProbabilityFormula) {
  // p = 4 * (lambda/K) * ln n, clamped.
  EXPECT_DOUBLE_EQ(CoreSetProbability(1000, 1e9, 2.0, 1.0),
                   4.0 * (2.0 / 1e9) * std::log(1000.0));
  EXPECT_EQ(CoreSetProbability(1000, 0.001, 2.0, 1.0), 1.0);  // clamped
  EXPECT_EQ(CoreSetProbability(0, 10, 2.0, 1.0), 0.0);
}

TEST(CoreSet, RankFormula) {
  EXPECT_EQ(CoreSetRank(1, 2.0, 1.0), 1u);
  const size_t r = CoreSetRank(1000, 2.0, 1.0);
  EXPECT_EQ(r, static_cast<size_t>(std::ceil(16.0 * std::log(1000.0))));
  EXPECT_GE(CoreSetRank(1000, 2.0, 0.0001), 1u);  // floor at 1
}

TEST(CoreSet, BuilderRespectsMarkovSizeBound) {
  Rng rng(6);
  std::vector<Point1D> data = test::RandomPoints1D(50000, &rng);
  const double K = 2000;
  std::vector<Point1D> core =
      BuildCoreSet(data, K, 2.0, 1.0, &rng, 16);
  const double bound =
      3.0 * CoreSetProbability(data.size(), K, 2.0, 1.0) * 50000.0;
  EXPECT_LE(static_cast<double>(core.size()), bound);
}

// The core-set property that the reductions rely on, checked directly:
// for a large-|q(D)| query, the rank-ceil(8*lambda*ln n) element of q(R)
// has ground rank in [K, 4K] within q(D) — at least most of the time.
TEST(CoreSet, PivotRankLandsInWindow) {
  Rng rng(7);
  const size_t n = 60000;
  const double K = 1500;
  const double lambda = 2.0;
  std::vector<Point1D> data = test::RandomPoints1D(n, &rng);

  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<Point1D> core = BuildCoreSet(data, K, lambda, 1.0, &rng, 16);
    // q = full domain: |q(D)| = n >= 4K.
    std::vector<Point1D> core_sorted = core;
    std::sort(core_sorted.begin(), core_sorted.end(), ByWeightDesc());
    const size_t r = CoreSetRank(n, lambda, 1.0);
    ASSERT_LT(r, core_sorted.size());
    const Point1D& e = core_sorted[r - 1];
    // Ground rank of e in D.
    size_t ground_rank = 1;
    for (const Point1D& d : data) {
      if (HeavierThan(d, e)) ++ground_rank;
    }
    const double rank = static_cast<double>(ground_rank);
    if (rank >= K && rank <= 4 * K) ++successes;
  }
  // With the paper constants this holds w.h.p.; demand a strong majority.
  EXPECT_GT(successes, trials * 8 / 10);
}

}  // namespace
}  // namespace topk
