// The Section 2 counting-based reduction and its merge-sort-tree
// counter.

#include "core/counting_topk.h"

#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "range1d/count_tree.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::CountTree;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

size_t BruteCount(const std::vector<Point1D>& data, const Range1D& q,
                  double tau) {
  size_t c = 0;
  for (const Point1D& p : data) {
    if (Range1DProblem::Matches(q, p) && MeetsThreshold(p, tau)) ++c;
  }
  return c;
}

TEST(CountTree, EmptyAndSingle) {
  CountTree empty({});
  EXPECT_EQ(empty.Count({0, 1}, kNegInf), 0u);
  CountTree one({{0.5, 3.0, 1}});
  EXPECT_EQ(one.Count({0, 1}, kNegInf), 1u);
  EXPECT_EQ(one.Count({0, 1}, 3.0), 1u);
  EXPECT_EQ(one.Count({0, 1}, 3.1), 0u);
  EXPECT_EQ(one.Count({0.6, 1}, kNegInf), 0u);
  EXPECT_EQ(one.Count({0.7, 0.2}, kNegInf), 0u);  // inverted range
}

struct Param {
  size_t n;
  uint64_t seed;
  bool clumped;
};

class CountSweep : public ::testing::TestWithParam<Param> {};

TEST_P(CountSweep, MatchesBruteForce) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = p.clumped
                                  ? test::ClumpedPoints1D(p.n, &rng)
                                  : test::RandomPoints1D(p.n, &rng);
  CountTree tree(data);
  const double xmax = p.clumped ? static_cast<double>(p.n) : 1.0;
  for (int trial = 0; trial < 60; ++trial) {
    double a = rng.NextDouble() * xmax, b = rng.NextDouble() * xmax;
    if (a > b) std::swap(a, b);
    const double tau_pool[] = {kNegInf, 10.0, 250.0, 600.0, 990.0};
    const double tau = tau_pool[trial % 5];
    ASSERT_EQ(tree.Count({a, b}, tau), BruteCount(data, {a, b}, tau));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{100, 3, false}, Param{2000, 4, false},
                      Param{1000, 5, true}));

using Baseline =
    CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;

TEST(CountingTopK, EmptyAndKZero) {
  Baseline b({});
  EXPECT_TRUE(b.Query({0, 1}, 3).empty());
  Rng rng(6);
  Baseline b2(test::RandomPoints1D(64, &rng));
  EXPECT_TRUE(b2.Query({0, 1}, 0).empty());
}

TEST(CountingTopK, MatchesBruteForce) {
  Rng rng(7);
  for (size_t n : {size_t{1}, size_t{100}, size_t{5000}}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    Baseline b(data);
    for (int trial = 0; trial < 15; ++trial) {
      double a = rng.NextDouble(), c = rng.NextDouble();
      if (a > c) std::swap(a, c);
      for (size_t k : {size_t{1}, size_t{7}, size_t{200}, n}) {
        auto got = b.Query({a, c}, k);
        auto want = test::BruteTopK<Range1DProblem>(data, {a, c}, k);
        ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(CountingTopK, DuplicateWeights) {
  Rng rng(8);
  std::vector<Point1D> data = test::ClumpedPoints1D(2000, &rng);
  Baseline b(data);
  for (size_t k : {size_t{1}, size_t{50}, size_t{2000}}) {
    auto got = b.Query({0.0, 2000.0}, k);
    auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 2000.0}, k);
    ASSERT_EQ(test::IdsOf(got), test::IdsOf(want));
  }
}

TEST(CountingTopK, CountProbesAreLogarithmic) {
  Rng rng(9);
  Baseline b(test::RandomPoints1D(1 << 14, &rng));
  QueryStats stats;
  b.Query({0.0, 1.0}, 10, &stats);
  EXPECT_LE(stats.max_queries, 20u);  // ~log2(n) counting probes
}

}  // namespace
}  // namespace topk
