// The [28] baseline reduction (binary search on the weight threshold):
// exactness, including the duplicate-weight edge where count can jump by
// more than one per threshold step.

#include "core/binary_search_topk.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;

TEST(BinarySearchTopK, EmptyInput) {
  Baseline b({});
  EXPECT_TRUE(b.Query({0, 1}, 3).empty());
}

TEST(BinarySearchTopK, KZero) {
  Rng rng(1);
  Baseline b(test::RandomPoints1D(64, &rng));
  EXPECT_TRUE(b.Query({0, 1}, 0).empty());
}

TEST(BinarySearchTopK, ProbesAreLogarithmic) {
  Rng rng(2);
  Baseline b(test::RandomPoints1D(1 << 14, &rng));
  QueryStats stats;
  b.Query({0.0, 1.0}, 10, &stats);
  // log2(2^14) = 14 probes + 1 final fetch, with slack.
  EXPECT_LE(stats.prioritized_queries, 20u);
}

struct Param {
  size_t n;
  uint64_t seed;
  bool clumped;
};

class BaselineSweep : public ::testing::TestWithParam<Param> {};

TEST_P(BaselineSweep, MatchesBruteForce) {
  const Param p = GetParam();
  Rng rng(p.seed);
  std::vector<Point1D> data = p.clumped
                                  ? test::ClumpedPoints1D(p.n, &rng)
                                  : test::RandomPoints1D(p.n, &rng);
  Baseline b(data);
  const double xmax = p.clumped ? static_cast<double>(p.n) : 1.0;
  for (int trial = 0; trial < 10; ++trial) {
    double a = rng.NextDouble() * xmax;
    double c = rng.NextDouble() * xmax;
    if (a > c) std::swap(a, c);
    for (size_t k : {size_t{1}, size_t{5}, size_t{100}, p.n / 2, p.n}) {
      if (k == 0) continue;
      auto got = b.Query({a, c}, k);
      auto want = test::BruteTopK<Range1DProblem>(data, {a, c}, k);
      ASSERT_EQ(test::IdsOf(got), test::IdsOf(want))
          << "n=" << p.n << " k=" << k << " clumped=" << p.clumped;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineSweep,
    ::testing::Values(Param{1, 1, false}, Param{2, 2, false},
                      Param{100, 3, false}, Param{1000, 4, false},
                      Param{10000, 5, false}, Param{500, 6, true},
                      Param{4000, 7, true}));

}  // namespace
}  // namespace topk
