// The audit layer (src/audit/): the checked wrappers must (a) be
// transparent over correct structures — same answers, drop-in under
// every reduction — and (b) abort on each specific contract violation
// when wrapping a deliberately broken structure. Plus the per-structure
// AuditInvariants() hooks on healthy instances.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "audit/checked_max.h"
#include "audit/checked_prioritized.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/problem.h"
#include "core/sampled_topk.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "range1d/dyn_pst.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using CheckedPst =
    audit::CheckedPrioritized<PrioritySearchTree, Range1DProblem>;
using CheckedRangeMax = audit::CheckedMax<RangeMax, Range1DProblem>;

// The wrappers are structures themselves: same concepts, same
// shareability as what they wrap.
static_assert(PrioritizedStructure<CheckedPst, Range1DProblem>);
static_assert(MaxStructure<CheckedRangeMax, Range1DProblem>);

// --- Transparency over correct structures -------------------------------

TEST(CheckedPrioritized, TransparentOverPst) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(2000, &rng);
  CheckedPst checked(data);
  checked.EnableCostCheck(/*per_query=*/32.0, /*per_emit=*/16.0);
  for (int trial = 0; trial < 20; ++trial) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    const double tau = rng.NextDouble() * 1000.0;
    QueryStats stats;
    std::vector<Point1D> got;
    checked.QueryPrioritized(
        {lo, hi}, tau,
        [&got](const Point1D& p) {
          got.push_back(p);
          return true;
        },
        &stats);
    auto want = test::BrutePrioritized<Range1DProblem>(data, {lo, hi}, tau);
    EXPECT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
    EXPECT_GT(stats.nodes_visited, 0u);
  }
}

TEST(CheckedPrioritized, EarlyStopIsNotFlaggedIncomplete) {
  Rng rng(2);
  CheckedPst checked(test::RandomPoints1D(500, &rng));
  size_t emitted = 0;
  checked.QueryPrioritized(
      {0.0, 1.0}, kNegInf,
      [&emitted](const Point1D&) { return ++emitted < 5; }, nullptr);
  EXPECT_EQ(emitted, 5u);
}

TEST(CheckedMax, TransparentOverRangeMax) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(1500, &rng);
  CheckedRangeMax checked(data);
  for (int trial = 0; trial < 30; ++trial) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    auto got = checked.QueryMax({lo, hi});
    auto want = test::BruteMax<Range1DProblem>(data, {lo, hi});
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      EXPECT_EQ(got->id, want->id);
    }
  }
}

// Reduction integration: both theorems stay exact over fully audited
// substrates (this is exactly what -DTOPK_AUDIT=ON turns on in the big
// sweeps; here it runs in every build).
TEST(AuditWrappers, ReductionsRunExactOverCheckedSubstrates) {
  Rng rng(4);
  std::vector<Point1D> data = test::RandomPoints1D(4000, &rng);
  CoreSetTopK<Range1DProblem, CheckedPst> thm1(data);
  SampledTopK<Range1DProblem, CheckedPst, CheckedRangeMax> thm2(data);
  thm1.AuditInvariants();
  thm2.AuditInvariants();
  for (int trial = 0; trial < 8; ++trial) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    for (size_t k : {size_t{1}, size_t{30}, size_t{800}, size_t{4000}}) {
      auto want = test::BruteTopK<Range1DProblem>(data, {lo, hi}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({lo, hi}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query({lo, hi}, k)), test::IdsOf(want));
    }
  }
}

TEST(CheckedPrioritized, DynamicMirrorFollowsInsertErase) {
  using CheckedDynPst =
      audit::CheckedPrioritized<range1d::DynamicPst, Range1DProblem>;
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(300, &rng);
  CheckedDynPst checked(data);
  Point1D extra{0.5, 5000.0, 9999};
  checked.Insert(extra);
  data.push_back(extra);
  checked.Erase(data[0]);
  data.erase(data.begin());
  std::vector<Point1D> got;
  checked.QueryPrioritized(
      {0.0, 1.0}, kNegInf,
      [&got](const Point1D& p) {
        got.push_back(p);
        return true;
      },
      nullptr);
  auto want = test::BrutePrioritized<Range1DProblem>(data, {0.0, 1.0},
                                                     kNegInf);
  EXPECT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want));
}

// --- Violation detection (death tests) ----------------------------------

// A configurable saboteur: correct PST-like behaviour except for one
// injected contract violation at a time.
enum class Sabotage {
  kNone,
  kDuplicate,      // emits the first element twice
  kBelowTau,       // emits one element below the threshold
  kOutsideQuery,   // emits one non-matching element
  kIgnoresStop,    // keeps emitting after the sink returns false
  kDropsElements,  // silently omits one matching element
  kFullScanCost,   // charges n node visits regardless of output size
};

class SabotagedPri {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit SabotagedPri(std::vector<Point1D> data)
      : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return PrioritySearchTree::QueryCostBound(n, block_size);
  }

  static Sabotage mode;  // set per death test, before construction

  template <typename Emit>
  void QueryPrioritized(const Range1D& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    AddNodes(stats, 1);
    if (mode == Sabotage::kFullScanCost) AddNodes(stats, data_.size());
    bool stopped = false;
    bool skipped_one = false;
    bool duplicated = false;
    for (const Point1D& p : data_) {
      const bool matches =
          Range1DProblem::Matches(q, p) && MeetsThreshold(p, tau);
      if (!matches) {
        if (mode == Sabotage::kOutsideQuery) {
          emit(p);  // fails the Matches-or-threshold check
          return;
        }
        continue;
      }
      if (mode == Sabotage::kDropsElements && !skipped_one) {
        skipped_one = true;
        continue;
      }
      if (stopped && mode != Sabotage::kIgnoresStop) return;
      const bool keep_going = emit(p);
      if (!keep_going) {
        if (mode != Sabotage::kIgnoresStop) return;
        stopped = true;
      }
      if (mode == Sabotage::kDuplicate && !duplicated) {
        duplicated = true;
        if (!emit(p)) return;
      }
      if (mode == Sabotage::kBelowTau &&
          tau != -std::numeric_limits<double>::infinity()) {
        Point1D below = p;
        below.weight = tau - 1.0;
        below.id = p.id + 1'000'000;
        emit(below);
        return;
      }
    }
  }

 private:
  std::vector<Point1D> data_;
};

Sabotage SabotagedPri::mode = Sabotage::kNone;

static_assert(PrioritizedStructure<SabotagedPri, Range1DProblem>);

using CheckedSabotaged =
    audit::CheckedPrioritized<SabotagedPri, Range1DProblem>;

class CheckedPrioritizedDeath : public ::testing::Test {
 protected:
  std::vector<Point1D> MakeData() {
    Rng rng(77);
    return test::RandomPoints1D(200, &rng);
  }

  // Runs one full (never stopped) and one stopped query.
  void RunQueries(const CheckedSabotaged& checked) {
    std::vector<Point1D> sink;
    checked.QueryPrioritized(
        {0.1, 0.9}, 100.0,
        [&sink](const Point1D& p) {
          sink.push_back(p);
          return true;
        },
        nullptr);
    size_t n = 0;
    checked.QueryPrioritized(
        {0.0, 1.0}, kNegInf, [&n](const Point1D&) { return ++n < 3; },
        nullptr);
  }
};

TEST_F(CheckedPrioritizedDeath, SabotageFreePasses) {
  SabotagedPri::mode = Sabotage::kNone;
  CheckedSabotaged checked(MakeData());
  RunQueries(checked);  // must not abort
}

TEST_F(CheckedPrioritizedDeath, CatchesDuplicateEmission) {
  SabotagedPri::mode = Sabotage::kDuplicate;
  CheckedSabotaged checked(MakeData());
  EXPECT_DEATH(RunQueries(checked), "TOPK_CHECK failed");
}

TEST_F(CheckedPrioritizedDeath, CatchesBelowThresholdEmission) {
  SabotagedPri::mode = Sabotage::kBelowTau;
  CheckedSabotaged checked(MakeData());
  EXPECT_DEATH(RunQueries(checked), "TOPK_CHECK failed");
}

TEST_F(CheckedPrioritizedDeath, CatchesNonMatchingEmission) {
  SabotagedPri::mode = Sabotage::kOutsideQuery;
  CheckedSabotaged checked(MakeData());
  EXPECT_DEATH(RunQueries(checked), "TOPK_CHECK failed");
}

TEST_F(CheckedPrioritizedDeath, CatchesEmissionAfterStop) {
  SabotagedPri::mode = Sabotage::kIgnoresStop;
  CheckedSabotaged checked(MakeData());
  EXPECT_DEATH(RunQueries(checked), "TOPK_CHECK failed");
}

TEST_F(CheckedPrioritizedDeath, CatchesDroppedElements) {
  SabotagedPri::mode = Sabotage::kDropsElements;
  CheckedSabotaged checked(MakeData());
  EXPECT_DEATH(RunQueries(checked), "TOPK_CHECK failed");
}

TEST_F(CheckedPrioritizedDeath, CatchesNonOutputSensitiveAccounting) {
  SabotagedPri::mode = Sabotage::kFullScanCost;
  CheckedSabotaged checked(MakeData());
  checked.EnableCostCheck(/*per_query=*/8.0, /*per_emit=*/4.0);
  EXPECT_DEATH(
      {
        QueryStats stats;
        size_t n = 0;
        checked.QueryPrioritized(
            {0.4, 0.6}, kNegInf, [&n](const Point1D&) { return ++n < 3; },
            &stats);
      },
      "TOPK_CHECK failed");
}

// A max structure that returns SOME matching element, not the heaviest —
// the classic subtle bug Theorem 2 would quietly absorb into extra
// rounds (queries stay exact, the cost bound silently breaks).
class FirstMatchMax {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit FirstMatchMax(std::vector<Point1D> data)
      : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return RangeMax::QueryCostBound(n, block_size);
  }

  std::optional<Point1D> QueryMax(const Range1D& q,
                                  QueryStats* stats = nullptr) const {
    AddNodes(stats, 1);
    for (const Point1D& p : data_) {
      if (Range1DProblem::Matches(q, p)) return p;
    }
    return std::nullopt;
  }

 private:
  std::vector<Point1D> data_;
};

static_assert(MaxStructure<FirstMatchMax, Range1DProblem>);

TEST(CheckedMaxDeath, CatchesNonMaximalAnswer) {
  Rng rng(88);
  audit::CheckedMax<FirstMatchMax, Range1DProblem> checked(
      test::RandomPoints1D(200, &rng));
  EXPECT_DEATH(checked.QueryMax({0.0, 1.0}), "TOPK_CHECK failed");
}

// --- AuditInvariants hooks on healthy structures ------------------------

TEST(AuditInvariants, PstHeapAndSplitOrder) {
  Rng rng(9);
  PrioritySearchTree pst(test::ClumpedPoints1D(5000, &rng));
  pst.AuditInvariants();
  PrioritySearchTree empty({});
  empty.AuditInvariants();
}

TEST(AuditInvariants, BufferPoolPinLedger) {
  em::BlockDevice dev(128);
  for (int i = 0; i < 8; ++i) dev.Allocate();
  em::BufferPool pool(&dev, 4);
  pool.AuditInvariants();
  uint8_t* a = pool.Pin(0);
  (void)a;
  pool.AuditInvariants();
  pool.Pin(1, /*mark_dirty=*/true);
  pool.AuditInvariants();
  pool.Unpin(0);
  pool.AuditInvariants();
  // Force evictions through the remaining pages.
  for (uint64_t page = 2; page < 8; ++page) {
    pool.Pin(page);
    pool.Unpin(page);
    pool.AuditInvariants();
  }
  pool.Unpin(1);
  pool.AuditInvariants();
  pool.FlushAll();
  pool.AuditInvariants();
}

}  // namespace
}  // namespace topk
