// External-memory substrate: block device, LRU buffer pool, paged
// arrays, the augmented B+-tree, the Section 5.5-style prioritized
// structure, and both reductions running entirely against counted page
// I/Os.

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/em_range1d.h"
#include "em/external_sort.h"
#include "em/paged_array.h"
#include "range1d/point1d.h"
#include "test_util.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::EmBPlusTree;
using em::EmRange1dPrioritized;
using em::PagedArray;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

TEST(BlockDevice, ReadWriteCounts) {
  BlockDevice dev(256);
  const uint64_t p0 = dev.Allocate();
  const uint64_t p1 = dev.Allocate();
  std::vector<uint8_t> buf(256, 7);
  dev.Write(p0, buf.data());
  dev.Write(p1, buf.data());
  std::vector<uint8_t> out(256);
  dev.Read(p0, out.data());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(dev.counters().writes, 2u);
  EXPECT_EQ(dev.counters().reads, 1u);
  dev.ResetCounters();
  EXPECT_EQ(dev.counters().total(), 0u);
}

TEST(BufferPool, CachedPageCostsNoIo) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 4);
  {
    em::PageRef a(&pool, p);
    (void)a;
  }
  EXPECT_EQ(dev.counters().reads, 1u);
  {
    em::PageRef b(&pool, p);  // hit
    (void)b;
  }
  EXPECT_EQ(dev.counters().reads, 1u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, LruEvictionAndDirtyWriteback) {
  BlockDevice dev(128);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(dev.Allocate());
  BufferPool pool(&dev, 2);
  {
    em::PageRef a(&pool, ids[0], /*mark_dirty=*/true);
    a.data()[0] = 42;
  }
  {
    em::PageRef b(&pool, ids[1]);
    (void)b;
  }
  {
    em::PageRef c(&pool, ids[2]);  // evicts ids[0] (LRU), dirty writeback
    (void)c;
  }
  EXPECT_EQ(dev.counters().writes, 1u);
  std::vector<uint8_t> out(128);
  dev.Read(ids[0], out.data());
  EXPECT_EQ(out[0], 42);
}

// The CLAUDE.md gotcha, locked in: building a fresh page goes through
// PinFresh and charges NO read (one write at eviction/flush is the whole
// Aggarwal–Vitter cost of writing a new block); re-opening an evicted
// page goes through Pin and charges exactly one read. Routing the write
// path through Pin instead silently doubles its I/O count.
TEST(BufferPool, PinChargesReadPinFreshDoesNot) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 2);

  pool.PinFresh(p);  // brand-new block: no device read
  pool.Unpin(p);
  EXPECT_EQ(dev.counters().reads, 0u);
  EXPECT_EQ(dev.counters().writes, 0u);  // write deferred to flush

  pool.FlushAll();  // dirty write-back: the one write
  EXPECT_EQ(dev.counters().reads, 0u);
  EXPECT_EQ(dev.counters().writes, 1u);

  pool.Pin(p);  // no longer resident: exactly one read
  pool.Unpin(p);
  EXPECT_EQ(dev.counters().reads, 1u);
  EXPECT_EQ(dev.counters().writes, 1u);

  pool.Pin(p);  // resident again: a hit, no I/O
  pool.Unpin(p);
  pool.FlushAll();  // clean frame: dropped, no write
  EXPECT_EQ(dev.counters().reads, 1u);
  EXPECT_EQ(dev.counters().writes, 1u);
  EXPECT_EQ(pool.hits(), 1u);
}

using BufferPoolDeathTest = ::testing::Test;

TEST(BufferPoolDeathTest, UnpinWithoutPinAborts) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 2);
  EXPECT_DEATH(pool.Unpin(p), "TOPK_CHECK");
}

TEST(BufferPoolDeathTest, DoubleUnpinAborts) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 2);
  pool.Pin(p);
  pool.Unpin(p);
  EXPECT_DEATH(pool.Unpin(p), "TOPK_CHECK");
}

// Manually unpinning a page that a live PageRef still guards makes the
// ref's destructor the second Unpin — the classic RAII misuse, caught
// by the same pin-ledger check.
TEST(BufferPoolDeathTest, PageRefDoubleUnpinAborts) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 2);
  EXPECT_DEATH(
      {
        em::PageRef ref(&pool, p);
        pool.Unpin(p);  // steals the ref's pin; ~PageRef double-unpins
      },
      "TOPK_CHECK");
}

TEST(BufferPoolDeathTest, FlushAllWithLivePinAborts) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  // Heap-allocate so the death-test child aborts in FlushAll itself,
  // not in a destructor unwinding the same violated precondition.
  auto* pool = new BufferPool(&dev, 2);
  pool->Pin(p);
  EXPECT_DEATH(pool->FlushAll(), "TOPK_CHECK");
  pool->Unpin(p);
  delete pool;
}

TEST(BufferPoolDeathTest, PinOfUnallocatedPageAborts) {
  BlockDevice dev(128);
  BufferPool pool(&dev, 2);
  EXPECT_DEATH(pool.Pin(99), "TOPK_CHECK");
  EXPECT_DEATH(pool.PinFresh(99), "TOPK_CHECK");
}

TEST(BufferPoolDeathTest, PinFreshOfResidentPageAborts) {
  BlockDevice dev(128);
  const uint64_t p = dev.Allocate();
  BufferPool pool(&dev, 2);
  pool.Pin(p);
  EXPECT_DEATH(pool.PinFresh(p), "TOPK_CHECK");
  pool.Unpin(p);
}

TEST(PagedArray, RoundTripAndScan) {
  BlockDevice dev(512);
  BufferPool pool(&dev, 8);
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(1000, &rng);
  PagedArray<Point1D> arr(&pool, data);
  EXPECT_EQ(arr.size(), 1000u);
  EXPECT_EQ(arr.per_page(), 512 / sizeof(Point1D));
  for (size_t i : {size_t{0}, size_t{500}, size_t{999}}) {
    EXPECT_EQ(arr.Get(i).id, data[i].id);
  }
  size_t count = 0;
  arr.ForRange(100, 900, [&](const Point1D& p) {
    EXPECT_EQ(p.id, data[100 + count].id);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 800u);
}

TEST(PagedArray, SequentialScanIsBlockEfficient) {
  BlockDevice dev(512);
  BufferPool pool(&dev, 4);
  Rng rng(2);
  std::vector<Point1D> data = test::RandomPoints1D(1600, &rng);
  PagedArray<Point1D> arr(&pool, data);
  pool.FlushAll();
  dev.ResetCounters();
  size_t count = 0;
  arr.ForRange(0, arr.size(), [&](const Point1D&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1600u);
  const uint64_t expected_pages =
      (1600 + arr.per_page() - 1) / arr.per_page();
  EXPECT_EQ(dev.counters().reads, expected_pages);
}

struct EmFixture {
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<BufferPool> pool;
  explicit EmFixture(size_t page_size = 512, size_t frames = 16)
      : dev(std::make_unique<BlockDevice>(page_size)),
        pool(std::make_unique<BufferPool>(dev.get(), frames)) {}
};

TEST(EmBPlusTree, RangeReportMatchesBrute) {
  EmFixture fx;
  Rng rng(3);
  for (size_t n : {size_t{1}, size_t{16}, size_t{17}, size_t{1000},
                   size_t{5000}}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    EmBPlusTree tree(fx.pool.get(), data);
    for (int trial = 0; trial < 25; ++trial) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      std::vector<Point1D> got;
      tree.RangeReport({a, b}, [&](const Point1D& p) {
        got.push_back(p);
        return true;
      });
      auto want = test::BrutePrioritized<Range1DProblem>(data, {a, b},
                                                         kNegInf);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
          << "n=" << n;
    }
  }
}

TEST(EmBPlusTree, QueryMaxMatchesBrute) {
  EmFixture fx;
  Rng rng(4);
  for (size_t n : {size_t{1}, size_t{40}, size_t{1000}, size_t{8000}}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    EmBPlusTree tree(fx.pool.get(), data);
    for (int trial = 0; trial < 50; ++trial) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      auto got = tree.QueryMax({a, b});
      auto want = test::BruteMax<Range1DProblem>(data, {a, b});
      ASSERT_EQ(got.has_value(), want.has_value()) << "n=" << n;
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id) << "n=" << n;
      }
    }
  }
}

TEST(EmBPlusTree, WideMaxQueryIsLogarithmicIos) {
  EmFixture fx(512, 8);  // tiny pool: residency cannot hide I/Os
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(1 << 15, &rng);
  EmBPlusTree tree(fx.pool.get(), data);
  fx.pool->FlushAll();
  fx.dev->ResetCounters();
  auto got = tree.QueryMax({0.0, 1.0});  // the whole domain
  ASSERT_TRUE(got.has_value());
  // log_B n + a few boundary pages; a scan would be 2048 reads.
  EXPECT_LT(fx.dev->counters().reads, 30u);
}

TEST(EmRange1dPrioritized, MatchesBrute) {
  EmFixture fx;
  Rng rng(6);
  for (size_t n : {size_t{1}, size_t{100}, size_t{3000}}) {
    std::vector<Point1D> data = test::RandomPoints1D(n, &rng);
    EmRange1dPrioritized pri(fx.pool.get(), data);
    for (int trial = 0; trial < 25; ++trial) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      const double tau_pool[] = {kNegInf, 100.0, 600.0, 990.0};
      const double tau = tau_pool[trial % 4];
      std::vector<Point1D> got;
      pri.QueryPrioritized({a, b}, tau, [&](const Point1D& p) {
        got.push_back(p);
        return true;
      });
      auto want = test::BrutePrioritized<Range1DProblem>(data, {a, b}, tau);
      ASSERT_EQ(test::SortedIdsOf(got), test::SortedIdsOf(want))
          << "n=" << n << " tau=" << tau;
    }
  }
}

TEST(EmRange1dPrioritized, EarlyTermination) {
  EmFixture fx;
  Rng rng(7);
  EmRange1dPrioritized pri(fx.pool.get(), test::RandomPoints1D(2000, &rng));
  size_t seen = 0;
  pri.QueryPrioritized({0.0, 1.0}, kNegInf, [&seen](const Point1D&) {
    ++seen;
    return seen < 8;
  });
  EXPECT_EQ(seen, 8u);
}

// External-sort bulk loading: sort on the device, adopt the sorted
// pages as B+-tree leaves, and verify queries agree with the in-memory
// construction path.
TEST(EmBPlusTree, BulkLoadFromExternalSortMatches) {
  EmFixture fx(512, 32);
  Rng rng(10);
  std::vector<Point1D> data = test::RandomPoints1D(6000, &rng);
  auto by_x = [](const Point1D& a, const Point1D& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.id < b.id;
  };
  em::PagedArray<Point1D> sorted = em::ExternalSortVector(
      fx.pool.get(), data, /*memory_words=*/2048, by_x);
  EmBPlusTree bulk(fx.pool.get(), std::move(sorted));
  EmBPlusTree reference(fx.pool.get(), data);
  for (int trial = 0; trial < 30; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    auto got = bulk.QueryMax({a, b});
    auto want = reference.QueryMax({a, b});
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      ASSERT_EQ(got->id, want->id);
    }
    std::vector<Point1D> got_range;
    bulk.RangeReport({a, b}, [&](const Point1D& p) {
      got_range.push_back(p);
      return true;
    });
    auto want_range =
        test::BrutePrioritized<Range1DProblem>(data, {a, b}, kNegInf);
    ASSERT_EQ(test::SortedIdsOf(got_range), test::SortedIdsOf(want_range));
  }
}

// Both reductions instantiated over the EM structures via factories;
// answers must stay exact and all work flows through the block device.
TEST(EmReductions, BothReductionsMatchBrute) {
  EmFixture fx(512, 64);
  Rng rng(8);
  std::vector<Point1D> data = test::RandomPoints1D(20000, &rng);

  auto pri_factory = [&fx](std::vector<Point1D> v) {
    return EmRange1dPrioritized(fx.pool.get(), std::move(v));
  };
  auto max_factory = [&fx](std::vector<Point1D> v) {
    return EmBPlusTree(fx.pool.get(), std::move(v));
  };
  ReductionOptions opts;
  CoreSetTopK<Range1DProblem, EmRange1dPrioritized> thm1(data, opts,
                                                         pri_factory);
  SampledTopK<Range1DProblem, EmRange1dPrioritized, EmBPlusTree,
              decltype(pri_factory), decltype(max_factory)>
      thm2(data, opts, pri_factory, max_factory);

  const uint64_t io_before = fx.dev->counters().total();
  for (int trial = 0; trial < 6; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    for (size_t k : {size_t{1}, size_t{50}, size_t{2000}}) {
      auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, k);
      ASSERT_EQ(test::IdsOf(thm1.Query({a, b}, k)), test::IdsOf(want));
      ASSERT_EQ(test::IdsOf(thm2.Query({a, b}, k)), test::IdsOf(want));
    }
  }
  EXPECT_GT(fx.dev->counters().total(), io_before);  // really EM-backed
}

}  // namespace
}  // namespace topk
