// Deterministic crash-point recovery (the tentpole's acceptance
// criterion): a seeded insert/erase/checkpoint schedule is run once to
// count its durable storage operations T, then re-run with a crash
// injected at EVERY point 0..T. Each crash is expanded into the
// page-cache outcomes the durability model allows (nothing flushed /
// everything flushed / half flushed with the next write torn,
// independently per file). After every single combination the store is
// reopened, Recover()ed, and must land on apply(schedule[0..s]) for
// some s between the acknowledged and the issued mutation count — with
// brute-force-exact query results over the recovered elements, and a
// second Recover() that is a pinned no-op (same state, same device
// I/O, zero bytes re-truncated).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reduction_options.h"
#include "core/sampled_topk.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/durable_store.h"
#include "em/em_range1d.h"
#include "em/file_block_device.h"
#include "em/storage.h"
#include "fault/crash_point.h"
#include "fault/failpoint.h"
#include "fault/faulty_storage.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "serve/cold_start.h"
#include "serve/epoch.h"
#include "test_util.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::DurableStore;
using em::EmBPlusTree;
using em::FileBlockDevice;
using em::IoCounters;
using em::MemStorage;
using fault::CrashClock;
using fault::CrashPointStorage;
using fault::FaultyStorage;
using fault::Injector;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr size_t kPage = 256;

using Store = DurableStore<Point1D>;

// --- the seeded schedule ---------------------------------------------

struct Op {
  enum Kind { kInsert, kErase, kCheckpoint };
  Kind kind;
  Point1D e;    // kInsert
  uint64_t id;  // kErase
};

std::vector<Op> MakeSchedule(uint64_t seed, size_t n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  std::vector<uint64_t> live;
  uint64_t next_id = 1;
  for (size_t i = 0; i < n_ops; ++i) {
    if (i > 0 && i % 9 == 0) {
      ops.push_back(Op{Op::kCheckpoint, Point1D{}, 0});
    } else if (live.size() >= 4 && rng.Below(3) == 0) {
      const size_t j = static_cast<size_t>(rng.Below(live.size()));
      ops.push_back(Op{Op::kErase, Point1D{}, live[j]});
      live.erase(live.begin() + static_cast<ptrdiff_t>(j));
    } else {
      Point1D p;
      p.x = rng.NextDouble();
      p.weight = rng.NextDouble() * 1000.0;
      p.id = next_id++;
      ops.push_back(Op{Op::kInsert, p, 0});
      live.push_back(p.id);
    }
  }
  return ops;
}

// states[m] = element set (ascending id, Elements()'s order) after the
// first m MUTATIONS of the schedule; checkpoints don't change state.
std::vector<std::vector<Point1D>> ExpectedStates(
    const std::vector<Op>& ops) {
  std::vector<std::vector<Point1D>> states;
  std::vector<Point1D> cur;  // kept sorted by id
  states.push_back(cur);
  for (const Op& op : ops) {
    if (op.kind == Op::kCheckpoint) continue;
    if (op.kind == Op::kInsert) {
      cur.push_back(op.e);
      for (size_t i = cur.size(); i-- > 1 && cur[i].id < cur[i - 1].id;) {
        std::swap(cur[i], cur[i - 1]);
      }
    } else {
      for (size_t i = 0; i < cur.size(); ++i) {
        if (cur[i].id == op.id) {
          cur.erase(cur.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    states.push_back(cur);
  }
  return states;
}

// --- one "process life" over the three durable files -----------------

struct RunOutcome {
  uint64_t acked = 0;   // mutations acknowledged (returned true)
  uint64_t issued = 0;  // mutations attempted (acked + at most 1 in flight)
  bool died = false;
  uint64_t clock_ops = 0;
};

RunOutcome RunSchedule(const std::vector<Op>& ops, uint64_t crash_at,
                       MemStorage* dev_mem, MemStorage* wal_mem,
                       MemStorage* man_mem) {
  CrashClock clock(crash_at);
  CrashPointStorage dev(dev_mem, &clock);
  CrashPointStorage wal(wal_mem, &clock);
  CrashPointStorage man(man_mem, &clock);
  FileBlockDevice device(&dev, kPage);
  Store store(&device, &dev, &wal, &man);
  RunOutcome out;
  for (const Op& op : ops) {
    bool ok = true;
    switch (op.kind) {
      case Op::kInsert:
        ++out.issued;
        ok = store.Insert(op.e);
        break;
      case Op::kErase:
        ++out.issued;
        ok = store.Erase(op.id);
        break;
      case Op::kCheckpoint:
        ok = store.Checkpoint();
        break;
    }
    if (ok && op.kind != Op::kCheckpoint) ++out.acked;
    if (!ok) {
      out.died = true;  // the process stops at its first failed ack
      break;
    }
  }
  out.clock_ops = clock.ops();
  return out;
}

struct Recovered {
  std::vector<Point1D> elements;
  uint64_t applied_seq = 0;
  Store::RecoverStats stats;
  IoCounters io;
};

Recovered RecoverFresh(MemStorage* dev_mem, MemStorage* wal_mem,
                       MemStorage* man_mem) {
  FileBlockDevice device(dev_mem, kPage);
  Store store(&device, dev_mem, wal_mem, man_mem);
  Recovered r;
  r.stats = store.Recover();
  r.elements = store.Elements();
  r.applied_seq = store.applied_seq();
  r.io = device.counters();
  return r;
}

// One page-cache outcome per storage: 0 = nothing flushed since the
// last sync, 1 = everything flushed, 2 = half flushed + the next write
// torn after 3 bytes.
void ApplyCrashVariant(MemStorage* s, int v) {
  const size_t pending = s->pending_ops();
  switch (v) {
    case 0: s->SimulateCrash(0); break;
    case 1: s->SimulateCrash(pending); break;
    default: s->SimulateCrash(pending / 2, /*torn_bytes=*/3); break;
  }
}

// The recovered elements must answer range queries brute-force-exactly
// — through a real EM structure built over them, not just by set
// comparison.
void ExpectBruteExactQueries(const std::vector<Point1D>& recovered) {
  BlockDevice dev(kPage);
  BufferPool pool(&dev, 8);
  EmBPlusTree tree(&pool, recovered);
  for (const auto& [lo, hi] : {std::pair<double, double>{0.2, 0.8},
                               std::pair<double, double>{0.0, 1.0}}) {
    std::vector<Point1D> got;
    tree.RangeReport({lo, hi}, [&](const Point1D& p) {
      got.push_back(p);
      return true;
    });
    ASSERT_EQ(test::SortedIdsOf(got),
              test::SortedIdsOf(test::BrutePrioritized<Range1DProblem>(
                  recovered, {lo, hi}, kNegInf)));
  }
}

// --- the exhaustive sweep --------------------------------------------

TEST(CrashRecovery, ExhaustiveCrashPointSweepIsBruteForceExact) {
  const std::vector<Op> ops = MakeSchedule(101, 34);
  const auto states = ExpectedStates(ops);

  // Pass 1, unarmed: the schedule completes and counts its durable ops.
  MemStorage dev0, wal0, man0;
  const RunOutcome clean =
      RunSchedule(ops, CrashClock::kNever, &dev0, &wal0, &man0);
  ASSERT_FALSE(clean.died);
  ASSERT_EQ(clean.acked, clean.issued);
  ASSERT_EQ(clean.acked + 1, states.size());
  const uint64_t total_ops = clean.clock_ops;
  ASSERT_GT(total_ops, 2 * clean.acked);  // every mutation: write + sync

  // Clean-shutdown reopen sanity before the crash sweep.
  const Recovered base = RecoverFresh(&dev0, &wal0, &man0);
  ASSERT_EQ(base.applied_seq, clean.acked);
  ASSERT_EQ(test::IdsOf(base.elements), test::IdsOf(states.back()));

  // Pass 2: crash at every durable operation boundary.
  for (uint64_t crash_at = 0; crash_at <= total_ops; ++crash_at) {
    MemStorage dev_mem, wal_mem, man_mem;
    const RunOutcome run =
        RunSchedule(ops, crash_at, &dev_mem, &wal_mem, &man_mem);
    ASSERT_EQ(run.died, crash_at < total_ops) << "crash_at=" << crash_at;
    ASSERT_LE(run.issued, run.acked + 1);

    for (int dv = 0; dv < 3; ++dv) {
      for (int wv = 0; wv < 3; ++wv) {
        for (int mv = 0; mv < 3; ++mv) {
          MemStorage dev_c = dev_mem, wal_c = wal_mem, man_c = man_mem;
          ApplyCrashVariant(&dev_c, dv);
          ApplyCrashVariant(&wal_c, wv);
          ApplyCrashVariant(&man_c, mv);

          const Recovered r = RecoverFresh(&dev_c, &wal_c, &man_c);
          const uint64_t s = r.applied_seq;
          ASSERT_GE(s, run.acked)
              << "crash_at=" << crash_at << " variant=" << dv << wv << mv
              << ": an acknowledged operation was lost";
          ASSERT_LE(s, run.issued)
              << "crash_at=" << crash_at << " variant=" << dv << wv << mv
              << ": an operation that was never issued appeared";
          ASSERT_EQ(test::IdsOf(r.elements), test::IdsOf(states[s]))
              << "crash_at=" << crash_at << " variant=" << dv << wv << mv;

          // Recovery is idempotent, pinned by exact I/O and state: a
          // second recovery over the same files reads the same pages,
          // truncates nothing, and reproduces the same state.
          const Recovered r2 = RecoverFresh(&dev_c, &wal_c, &man_c);
          ASSERT_EQ(r2.applied_seq, s);
          ASSERT_EQ(test::IdsOf(r2.elements), test::IdsOf(r.elements));
          ASSERT_EQ(r2.stats.wal_truncated_bytes, 0u)
              << "crash_at=" << crash_at << " variant=" << dv << wv << mv;
          ASSERT_EQ(r2.stats.wal_records_replayed,
                    r.stats.wal_records_replayed);
          ASSERT_EQ(r2.io.reads, r.io.reads);
          ASSERT_EQ(r2.io.writes, r.io.writes);

          // Brute-force-exact queries over the recovered set, through a
          // real structure (bounded to the torn variant to keep the
          // sweep fast; the set equality above covers the rest).
          if (dv == 2 && wv == 2 && mv == 2) {
            ExpectBruteExactQueries(r.elements);
          }
        }
      }
    }
  }
}

// --- injected storage faults without a crash -------------------------

TEST(CrashRecovery, TornWalWriteIsNotAckedAndStoreRetriesCleanly) {
  MemStorage dev_mem, wal_mem, man_mem;
  Injector inj(5);
  FaultyStorage faulty_wal(&wal_mem, &inj);
  FileBlockDevice device(&dev_mem, kPage);
  Store store(&device, &dev_mem, &faulty_wal, &man_mem);

  const std::vector<Point1D> pts = [] {
    Rng rng(6);
    return test::RandomPoints1D(4, &rng);
  }();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.Insert(pts[i]));

  inj.Arm(fault::kTornWriteSite, {.every_nth = 1});
  EXPECT_FALSE(store.Insert(pts[3]));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(faulty_wal.torn_writes(), 1u);
  inj.DisarmAll();

  ASSERT_TRUE(store.Insert(pts[3]));  // the retry reuses the seq cleanly
  EXPECT_EQ(store.applied_seq(), 4u);

  const Recovered r = RecoverFresh(&dev_mem, &wal_mem, &man_mem);
  EXPECT_EQ(r.applied_seq, 4u);
  EXPECT_EQ(test::IdsOf(r.elements), test::IdsOf(pts));
  EXPECT_EQ(r.stats.wal_truncated_bytes, 0u);  // rollback left no tail
}

TEST(CrashRecovery, ShortFsyncIsNotACommit) {
  MemStorage dev_mem, wal_mem, man_mem;
  Injector inj(7);
  FaultyStorage faulty_wal(&wal_mem, &inj);
  FileBlockDevice device(&dev_mem, kPage);
  Store store(&device, &dev_mem, &faulty_wal, &man_mem);

  Rng rng(8);
  const std::vector<Point1D> pts = test::RandomPoints1D(3, &rng);
  ASSERT_TRUE(store.Insert(pts[0]));
  ASSERT_TRUE(store.Insert(pts[1]));

  inj.Arm(fault::kShortSyncSite, {.every_nth = 1});
  EXPECT_FALSE(store.Insert(pts[2]));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(faulty_wal.short_syncs(), 1u);
  inj.DisarmAll();

  // Crash dropping everything un-synced: exactly the two acked inserts
  // survive — the short fsync really did not commit.
  wal_mem.SimulateCrash(0);
  const Recovered r = RecoverFresh(&dev_mem, &wal_mem, &man_mem);
  EXPECT_EQ(r.applied_seq, 2u);
  ASSERT_EQ(r.elements.size(), 2u);
}

// A checkpoint whose manifest committed but whose WAL reset never
// became durable must stay recoverable: the replay's idempotence gate
// skips the pre-checkpoint records either way.
TEST(CrashRecovery, FailedWalResetAfterManifestCommitIsRecoverable) {
  MemStorage dev_mem, wal_mem, man_mem;
  Injector inj(9);
  FaultyStorage faulty_wal(&wal_mem, &inj);
  FileBlockDevice device(&dev_mem, kPage);
  Store store(&device, &dev_mem, &faulty_wal, &man_mem);

  Rng rng(10);
  const std::vector<Point1D> pts = test::RandomPoints1D(5, &rng);
  for (const Point1D& p : pts) ASSERT_TRUE(store.Insert(p));

  // Only the WAL storage is faulted, so the first sync to fire inside
  // Checkpoint's WAL path is the Reset's — manifest and device syncs
  // run clean.
  inj.Arm(fault::kShortSyncSite, {.every_nth = 1});
  EXPECT_FALSE(store.Checkpoint());
  inj.DisarmAll();

  // Whether or not the reset's truncate reached the platter, recovery
  // lands on the same state.
  for (const size_t flushed : {size_t{0}, wal_mem.pending_ops()}) {
    MemStorage wal_c = wal_mem;
    wal_c.SimulateCrash(flushed);
    MemStorage dev_c = dev_mem, man_c = man_mem;
    ApplyCrashVariant(&dev_c, 1);
    ApplyCrashVariant(&man_c, 1);
    const Recovered r = RecoverFresh(&dev_c, &wal_c, &man_c);
    EXPECT_TRUE(r.stats.had_checkpoint);
    EXPECT_EQ(r.applied_seq, 5u);
    EXPECT_EQ(test::IdsOf(r.elements),
              test::SortedIdsOf(pts));
    EXPECT_EQ(r.stats.wal_records_replayed, 0u);  // all <= watermark
  }
}

// --- recovery into the serving layer ---------------------------------

// Cold start end-to-end: recover a crashed store, publish the recovered
// elements as epoch 1 of a dynamic serving structure, and answer top-k
// queries brute-force-exactly through a pinned epoch.
TEST(CrashRecovery, ColdStartServesRecoveredStateExactly) {
  using DynTopK =
      SampledTopK<Range1DProblem, range1d::DynamicPst,
                  range1d::DynamicRangeMax>;

  MemStorage dev_mem, wal_mem, man_mem;
  Rng rng(11);
  const std::vector<Point1D> pts = test::RandomPoints1D(60, &rng);
  {
    FileBlockDevice device(&dev_mem, kPage);
    Store store(&device, &dev_mem, &wal_mem, &man_mem);
    for (size_t i = 0; i < 40; ++i) ASSERT_TRUE(store.Insert(pts[i]));
    ASSERT_TRUE(store.Checkpoint());
    for (size_t i = 40; i < 60; ++i) ASSERT_TRUE(store.Insert(pts[i]));
    ASSERT_TRUE(store.Erase(pts[3].id));
  }
  // Crash: checkpoint + committed WAL tail survive.
  dev_mem.SimulateCrash(0);
  wal_mem.SimulateCrash(0);
  man_mem.SimulateCrash(0);

  FileBlockDevice device(&dev_mem, kPage);
  Store store(&device, &dev_mem, &wal_mem, &man_mem);
  const Store::RecoverStats stats = store.Recover();
  EXPECT_TRUE(stats.had_checkpoint);
  EXPECT_EQ(stats.wal_records_replayed, 21u);  // 20 inserts + 1 erase
  ASSERT_EQ(store.size(), 59u);

  const std::vector<Point1D> recovered = store.Elements();
  auto epochs = serve::ColdStart<Point1D>(
      recovered, [](std::vector<Point1D> v) {
        return DynTopK(std::move(v), ReductionOptions{});
      });
  EXPECT_EQ(epochs->current_seq(), 1u);

  const size_t slot = epochs->RegisterReader();
  auto pin = epochs->Acquire(slot);
  Rng qrng(12);
  for (int trial = 0; trial < 20; ++trial) {
    double a = qrng.NextDouble(), b = qrng.NextDouble();
    if (a > b) std::swap(a, b);
    const size_t k = 1 + static_cast<size_t>(trial) % 7;
    const Range1D q{a, b};
    ASSERT_EQ(test::IdsOf(pin.get()->Query(q, k)),
              test::IdsOf(test::BruteTopK<Range1DProblem>(recovered, q, k)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace topk
