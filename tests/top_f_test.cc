// TopFChain internals (Section 3.2's nested core-set structure) tested
// directly: level shrinkage, the k <= f contract against brute force,
// and failure signalling on truncated chains.

#include "core/top_f.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/core_set.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "test_util.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

using Chain = TopFChain<Range1DProblem, PrioritySearchTree>;

TEST(TopFChain, SingleLevelWhenSmall) {
  Rng rng(1);
  std::vector<Point1D> data = test::RandomPoints1D(100, &rng);
  Chain chain(data, /*f=*/50, /*constant_scale=*/1.0, &rng, 16);
  EXPECT_EQ(chain.num_levels(), 1u);  // 100 <= 4 * 50
  auto top = chain.QueryTopF({0.0, 1.0}, nullptr);
  ASSERT_TRUE(top.has_value());
  auto want = test::BruteTopK<Range1DProblem>(data, {0.0, 1.0}, 50);
  EXPECT_EQ(test::IdsOf(*top), test::IdsOf(want));
}

TEST(TopFChain, LevelsShrinkGeometrically) {
  Rng rng(2);
  std::vector<Point1D> data = test::RandomPoints1D(60000, &rng);
  const size_t f = CoreSetRank(60000, Range1DProblem::kLambda, 1.0) * 2;
  Chain chain(data, f, 1.0, &rng, 16);
  ASSERT_GT(chain.num_levels(), 1u);
  for (size_t j = 1; j < chain.num_levels(); ++j) {
    EXPECT_LT(chain.level_size(j), chain.level_size(j - 1));
  }
  EXPECT_EQ(chain.level_size(0), 60000u);
}

TEST(TopFChain, TopFMatchesBruteAcrossLevelsAndRanges) {
  Rng rng(3);
  std::vector<Point1D> data = test::RandomPoints1D(30000, &rng);
  const size_t f = 300;
  Chain chain(data, f, 1.0, &rng, 16);
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    auto top = chain.QueryTopF({a, b}, nullptr);
    if (!top.has_value()) {
      ++failures;  // allowed (unlucky core-set) but must be rare
      continue;
    }
    auto want = test::BruteTopK<Range1DProblem>(data, {a, b}, f);
    ASSERT_EQ(test::IdsOf(*top), test::IdsOf(want));
  }
  EXPECT_LE(failures, 2);
}

TEST(TopFChain, EmptyPredicateReturnsEmpty) {
  Rng rng(4);
  Chain chain(test::RandomPoints1D(5000, &rng), 100, 1.0, &rng, 16);
  auto top = chain.QueryTopF({2.0, 3.0}, nullptr);
  ASSERT_TRUE(top.has_value());
  EXPECT_TRUE(top->empty());
}

TEST(TopFChain, StatsChargedPerLevel) {
  Rng rng(5);
  std::vector<Point1D> data = test::RandomPoints1D(40000, &rng);
  Chain chain(data, 200, 1.0, &rng, 16);
  QueryStats stats;
  chain.QueryTopF({0.0, 1.0}, &stats);  // whole domain: deep recursion
  EXPECT_GE(stats.prioritized_queries, chain.num_levels());
}

}  // namespace
}  // namespace topk
