// E7 — Theorem 4, top-k interval stabbing: both reductions over both
// prioritized substrates (segment tree O(n log n) space / interval tree
// O(n) space) versus the naive scan, across n.
//
// Expected shape: both reductions polylogarithmic in n (the Theorem 2
// variant tracking the bare stabbing structures), scan linear; the two
// substrates differ by constants only.

#include <cstddef>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "interval/interval.h"
#include "interval/interval_tree_stab.h"
#include "interval/seg_stab.h"
#include "interval/stab_max.h"

namespace topk {
namespace {

using interval::IntervalTreeStab;
using interval::SegmentStabbing;
using interval::SlabStabMax;
using interval::StabProblem;

constexpr size_t kK = 10;

void RegisterAll() {
  for (size_t n : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16,
                   size_t{1} << 18}) {
    bench::RegisterLazy<CoreSetTopK<StabProblem, SegmentStabbing>>(
        "Thm1_SegTree/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<StabProblem, SegmentStabbing>(
              bench::Intervals(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(rng->NextDouble(), kK));
        });
    bench::RegisterLazy<CoreSetTopK<StabProblem, IntervalTreeStab>>(
        "Thm1_IntervalTree/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<StabProblem, IntervalTreeStab>(
              bench::Intervals(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(rng->NextDouble(), kK));
        });
    bench::RegisterLazy<
        SampledTopK<StabProblem, SegmentStabbing, SlabStabMax>>(
        "Thm2_SegTree/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<StabProblem, SegmentStabbing, SlabStabMax>(
              bench::Intervals(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(rng->NextDouble(), kK));
        });
    bench::RegisterLazy<ScanTopK<StabProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) {
          return ScanTopK<StabProblem>(bench::Intervals(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(rng->NextDouble(), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
