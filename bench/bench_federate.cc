// E28 — federated serving: scatter-gather QPS/latency scaling over
// S hash shards at fixed n, the threshold-style early-terminating
// merge vs an exhaustive S*k gather, and the epoch-invalidated
// hot-query cache under Zipf traffic.
//
// Claims under test (hard TOPK_CHECKs — this binary exits nonzero on a
// regression, the bench smoke job treats that as failure):
//   * federated answers are bitwise-identical to one engine over the
//     union, at every shard count;
//   * the TA merge's sorted-access depth (Stats::elements_pulled) is
//     STRICTLY below the exhaustive S*k gather for S >= 2 (equal
//     shapes at S = 1), with the transfer counters cross-checked
//     against the shard engines' own results_returned tallies;
//   * a cache hit under Zipf traffic skips shard fan-out entirely
//     (shard_fetches unchanged) and allocates nothing.
//
// Plain-text tables + one metrics JSON line per configuration
// (consumed by tools/summarize_bench.py). Construction is never timed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/sampled_topk.h"
#include "federate/coordinator.h"
#include "federate/shard_map.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/metrics.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TOPK_ALLOC_COUNTING_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TOPK_ALLOC_COUNTING_DISABLED 1
#endif
#endif

#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

#ifndef TOPK_ALLOC_COUNTING_DISABLED
// Counting allocator (same shape as alloc_regression_test): any heap
// allocation in the process during a measured window ticks the count.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  std::abort();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // !TOPK_ALLOC_COUNTING_DISABLED

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Coord = federate::Coordinator<Thm2>;

constexpr size_t kN = 1 << 15;
constexpr size_t kQueries = 256;
constexpr size_t kK = 64;
constexpr size_t kTimedReps = 3;

struct Work {
  Range1D range;
  size_t k;
};

std::vector<Work> MakeWorkload() {
  Rng rng(0x5e28);
  std::vector<Work> work;
  work.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    work.push_back({{lo, hi}, kK});
  }
  return work;
}

// One federation (S static Thm2 shards + coordinator), with per-engine
// metrics so coordinator transfer counters can be cross-checked.
struct Federation {
  std::vector<Thm2> structures;
  std::vector<std::unique_ptr<serve::Metrics>> metrics;
  std::vector<std::unique_ptr<serve::QueryEngine<Thm2>>> engines;
  std::unique_ptr<Coord> coord;

  uint64_t EngineResultsReturned() const {
    uint64_t total = 0;
    for (const auto& m : metrics) {
      total += m->Snapshot().stats.results_returned;
    }
    return total;
  }
};

Federation MakeFederation(const std::vector<Point1D>& data,
                          size_t num_shards, const Coord::Options& options) {
  Federation f;
  auto parts = federate::PartitionById(data, num_shards);
  f.structures.reserve(num_shards);
  for (auto& p : parts) f.structures.emplace_back(std::move(p));
  std::vector<Coord::Shard> shards;
  for (size_t s = 0; s < num_shards; ++s) {
    f.metrics.push_back(std::make_unique<serve::Metrics>());
    f.engines.push_back(std::make_unique<serve::QueryEngine<Thm2>>(
        &f.structures[s], serve::QueryEngine<Thm2>::Options{},
        f.metrics.back().get()));
    shards.push_back({f.engines.back().get(), nullptr});
  }
  f.coord = std::make_unique<Coord>(std::move(shards), options);
  return f;
}

// Reference answers from one engine over the whole dataset, pinned to
// brute force on a sample.
std::vector<std::vector<uint64_t>> ReferenceAnswers(
    const std::vector<Point1D>& data, const std::vector<Work>& work) {
  const Thm2 whole(data);
  std::vector<std::vector<uint64_t>> reference;
  reference.reserve(work.size());
  for (const Work& w : work) {
    auto r = whole.Query(w.range, w.k);
    std::vector<uint64_t> ids;
    ids.reserve(r.size());
    for (const auto& e : r) ids.push_back(e.id);
    reference.push_back(std::move(ids));
  }
  for (size_t i = 0; i < 32; ++i) {
    std::vector<Point1D> pool;
    for (const Point1D& p : data) {
      if (Range1DProblem::Matches(work[i].range, p)) pool.push_back(p);
    }
    SelectTopK(&pool, work[i].k);
    TOPK_CHECK(pool.size() == reference[i].size());
    for (size_t j = 0; j < pool.size(); ++j) {
      TOPK_CHECK(pool[j].id == reference[i][j]);
    }
  }
  return reference;
}

void CheckExact(const std::vector<Point1D>& out,
                const std::vector<uint64_t>& want) {
  TOPK_CHECK(out.size() == want.size());
  for (size_t j = 0; j < out.size(); ++j) {
    TOPK_CHECK(out[j].id == want[j]);
  }
}

void RunScaling(const std::vector<Point1D>& data,
                const std::vector<Work>& work,
                const std::vector<std::vector<uint64_t>>& reference) {
  std::printf(
      "\nScaling: %zu queries (k=%zu) through the coordinator, 1 -> S\n"
      "shards at fixed n (hardware_concurrency=%u — on a one-core\n"
      "container the fan-out barrier is pure overhead and speedup\n"
      "stays below 1; the per-shard work drop shows in pulled/q).\n"
      "Columns: sweep wall ms (best of %zu), queries/s, speedup vs 1\n"
      "shard, latency p50/p95/p99 us, TA elements pulled per query\n"
      "(exhaustive would pull ~S*k).\n",
      kQueries, kK, std::thread::hardware_concurrency(), kTimedReps);
  std::printf("%-8s %10s %10s %9s %9s %9s %9s %11s\n", "shards", "sweep_ms",
              "qps", "speedup", "p50_us", "p95_us", "p99_us", "pulled/q");
  double qps1 = 0.0;
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Federation f = MakeFederation(data, num_shards, {});
    std::vector<Point1D> out;
    // Warm-up sweep (engine pools, slot buffers, merge scratch).
    for (const Work& w : work) {
      f.coord->QueryInto(w.range, w.k, &out);
    }
    f.coord->ResetStats();
    double best_s = 1e30;
    for (size_t rep = 0; rep < kTimedReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < work.size(); ++i) {
        f.coord->QueryInto(work[i].range, work[i].k, &out);
        CheckExact(out, reference[i]);
      }
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(
          best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    const double qps = static_cast<double>(kQueries) / best_s;
    if (num_shards == 1) qps1 = qps;
    const Coord::Stats& st = f.coord->stats();
    const serve::MetricsSnapshot& m = f.coord->metrics();
    std::printf("%-8zu %10.2f %10.0f %8.2fx %9.1f %9.1f %9.1f %11.1f\n",
                num_shards, best_s * 1e3, qps, qps / qps1,
                m.latency.PercentileNs(50.0) / 1e3,
                m.latency.PercentileNs(95.0) / 1e3,
                m.latency.PercentileNs(99.0) / 1e3,
                static_cast<double>(st.elements_pulled) /
                    static_cast<double>(st.queries));
    std::printf("metrics_json structure=federate shards=%zu threads=%zu %s\n",
                num_shards, num_shards, serve::ToJson(m).c_str());
  }
}

void RunEarlyTermination(const std::vector<Point1D>& data,
                         const std::vector<Work>& work,
                         const std::vector<std::vector<uint64_t>>& reference) {
  std::printf(
      "\nEarly termination vs exhaustive gather (identical answers\n"
      "TOPK_CHECKed per query). Columns: TA/exhaustive sorted-access\n"
      "depth (elements pulled), TA savings, shard round-trips.\n");
  std::printf("%-8s %12s %12s %9s %10s %10s\n", "shards", "ta_pulled",
              "ex_pulled", "savings", "ta_fetch", "ex_fetch");
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Federation ta = MakeFederation(data, num_shards, {});
    Federation ex = MakeFederation(data, num_shards, {.exhaustive = true});
    std::vector<Point1D> got_ta, got_ex;
    for (size_t i = 0; i < work.size(); ++i) {
      const auto sa = ta.coord->QueryInto(work[i].range, work[i].k, &got_ta);
      const auto sb = ex.coord->QueryInto(work[i].range, work[i].k, &got_ex);
      TOPK_CHECK(sa == serve::ResultStatus::kOk);
      TOPK_CHECK(sb == serve::ResultStatus::kOk);
      CheckExact(got_ta, reference[i]);
      CheckExact(got_ex, reference[i]);
    }
    const Coord::Stats& sta = ta.coord->stats();
    const Coord::Stats& sex = ex.coord->stats();
    // THE claim: early termination pulls strictly fewer elements than
    // the exhaustive S*k gather once k spans shards (equal at S=1,
    // where both ask the one shard for exactly k).
    if (num_shards == 1) {
      TOPK_CHECK(sta.elements_pulled == sex.elements_pulled);
    } else {
      TOPK_CHECK(sta.elements_pulled < sex.elements_pulled);
    }
    // Transfer counters must agree with the engines' own accounting.
    TOPK_CHECK(sta.elements_transferred == ta.EngineResultsReturned());
    TOPK_CHECK(sex.elements_transferred == ex.EngineResultsReturned());
    std::printf("%-8zu %12zu %12zu %8.1f%% %10zu %10zu\n", num_shards,
                static_cast<size_t>(sta.elements_pulled),
                static_cast<size_t>(sex.elements_pulled),
                100.0 *
                    (1.0 - static_cast<double>(sta.elements_pulled) /
                               static_cast<double>(sex.elements_pulled)),
                static_cast<size_t>(sta.shard_fetches),
                static_cast<size_t>(sex.shard_fetches));
  }
}

void RunZipfCache(const std::vector<Point1D>& data,
                  const std::vector<Work>& work,
                  const std::vector<std::vector<uint64_t>>& reference) {
  constexpr size_t kShards = 4;
  constexpr size_t kDraws = 4096;
  constexpr double kSkew = 1.1;
  Federation f =
      MakeFederation(data, kShards, {.cache_entries = 4096});
  ZipfDistribution zipf(work.size(), kSkew);
  Rng rng(0xcafe);

  // Warm every distinct query once (fills), then run the Zipf trace.
  std::vector<Point1D> out;
  for (size_t i = 0; i < work.size(); ++i) {
    f.coord->QueryInto(work[i].range, work[i].k, &out);
  }
  f.coord->ResetStats();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t d = 0; d < kDraws; ++d) {
    const size_t i = zipf.Next(&rng);
    f.coord->QueryInto(work[i].range, work[i].k, &out);
    CheckExact(out, reference[i]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const Coord::Stats& st = f.coord->stats();

  // A hot query must now be cached: the hit may not fan out (fetch
  // counter frozen) and may not allocate (counting operator new).
  const size_t hot = zipf.Next(&rng);
  f.coord->QueryInto(work[hot].range, work[hot].k, &out);  // ensure filled
  const uint64_t fetches_before = f.coord->stats().shard_fetches;
  const uint64_t hits_before = f.coord->stats().cache_hits;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  f.coord->QueryInto(work[hot].range, work[hot].k, &out);
  const uint64_t hit_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  TOPK_CHECK(f.coord->stats().cache_hits == hits_before + 1);
  TOPK_CHECK(f.coord->stats().shard_fetches == fetches_before);
  CheckExact(out, reference[hot]);
#ifndef TOPK_ALLOC_COUNTING_DISABLED
  TOPK_CHECK(hit_allocs == 0);
#endif
  static_cast<void>(hit_allocs);

  std::printf(
      "\nZipf(s=%.1f) hot-query traffic over %zu distinct queries,\n"
      "%zu draws, S=%zu shards, %zu-entry cache. Cache hits serve\n"
      "without fan-out at 0 allocs (TOPK_CHECKed).\n",
      kSkew, work.size(), kDraws, kShards, size_t{4096});
  std::printf("%-12s %10s %10s %12s %12s\n", "qps", "hit_rate",
              "hits", "misses", "invalidated");
  std::printf("%-12.0f %9.1f%% %10zu %12zu %12zu\n",
              static_cast<double>(kDraws) / secs,
              100.0 * static_cast<double>(st.cache_hits) /
                  static_cast<double>(st.cache_hits + st.cache_misses),
              static_cast<size_t>(st.cache_hits),
              static_cast<size_t>(st.cache_misses),
              static_cast<size_t>(st.cache_invalidations));
  std::printf("metrics_json structure=federate_zipf shards=%zu threads=%zu %s\n",
              kShards, kShards, serve::ToJson(f.coord->metrics()).c_str());
}

void Run() {
  std::printf(
      "E28: federated scatter-gather over S hash shards (n=%zu,\n"
      "Theorem 2 shards, %zu-query workload, k=%zu). Sections: QPS\n"
      "scaling 1->S, TA early termination vs exhaustive gather, Zipf\n"
      "cache traffic. All answers TOPK_CHECKed bitwise against one\n"
      "engine over the union.\n",
      kN, kQueries, kK);
  const std::vector<Point1D> data = bench::Points1D(kN, 28);
  const std::vector<Work> work = MakeWorkload();
  const auto reference = ReferenceAnswers(data, work);
  RunScaling(data, work, reference);
  RunEarlyTermination(data, work, reference);
  RunZipfCache(data, work, reference);
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
