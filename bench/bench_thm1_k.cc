// E2 — output-sensitivity: query cost as a function of k at fixed n
// (1D range reporting).
//
// Claim under test: Theorem 1's output term is O(k/B) — linear in k
// with no multiplier — while the binary-search baseline's is
// O((k/B) log n) (every one of its ~log n probes fetches up to k
// elements). Expected shape: both linear in k for large k, with the
// baseline's slope ~log n times steeper.

#include <cstddef>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr size_t kN = 1 << 17;

Range1D RandomWideQuery(Rng* rng) {
  // Wide ranges so |q(D)| >> k and the k-dependent paths are exercised.
  const double a = rng->NextDouble() * 0.25;
  return {a, a + 0.7};
}

void BM_Thm1CoreSet_K(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  using S = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  const S& s = bench::Cached<S>(kN, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(7);
  QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomWideQuery(&rng), k, &stats));
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["emitted/query"] =
      static_cast<double>(stats.elements_emitted) /
      static_cast<double>(state.iterations());
}

void BM_Thm1Baseline_K(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  using S = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
  const S& s = bench::Cached<S>(kN, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(7);
  QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomWideQuery(&rng), k, &stats));
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["emitted/query"] =
      static_cast<double>(stats.elements_emitted) /
      static_cast<double>(state.iterations());
}

BENCHMARK(BM_Thm1CoreSet_K)->RangeMultiplier(4)->Range(1, 1 << 14);
BENCHMARK(BM_Thm1Baseline_K)->RangeMultiplier(4)->Range(1, 1 << 14);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
