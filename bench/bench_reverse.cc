// E14 — the reverse reduction (Section 1.2): prioritized reporting
// synthesized from a top-k structure by k-doubling, compared against a
// native prioritized structure. Claim: no asymptotic loss — the
// synthesized query costs O(Q_top + t/B) amortized over the doubling.

#include <cstddef>
#include <limits>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sink.h"
#include "core/topk_to_prioritized.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

// tau at the 99.9th percentile of weights in [0, 1e6): ~n/1000 results.
constexpr double kTau = 0.999e6;

Range1D RandomQuery(Rng* rng) {
  double a = rng->NextDouble(), b = rng->NextDouble();
  if (a > b) std::swap(a, b);
  return {a, b};
}

void BM_NativePrioritized(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PrioritySearchTree& s = bench::Cached<PrioritySearchTree>(
      n, 1, [](size_t m, uint64_t seed) {
        return PrioritySearchTree(bench::Points1D(m, seed));
      });
  Rng rng(4);
  for (auto _ : state) {
    size_t count = 0;
    IssuePrioritized(s, RandomQuery(&rng), kTau,
                     [&count](const Point1D&) {
                       ++count;
                       return true;
                     },
                     nullptr);
    benchmark::DoNotOptimize(count);
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_SynthesizedFromTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  using Wrapped =
      TopKToPrioritized<CoreSetTopK<Range1DProblem, PrioritySearchTree>>;
  const Wrapped& s = bench::Cached<Wrapped>(n, 1, [](size_t m,
                                                     uint64_t seed) {
    return Wrapped(CoreSetTopK<Range1DProblem, PrioritySearchTree>(
        bench::Points1D(m, seed)));
  });
  Rng rng(4);
  for (auto _ : state) {
    size_t count = 0;
    IssuePrioritized(s, RandomQuery(&rng), kTau,
                     [&count](const Point1D&) {
                       ++count;
                       return true;
                     },
                     nullptr);
    benchmark::DoNotOptimize(count);
  }
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_NativePrioritized)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_SynthesizedFromTopK)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
