// E17 — top-k 2D orthogonal range reporting (the survey's flagship
// problem, Section 2 [28, 29]): both reductions over range trees plus
// the counting-based Section 2 reduction on the 1D specialization.

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "range1d/count_tree.h"
#include "range1d/pst.h"
#include "range2d/point2d.h"
#include "range2d/range_tree.h"

namespace topk {
namespace {

using range2d::Range2DProblem;
using range2d::RangeTreeMax;
using range2d::RangeTreePrioritized;
using range2d::Rect2;
using range2d::WPoint2D;

constexpr size_t kK = 10;

std::vector<WPoint2D> Points(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WPoint2D> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble() * 1e6,
              i + 1};
  }
  return out;
}

Rect2 Q(Rng* rng) {
  double x1 = rng->NextDouble(), x2 = rng->NextDouble();
  double y1 = rng->NextDouble(), y2 = rng->NextDouble();
  if (x1 > x2) std::swap(x1, x2);
  if (y1 > y2) std::swap(y1, y2);
  return {x1, x2, y1, y2};
}

void RegisterAll() {
  for (size_t n : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16}) {
    bench::RegisterLazy<CoreSetTopK<Range2DProblem, RangeTreePrioritized>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<Range2DProblem, RangeTreePrioritized>(
              Points(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<Range2DProblem, RangeTreePrioritized, RangeTreeMax>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<Range2DProblem, RangeTreePrioritized,
                             RangeTreeMax>(Points(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<ScanTopK<Range2DProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) { return ScanTopK<Range2DProblem>(Points(m, 5)); },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    // The Section 2 counting reduction, on the 1D specialization
    // (counting structures are problem-specific; 1D has an exact one).
    using Counting = CountingTopK<range1d::Range1DProblem,
                                  range1d::PrioritySearchTree,
                                  range1d::CountTree>;
    bench::RegisterLazy<Counting>(
        "CountingReduction1D/" + std::to_string(n), n,
        [](size_t m) { return Counting(bench::Points1D(m, 5)); },
        [](const auto& s, Rng* rng) {
          double a = rng->NextDouble(), b = rng->NextDouble();
          if (a > b) std::swap(a, b);
          benchmark::DoNotOptimize(s.Query({a, b}, kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
