// E26 — durable persistence: (a) the substitution rule — the same
// workload driven over the in-memory simulator, over FileBlockDevice
// backed by MemStorage, and over FileBlockDevice backed by a real file
// must charge IDENTICAL I/O counts (the file backend is a drop-in
// under the accounting, so simulator-pinned tests transfer); (b) the
// cold-start claim — reopening a checkpointed EM structure from its
// manifest costs a handful of meta-blob reads instead of the full
// rebuild's write storm, and answers queries immediately.
//
// This table deliberately times construction/reopen (that IS the
// experiment, as in bench_build); query benches elsewhere never do.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/checkpoint.h"
#include "em/durable_store.h"
#include "em/em_range1d.h"
#include "em/file_block_device.h"
#include "em/storage.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/cold_start.h"
#include "serve/engine.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::EmRange1dPrioritized;
using em::FileBlockDevice;
using em::FileStorage;
using em::ManifestStore;
using em::MemStorage;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr size_t kPageBytes = 4096;
constexpr size_t kFrames = 64;
constexpr size_t kQueries = 16;

double Seconds(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

std::string TempPath(const char* suffix) {
  return "/tmp/topk_bench_persist." + std::to_string(::getpid()) + "." +
         suffix;
}

struct Counts {
  uint64_t reads = 0, writes = 0;
};

// Build + FlushAll + a fixed query schedule on an arbitrary device;
// returns (reads, writes) and the total number of emitted elements so
// the three backends can be cross-checked for identical behavior, not
// just identical counters.
Counts RunWorkload(BlockDevice* dev, size_t n, uint64_t* emitted) {
  BufferPool pool(dev, kFrames);
  std::vector<Point1D> data = bench::Points1D(n, 7);
  EmRange1dPrioritized pri(&pool, std::move(data));
  pool.FlushAll();
  const double tau = (1.0 - 1000.0 / static_cast<double>(n)) * 1e6;
  Rng rng(11);
  *emitted = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    IssuePrioritized(pri, Range1D{a, b}, tau,
                     [emitted](const Point1D&) {
                       ++*emitted;
                       return true;
                     },
                     nullptr);
  }
  return {dev->counters().reads, dev->counters().writes};
}

void SubstitutionTable(size_t n) {
  std::printf(
      "\nSubstitution rule: one workload (build n=%zu + FlushAll + %zu\n"
      "prioritized queries), three backends, page=%zuB, M=%zu frames.\n",
      n, kQueries, kPageBytes, kFrames);
  std::printf("%-28s %10s %10s %12s\n", "backend", "reads", "writes",
              "emitted");

  uint64_t emitted_sim = 0, emitted_mem = 0, emitted_file = 0;
  BlockDevice sim(kPageBytes);
  const Counts c_sim = RunWorkload(&sim, n, &emitted_sim);
  std::printf("%-28s %10llu %10llu %12llu\n", "simulator (predicted)",
              static_cast<unsigned long long>(c_sim.reads),
              static_cast<unsigned long long>(c_sim.writes),
              static_cast<unsigned long long>(emitted_sim));

  MemStorage mem;
  FileBlockDevice dev_mem(&mem, kPageBytes);
  const Counts c_mem = RunWorkload(&dev_mem, n, &emitted_mem);
  std::printf("%-28s %10llu %10llu %12llu\n", "file-device / MemStorage",
              static_cast<unsigned long long>(c_mem.reads),
              static_cast<unsigned long long>(c_mem.writes),
              static_cast<unsigned long long>(emitted_mem));

  const std::string path = TempPath("subst.bin");
  std::remove(path.c_str());
  Counts c_file;
  {
    FileStorage file(path);
    FileBlockDevice dev_file(&file, kPageBytes);
    c_file = RunWorkload(&dev_file, n, &emitted_file);
  }
  std::remove(path.c_str());
  std::printf("%-28s %10llu %10llu %12llu  (measured)\n",
              "file-device / FileStorage",
              static_cast<unsigned long long>(c_file.reads),
              static_cast<unsigned long long>(c_file.writes),
              static_cast<unsigned long long>(emitted_file));

  const bool match = c_sim.reads == c_mem.reads &&
                     c_sim.writes == c_mem.writes &&
                     c_sim.reads == c_file.reads &&
                     c_sim.writes == c_file.writes &&
                     emitted_sim == emitted_mem &&
                     emitted_sim == emitted_file;
  std::printf("substitution: %s\n",
              match ? "EXACT (all three backends identical)"
                    : "MISMATCH — accounting drift, investigate");
}

void ColdStartRow(size_t n) {
  const std::string dev_path = TempPath("pages.bin");
  const std::string man_path = TempPath("manifest.bin");
  std::remove(dev_path.c_str());
  std::remove(man_path.c_str());

  uint64_t build_writes = 0, built_size = 0;
  double build_s = 0, reopen_s = 0;
  {
    FileStorage file(dev_path);
    FileBlockDevice dev(&file, kPageBytes);
    BufferPool pool(&dev, kFrames);
    FileStorage man_file(man_path);
    ManifestStore manifests(&man_file);
    std::vector<Point1D> data = bench::Points1D(n, 7);
    const auto start = std::chrono::steady_clock::now();
    EmRange1dPrioritized pri(&pool, std::move(data));
    pool.FlushAll();
    const bool saved = em::SaveStructure(&dev, pri, &manifests, &file);
    build_s = Seconds(start);
    TOPK_CHECK(saved);
    build_writes = dev.counters().writes;
    built_size = pri.size();
  }

  uint64_t reopen_reads = 0, reopen_writes = 0, reopened_size = 0;
  {
    FileStorage file(dev_path);
    FileBlockDevice dev(&file, kPageBytes);
    BufferPool pool(&dev, kFrames);
    FileStorage man_file(man_path);
    ManifestStore manifests(&man_file);
    EmRange1dPrioritized pri;
    const auto start = std::chrono::steady_clock::now();
    const bool loaded = em::LoadStructure(&pool, &manifests, &pri);
    reopen_s = Seconds(start);
    TOPK_CHECK(loaded);
    reopen_reads = dev.counters().reads;
    reopen_writes = dev.counters().writes;
    reopened_size = pri.size();
  }
  TOPK_CHECK_EQ(built_size, reopened_size);
  std::remove(dev_path.c_str());
  std::remove(man_path.c_str());

  std::printf("%10zu %14llu %12.1f %14llu %14llu %12.2f\n", n,
              static_cast<unsigned long long>(build_writes),
              build_s * 1e3,
              static_cast<unsigned long long>(reopen_reads),
              static_cast<unsigned long long>(reopen_writes),
              reopen_s * 1e3);
}

// --- Cold-start-to-serving (ROADMAP item 2 delta) -----------------------
//
// The E26 rows above stop at "the structure reopened"; this section
// carries the recovery all the way to answered queries: persist n
// elements in a DurableStore (WAL + checkpoint over real files),
// restart, Recover(), hand Elements() to serve::ColdStart (epoch 1 of
// a fresh chain), stand up an epoch-mode QueryEngine, and time the
// FIRST served batch against the warm steady state of the very same
// engine. Cold QPS charges everything a restarted process pays —
// recover + build + first cold batch; warm QPS is the best of
// subsequent batches.

using ServeTopK =
    SampledTopK<Range1DProblem, range1d::PrioritySearchTree,
                range1d::RangeMax>;

void ColdServeRow(size_t n) {
  const std::string dev_path = TempPath("serve_pages.bin");
  const std::string wal_path = TempPath("serve_wal.bin");
  const std::string man_path = TempPath("serve_man.bin");
  std::remove(dev_path.c_str());
  std::remove(wal_path.c_str());
  std::remove(man_path.c_str());

  // Prep (unmeasured): a prior process life persists the dataset.
  {
    FileStorage file(dev_path);
    FileBlockDevice dev(&file, kPageBytes);
    FileStorage wal(wal_path);
    FileStorage man(man_path);
    em::DurableStore<Point1D> store(&dev, &file, &wal, &man);
    store.Recover();
    for (const Point1D& p : bench::Points1D(n, 7)) {
      TOPK_CHECK(store.Insert(p));
    }
    TOPK_CHECK(store.Checkpoint());
  }

  constexpr size_t kBatch = 64;
  Rng rng(26);
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    requests.push_back({{lo, hi}, (i % 8 == 0) ? size_t{256} : size_t{16}});
  }

  // Cold path (measured end to end, phase by phase).
  FileStorage file(dev_path);
  FileBlockDevice dev(&file, kPageBytes);
  FileStorage wal(wal_path);
  FileStorage man(man_path);
  em::DurableStore<Point1D> store(&dev, &file, &wal, &man);
  const auto t_open = std::chrono::steady_clock::now();
  const auto rstats = store.Recover();
  std::vector<Point1D> recovered = store.Elements();
  const double recover_s = Seconds(t_open);
  TOPK_CHECK(rstats.had_checkpoint);
  TOPK_CHECK_EQ(recovered.size(), n);

  const auto t_build = std::chrono::steady_clock::now();
  auto epochs = serve::ColdStart(
      std::move(recovered),
      [](std::vector<Point1D> v) { return ServeTopK(v); });
  serve::QueryEngine<ServeTopK> engine(epochs.get(), {.num_threads = 1});
  const double build_s = Seconds(t_build);

  std::vector<serve::QueryEngine<ServeTopK>::Result> results;
  const auto t_first = std::chrono::steady_clock::now();
  engine.QueryBatchInto(requests, &results);
  const double first_s = Seconds(t_first);

  // Exactness spot check: recovered answers == brute force over the
  // persisted dataset.
  const std::vector<Point1D> data = bench::Points1D(n, 7);
  for (size_t i = 0; i < 8; ++i) {
    std::vector<Point1D> pool;
    for (const Point1D& p : data) {
      if (Range1DProblem::Matches(requests[i].predicate, p)) {
        pool.push_back(p);
      }
    }
    SelectTopK(&pool, requests[i].k);
    TOPK_CHECK_EQ(results[i].elements.size(), pool.size());
    for (size_t j = 0; j < pool.size(); ++j) {
      TOPK_CHECK(results[i].elements[j].id == pool[j].id);
    }
  }

  double warm_best_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.QueryBatchInto(requests, &results);
    warm_best_s = std::min(warm_best_s, Seconds(t0));
  }

  std::remove(dev_path.c_str());
  std::remove(wal_path.c_str());
  std::remove(man_path.c_str());

  const double cold_total_s = recover_s + build_s + first_s;
  const double cold_qps = static_cast<double>(kBatch) / cold_total_s;
  const double warm_qps = static_cast<double>(kBatch) / warm_best_s;
  std::printf("%10zu %11.2f %10.2f %11.2f %11.0f %11.0f %8.1fx\n", n,
              recover_s * 1e3, build_s * 1e3, first_s * 1e3, cold_qps,
              warm_qps, warm_qps / cold_qps);
}

void ColdServeTable() {
  std::printf(
      "\nCold-start-to-serving: DurableStore checkpoint -> Recover() ->\n"
      "serve::ColdStart -> epoch QueryEngine -> first 64-request batch,\n"
      "vs the same engine warm (best of 3). Cold QPS charges recover +\n"
      "build + first batch; the gap is the restart penalty the epoch\n"
      "hand-off hides from steady traffic.\n");
  std::printf("%10s %11s %10s %11s %11s %11s %8s\n", "n", "recover-ms",
              "build-ms", "first-ms", "cold-qps", "warm-qps", "warm/cold");
  for (const size_t n : {size_t{1} << 13, size_t{1} << 15}) {
    ColdServeRow(n);
  }
}

void Run() {
  std::printf(
      "E26: durable persistence — backend substitution and checkpoint\n"
      "cold start (EmRange1dPrioritized over a real file).\n");
  SubstitutionTable(1 << 14);

  std::printf(
      "\nCold start: build+checkpoint once, then reopen from the manifest\n"
      "(meta blob only; content pages are re-adopted by id, no rebuild).\n");
  std::printf("%10s %14s %12s %14s %14s %12s\n", "n", "build-writes",
              "build-ms", "reopen-reads", "reopen-writes", "reopen-ms");
  for (const size_t n : {size_t{1} << 13, size_t{1} << 15, size_t{1} << 17}) {
    ColdStartRow(n);
  }
  std::printf(
      "\nExpected shape: reopen charges ZERO writes and a few reads (the\n"
      "meta blob) regardless of n, orders of magnitude under the build's\n"
      "write storm; reopen wall time is file-open + meta parse, not a\n"
      "rebuild.\n");

  ColdServeTable();
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
