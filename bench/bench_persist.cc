// E26 — durable persistence: (a) the substitution rule — the same
// workload driven over the in-memory simulator, over FileBlockDevice
// backed by MemStorage, and over FileBlockDevice backed by a real file
// must charge IDENTICAL I/O counts (the file backend is a drop-in
// under the accounting, so simulator-pinned tests transfer); (b) the
// cold-start claim — reopening a checkpointed EM structure from its
// manifest costs a handful of meta-blob reads instead of the full
// rebuild's write storm, and answers queries immediately.
//
// This table deliberately times construction/reopen (that IS the
// experiment, as in bench_build); query benches elsewhere never do.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/random.h"
#include "core/sink.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/checkpoint.h"
#include "em/em_range1d.h"
#include "em/file_block_device.h"
#include "em/storage.h"
#include "range1d/point1d.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::EmRange1dPrioritized;
using em::FileBlockDevice;
using em::FileStorage;
using em::ManifestStore;
using em::MemStorage;
using range1d::Point1D;
using range1d::Range1D;

constexpr size_t kPageBytes = 4096;
constexpr size_t kFrames = 64;
constexpr size_t kQueries = 16;

double Seconds(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

std::string TempPath(const char* suffix) {
  return "/tmp/topk_bench_persist." + std::to_string(::getpid()) + "." +
         suffix;
}

struct Counts {
  uint64_t reads = 0, writes = 0;
};

// Build + FlushAll + a fixed query schedule on an arbitrary device;
// returns (reads, writes) and the total number of emitted elements so
// the three backends can be cross-checked for identical behavior, not
// just identical counters.
Counts RunWorkload(BlockDevice* dev, size_t n, uint64_t* emitted) {
  BufferPool pool(dev, kFrames);
  std::vector<Point1D> data = bench::Points1D(n, 7);
  EmRange1dPrioritized pri(&pool, std::move(data));
  pool.FlushAll();
  const double tau = (1.0 - 1000.0 / static_cast<double>(n)) * 1e6;
  Rng rng(11);
  *emitted = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    IssuePrioritized(pri, Range1D{a, b}, tau,
                     [emitted](const Point1D&) {
                       ++*emitted;
                       return true;
                     },
                     nullptr);
  }
  return {dev->counters().reads, dev->counters().writes};
}

void SubstitutionTable(size_t n) {
  std::printf(
      "\nSubstitution rule: one workload (build n=%zu + FlushAll + %zu\n"
      "prioritized queries), three backends, page=%zuB, M=%zu frames.\n",
      n, kQueries, kPageBytes, kFrames);
  std::printf("%-28s %10s %10s %12s\n", "backend", "reads", "writes",
              "emitted");

  uint64_t emitted_sim = 0, emitted_mem = 0, emitted_file = 0;
  BlockDevice sim(kPageBytes);
  const Counts c_sim = RunWorkload(&sim, n, &emitted_sim);
  std::printf("%-28s %10llu %10llu %12llu\n", "simulator (predicted)",
              static_cast<unsigned long long>(c_sim.reads),
              static_cast<unsigned long long>(c_sim.writes),
              static_cast<unsigned long long>(emitted_sim));

  MemStorage mem;
  FileBlockDevice dev_mem(&mem, kPageBytes);
  const Counts c_mem = RunWorkload(&dev_mem, n, &emitted_mem);
  std::printf("%-28s %10llu %10llu %12llu\n", "file-device / MemStorage",
              static_cast<unsigned long long>(c_mem.reads),
              static_cast<unsigned long long>(c_mem.writes),
              static_cast<unsigned long long>(emitted_mem));

  const std::string path = TempPath("subst.bin");
  std::remove(path.c_str());
  Counts c_file;
  {
    FileStorage file(path);
    FileBlockDevice dev_file(&file, kPageBytes);
    c_file = RunWorkload(&dev_file, n, &emitted_file);
  }
  std::remove(path.c_str());
  std::printf("%-28s %10llu %10llu %12llu  (measured)\n",
              "file-device / FileStorage",
              static_cast<unsigned long long>(c_file.reads),
              static_cast<unsigned long long>(c_file.writes),
              static_cast<unsigned long long>(emitted_file));

  const bool match = c_sim.reads == c_mem.reads &&
                     c_sim.writes == c_mem.writes &&
                     c_sim.reads == c_file.reads &&
                     c_sim.writes == c_file.writes &&
                     emitted_sim == emitted_mem &&
                     emitted_sim == emitted_file;
  std::printf("substitution: %s\n",
              match ? "EXACT (all three backends identical)"
                    : "MISMATCH — accounting drift, investigate");
}

void ColdStartRow(size_t n) {
  const std::string dev_path = TempPath("pages.bin");
  const std::string man_path = TempPath("manifest.bin");
  std::remove(dev_path.c_str());
  std::remove(man_path.c_str());

  uint64_t build_writes = 0, built_size = 0;
  double build_s = 0, reopen_s = 0;
  {
    FileStorage file(dev_path);
    FileBlockDevice dev(&file, kPageBytes);
    BufferPool pool(&dev, kFrames);
    FileStorage man_file(man_path);
    ManifestStore manifests(&man_file);
    std::vector<Point1D> data = bench::Points1D(n, 7);
    const auto start = std::chrono::steady_clock::now();
    EmRange1dPrioritized pri(&pool, std::move(data));
    pool.FlushAll();
    const bool saved = em::SaveStructure(&dev, pri, &manifests, &file);
    build_s = Seconds(start);
    TOPK_CHECK(saved);
    build_writes = dev.counters().writes;
    built_size = pri.size();
  }

  uint64_t reopen_reads = 0, reopen_writes = 0, reopened_size = 0;
  {
    FileStorage file(dev_path);
    FileBlockDevice dev(&file, kPageBytes);
    BufferPool pool(&dev, kFrames);
    FileStorage man_file(man_path);
    ManifestStore manifests(&man_file);
    EmRange1dPrioritized pri;
    const auto start = std::chrono::steady_clock::now();
    const bool loaded = em::LoadStructure(&pool, &manifests, &pri);
    reopen_s = Seconds(start);
    TOPK_CHECK(loaded);
    reopen_reads = dev.counters().reads;
    reopen_writes = dev.counters().writes;
    reopened_size = pri.size();
  }
  TOPK_CHECK_EQ(built_size, reopened_size);
  std::remove(dev_path.c_str());
  std::remove(man_path.c_str());

  std::printf("%10zu %14llu %12.1f %14llu %14llu %12.2f\n", n,
              static_cast<unsigned long long>(build_writes),
              build_s * 1e3,
              static_cast<unsigned long long>(reopen_reads),
              static_cast<unsigned long long>(reopen_writes),
              reopen_s * 1e3);
}

void Run() {
  std::printf(
      "E26: durable persistence — backend substitution and checkpoint\n"
      "cold start (EmRange1dPrioritized over a real file).\n");
  SubstitutionTable(1 << 14);

  std::printf(
      "\nCold start: build+checkpoint once, then reopen from the manifest\n"
      "(meta blob only; content pages are re-adopted by id, no rebuild).\n");
  std::printf("%10s %14s %12s %14s %14s %12s\n", "n", "build-writes",
              "build-ms", "reopen-reads", "reopen-writes", "reopen-ms");
  for (const size_t n : {size_t{1} << 13, size_t{1} << 15, size_t{1} << 17}) {
    ColdStartRow(n);
  }
  std::printf(
      "\nExpected shape: reopen charges ZERO writes and a few reads (the\n"
      "meta blob) regardless of n, orders of magnitude under the build's\n"
      "write storm; reopen wall time is file-open + meta parse, not a\n"
      "rebuild.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
