// Shared benchmark helpers: deterministic workload generators and
// build-once caches (structure construction is expensive and must stay
// out of the timed region).

#ifndef TOPK_BENCH_BENCH_COMMON_H_
#define TOPK_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "circle/circular.h"
#include "common/random.h"
#include "dominance/point3.h"
#include "enclosure/rect.h"
#include "halfspace/point2.h"
#include "interval/interval.h"
#include "range1d/point1d.h"

namespace topk::bench {

inline std::vector<range1d::Point1D> Points1D(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<range1d::Point1D> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng.NextDouble(), rng.NextDouble() * 1e6, i + 1};
  }
  return out;
}

inline std::vector<interval::Interval> Intervals(size_t n, uint64_t seed,
                                                 double span = 0.05) {
  Rng rng(seed);
  std::vector<interval::Interval> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextDouble();
    out[i] = {a, a + rng.NextDouble() * span, rng.NextDouble() * 1e6, i + 1};
  }
  return out;
}

inline std::vector<enclosure::Rect> Rects(size_t n, uint64_t seed,
                                          double span = 0.1) {
  Rng rng(seed);
  std::vector<enclosure::Rect> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(), y = rng.NextDouble();
    out[i] = {x, x + rng.NextDouble() * span, y, y + rng.NextDouble() * span,
              rng.NextDouble() * 1e6, i + 1};
  }
  return out;
}

inline std::vector<dominance::Point3> Points3D(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<dominance::Point3> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
              rng.NextDouble() * 1e6, i + 1};
  }
  return out;
}

inline std::vector<halfspace::Point2W> PointsHs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<halfspace::Point2W> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng.NextDouble() * 2 - 1, rng.NextDouble() * 2 - 1,
              rng.NextDouble() * 1e6, i + 1};
  }
  return out;
}

inline std::vector<circle::WPoint2> Points2D(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<circle::WPoint2> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble() * 1e6,
              i + 1};
  }
  return out;
}


// Registers one google-benchmark entry that lazily builds structure S
// from `build(n)` on first use (construction stays outside the timed
// loop) and times `run(s, rng)` per iteration.
template <typename S, typename Build, typename Run>
void RegisterLazy(const std::string& name, size_t n, Build build, Run run) {
  auto holder = std::make_shared<std::unique_ptr<S>>();
  benchmark::RegisterBenchmark(
      name.c_str(), [holder, n, build, run](benchmark::State& state) {
        if (!*holder) *holder = std::make_unique<S>(build(n));
        Rng rng(0xbe7c);
        for (auto _ : state) {
          run(**holder, &rng);
        }
        state.counters["n"] = static_cast<double>(n);
      });
}

// Build-once cache: structures keyed by (n, seed). Benchmarks pull the
// same instance across timing iterations.
template <typename S>
const S& Cached(size_t n, uint64_t seed, auto&& build) {
  static std::map<std::pair<size_t, uint64_t>, std::unique_ptr<S>> cache;
  auto key = std::make_pair(n, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<S>(build(n, seed))).first;
  }
  return *it->second;
}

}  // namespace topk::bench

#endif  // TOPK_BENCH_BENCH_COMMON_H_
