// E12 — the external-memory model: exact page I/O counts through the
// BlockDevice as the block size B sweeps, for the EM prioritized
// structure (Section 5.5 style, Q_pri = O(sqrt(n/B) log_B n + t/B)),
// the EM max structure (O(log_B n)), and both reductions on top.
//
// Claims under test:
//   * the max structure's I/O count decays like log_B n as B grows;
//   * the top-k structures' I/O counts track the prioritized structure's
//     (Theorem 1's remark: Q_pri >= (n/B)^eps implies Q_top = O(Q_pri);
//     Theorem 2 promises Q_top = O(Q_pri + Q_max + k/B) outright);
//   * the naive scan pays n/B.
//
// This is a measurement table over a simulated device, not a timing run.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/sink.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/em_range1d.h"
#include "range1d/point1d.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::EmBPlusTree;
using em::EmRange1dPrioritized;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr size_t kN = 1 << 17;
constexpr size_t kQueries = 60;

struct Row {
  double pri = 0, max = 0, thm1 = 0, thm1_ablated = 0, thm2 = 0, scan = 0;
};

Row Measure(size_t block_words) {
  const size_t page_size = block_words * 8;  // 8-byte words
  BlockDevice dev(page_size);
  // Small pool relative to data so I/Os are not hidden by residency:
  // M = 64 blocks.
  BufferPool pool(&dev, 64);
  std::vector<Point1D> data = bench::Points1D(kN, 3);

  auto pri_factory = [&pool](std::vector<Point1D> v) {
    return EmRange1dPrioritized(&pool, std::move(v));
  };
  auto max_factory = [&pool](std::vector<Point1D> v) {
    return EmBPlusTree(&pool, std::move(v));
  };

  EmRange1dPrioritized pri = pri_factory(data);
  EmBPlusTree max_struct = max_factory(data);
  ReductionOptions opts;
  opts.block_size = block_words;
  CoreSetTopK<Range1DProblem, EmRange1dPrioritized> thm1(data, opts,
                                                         pri_factory);
  // At laptop scale the paper constant f = 12*lambda*B*Q_pri exceeds n
  // when Q_pri is polynomial, degenerating Theorem 1's top-f path into
  // monitored full fetches; the ablated instance shows the shape the
  // asymptotics promise (see EXPERIMENTS.md).
  ReductionOptions ablated = opts;
  ablated.constant_scale = 0.02;
  CoreSetTopK<Range1DProblem, EmRange1dPrioritized> thm1_ablated(
      data, ablated, pri_factory);
  SampledTopK<Range1DProblem, EmRange1dPrioritized, EmBPlusTree,
              decltype(pri_factory), decltype(max_factory)>
      thm2(data, opts, pri_factory, max_factory);

  Row row;
  Rng rng(9);
  auto query = [&rng] {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    return Range1D{a, b};
  };
  auto reset = [&] {
    pool.FlushAll();
    dev.ResetCounters();
  };

  // Every query starts on a cold pool so per-query I/Os are not hidden
  // by residency. tau is set so a prioritized query reports ~1000
  // elements — comparable to the work the top-k structures do per
  // query (their monitored budgets are a few hundred to a thousand).
  const double tau = (1.0 - 1000.0 / static_cast<double>(kN)) * 1e6;
  uint64_t sum = 0;
  auto measure = [&](auto&& one_query) {
    sum = 0;
    for (size_t i = 0; i < kQueries; ++i) {
      reset();
      one_query();
      sum += dev.counters().total();
    }
    return static_cast<double>(sum) / kQueries;
  };

  row.pri = measure([&] {
    size_t sink = 0;
    IssuePrioritized(pri, query(), tau,
                     [&sink](const Point1D&) {
                       ++sink;
                       return true;
                     },
                     nullptr);
  });
  row.max = measure([&] { max_struct.QueryMax(query()); });
  row.thm1 = measure([&] { thm1.Query(query(), 16); });
  row.thm1_ablated = measure([&] { thm1_ablated.Query(query(), 16); });
  row.thm2 = measure([&] { thm2.Query(query(), 16); });

  // Scan = read every leaf page once.
  row.scan = static_cast<double>(kN) /
             static_cast<double>(page_size / sizeof(Point1D));
  return row;
}

void Run() {
  std::printf(
      "E12: I/Os per query vs block size B (n=%zu, top-k with k=16,\n"
      "prioritized probed at tau admitting ~1000 elements; cold pool\n"
      "per query)\n",
      kN);
  std::printf("%8s %10s %10s %12s %14s %12s %10s\n", "B(words)", "pri",
              "max", "thm1-paper", "thm1-ablated", "thm2-topk", "scan");
  for (size_t b : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const Row r = Measure(b);
    std::printf("%8zu %10.1f %10.1f %12.1f %14.1f %12.1f %10.1f\n", b,
                r.pri, r.max, r.thm1, r.thm1_ablated, r.thm2, r.scan);
  }
  std::printf(
      "\nExpected shape: every column shrinks as B grows; max ~ log_B n;\n"
      "pri ~ sqrt(n/B)*log_B n + t/B at t~1000. thm2 and the ablated\n"
      "thm1 stay within a small constant of pri (no reduction blow-up)\n"
      "and far below scan. thm1 at the PAPER constants degenerates here:\n"
      "f = 12*lambda*B*Q_pri(n) exceeds n for polynomial Q_pri at this\n"
      "scale, so its monitored probes fetch entire query results — the\n"
      "asymptotic regime of Theorem 1 starts far beyond laptop-size n.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
