// E4 — Theorem 2's space bound and the "bootstrapping power" remark
// (Section 1.3): even when the max structure is asymptotically *larger*
// than the prioritized structure (here RangeMax at O(n log n) words vs
// the PST's O(n)), the reduction builds max structures only on the
// geometrically decaying samples R_i, so the top-k structure's total
// space stays O(S_pri + S_max(6n/(B*Q_max))) — a vanishing overhead.
//
// This is a measurement table, not a timing run.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1DProblem;
using range1d::RangeMax;

// Words used by a RangeMax on m elements: m points (3 words) plus the
// sparse table (~m log2 m half-words, counted as words/2 -> round up).
double RangeMaxWords(double m) {
  if (m < 2) return 3 * m;
  return 3 * m + m * std::ceil(std::log2(m)) / 2.0;
}

void Run() {
  std::printf(
      "E4: Theorem 2 space bootstrapping (1D range; pri = PST O(n), "
      "max = sparse table O(n log n))\n");
  std::printf("%10s %14s %16s %18s %10s\n", "n", "S_pri(words)",
              "S_max_full(words)", "S_max_sampled(words)", "overhead");
  for (size_t n : {1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
    Thm2 s(bench::Points1D(n, 7));
    double sampled_words = 0;
    for (size_t i = 0; i < s.num_sample_levels(); ++i) {
      sampled_words += RangeMaxWords(
          static_cast<double>(s.sample_level_size(i)));
    }
    const double pri_words = 5.0 * static_cast<double>(n);  // PST nodes
    const double full_words = RangeMaxWords(static_cast<double>(n));
    std::printf("%10zu %14.0f %16.0f %18.0f %9.1f%%\n", n, pri_words,
                full_words, sampled_words,
                100.0 * sampled_words / pri_words);
  }
  std::printf(
      "\nExpected shape: S_max_sampled grows ~linearly and stays a small\n"
      "fraction of S_pri, while a full max structure (S_max_full) would\n"
      "exceed S_pri by a growing log factor.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
