// E13 — Theorem 2's round protocol: the number of rounds a query
// executes is O(1) in expectation with a geometric tail (each round
// fails with probability <= 0.91 by Lemma 3; empirically far less).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1DProblem;
using range1d::RangeMax;

void Run() {
  std::printf("E13: Theorem 2 rounds per query (n=2^18, 3000 queries/k)\n");
  const size_t n = 1 << 18;
  using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
  Thm2 s(bench::Points1D(n, 21));
  std::printf("%8s %10s %10s %22s\n", "k", "mean", "max",
              "histogram 1/2/3/4/5+");
  for (size_t k : {size_t{1}, size_t{64}, size_t{1024}, size_t{16384}}) {
    Rng rng(5);
    std::vector<uint64_t> histogram(6, 0);
    uint64_t total = 0, max_rounds = 0, queries = 0;
    for (int t = 0; t < 3000; ++t) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      QueryStats stats;
      s.Query({a, b}, k, &stats);
      const uint64_t r = stats.rounds;
      total += r;
      max_rounds = std::max(max_rounds, r);
      histogram[std::min<uint64_t>(r, 5)]++;
      ++queries;
    }
    std::printf("%8zu %10.3f %10llu      %llu/%llu/%llu/%llu/%llu\n", k,
                static_cast<double>(total) / static_cast<double>(queries),
                static_cast<unsigned long long>(max_rounds),
                static_cast<unsigned long long>(histogram[1]),
                static_cast<unsigned long long>(histogram[2]),
                static_cast<unsigned long long>(histogram[3]),
                static_cast<unsigned long long>(histogram[4]),
                static_cast<unsigned long long>(histogram[5]));
  }
  std::printf(
      "\nExpected shape: O(1) mean with a geometric tail. A round\n"
      "succeeds when the sampled max lands in the (K_j, 4K_j] rank\n"
      "window: probability (1-1/K)^K - (1-1/K)^{4K} ~ e^-1 - e^-4 ~\n"
      "0.35 (the paper's stated lower bound is 0.09), so the mean is\n"
      "~1/0.35 ~ 3 and the tail decays like 0.65^j. Rounds of 0 mean\n"
      "the query bypassed the ladder (k >= n/4 scans).\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
