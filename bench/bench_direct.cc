// E18 — the price of generality: the problem-specific heap-selection
// top-k (lazy heap selection over the PST, O(log n + k log(k + log n)),
// no randomness) versus the paper's two general reductions and the [28]
// baseline, on 1D range reporting.
//
// Expected shape: the direct structure wins outright (it exploits the
// heap order the reductions treat as a black box); Theorem 2 is the
// closest general structure; the gap quantifies what the black-box
// abstraction costs on this problem.

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::HeapSelectTopK;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr size_t kK = 16;

Range1D Q(Rng* rng) {
  double a = rng->NextDouble(), b = rng->NextDouble();
  if (a > b) std::swap(a, b);
  return {a, b};
}

void RegisterAll() {
  for (size_t n : {size_t{1} << 14, size_t{1} << 17, size_t{1} << 20}) {
    bench::RegisterLazy<HeapSelectTopK>(
        "Direct_HeapSelect/" + std::to_string(n), n,
        [](size_t m) { return HeapSelectTopK(bench::Points1D(m, 5)); },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>(
              bench::Points1D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<CoreSetTopK<Range1DProblem, PrioritySearchTree>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<Range1DProblem, PrioritySearchTree>(
              bench::Points1D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<BinarySearchTopK<Range1DProblem, PrioritySearchTree>>(
        "Baseline28/" + std::to_string(n), n,
        [](size_t m) {
          return BinarySearchTopK<Range1DProblem, PrioritySearchTree>(
              bench::Points1D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
