// E3 — Theorem 2: query cost O(Q_pri + Q_max + k/B) with no
// degradation, versus Theorem 1 and the binary-search baseline
// (1D range reporting).
//
// Expected shape: SampledTopK tracks the bare prioritized+max costs —
// flat-ish polylog growth in n, linear in k with unit slope — and beats
// Theorem 1 on small k (no f-sized monitored probes) while matching it
// on large k.

#include <cstddef>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

Range1D RandomQuery(Rng* rng) {
  double a = rng->NextDouble(), b = rng->NextDouble();
  if (a > b) std::swap(a, b);
  return {a, b};
}

using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;

void BM_Thm2_N(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Thm2& s = bench::Cached<Thm2>(n, 1, [](size_t m, uint64_t seed) {
    return Thm2(bench::Points1D(m, seed));
  });
  Rng rng(42);
  QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomQuery(&rng), 16, &stats));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds/query"] =
      static_cast<double>(stats.rounds) /
      static_cast<double>(state.iterations());
}

void BM_Thm2_K(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 17;
  const Thm2& s = bench::Cached<Thm2>(n, 1, [](size_t m, uint64_t seed) {
    return Thm2(bench::Points1D(m, seed));
  });
  Rng rng(42);
  QueryStats stats;
  for (auto _ : state) {
    const double a = rng.NextDouble() * 0.25;
    benchmark::DoNotOptimize(s.Query({a, a + 0.7}, k, &stats));
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["rounds/query"] =
      static_cast<double>(stats.rounds) /
      static_cast<double>(state.iterations());
}

void BM_Thm1_K_Reference(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 17;
  using S = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  const S& s = bench::Cached<S>(n, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(42);
  for (auto _ : state) {
    const double a = rng.NextDouble() * 0.25;
    benchmark::DoNotOptimize(s.Query({a, a + 0.7}, k));
  }
  state.counters["k"] = static_cast<double>(k);
}

BENCHMARK(BM_Thm2_N)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_Thm2_K)->RangeMultiplier(4)->Range(1, 1 << 14);
BENCHMARK(BM_Thm1_K_Reference)->RangeMultiplier(4)->Range(1, 1 << 14);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
