// E27 — intra-query parallelism: batch latency of the degenerate-fetch
// bucket (largest k, where every reduction bottoms out in a full or
// near-full monitored fetch) vs intra-query worker count, for all four
// reductions.
//
// Claims under test:
//   * results are bit-identical to the serial path at every worker
//     count (checked against single-threaded references every rep);
//   * the sharded flat kernel keeps the zero-allocation steady state —
//     a warm engine serves every measured batch at exactly 0 heap
//     allocations, enforced by a hard TOPK_CHECK (the bench exits
//     nonzero on regression, same contract as E24);
//   * p99 of the deep-k bucket improves with workers when the machine
//     has cores to give (this container is often pinned to ONE core —
//     the printed cpus value says what was actually available; worker
//     counts beyond it run unclamped on purpose so the sharded code
//     path is always measured, and may not help wall-clock there).
//
// Plain-text table + one metrics JSON line per configuration
// (consumed by tools/summarize_bench.py). Construction is never timed.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "range1d/count_tree.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"
#include "serve/metrics.h"

// GCC inlines through the replaced operator new below, sees malloc, and
// then flags the free() in the replaced operator delete as mismatched —
// a false positive: the replaced pair IS malloc/free, consistently.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Relaxed is enough: the measured window is bracketed by the
// QueryBatchInto barrier, which orders the workers' counts.
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// Counting allocator (same pattern as bench_perf / the alloc
// regression test): every allocation in the process ticks the counter.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  std::abort();  // no exceptions in this codebase
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace topk {
namespace {

using range1d::CountTree;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr size_t kN = 1 << 17;
constexpr size_t kBatch = 48;
constexpr size_t kTimedReps = 3;

// The degenerate-fetch bucket: k >= n/2 forces Theorem 1's full scan;
// the same depth drives Theorem 2 to its terminal scan, counting to a
// near-full tally fetch, and the baseline's final fetch through the
// sharded kernel. Wide ranges keep |q(D)| large so the scans dominate.
std::vector<serve::Request<Range1D>> MakeWorkload() {
  Rng rng(0x5e27);
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    double lo = rng.NextDouble() * 0.2;
    double hi = 0.8 + rng.NextDouble() * 0.2;
    requests.push_back({{lo, hi}, kN / 2 + 1 + i});
  }
  return requests;
}

template <typename S>
void RunStructure(const char* name, const S& structure,
                  const std::vector<serve::Request<Range1D>>& requests) {
  using Engine = serve::QueryEngine<S>;

  // Single-threaded, serial-path reference answers.
  std::vector<std::vector<uint64_t>> reference;
  reference.reserve(requests.size());
  for (const auto& r : requests) {
    auto answer = structure.Query(r.predicate, r.k);
    std::vector<uint64_t> ids;
    ids.reserve(answer.size());
    for (const auto& e : answer) ids.push_back(e.id);
    reference.push_back(std::move(ids));
  }

  double p99_1 = 0.0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    serve::Metrics metrics;
    Engine engine(&structure,
                  {.num_threads = 1,
                   .intra_query_workers = workers,
                   .unclamped_intra_query_workers = true},
                  &metrics);
    TOPK_CHECK_EQ(engine.intra_query_workers(), workers);

    engine.Warmup(requests);
    std::vector<typename Engine::Result> results;
    engine.QueryBatchInto(requests, &results);  // warm the result slots

    bool exact = true;
    const uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    double best_s = 1e30;
    for (size_t rep = 0; rep < kTimedReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      engine.QueryBatchInto(requests, &results);
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(best_s,
                        std::chrono::duration<double>(t1 - t0).count());
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) exact = false;
        const auto& elems = results[i].elements;
        if (elems.size() != reference[i].size()) exact = false;
        for (size_t j = 0; exact && j < elems.size(); ++j) {
          if (elems[j].id != reference[i][j]) exact = false;
        }
      }
    }
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    // The zero-alloc steady state is a hard contract, not a report.
    TOPK_CHECK_EQ(allocs, uint64_t{0});

    const serve::MetricsSnapshot m = metrics.Snapshot();
    const double p99 = m.latency.PercentileNs(99.0);
    if (workers == 1) p99_1 = p99;
    std::printf("%-10s %7zu %10.2f %9.1f %9.1f %9.1f %8.2fx %6zu %6s\n",
                name, workers, best_s * 1e3, m.latency.PercentileNs(50.0) / 1e3,
                p99 / 1e3, static_cast<double>(m.latency.max_ns()) / 1e3,
                p99 > 0 ? p99_1 / p99 : 0.0, static_cast<size_t>(allocs),
                exact ? "ok" : "FAIL");
    std::printf("metrics_json structure=%s workers=%zu %s\n", name, workers,
                serve::ToJson(m).c_str());
    if (!exact) std::exit(1);
  }
}

void Run() {
  std::printf(
      "E27: deep-k (degenerate-fetch) batch latency vs intra-query\n"
      "workers (n=%zu, batch=%zu requests, k ~ n/2, 1 request worker;\n"
      "hardware_concurrency=%u). Columns: batch wall ms (best of %zu),\n"
      "latency p50/p99/max us (all reps), p99 speedup vs 1 worker,\n"
      "measured-window allocations (must be 0), exactness.\n",
      kN, kBatch, std::thread::hardware_concurrency(), kTimedReps);
  std::printf("%-10s %7s %10s %9s %9s %9s %9s %6s %6s\n", "structure",
              "workers", "batch_ms", "p50_us", "p99_us", "max_us",
              "p99_spd", "allocs", "exact");

  const std::vector<Point1D> data = bench::Points1D(kN, 27);

  const CoreSetTopK<Range1DProblem, PrioritySearchTree> thm1(data);
  const SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> thm2(data);
  const BinarySearchTopK<Range1DProblem, PrioritySearchTree> baseline(data);
  const CountingTopK<Range1DProblem, PrioritySearchTree, CountTree> counting(
      data);

  const std::vector<serve::Request<Range1D>> requests = MakeWorkload();
  RunStructure("thm1", thm1, requests);
  RunStructure("thm2", thm2, requests);
  RunStructure("baseline", baseline, requests);
  RunStructure("counting", counting, requests);
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
