// E22 — fault injection on the EM serving path: exact fault/retry
// accounting for the chain  BufferPool -> RetryingBlockDevice ->
// FaultyBlockDevice -> BlockDevice  under swept Bernoulli fault rates,
// on the Theorem 1 reduction over the Section 5.5 EM prioritized
// structure.
//
// Claims under test (the src/fault/ contract, see DESIGN.md):
//   * absorbed faults are free in the I/O model: whenever giveups = 0,
//     the read count is IDENTICAL to the fault-free run (failed
//     attempts are never charged) and every answer is exact;
//   * the accounting identity  faults = retries + giveups  holds at
//     every rate;
//   * giveups never abort: they surface as flagged FallibleTopK results
//     (flagged = queries whose answers must be discarded), and a
//     flagged query recovers by re-asking — re-asks are reported.
//
// This is a measurement table over a simulated device, not a timing
// run. Construction runs with faults disarmed (a zeroed page during
// bulk load has no degradation story).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/em_range1d.h"
#include "em/fallible.h"
#include "fault/failpoint.h"
#include "fault/faulty_block_device.h"
#include "fault/retrying_block_device.h"
#include "range1d/point1d.h"

namespace topk {
namespace {

using em::BlockDevice;
using em::BufferPool;
using em::EmRange1dPrioritized;
using em::FallibleTopK;
using fault::FaultyBlockDevice;
using fault::Injector;
using fault::RetryingBlockDevice;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr size_t kN = 1 << 16;
constexpr size_t kQueries = 48;
constexpr size_t kMaxAttempts = 3;

using EmTopK = CoreSetTopK<Range1DProblem, EmRange1dPrioritized>;

struct Row {
  uint64_t reads = 0;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t giveups = 0;
  uint64_t flagged = 0;
  uint64_t re_asks = 0;
};

Row Measure(double fault_rate, const std::vector<Point1D>& data,
            const std::vector<std::pair<Range1D, size_t>>& queries) {
  BlockDevice base(512);
  Injector inj(0xe22);
  FaultyBlockDevice faulty(&base, &inj);
  RetryingBlockDevice retry(&faulty, {.max_attempts = kMaxAttempts});
  BufferPool pool(&retry, 64);

  auto pri_factory = [&pool](std::vector<Point1D> v) {
    return EmRange1dPrioritized(&pool, std::move(v));
  };
  const EmTopK topk(data, ReductionOptions{}, pri_factory);
  const FallibleTopK<EmTopK> fallible(&topk, &pool);
  base.ResetCounters();

  if (fault_rate > 0.0) {
    inj.Arm(fault::kReadFaultSite, {.probability = fault_rate});
  }
  Row row;
  for (const auto& [q, k] : queries) {
    auto r = fallible.Query(q, k);
    if (r.io_failed) {
      ++row.flagged;
      // Re-ask until the answer is trustworthy (poisoned frames are
      // never cached, so each re-ask re-rolls the fault schedule).
      do {
        ++row.re_asks;
        r = fallible.Query(q, k);
      } while (r.io_failed);
    }
  }
  row.reads = base.counters().reads;
  row.retries = base.counters().retries;
  row.giveups = base.counters().giveups;
  row.faults = faulty.read_faults();
  TOPK_CHECK(row.faults == row.retries + row.giveups);
  return row;
}

void Run() {
  std::printf(
      "E22: fault-injected EM serving (n=%zu, %zu queries, thm1 over the\n"
      "EM prioritized structure, retry budget %zu attempts/transfer).\n"
      "reads counts successful transfers only; flagged = queries whose\n"
      "result was discarded (a retry gave up mid-query); re_asks = extra\n"
      "queries until every flagged one recovered.\n",
      kN, kQueries, kMaxAttempts);
  std::printf("%10s %10s %8s %8s %8s %8s %8s %12s\n", "fault_rate",
              "reads", "faults", "retries", "giveups", "flagged", "re_asks",
              "reads_vs_0%");

  const std::vector<Point1D> data = bench::Points1D(kN, 22);
  Rng rng(0x22);
  std::vector<std::pair<Range1D, size_t>> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    queries.push_back({{a, b}, (i % 8 == 0) ? size_t{512} : size_t{16}});
  }

  uint64_t baseline_reads = 0;
  for (const double rate : {0.0, 0.001, 0.01, 0.10}) {
    const Row row = Measure(rate, data, queries);
    if (rate == 0.0) baseline_reads = row.reads;
    char delta[32];
    if (row.giveups == 0 && row.reads == baseline_reads) {
      std::snprintf(delta, sizeof(delta), "identical");
    } else {
      std::snprintf(delta, sizeof(delta), "%+lld",
                    static_cast<long long>(row.reads) -
                        static_cast<long long>(baseline_reads));
    }
    std::printf("%10.3f %10llu %8llu %8llu %8llu %8llu %8llu %12s\n", rate,
                static_cast<unsigned long long>(row.reads),
                static_cast<unsigned long long>(row.faults),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.giveups),
                static_cast<unsigned long long>(row.flagged),
                static_cast<unsigned long long>(row.re_asks), delta);
  }
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
