// E9 — Theorem 6, top-k 3D dominance (the hotel query): both reductions
// over the weight-augmented kd-tree vs scan.

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "dominance/point3.h"

namespace topk {
namespace {

using dominance::DominanceKdTree;
using dominance::DominanceProblem;
using dominance::Point3;

constexpr size_t kK = 10;

Point3 Q(Rng* rng) {
  return {0.3 + rng->NextDouble() * 0.7, 0.3 + rng->NextDouble() * 0.7,
          0.3 + rng->NextDouble() * 0.7, 0, 0};
}

void RegisterAll() {
  for (size_t n : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16,
                   size_t{1} << 18}) {
    bench::RegisterLazy<CoreSetTopK<DominanceProblem, DominanceKdTree>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<DominanceProblem, DominanceKdTree>(
              bench::Points3D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<DominanceProblem, DominanceKdTree, DominanceKdTree>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<DominanceProblem, DominanceKdTree,
                             DominanceKdTree>(bench::Points3D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<ScanTopK<DominanceProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) {
          return ScanTopK<DominanceProblem>(bench::Points3D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
