// E24 — zero-allocation steady-state query path: the compatibility
// Query() entry points (each call owns a throwaway Scratch and returns
// a fresh vector, "alloc") against the warm scratch path QueryInto()
// reusing one arena and one output buffer across queries ("scratch"),
// for all four reductions; plus the serving engine's QueryBatch
// (fresh result vectors per call) against a warm QueryBatchInto
// (per-worker arenas + recycled slots); plus the SelectTopK strategy
// crossover sweep that fixes the k*log2(|pool|) < |pool| boundary in
// common/kselect.h.
//
// Allocations are counted by replacing the global operator new in this
// TU (process-wide, so the figure covers reductions, substrates, and
// accounting at once). Timing is the E23 methodology: interleaved
// off/on sweeps, best of kReps. Plain-text table (consumed verbatim by
// tools/summarize_bench.py). Construction is never timed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/counting_topk.h"
#include "core/sampled_topk.h"
#include "range1d/count_tree.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "serve/engine.h"

// GCC inlines through the replaced operator new below, sees malloc, and
// then flags the free() in the replaced operator delete as mismatched —
// a false positive: the replaced pair IS malloc/free, consistently.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// Counting allocator (same pattern as tests/alloc_regression_test.cc):
// aligned variants are intentionally not replaced — the defaults are
// malloc-family too, so new/delete pairs stay consistent.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  std::abort();  // no exceptions in this codebase
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace topk {
namespace {

using range1d::CountTree;
using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
using Baseline = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
using Counting = CountingTopK<Range1DProblem, PrioritySearchTree, CountTree>;

constexpr size_t kQueries = 1000;
constexpr int kReps = 5;  // best-of to shed scheduler noise (ISSUE E24)

std::vector<Range1D> MakeQueries(uint64_t seed) {
  Rng rng(seed);
  std::vector<Range1D> qs;
  qs.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    qs.push_back({a, b});
  }
  return qs;
}

struct SweepResult {
  double ns_per_q;
  double allocs_per_q;
};

// Compatibility path: every call constructs a Scratch and returns a
// fresh result vector.
template <typename S>
SweepResult SweepAlloc(const S& s, const std::vector<Range1D>& qs, size_t k) {
  const uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (const Range1D& q : qs) {
    QueryStats stats;
    auto got = s.Query(q, k, &stats);
    benchmark::DoNotOptimize(got);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
  const double n = static_cast<double>(qs.size());
  return {std::chrono::duration<double, std::nano>(t1 - t0).count() / n,
          static_cast<double>(a1 - a0) / n};
}

// Scratch path: one warm arena + one output buffer across the sweep.
template <typename S>
SweepResult SweepScratch(const S& s, const std::vector<Range1D>& qs, size_t k,
                         Scratch* scratch, std::vector<Point1D>* out) {
  const uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (const Range1D& q : qs) {
    QueryStats stats;
    s.QueryInto(q, k, scratch, out, &stats);
    benchmark::DoNotOptimize(out->data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
  const double n = static_cast<double>(qs.size());
  return {std::chrono::duration<double, std::nano>(t1 - t0).count() / n,
          static_cast<double>(a1 - a0) / n};
}

template <typename S>
void MeasureQueryPath(const char* name, const S& s, size_t k) {
  const std::vector<Range1D> qs = MakeQueries(17 + k);
  Scratch scratch;
  std::vector<Point1D> out;
  SweepScratch(s, qs, k, &scratch, &out);  // warm the arena (untimed)
  double alloc_ns = 1e300, scratch_ns = 1e300;
  double alloc_aq = 0, scratch_aq = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const SweepResult a = SweepAlloc(s, qs, k);
    alloc_ns = std::min(alloc_ns, a.ns_per_q);
    alloc_aq = a.allocs_per_q;  // deterministic across reps
    const SweepResult b = SweepScratch(s, qs, k, &scratch, &out);
    scratch_ns = std::min(scratch_ns, b.ns_per_q);
    scratch_aq = b.allocs_per_q;
  }
  // The headline claim, enforced: a warm scratch sweep is allocation-
  // free. (The alloc path's count is reported, not asserted.)
  TOPK_CHECK_EQ(static_cast<uint64_t>(scratch_aq * kQueries), 0u);
  std::printf("%8s %6zu %12.1f %12.1f %+9.1f%% %10.2f %10.2f\n", name, k,
              alloc_ns, scratch_ns,
              100.0 * (scratch_ns - alloc_ns) / alloc_ns, alloc_aq,
              scratch_aq);
}

// ---- engine batches: QueryBatch (fresh results) vs warm QueryBatchInto.

std::vector<serve::Request<Range1D>> MakeRequests(size_t count,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    serve::Request<Range1D> r;
    r.predicate = Range1D{lo, hi};
    r.k = 1 + i * 7 % 64;
    requests.push_back(r);
  }
  return requests;
}

template <typename S>
void MeasureEngine(const char* name, const S& s, size_t threads) {
  using Engine = serve::QueryEngine<S>;
  typename Engine::Options options;
  options.num_threads = threads;
  Engine engine(&s, options);
  const std::vector<serve::Request<Range1D>> requests = MakeRequests(256, 5);
  constexpr int kBatches = 10;

  engine.Warmup(requests);
  std::vector<typename Engine::Result> results;
  engine.QueryBatchInto(requests, &results);  // warm the recycled slots

  double alloc_ns = 1e300, scratch_ns = 1e300;
  double alloc_ar = 0, scratch_ar = 0;
  const double served =
      static_cast<double>(kBatches) * static_cast<double>(requests.size());
  for (int rep = 0; rep < kReps; ++rep) {
    {
      const uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      for (int b = 0; b < kBatches; ++b) {
        auto fresh = engine.QueryBatch(requests);
        benchmark::DoNotOptimize(fresh);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
      alloc_ns = std::min(
          alloc_ns,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / served);
      alloc_ar = static_cast<double>(a1 - a0) / served;
    }
    {
      const uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      for (int b = 0; b < kBatches; ++b) {
        engine.QueryBatchInto(requests, &results);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const uint64_t a1 = g_alloc_count.load(std::memory_order_relaxed);
      scratch_ns = std::min(
          scratch_ns,
          std::chrono::duration<double, std::nano>(t1 - t0).count() / served);
      scratch_ar = static_cast<double>(a1 - a0) / served;
    }
  }
  TOPK_CHECK_EQ(static_cast<uint64_t>(scratch_ar * served), 0u);
  std::printf("%8s %6zu %12.1f %12.1f %+9.1f%% %10.2f %10.2f %10.2f\n", name,
              threads, alloc_ns, scratch_ns,
              100.0 * (scratch_ns - alloc_ns) / alloc_ns, alloc_ar,
              scratch_ar, 1e9 / scratch_ns);
}

// ---- SelectTopK strategy crossover: partial_sort vs nth_element+sort.

double TimeSelect(const std::vector<Point1D>& base,
                  std::vector<Point1D>* buf, size_t k, bool heap) {
  constexpr int kTrials = 8;
  double total_ns = 0;
  for (int t = 0; t < kTrials; ++t) {
    *buf = base;  // copy outside the timed region
    const auto t0 = std::chrono::steady_clock::now();
    if (heap) {
      std::partial_sort(buf->begin(), buf->begin() + static_cast<long>(k),
                        buf->end(), ByWeightDesc());
      buf->resize(k);
    } else {
      std::nth_element(buf->begin(), buf->begin() + static_cast<long>(k),
                       buf->end(), ByWeightDesc());
      buf->resize(k);
      std::sort(buf->begin(), buf->end(), ByWeightDesc());
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(buf->data());
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
  }
  return total_ns / kTrials;
}

void CrossoverRow(const std::vector<Point1D>& base,
                  std::vector<Point1D>* buf, size_t k) {
  const size_t m = base.size();
  double heap_ns = 1e300, nth_ns = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    heap_ns = std::min(heap_ns, TimeSelect(base, buf, k, true));
    nth_ns = std::min(nth_ns, TimeSelect(base, buf, k, false));
  }
  const bool heap_won = heap_ns <= nth_ns;
  const bool shipped = kselect_internal::UseHeapSelect(k, m);
  std::printf("%8zu %8zu %12.1f %12.1f %13s %13s %6s\n", m, k,
              heap_ns / 1e3, nth_ns / 1e3,
              heap_won ? "partial_sort" : "nth_element",
              shipped ? "partial_sort" : "nth_element",
              heap_won == shipped ? "yes" : "NO");
}

void Run() {
  const size_t n = 1 << 16;
  std::printf(
      "E24: zero-allocation steady-state query path (n=2^16,\n"
      "%zu queries/row, best of %d interleaved sweeps)\n\n"
      "Per-reduction: compat Query() (throwaway Scratch + fresh result\n"
      "vector per call) vs warm QueryInto() (one arena + one buffer)\n",
      kQueries, kReps);
  std::printf("%8s %6s %12s %12s %10s %10s %10s\n", "struct", "k",
              "alloc ns/q", "scrtch ns/q", "delta", "allocs/q", "scr al/q");
  const Thm1 thm1(bench::Points1D(n, 23));
  const Thm2 thm2(bench::Points1D(n, 23));
  const Baseline baseline(bench::Points1D(n, 23));
  const Counting counting(bench::Points1D(n, 23));
  for (size_t k : {size_t{16}, size_t{256}}) {
    MeasureQueryPath("thm1", thm1, k);
    MeasureQueryPath("thm2", thm2, k);
    MeasureQueryPath("baseline", baseline, k);
    MeasureQueryPath("counting", counting, k);
  }

  std::printf(
      "\nEngine batches (256 mixed-k requests/batch, thm2): QueryBatch\n"
      "(fresh result vectors per call) vs warm QueryBatchInto (recycled\n"
      "slots + per-worker arenas)\n");
  std::printf("%8s %6s %12s %12s %10s %10s %10s %10s\n", "struct", "thr",
              "alloc ns/r", "scrtch ns/r", "delta", "allocs/r", "scr al/r",
              "q/s");
  for (size_t threads : {size_t{1}, size_t{4}}) {
    MeasureEngine("thm2", thm2, threads);
  }

  std::printf(
      "\nSelectTopK strategy crossover vs the shipped UseHeapSelect rule\n"
      "(common/kselect.h): k <= m/512 on cache-resident pools,\n"
      "k^2 < 10m beyond ~8K elements\n");
  std::printf("%8s %8s %12s %12s %13s %13s %6s\n", "m", "k", "heap us",
              "nth us", "winner", "shipped", "agree");
  for (const size_t m :
       {size_t{1} << 10, size_t{1} << 13, size_t{1} << 16}) {
    const std::vector<Point1D> base = bench::Points1D(m, 71);
    std::vector<Point1D> buf;
    buf.reserve(m);
    for (const size_t k : {size_t{2}, size_t{8}, size_t{32}, size_t{128},
                           size_t{512}, size_t{2048}}) {
      if (k >= m) break;
      CrossoverRow(base, &buf, k);
    }
  }
  std::printf(
      "\nExpected shape: scratch path within noise of (or faster than)\n"
      "the alloc path with 0 allocs/q once warm; the shipped rule agrees\n"
      "with the measured winner except within noise of the boundary,\n"
      "where the two strategies are near-equal cost.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
