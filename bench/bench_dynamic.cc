// E25 — serving during mutation: the epoch/snapshot rotation
// (serve/epoch.h) under the dynamic Theorem 2 instantiation (treap PST
// + augmented-treap range max).
//
// Claims under test:
//   * a QueryEngine in epoch mode keeps serving brute-force-exact
//     answers while a writer thread applies update batches and
//     republishes — every batch's answers match the snapshot of the
//     epoch it pinned (checked here per batch, exit 1 on mismatch);
//   * reader latency under churn stays in the same regime as the
//     quiescent baseline: readers acquire a pin (two seq_cst accesses),
//     never a lock, so the p50/p99 gap is epoch-cache effects, not
//     contention (this container is often pinned to ONE core — the
//     printed cpus value says what parallelism was really available);
//   * retired epochs drain to exactly one once readers finish.
//
// Plain-text table + one metrics JSON line per phase (consumed by
// tools/summarize_bench.py). Query timings never include construction;
// the writer's shadow rebuild + publish cost is reported separately as
// publish_ms — it IS the writer's copy-on-publish price (DESIGN.md,
// "Epoch/snapshot serving contract").

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/kselect.h"
#include "common/random.h"
#include "core/reduction_options.h"
#include "core/sampled_topk.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"
#include "serve/engine.h"
#include "serve/epoch.h"
#include "serve/metrics.h"

namespace topk {
namespace {

using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;

using DynTopK = SampledTopK<Range1DProblem, DynamicPst, DynamicRangeMax>;
using Engine = serve::QueryEngine<DynTopK>;

constexpr size_t kN = 1 << 14;
constexpr size_t kBatch = 256;
constexpr size_t kThreads = 2;
constexpr size_t kQuiescentReps = 5;
constexpr size_t kChurnBatches = 24;
constexpr int kUpdatesPerPublish = 192;
constexpr size_t kSpotChecks = 8;  // brute-forced requests per batch

std::vector<serve::Request<Range1D>> MakeWorkload() {
  Rng rng(0x5e25);
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    // Serving mix: mostly small k, every 16th request deep.
    requests.push_back(
        {{lo, hi}, (i % 16 == 0) ? size_t{512} : size_t{16}});
  }
  return requests;
}

// Brute-forces the first kSpotChecks requests of a batch against the
// element multiset of the epoch the batch was served from.
bool SpotCheck(const std::vector<serve::Request<Range1D>>& requests,
               const std::vector<Engine::Result>& results,
               const std::vector<Point1D>& snapshot) {
  for (size_t i = 0; i < kSpotChecks && i < requests.size(); ++i) {
    if (!results[i].ok()) return false;
    std::vector<Point1D> pool;
    for (const Point1D& p : snapshot) {
      if (Range1DProblem::Matches(requests[i].predicate, p)) {
        pool.push_back(p);
      }
    }
    SelectTopK(&pool, requests[i].k);
    if (pool.size() != results[i].elements.size()) return false;
    for (size_t j = 0; j < pool.size(); ++j) {
      if (pool[j].id != results[i].elements[j].id) return false;
    }
  }
  return true;
}

void PrintRow(const char* phase, size_t batches, double batch_ms,
              const serve::MetricsSnapshot& m, size_t publishes,
              double publish_ms, bool exact) {
  std::printf("%-10s %7zu %10.2f %10.0f %9.1f %9.1f %9.1f %6zu %10.2f %6s\n",
              phase, batches, batch_ms,
              static_cast<double>(kBatch) / (batch_ms / 1e3),
              m.latency.PercentileNs(50.0) / 1e3,
              m.latency.PercentileNs(95.0) / 1e3,
              m.latency.PercentileNs(99.0) / 1e3, publishes, publish_ms,
              exact ? "ok" : "FAIL");
  std::printf("metrics_json structure=%s threads=%zu %s\n", phase,
              kThreads, serve::ToJson(m).c_str());
  if (!exact) std::exit(1);
}

void Run() {
  std::printf(
      "E25: epoch/snapshot serving under churn (n=%zu, batch=%zu\n"
      "requests, %zu workers, %d updates per publish;\n"
      "hardware_concurrency=%u). Columns: batches served, mean batch\n"
      "wall ms, queries/s, reader latency p50/p95/p99 us, epochs\n"
      "published, mean shadow rebuild+publish ms, exactness (first %zu\n"
      "requests per batch brute-forced against the pinned snapshot).\n",
      kN, kBatch, kThreads, kUpdatesPerPublish,
      std::thread::hardware_concurrency(), kSpotChecks);
  std::printf("%-10s %7s %10s %10s %9s %9s %9s %6s %10s %6s\n", "phase",
              "batches", "batch_ms", "qps", "p50_us", "p95_us", "p99_us",
              "pubs", "publish_ms", "exact");

  const std::vector<Point1D> initial = bench::Points1D(kN, 25);
  const std::vector<serve::Request<Range1D>> requests = MakeWorkload();
  ReductionOptions opts;
  opts.seed = 0xe25;
  serve::EpochManager<DynTopK> epochs{DynTopK(initial, opts)};

  // --- Quiescent baseline: epoch mode, nobody publishing. ---------------
  {
    serve::Metrics metrics;
    Engine engine(&epochs, {.num_threads = kThreads}, &metrics);
    std::vector<Engine::Result> results;
    engine.QueryBatchInto(requests, &results);  // warm-up
    bool exact = SpotCheck(requests, results, initial);
    double total_s = 0.0;
    for (size_t rep = 0; rep < kQuiescentReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      engine.QueryBatchInto(requests, &results);
      const auto t1 = std::chrono::steady_clock::now();
      total_s += std::chrono::duration<double>(t1 - t0).count();
      exact = exact && SpotCheck(requests, results, initial);
    }
    PrintRow("quiescent", kQuiescentReps,
             total_s / static_cast<double>(kQuiescentReps) * 1e3,
             metrics.Snapshot(), 0, 0.0, exact);
  }

  // --- Churn: a writer republishes mutated snapshots at full tilt. ------
  {
    std::mutex mu;
    std::map<uint64_t, std::vector<Point1D>> snapshots;
    snapshots[epochs.current_seq()] = initial;

    std::atomic<bool> stop{false};
    std::atomic<size_t> publishes{0};
    std::atomic<uint64_t> publish_ns{0};
    std::thread writer([&] {
      Rng rng(26);
      std::vector<Point1D> live = initial;
      uint64_t next_id = 10'000'000;
      uint64_t seq = epochs.current_seq();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        ReductionOptions sopts;
        sopts.seed = 27 + seq;
        DynTopK shadow(live, sopts);
        for (int u = 0; u < kUpdatesPerPublish; ++u) {
          if (!live.empty() && rng.Bernoulli(0.5)) {
            const size_t victim = rng.Below(live.size());
            shadow.Erase(live[victim]);
            live[victim] = live.back();
            live.pop_back();
          } else {
            const Point1D e{rng.NextDouble(), rng.NextDouble() * 1e6,
                            next_id++};
            shadow.Insert(e);
            live.push_back(e);
          }
        }
        ++seq;
        {
          const std::lock_guard<std::mutex> lock(mu);
          snapshots[seq] = live;
        }
        epochs.Publish(std::move(shadow));
        const auto t1 = std::chrono::steady_clock::now();
        publish_ns.fetch_add(static_cast<uint64_t>(
            std::chrono::nanoseconds(t1 - t0).count()));
        publishes.fetch_add(1);
      }
    });

    serve::Metrics metrics;
    Engine engine(&epochs, {.num_threads = kThreads}, &metrics);
    std::vector<Engine::Result> results;
    engine.QueryBatchInto(requests, &results);  // warm-up
    bool exact = true;
    double total_s = 0.0;
    for (size_t batch = 0; batch < kChurnBatches; ++batch) {
      const auto t0 = std::chrono::steady_clock::now();
      engine.QueryBatchInto(requests, &results);
      const auto t1 = std::chrono::steady_clock::now();
      total_s += std::chrono::duration<double>(t1 - t0).count();
      std::vector<Point1D> snap;
      {
        const std::lock_guard<std::mutex> lock(mu);
        snap = snapshots.at(engine.last_batch_epoch());
      }
      exact = exact && SpotCheck(requests, results, snap);
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    const size_t pubs = publishes.load();
    const double pub_ms =
        pubs == 0 ? 0.0
                  : static_cast<double>(publish_ns.load()) / 1e6 /
                        static_cast<double>(pubs);
    // Retirement drains once the last in-flight batch is done.
    epochs.CollectRetired();
    exact = exact && epochs.live_epochs() == 1;
    PrintRow("churn", kChurnBatches,
             total_s / static_cast<double>(kChurnBatches) * 1e3,
             metrics.Snapshot(), pubs, pub_ms, exact);
  }
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
