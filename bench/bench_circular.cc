// E11 — Corollary 1, top-k circular range reporting: both reductions
// over the kd-tree (the disk predicate is the lifted halfspace
// restricted to the paraboloid) vs scan.

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "circle/circular.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"

namespace topk {
namespace {

using circle::CircularKdTree;
using circle::CircularProblem;
using circle::Disk;

constexpr size_t kK = 10;

Disk Q(Rng* rng) {
  return {rng->NextDouble(), rng->NextDouble(),
          0.05 + rng->NextDouble() * 0.4};
}

void RegisterAll() {
  for (size_t n : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16,
                   size_t{1} << 18}) {
    bench::RegisterLazy<CoreSetTopK<CircularProblem, CircularKdTree>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<CircularProblem, CircularKdTree>(
              bench::Points2D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<CircularProblem, CircularKdTree, CircularKdTree>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<CircularProblem, CircularKdTree,
                             CircularKdTree>(bench::Points2D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<ScanTopK<CircularProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) {
          return ScanTopK<CircularProblem>(bench::Points2D(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
