// E10 — Theorem 3 (d = 2), top-k halfplane reporting: both reductions
// over the convex-layer weight trees vs scan.

#include <cmath>
#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "halfspace/halfspace_structures.h"
#include "halfspace/point2.h"

namespace topk {
namespace {

using halfspace::Halfplane;
using halfspace::HalfplaneProblem;
using halfspace::HalfspaceMax;
using halfspace::HalfspacePrioritized;

constexpr size_t kK = 10;

Halfplane Q(Rng* rng) {
  const double a = rng->NextDouble() * 2 * 3.14159265358979;
  return {std::cos(a), std::sin(a), rng->NextDouble() * 2 - 1};
}

void RegisterAll() {
  for (size_t n : {size_t{1} << 13, size_t{1} << 15, size_t{1} << 17}) {
    bench::RegisterLazy<CoreSetTopK<HalfplaneProblem, HalfspacePrioritized>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<HalfplaneProblem, HalfspacePrioritized>(
              bench::PointsHs(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<HalfplaneProblem, HalfspacePrioritized, HalfspaceMax>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<HalfplaneProblem, HalfspacePrioritized,
                             HalfspaceMax>(bench::PointsHs(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<ScanTopK<HalfplaneProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) {
          return ScanTopK<HalfplaneProblem>(bench::PointsHs(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
