// E23 — tracing overhead: the same query sweep with tracing disabled
// (tracer == nullptr, the production default) and enabled (a
// preallocated Tracer drained between queries), for both reductions.
//
// Claims under test:
//   * the disabled path costs one predicted-not-taken branch per
//     instrumentation point — indistinguishable from the pre-trace
//     query cost (the PR's acceptance bound is <= 2% on bench_serve);
//   * the enabled path's cost is proportional to events recorded, not
//     to query work — cheap spans (Theorem 2's handful of rounds) cost
//     little even when the query itself is expensive.
//
// Plain-text table (consumed verbatim by tools/summarize_bench.py).
// Construction is never timed.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/check.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"
#include "trace/tracer.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr size_t kQueries = 2000;
constexpr int kReps = 3;  // best-of to shed scheduler noise

std::vector<Range1D> MakeQueries(uint64_t seed) {
  Rng rng(seed);
  std::vector<Range1D> qs;
  qs.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    qs.push_back({a, b});
  }
  return qs;
}

// One timed sweep; returns mean ns/query. When `tracer` is non-null it
// is drained (Clear) after every query, as a real exporter would, so
// the enabled figure includes the full record-and-drain cycle;
// `events` and `dropped` accumulate across the sweep.
template <typename S>
double Sweep(const S& s, const std::vector<Range1D>& qs, size_t k,
             trace::Tracer* tracer, uint64_t* events, uint64_t* dropped) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Range1D& q : qs) {
    QueryStats stats;
    auto got = s.Query(q, k, &stats, tracer);
    benchmark::DoNotOptimize(got);
    if (tracer != nullptr) {
      *events += tracer->events().size();
      *dropped += tracer->dropped();
      tracer->Clear();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(qs.size());
}

template <typename S>
void Measure(const char* name, const S& s, size_t k) {
  const std::vector<Range1D> qs = MakeQueries(17 + k);
  trace::Tracer tracer(size_t{1} << 12);  // ample: no query drops
  double off_ns = 1e300, on_ns = 1e300;
  uint64_t events = 0, dropped = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    off_ns = std::min(off_ns, Sweep(s, qs, k, nullptr, &events, &dropped));
    events = dropped = 0;
    on_ns = std::min(on_ns, Sweep(s, qs, k, &tracer, &events, &dropped));
  }
  TOPK_CHECK_EQ(dropped, 0u);
  std::printf("%8s %6zu %12.1f %12.1f %+9.1f%% %10.1f\n", name, k, off_ns,
              on_ns, 100.0 * (on_ns - off_ns) / off_ns,
              static_cast<double>(events) / static_cast<double>(kQueries));
}

void Run() {
  const size_t n = 1 << 16;
  std::printf(
      "E23: tracing overhead, disabled (tracer=nullptr) vs enabled\n"
      "(n=2^16, %zu queries/row, best of %d sweeps; enabled drains the\n"
      "tracer after every query)\n",
      kQueries, kReps);
  std::printf("%8s %6s %12s %12s %10s %10s\n", "struct", "k", "off ns/q",
              "on ns/q", "overhead", "events/q");

  using Thm1 = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  using Thm2 = SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax>;
  const Thm1 thm1(bench::Points1D(n, 23));
  const Thm2 thm2(bench::Points1D(n, 23));
  for (size_t k : {size_t{16}, size_t{256}}) {
    Measure("thm1", thm1, k);
    Measure("thm2", thm2, k);
  }
  std::printf(
      "\nExpected shape: 'off' within noise of the pre-trace baseline\n"
      "(E1/E2); 'on' overhead tracks events/q at roughly 100-300 ns per\n"
      "recorded span, dominated by the two steady_clock reads.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
