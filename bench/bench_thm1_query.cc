// E1 — Theorem 1 vs the prior reduction [28] vs naive scan:
// query cost as a function of n at fixed k (1D range reporting).
//
// Claim under test: CoreSetTopK answers in O(Q_pri * log_B n + k/B)
// while the binary-search baseline pays O(Q_pri log n + (k/B) log n) and
// the scan pays O(n/B). Expected shape: both reductions are orders of
// magnitude below the scan and grow polylogarithmically; Theorem 1 stays
// below the baseline, with the gap widening with n (log_B vs log_2
// probes, and no log multiplier on the constant f-sized fetches).

#include <cstddef>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/scan_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;

constexpr size_t kK = 16;

Range1D RandomQuery(Rng* rng) {
  double a = rng->NextDouble(), b = rng->NextDouble();
  if (a > b) std::swap(a, b);
  return {a, b};
}

void BM_Thm1CoreSet(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  using S = CoreSetTopK<Range1DProblem, PrioritySearchTree>;
  const S& s = bench::Cached<S>(n, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(99);
  QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomQuery(&rng), kK, &stats));
  }
  state.counters["nodes/query"] =
      static_cast<double>(stats.nodes_visited) /
      static_cast<double>(state.iterations());
  state.counters["fallbacks"] = static_cast<double>(stats.fallbacks);
  state.counters["n"] = static_cast<double>(n);
}

void BM_Thm1BinarySearchBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  using S = BinarySearchTopK<Range1DProblem, PrioritySearchTree>;
  const S& s = bench::Cached<S>(n, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(99);
  QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomQuery(&rng), kK, &stats));
  }
  state.counters["nodes/query"] =
      static_cast<double>(stats.nodes_visited) /
      static_cast<double>(state.iterations());
  state.counters["n"] = static_cast<double>(n);
}

void BM_Thm1Scan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  using S = ScanTopK<Range1DProblem>;
  const S& s = bench::Cached<S>(n, 1, [](size_t m, uint64_t seed) {
    return S(bench::Points1D(m, seed));
  });
  Rng rng(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Query(RandomQuery(&rng), kK));
  }
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_Thm1CoreSet)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_Thm1BinarySearchBaseline)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK(BM_Thm1Scan)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
