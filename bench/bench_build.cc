// E19 — construction cost and structure shape: what each top-k
// structure costs to build (time) and how its sampled parts scale
// (space), vs n. Validates Theorem 1's S_top = O(S_pri) (core-set
// levels decay geometrically) alongside E4's Theorem 2 space table.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1DProblem;
using range1d::RangeMax;

template <typename F>
double SecondsToRun(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

void Run() {
  std::printf(
      "E19: construction cost (seconds) and sampled-structure shape\n");
  std::printf("%10s %10s %10s %10s %10s %12s %12s\n", "n", "thm1", "thm2",
              "baseline", "direct", "thm1 levels", "thm2 levels");
  for (size_t n : {1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    std::vector<Point1D> data = bench::Points1D(n, 9);
    double t1 = 0, t2 = 0, tb = 0, td = 0;
    size_t levels1 = 0, levels2 = 0;
    t1 = SecondsToRun([&] {
      CoreSetTopK<Range1DProblem, PrioritySearchTree> s(data);
      levels1 = s.num_chain_levels() + s.num_large_k_core_sets();
    });
    t2 = SecondsToRun([&] {
      SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> s(data);
      levels2 = s.num_sample_levels();
    });
    tb = SecondsToRun([&] {
      BinarySearchTopK<Range1DProblem, PrioritySearchTree> s(data);
      (void)s;
    });
    td = SecondsToRun([&] {
      range1d::HeapSelectTopK s(data);
      (void)s;
    });
    std::printf("%10zu %10.3f %10.3f %10.3f %10.3f %12zu %12zu\n", n, t1,
                t2, tb, td, levels1, levels2);
  }
  std::printf(
      "\nExpected shape: every build is O(n polylog n); Theorem 1 builds\n"
      "one prioritized structure per core-set level (geometrically\n"
      "decaying sizes => a constant-factor overhead on the single-\n"
      "structure builds); Theorem 2 builds many max structures whose\n"
      "total size is ~n/3 (see E4).\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
