// E20 — query-selectivity sensitivity: who wins as |q(D)| sweeps from
// needle-sized to the whole domain (fixed n, fixed k).
//
// The per-problem experiments (E7–E11) showed the winners flip with the
// typical |q(D)| of the workload; this experiment isolates that knob.
// Expected: every structure except the scan is flat or mildly growing
// in |q(D)| (their costs depend on k and the structure term, not t);
// Theorem 1's monitored budgets make it insensitive too, just at a
// higher floor; the scan is flat at O(n).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "range1d/range_max.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::RangeMax;

constexpr size_t kN = 1 << 18;
constexpr size_t kK = 16;
constexpr int kQueries = 300;

template <typename S>
double MicrosPerQuery(const S& s, double width, Rng* rng) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueries; ++i) {
    const double a = rng->NextDouble() * (1.0 - width);
    auto r = s.Query(Range1D{a, a + width}, kK);
    asm volatile("" : : "g"(&r) : "memory");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         kQueries;
}

void Run() {
  std::printf(
      "E20: us/query vs selectivity (n=2^18, k=16, 300 queries/cell)\n");
  std::vector<Point1D> data = bench::Points1D(kN, 13);
  CoreSetTopK<Range1DProblem, PrioritySearchTree> thm1(data);
  SampledTopK<Range1DProblem, PrioritySearchTree, RangeMax> thm2(data);
  BinarySearchTopK<Range1DProblem, PrioritySearchTree> baseline(data);
  range1d::HeapSelectTopK direct(data);
  ScanTopK<Range1DProblem> scan(data);

  std::printf("%12s %12s %10s %10s %10s %10s %10s\n", "width",
              "~|q(D)|", "direct", "base[28]", "thm2", "thm1", "scan");
  for (double width : {1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0}) {
    Rng rng(17);
    const double d = MicrosPerQuery(direct, width, &rng);
    const double b = MicrosPerQuery(baseline, width, &rng);
    const double t2 = MicrosPerQuery(thm2, width, &rng);
    const double t1 = MicrosPerQuery(thm1, width, &rng);
    const double sc = width <= 1e-2  // the scan is flat; sample sparsely
                          ? MicrosPerQuery(scan, width, &rng)
                          : -1;
    std::printf("%12.0e %12.0f %10.2f %10.2f %10.2f %10.2f ", width,
                width * kN, d, b, t2, t1);
    if (sc >= 0) {
      std::printf("%10.2f\n", sc);
    } else {
      std::printf("%10s\n", "(flat)");
    }
  }
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
