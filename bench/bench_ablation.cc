// E15 — ablation of the paper's worst-case constants. Theorem 1 sets
// f = 12*lambda*B*Q_pri(n) and the Lemma 2 pivot rank to
// ceil(8*lambda*ln n); these guarantee the w.h.p. analysis but are
// conservative on realistic inputs. constant_scale multiplies both.
//
// Measured: query latency, fallback rate, and structure shape as the
// scale shrinks. Expected: latency improves substantially below scale
// 1.0 (smaller f => smaller monitored budgets) until fallbacks start to
// dominate; answers stay exact at every scale (verified fallback).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/core_set_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk {
namespace {

using range1d::PrioritySearchTree;
using range1d::Range1DProblem;

// Keep the result alive without google-benchmark.
template <typename T>
void benchmark_keep(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

void Run() {
  std::printf(
      "E15: Theorem 1 constant ablation (1D range, n=2^18, k=16,\n"
      "4000 queries per row)\n");
  std::printf("%8s %10s %8s %10s %12s %14s\n", "scale", "f", "levels",
              "coresets", "fallback%", "us/query");
  const size_t n = 1 << 18;
  std::vector<range1d::Point1D> data = bench::Points1D(n, 5);
  for (double scale : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
    ReductionOptions opts;
    opts.constant_scale = scale;
    CoreSetTopK<Range1DProblem, PrioritySearchTree> s(data, opts);
    Rng rng(6);
    QueryStats stats;
    const int trials = 4000;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      benchmark_keep(s.Query({a, b}, 16, &stats));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count() /
        trials;
    std::printf("%8.2f %10zu %8zu %10zu %11.2f%% %14.2f\n", scale, s.f(),
                s.num_chain_levels(), s.num_large_k_core_sets(),
                100.0 * static_cast<double>(stats.fallbacks) / trials, us);
  }
  std::printf(
      "\nExpected shape: microseconds/query drop as scale shrinks (f\n"
      "controls every monitored budget) until the fallback rate grows\n"
      "enough to pay the O(log n)-probe baseline on unlucky queries.\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
