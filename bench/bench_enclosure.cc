// E8 — Theorem 5, top-k 2D point enclosure (the dating-site query):
// both reductions over the two-level segment-tree structures vs scan.
//
// Expected shape: reductions polylogarithmic (Theorem 2 tracking the
// O(log^2-ish) stabbing structures), scan linear in n.

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/core_set_topk.h"
#include "core/sampled_topk.h"
#include "core/scan_topk.h"
#include "enclosure/enclosure_structures.h"
#include "enclosure/rect.h"

namespace topk {
namespace {

using enclosure::EnclosureMax;
using enclosure::EnclosurePrioritized;
using enclosure::EnclosureProblem;
using enclosure::Point2;

constexpr size_t kK = 10;

Point2 Q(Rng* rng) { return {rng->NextDouble(), rng->NextDouble()}; }

void RegisterAll() {
  for (size_t n : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16}) {
    bench::RegisterLazy<CoreSetTopK<EnclosureProblem, EnclosurePrioritized>>(
        "Thm1/" + std::to_string(n), n,
        [](size_t m) {
          return CoreSetTopK<EnclosureProblem, EnclosurePrioritized>(
              bench::Rects(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<
        SampledTopK<EnclosureProblem, EnclosurePrioritized, EnclosureMax>>(
        "Thm2/" + std::to_string(n), n,
        [](size_t m) {
          return SampledTopK<EnclosureProblem, EnclosurePrioritized,
                             EnclosureMax>(bench::Rects(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
    bench::RegisterLazy<ScanTopK<EnclosureProblem>>(
        "Scan/" + std::to_string(n), n,
        [](size_t m) {
          return ScanTopK<EnclosureProblem>(bench::Rects(m, 5));
        },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.Query(Q(rng), kK));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
