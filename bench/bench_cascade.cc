// E16 — fractional cascading ablation: the paper's Section 5.2 claim
// that cascading drops the 2D stabbing-max query from O(log^2 n) (a
// predecessor search at every x-path node) to O(log n) (one search at
// the root, O(1) per node after).

#include <cstddef>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "enclosure/enclosure_max_fc.h"
#include "enclosure/enclosure_structures.h"
#include "enclosure/rect.h"

namespace topk {
namespace {

using enclosure::EnclosureMax;
using enclosure::EnclosureMaxCascading;
using enclosure::Point2;

Point2 Q(Rng* rng) { return {rng->NextDouble(), rng->NextDouble()}; }

void RegisterAll() {
  for (size_t n : {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14}) {
    bench::RegisterLazy<EnclosureMax>(
        "PlainLog2/" + std::to_string(n), n,
        [](size_t m) { return EnclosureMax(bench::Rects(m, 5)); },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.QueryMax(Q(rng)));
        });
    bench::RegisterLazy<EnclosureMaxCascading>(
        "CascadedLog/" + std::to_string(n), n,
        [](size_t m) { return EnclosureMaxCascading(bench::Rects(m, 5)); },
        [](const auto& s, Rng* rng) {
          benchmark::DoNotOptimize(s.QueryMax(Q(rng)));
        });
  }
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  topk::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
