// E5 — Theorem 2 updates: O(U_pri + U_max) expected per Insert/Erase,
// with each element living in O(1) sampled max structures in
// expectation. Dynamic instantiation: treap PST + augmented-treap range
// max. Expected shape: per-update cost grows ~logarithmically in n;
// interleaved queries stay exact (covered by tests) and fast.

#include <cstddef>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "core/sampled_topk.h"
#include "range1d/dyn_pst.h"
#include "range1d/dyn_range_max.h"
#include "range1d/point1d.h"

namespace topk {
namespace {

using range1d::DynamicPst;
using range1d::DynamicRangeMax;
using range1d::Point1D;
using range1d::Range1DProblem;

using DynTopK = SampledTopK<Range1DProblem, DynamicPst, DynamicRangeMax>;

void BM_InsertErase(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DynTopK topk(bench::Points1D(n, 3));
  Rng rng(17);
  uint64_t next_id = 10'000'000;
  for (auto _ : state) {
    Point1D p{rng.NextDouble(), rng.NextDouble() * 1e6, next_id++};
    topk.Insert(p);
    topk.Erase(p);  // keep n stable; one iteration = 1 insert + 1 erase
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_QueryAfterChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const DynTopK& topk =
      bench::Cached<DynTopK>(n, 5, [](size_t m, uint64_t seed) {
        DynTopK s(bench::Points1D(m / 2, seed));
        Rng rng(seed + 1);
        for (uint64_t i = 0; i < m / 2; ++i) {
          s.Insert({rng.NextDouble(), rng.NextDouble() * 1e6,
                    1'000'000 + i});
        }
        return s;
      });
  Rng rng(23);
  for (auto _ : state) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    benchmark::DoNotOptimize(topk.Query({a, b}, 10));
  }
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_InsertErase)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_QueryAfterChurn)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

}  // namespace
}  // namespace topk

BENCHMARK_MAIN();
