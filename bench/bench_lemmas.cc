// E6 — the probabilistic machinery, measured:
//   * Lemma 1: empirical probability that the rank-ceil(2kp) sample
//     element has ground rank in [k, 4k] (claimed >= 1 - delta).
//   * Lemma 3: empirical probability that a (1/K)-sample's max has
//     ground rank in (K, 4K] (claimed >= 0.09).
//   * Theorem 1 in practice: fallback frequency of CoreSetTopK at the
//     paper constants (expected ~0) and under aggressive ablation.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "core/core_set_topk.h"
#include "core/rank_sampling.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk {
namespace {

using range1d::Point1D;
using range1d::PrioritySearchTree;
using range1d::Range1DProblem;

size_t GroundRank(const std::vector<Point1D>& sorted_desc,
                  const Point1D& e) {
  for (size_t i = 0; i < sorted_desc.size(); ++i) {
    if (sorted_desc[i].id == e.id) return i + 1;
  }
  return 0;
}

void Lemma1Table() {
  std::printf("E6a: Lemma 1 empirical success rate (n=20000, 2000 trials)\n");
  std::printf("%8s %10s %10s %12s %12s\n", "k", "delta", "p", "claimed>=",
              "measured");
  Rng rng(1);
  const size_t n = 20000;
  std::vector<Point1D> data = bench::Points1D(n, 11);
  std::vector<Point1D> sorted = data;
  std::sort(sorted.begin(), sorted.end(), ByWeightDesc());
  for (double delta : {0.5, 0.2, 0.05}) {
    for (size_t k : {size_t{100}, size_t{1000}}) {
      const double p = 3.0 * std::log(3.0 / delta) / static_cast<double>(k);
      int success = 0;
      const int trials = 2000;
      for (int t = 0; t < trials; ++t) {
        std::vector<Point1D> sample = PSample(data, p, &rng);
        const size_t r = Lemma1SampleRank(k, p);
        if (static_cast<double>(sample.size()) <=
            2.0 * static_cast<double>(k) * p) {
          continue;
        }
        if (sample.size() < r) continue;
        std::nth_element(sample.begin(), sample.begin() + (r - 1),
                         sample.end(), ByWeightDesc());
        const size_t rank = GroundRank(sorted, sample[r - 1]);
        if (rank >= k && rank <= 4 * k) ++success;
      }
      std::printf("%8zu %10.2f %10.4f %12.2f %12.3f\n", k, delta, p,
                  1.0 - delta, static_cast<double>(success) / trials);
    }
  }
}

void Lemma3Table() {
  std::printf("\nE6b: Lemma 3 empirical success rate (n=20000, 4000 trials)\n");
  std::printf("%8s %12s %12s\n", "K", "claimed>=", "measured");
  Rng rng(2);
  const size_t n = 20000;
  std::vector<Point1D> data = bench::Points1D(n, 12);
  std::vector<Point1D> sorted = data;
  std::sort(sorted.begin(), sorted.end(), ByWeightDesc());
  for (double K : {16.0, 64.0, 256.0, 1024.0}) {
    int success = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      std::vector<Point1D> sample = PSample(data, 1.0 / K, &rng);
      if (sample.empty()) continue;
      const Point1D* mx = &sample[0];
      for (const Point1D& e : sample) {
        if (HeavierThan(e, *mx)) mx = &e;
      }
      const size_t rank = GroundRank(sorted, *mx);
      if (static_cast<double>(rank) > K && static_cast<double>(rank) <= 4 * K) {
        ++success;
      }
    }
    std::printf("%8.0f %12.2f %12.3f\n", K, 0.09,
                static_cast<double>(success) / trials);
  }
}

void FallbackTable() {
  std::printf(
      "\nE6c: Theorem 1 fallback rate over 2000 queries (n=100000)\n");
  std::printf("%16s %10s %12s %12s\n", "constant_scale", "f",
              "fallbacks", "rate");
  std::vector<Point1D> data = bench::Points1D(100000, 13);
  for (double scale : {1.0, 0.2, 0.05, 0.01}) {
    ReductionOptions opts;
    opts.constant_scale = scale;
    CoreSetTopK<Range1DProblem, PrioritySearchTree> s(data, opts);
    Rng rng(3);
    QueryStats stats;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      const size_t k = 1 + static_cast<size_t>(rng.Below(256));
      s.Query({a, b}, k, &stats);
    }
    std::printf("%16.2f %10zu %12llu %11.3f%%\n", scale, s.f(),
                static_cast<unsigned long long>(stats.fallbacks),
                100.0 * static_cast<double>(stats.fallbacks) / trials);
  }
  std::printf(
      "\nExpected shape: ~0%% fallbacks at scale 1.0 (paper constants);\n"
      "rates rise only under aggressive ablation, and answers stay exact\n"
      "either way (the fallback is the verified baseline reduction).\n");
}

}  // namespace
}  // namespace topk

int main() {
  topk::Lemma1Table();
  topk::Lemma3Table();
  topk::FallbackTable();
  return 0;
}
