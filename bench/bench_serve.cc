// E21 — the serving layer: batch throughput vs thread count for the
// Theorem 1 reduction, the binary-search baseline, and the hand-built
// direct top-k on 1D range reporting.
//
// Claims under test:
//   * QueryEngine results are exactly the single-threaded answers
//     (validated against brute force) at every thread count;
//   * batch throughput does not degrade as workers are added, and
//     scales with them when the machine has cores to give (this
//     container is often pinned to ONE core — the printed cpus value
//     says how much hardware parallelism was actually available);
//   * the per-query latency histogram (p50/p95/p99) matches the
//     single-query costs measured in E1/E2.
//
// Plain-text table + one metrics JSON line per engine configuration
// (consumed by tools/summarize_bench.py). Construction is never timed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/kselect.h"
#include "common/random.h"
#include "core/binary_search_topk.h"
#include "core/core_set_topk.h"
#include "range1d/direct_topk.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"
#include "serve/engine.h"
#include "serve/metrics.h"

namespace topk {
namespace {

using range1d::HeapSelectTopK;
using range1d::Point1D;
using range1d::Range1D;
using range1d::Range1DProblem;
using range1d::PrioritySearchTree;

constexpr size_t kN = 1 << 17;
constexpr size_t kBatch = 512;
constexpr size_t kTimedReps = 3;

struct Work {
  Range1D range;
  size_t k;
};

std::vector<Work> MakeWorkload() {
  Rng rng(0x5e21);
  std::vector<Work> work;
  work.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    double lo = rng.NextDouble(), hi = rng.NextDouble();
    if (lo > hi) std::swap(lo, hi);
    // Serving mix: mostly small k, every 16th request deep.
    work.push_back({{lo, hi}, (i % 16 == 0) ? size_t{1024} : size_t{16}});
  }
  return work;
}

template <typename S>
void RunStructure(const char* name, const S& structure,
                  const std::vector<Work>& work,
                  const std::vector<Point1D>& data) {
  using Engine = serve::QueryEngine<S>;
  std::vector<serve::Request<Range1D>> requests;
  requests.reserve(work.size());
  for (const Work& w : work) requests.push_back({w.range, w.k});

  // Single-threaded reference answers (and a brute-force spot check).
  std::vector<std::vector<uint64_t>> reference;
  reference.reserve(requests.size());
  for (const Work& w : work) {
    auto r = structure.Query(w.range, w.k);
    std::vector<uint64_t> ids;
    ids.reserve(r.size());
    for (const auto& e : r) ids.push_back(e.id);
    reference.push_back(std::move(ids));
  }
  bool exact = true;
  for (size_t i = 0; i < 32 && i < work.size(); ++i) {
    auto want = [&] {
      std::vector<Point1D> pool;
      for (const Point1D& p : data) {
        if (Range1DProblem::Matches(work[i].range, p)) pool.push_back(p);
      }
      SelectTopK(&pool, work[i].k);
      return pool;
    }();
    if (want.size() != reference[i].size()) exact = false;
    for (size_t j = 0; exact && j < want.size(); ++j) {
      if (want[j].id != reference[i][j]) exact = false;
    }
  }

  double qps1 = 0.0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    serve::Metrics metrics;
    Engine engine(&structure, {.num_threads = threads}, &metrics);

    engine.QueryBatch(requests);  // warm-up (pool spin-up, first faults)
    double best_s = 1e30;
    for (size_t rep = 0; rep < kTimedReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto results = engine.QueryBatch(requests);
      const auto t1 = std::chrono::steady_clock::now();
      best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0)
                                    .count());
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) exact = false;
        const auto& elems = results[i].elements;
        if (elems.size() != reference[i].size()) exact = false;
        for (size_t j = 0; exact && j < elems.size(); ++j) {
          if (elems[j].id != reference[i][j]) exact = false;
        }
      }
    }
    const double qps = static_cast<double>(kBatch) / best_s;
    if (threads == 1) qps1 = qps;
    const serve::MetricsSnapshot m = metrics.Snapshot();
    std::printf(
        "%-10s %7zu %10.2f %10.0f %8.2fx %9.1f %9.1f %9.1f %9.1f %6s\n",
        name, threads, best_s * 1e3, qps, qps / qps1,
        m.latency.PercentileNs(50.0) / 1e3,
        m.latency.PercentileNs(95.0) / 1e3,
        m.latency.PercentileNs(99.0) / 1e3,
        static_cast<double>(m.latency.max_ns()) / 1e3,
        exact ? "ok" : "FAIL");
    std::printf("metrics_json structure=%s threads=%zu %s\n", name,
                threads, serve::ToJson(m).c_str());
    if (!exact) std::exit(1);
  }
}

void Run() {
  std::printf(
      "E21: batch throughput vs threads (n=%zu, batch=%zu requests,\n"
      "k=16 with every 16th k=1024; hardware_concurrency=%u).\n"
      "Columns: batch wall ms (best of %zu), queries/s, speedup vs 1\n"
      "thread, latency p50/p95/p99/max us (all runs), exactness.\n",
      kN, kBatch, std::thread::hardware_concurrency(), kTimedReps);
  std::printf("%-10s %7s %10s %10s %9s %9s %9s %9s %9s %6s\n", "structure",
              "threads", "batch_ms", "qps", "speedup", "p50_us", "p95_us",
              "p99_us", "max_us", "exact");

  const std::vector<Point1D> data = bench::Points1D(kN, 21);
  const std::vector<Work> work = MakeWorkload();

  const CoreSetTopK<Range1DProblem, PrioritySearchTree> thm1(data);
  const BinarySearchTopK<Range1DProblem, PrioritySearchTree> baseline(data);
  const HeapSelectTopK direct(data);

  RunStructure("thm1", thm1, work, data);
  RunStructure("baseline", baseline, work, data);
  RunStructure("direct", direct, work, data);
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
