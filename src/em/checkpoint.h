// Checkpoint manifests: durable, atomically-switched descriptions of
// page-serialized build artifacts.
//
// A checkpoint consists of (a) content pages on the block device — a
// payload blob (e.g. the DurableStore's element image) and/or a meta
// blob (a structure's SaveMeta serialization: page-id tables, sizes) —
// and (b) one fixed-size manifest record naming those pages with their
// byte lengths and CRCs, the format version, and the WAL sequence
// number the checkpoint covers.
//
// Atomicity is dual-slot: the manifest storage holds two fixed-size
// slots, each [u32 crc][record]; Commit writes the slot NOT holding
// the current best generation and syncs, Load picks the valid slot
// with the highest generation. A crash mid-commit tears at most the
// slot being written, whose CRC then fails, so recovery falls back to
// the other slot — the previous checkpoint. Content pages are always
// FRESHLY allocated (never overwriting pages an older manifest points
// at) and synced before the manifest that references them is
// committed, so every manifest that passes its CRC references bytes
// that are durable in full. The WAL is truncated only after the
// manifest commit (em/durable_store.h sequences this), which is what
// makes a crash at ANY point of the protocol recoverable to either the
// old or the new checkpoint, never to neither.
//
// MetaWriter/MetaReader are the (host-endian) serializers structures
// use for SaveMeta/reopen; a reopened structure re-adopts its pages by
// id without rebuilding, which is the cheap-cold-start path bench_persist
// (E26) measures against a full rebuild.

#ifndef TOPK_EM_CHECKPOINT_H_
#define TOPK_EM_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/crc32.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/storage.h"

namespace topk::em {

// --- meta serialization ---------------------------------------------

class MetaWriter {
 public:
  void U64(uint64_t v) { AppendRaw(&v, 8); }
  void F64(double v) { AppendRaw(&v, 8); }
  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (const uint64_t x : v) U64(x);
  }
  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    for (const double x : v) F64(x);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  void AppendRaw(const void* p, size_t n) {
    const size_t at = bytes_.size();
    bytes_.resize(at + n);
    std::memcpy(bytes_.data() + at, p, n);
  }
  std::vector<uint8_t> bytes_;
};

// Bounds-checked cursor over a meta blob; running past the end is a
// programmer/corruption error and aborts (the blob's CRC was verified
// before a reader is constructed).
class MetaReader {
 public:
  MetaReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit MetaReader(const std::vector<uint8_t>& bytes)
      : MetaReader(bytes.data(), bytes.size()) {}

  uint64_t U64() {
    uint64_t v;
    TakeRaw(&v, 8);
    return v;
  }
  double F64() {
    double v;
    TakeRaw(&v, 8);
    return v;
  }
  std::vector<uint64_t> VecU64() {
    std::vector<uint64_t> v(U64());
    for (uint64_t& x : v) x = U64();
    return v;
  }
  std::vector<double> VecF64() {
    std::vector<double> v(U64());
    for (double& x : v) x = F64();
    return v;
  }
  bool exhausted() const { return at_ == len_; }

 private:
  void TakeRaw(void* p, size_t n) {
    TOPK_CHECK_LE(at_ + n, len_);
    std::memcpy(p, data_ + at_, n);
    at_ += n;
  }
  const uint8_t* data_;
  size_t len_;
  size_t at_ = 0;
};

// --- content blobs on device pages ----------------------------------

// Page range holding a blob, with its exact byte length and CRC. All
// zeros = absent.
struct BlobRef {
  uint64_t first_page = 0;
  uint64_t page_count = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t reserved = 0;
};

// Writes `bytes` into freshly allocated, consecutive device pages via
// TryWrite (no buffer pool: checkpoint I/O must not disturb pool
// residency or eviction order, and its failures must propagate, not
// abort). False on any write failure.
[[nodiscard]] inline bool WriteBlob(BlockDevice* device,
                                    const std::vector<uint8_t>& bytes,
                                    BlobRef* out) {
  const size_t page = device->page_size();
  const uint64_t pages =
      (bytes.size() + page - 1) / page;
  out->length = bytes.size();
  out->page_count = pages;
  out->crc = Crc32(bytes.data(), bytes.size());
  out->first_page = pages == 0 ? 0 : device->Allocate();
  std::vector<uint8_t> frame(page);
  for (uint64_t p = 0; p < pages; ++p) {
    if (p > 0) {
      const uint64_t id = device->Allocate();
      TOPK_CHECK_EQ(id, out->first_page + p);  // consecutive by contract
    }
    const size_t begin = static_cast<size_t>(p) * page;
    const size_t n = bytes.size() - begin < page ? bytes.size() - begin
                                                 : page;
    std::memcpy(frame.data(), bytes.data() + begin, n);
    std::memset(frame.data() + n, 0, page - n);
    if (device->TryWrite(out->first_page + p, frame.data()) !=
        IoResult::kOk) {
      return false;
    }
  }
  return true;
}

// Reads a blob back and verifies its CRC. False on a read failure or a
// checksum mismatch (the caller falls back to an older manifest).
[[nodiscard]] inline bool ReadBlob(BlockDevice* device, const BlobRef& ref,
                                   std::vector<uint8_t>* out) {
  const size_t page = device->page_size();
  out->clear();
  out->resize(static_cast<size_t>(ref.page_count) * page);
  for (uint64_t p = 0; p < ref.page_count; ++p) {
    if (ref.first_page + p >= device->num_pages()) return false;
    if (device->TryRead(ref.first_page + p,
                        out->data() + static_cast<size_t>(p) * page) !=
        IoResult::kOk) {
      return false;
    }
  }
  if (ref.length > out->size()) return false;
  out->resize(ref.length);
  return Crc32(out->data(), out->size()) == ref.crc;
}

// --- the manifest ---------------------------------------------------

inline constexpr uint64_t kManifestMagic = 0x544F504B43505431ULL;  // TOPKCPT1
inline constexpr uint32_t kManifestFormatVersion = 1;

struct ManifestRecord {
  uint64_t magic = kManifestMagic;
  uint32_t format_version = kManifestFormatVersion;
  uint32_t page_size = 0;
  uint64_t generation = 0;     // strictly increasing across commits
  uint64_t wal_seq = 0;        // updates with seq <= this are included
  uint64_t element_count = 0;  // payload elements (informational)
  BlobRef payload;             // e.g. the element image
  BlobRef meta;                // e.g. a structure's SaveMeta blob
};
static_assert(sizeof(ManifestRecord) == 104);  // packed: no padding to
                                               // silently enter the CRC

// Dual-slot manifest store over a (typically tiny, dedicated)
// ByteStorage.
class ManifestStore {
 public:
  static constexpr uint64_t kSlotBytes = 128;
  static_assert(sizeof(ManifestRecord) + 4 <= kSlotBytes);

  explicit ManifestStore(ByteStorage* storage) : storage_(storage) {
    TOPK_CHECK(storage_ != nullptr);
  }

  // Valid records, best (highest generation) first. Empty when no slot
  // validates (fresh storage, or both slots torn).
  std::vector<ManifestRecord> LoadAll() const {
    std::vector<ManifestRecord> out;
    for (int slot = 0; slot < 2; ++slot) {
      ManifestRecord rec;
      if (LoadSlot(slot, &rec)) out.push_back(rec);
    }
    if (out.size() == 2 && out[0].generation < out[1].generation) {
      std::swap(out[0], out[1]);
    }
    return out;
  }

  // Writes `rec` into the slot not holding the current best generation
  // and syncs. The record's generation must beat every valid slot.
  [[nodiscard]] bool Commit(const ManifestRecord& rec) {
    int target = 0;
    uint64_t best_gen = 0;
    for (int slot = 0; slot < 2; ++slot) {
      ManifestRecord cur;
      if (LoadSlot(slot, &cur) && cur.generation >= best_gen) {
        best_gen = cur.generation;
        target = 1 - slot;
      }
    }
    TOPK_CHECK_LT(best_gen, rec.generation);
    uint8_t slot_bytes[kSlotBytes] = {};
    const uint32_t crc =
        Crc32(reinterpret_cast<const uint8_t*>(&rec), sizeof(rec));
    std::memcpy(slot_bytes, &crc, 4);
    std::memcpy(slot_bytes + 4, &rec, sizeof(rec));
    if (storage_->Write(static_cast<uint64_t>(target) * kSlotBytes,
                        slot_bytes, kSlotBytes) != IoResult::kOk) {
      return false;
    }
    return storage_->Sync() == IoResult::kOk;
  }

 private:
  bool LoadSlot(int slot, ManifestRecord* out) const {
    const uint64_t off = static_cast<uint64_t>(slot) * kSlotBytes;
    if (off + kSlotBytes > storage_->size()) return false;
    uint8_t slot_bytes[kSlotBytes];
    storage_->Read(off, kSlotBytes, slot_bytes);
    uint32_t crc = 0;
    std::memcpy(&crc, slot_bytes, 4);
    std::memcpy(out, slot_bytes + 4, sizeof(*out));
    if (Crc32(slot_bytes + 4, sizeof(*out)) != crc) return false;
    return out->magic == kManifestMagic &&
           out->format_version == kManifestFormatVersion;
  }

  ByteStorage* storage_;
};

// --- whole-structure checkpointing ----------------------------------

// Saves a built structure (anything with SaveMeta(MetaWriter*)) as a
// checkpoint: meta blob into fresh pages, device synced, manifest
// committed. The caller must have flushed the structure's BufferPool
// (FlushAll) first — the manifest only promises durability for bytes
// that were ON the device when it synced, not for dirty frames still
// in the pool. `device_backing` is the device's ByteStorage when it is
// file-backed (synced before the manifest commit); pass nullptr for the
// in-memory simulator. False if any step failed; the previous
// checkpoint (if any) is then still intact.
template <typename S>
[[nodiscard]] bool SaveStructure(BlockDevice* device, const S& s,
                                 ManifestStore* manifests,
                                 ByteStorage* device_backing,
                                 uint64_t wal_seq = 0) {
  MetaWriter w;
  s.SaveMeta(&w);
  ManifestRecord rec;
  rec.page_size = static_cast<uint32_t>(device->page_size());
  rec.wal_seq = wal_seq;
  rec.element_count = s.size();
  const std::vector<ManifestRecord> prev = manifests->LoadAll();
  rec.generation = prev.empty() ? 1 : prev.front().generation + 1;
  if (!WriteBlob(device, w.bytes(), &rec.meta)) return false;
  if (device_backing != nullptr &&
      device_backing->Sync() != IoResult::kOk) {
    return false;
  }
  return manifests->Commit(rec);
}

// Reopens the newest structure checkpoint whose blobs verify: loads the
// meta blob and constructs S::LoadMeta(pool, &reader). False when no
// manifest validates end-to-end. `wal_seq_out` (optional) reports the
// WAL watermark the checkpoint covers.
template <typename S>
[[nodiscard]] bool LoadStructure(BufferPool* pool, ManifestStore* manifests,
                                 S* out, uint64_t* wal_seq_out = nullptr) {
  for (const ManifestRecord& rec : manifests->LoadAll()) {
    if (rec.page_size != pool->device()->page_size()) continue;
    std::vector<uint8_t> meta;
    if (!ReadBlob(pool->device(), rec.meta, &meta)) continue;
    MetaReader r(meta);
    *out = S::LoadMeta(pool, &r);
    if (wal_seq_out != nullptr) *wal_seq_out = rec.wal_seq;
    return true;
  }
  return false;
}

}  // namespace topk::em

#endif  // TOPK_EM_CHECKPOINT_H_
