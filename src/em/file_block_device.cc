#include "em/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace topk::em {

FileStorage::FileStorage(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  TOPK_CHECK(fd_ >= 0);
  struct stat st;
  TOPK_CHECK(::fstat(fd_, &st) == 0);
  size_ = static_cast<uint64_t>(st.st_size);
}

FileStorage::~FileStorage() {
  if (fd_ >= 0) ::close(fd_);
}

void FileStorage::Read(uint64_t offset, size_t len, uint8_t* out) const {
  TOPK_CHECK_LE(offset + len, size_);
  size_t done = 0;
  while (done < len) {
    const ssize_t got = ::pread(fd_, out + done, len - done,
                                static_cast<off_t>(offset + done));
    TOPK_CHECK(got > 0);  // short-but-positive reads are resumed; EOF or
                          // error inside the tracked size is fatal
    done += static_cast<size_t>(got);
  }
}

IoResult FileStorage::Write(uint64_t offset, const uint8_t* data,
                            size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t put = ::pwrite(fd_, data + done, len - done,
                                 static_cast<off_t>(offset + done));
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      // A short write already landed `done` bytes: a real torn write.
      // The caller's framing (WAL CRC, manifest slot CRC) is what makes
      // this recoverable; report the failure and let it re-drive.
      if (offset + done > size_) size_ = offset + done;
      return IoResult::kTransientFailure;
    }
    done += static_cast<size_t>(put);
  }
  if (offset + len > size_) size_ = offset + len;
  return IoResult::kOk;
}

IoResult FileStorage::Sync() {
  return ::fsync(fd_) == 0 ? IoResult::kOk : IoResult::kTransientFailure;
}

IoResult FileStorage::Truncate(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return IoResult::kTransientFailure;
  }
  size_ = new_size;
  return IoResult::kOk;
}

FileBlockDevice::FileBlockDevice(ByteStorage* storage, size_t page_size)
    : BlockDevice(page_size), storage_(storage) {
  TOPK_CHECK(storage_ != nullptr);
  // Floor, not exact: a crash can leave a torn final page (a partial
  // flush of an in-flight page write). The fragment is not a page;
  // whether any whole page is MEANINGFUL is the manifest's call (its
  // blob CRCs), not the device's.
  num_pages_ = storage_->size() / page_size;
}

uint64_t FileBlockDevice::Allocate() {
  const uint64_t id = num_pages_;
  // The extension is volatile bookkeeping until content lands: if the
  // Truncate is dropped (an injected crash point) the subsequent
  // TryWrite of the page reports the failure fallibly, so Allocate
  // itself keeps the simulator's infallible signature.
  (void)storage_->Truncate((id + 1) * page_size());
  ++num_pages_;
  return id;
}

IoResult FileBlockDevice::TryRead(uint64_t page_id, uint8_t* out) {
  TOPK_CHECK_LT(page_id, num_pages_);
  storage_->Read(page_id * page_size(), page_size(), out);
  ++mutable_counters()->reads;
  return IoResult::kOk;
}

IoResult FileBlockDevice::TryWrite(uint64_t page_id, const uint8_t* data) {
  TOPK_CHECK_LT(page_id, num_pages_);
  const IoResult r =
      storage_->Write(page_id * page_size(), data, page_size());
  if (r == IoResult::kOk) ++mutable_counters()->writes;
  return r;
}

}  // namespace topk::em
