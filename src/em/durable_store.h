// DurableStore: the durable dynamic update stream — WAL-committed
// mutations over a checkpointed element image.
//
// This is the persistence root for the dynamic serving path (PR 6's
// epoch rotation over SampledTopK): the process applies Insert/Erase
// only after the operation's WAL record is durable, periodically
// checkpoints the full element image into fresh device pages, and on
// restart Recover() = newest valid checkpoint + WAL tail replay.
//
// Durability contract (DESIGN.md "durability contract" has the prose
// version):
//   * Commit point: an Insert/Erase returns true only after its WAL
//     record is appended AND synced. A true return survives any crash.
//   * Crash atomicity: survivors are always a seq-PREFIX of the issued
//     operations — the WAL is append-only and page-cache flushing
//     preserves write order within one file, so a valid record can
//     never follow a torn one. Recovery therefore lands on
//     apply(ops[0..s]) for some s between the acked count and the
//     issued count; the single op in flight at the crash may or may
//     not survive, acknowledged ops always do.
//   * Checkpoint: element image into FRESH pages -> device sync ->
//     manifest commit (dual-slot) -> WAL reset. A crash between any
//     two steps recovers to the old checkpoint + full WAL, or to the
//     new checkpoint (+ a WAL whose records are all <= wal_seq and are
//     skipped by the replay's idempotence gate).
//   * Recovery is idempotent: a second Recover() over the same
//     storages reads the same pages (same I/O count), truncates
//     nothing, and reproduces the same state.
//
// Failure posture: storage failures (injected torn writes / short
// fsyncs, or a real fsync error) are returned as false, never aborted
// on — a false mutation is simply un-acknowledged, a false Checkpoint
// leaves the previous checkpoint authoritative. TOPK_CHECK remains for
// programmer errors (inserting a live id, erasing a dead one).

#ifndef TOPK_EM_DURABLE_STORE_H_
#define TOPK_EM_DURABLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "em/block_device.h"
#include "em/checkpoint.h"
#include "em/storage.h"
#include "em/wal.h"

namespace topk::em {

// Element must be trivially copyable and expose a unique `id` field
// (the library-wide (weight, id) total order makes ids unique by
// contract).
template <typename Element>
class DurableStore {
  static_assert(std::is_trivially_copyable_v<Element>);

 public:
  // The three durable artifacts: page store, log, manifest slots.
  // `device_backing` is the device's own ByteStorage when file-backed
  // (so checkpoints can sync data pages before the manifest commit);
  // nullptr for the in-memory simulator.
  DurableStore(BlockDevice* device, ByteStorage* device_backing,
               ByteStorage* wal_storage, ByteStorage* manifest_storage)
      : device_(device),
        device_backing_(device_backing),
        wal_(wal_storage),
        manifests_(manifest_storage) {
    TOPK_CHECK(device_ != nullptr);
  }

  struct RecoverStats {
    bool had_checkpoint = false;
    uint64_t checkpoint_generation = 0;
    uint64_t checkpoint_elements = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_truncated_bytes = 0;
  };

  // Loads the newest checkpoint whose payload verifies (falling back to
  // the older slot, then to empty) and replays the WAL tail past the
  // checkpoint's watermark, truncating any torn tail. Call exactly once
  // on a fresh instance, before any mutation.
  RecoverStats Recover() {
    TOPK_CHECK_EQ(applied_seq_, 0u);
    TOPK_CHECK(by_id_.empty());
    RecoverStats stats;
    for (const ManifestRecord& rec : manifests_.LoadAll()) {
      if (rec.page_size != device_->page_size()) continue;
      std::vector<uint8_t> payload;
      if (!ReadBlob(device_, rec.payload, &payload)) continue;
      TOPK_CHECK_EQ(payload.size(), rec.element_count * sizeof(Element));
      for (uint64_t i = 0; i < rec.element_count; ++i) {
        Element e;
        std::memcpy(&e, payload.data() + i * sizeof(Element),
                    sizeof(Element));
        TOPK_CHECK(by_id_.emplace(e.id, e).second);
      }
      applied_seq_ = rec.wal_seq;
      stats.had_checkpoint = true;
      stats.checkpoint_generation = rec.generation;
      stats.checkpoint_elements = rec.element_count;
      break;
    }
    const WriteAheadLog::ReplayStats rs = wal_.Replay(
        applied_seq_, [this](uint64_t seq, const uint8_t* p, uint32_t n) {
          ApplyRecord(seq, p, n);
        });
    stats.wal_records_replayed = rs.visited;
    stats.wal_truncated_bytes = rs.truncated_bytes;
    return stats;
  }

  // Mutations: acknowledged (true) only once durable. On false the
  // in-memory state is unchanged and the operation is NOT acknowledged;
  // after a crash it may surface as the single surviving in-flight op.
  [[nodiscard]] bool Insert(const Element& e) {
    TOPK_CHECK(by_id_.find(e.id) == by_id_.end());
    uint8_t payload[1 + sizeof(Element)];
    payload[0] = kOpInsert;
    std::memcpy(payload + 1, &e, sizeof(Element));
    return CommitAndApply(payload, sizeof(payload));
  }

  [[nodiscard]] bool Erase(uint64_t id) {
    TOPK_CHECK(by_id_.find(id) != by_id_.end());
    uint8_t payload[1 + sizeof(uint64_t)];
    payload[0] = kOpErase;
    std::memcpy(payload + 1, &id, sizeof(uint64_t));
    return CommitAndApply(payload, sizeof(payload));
  }

  // Writes the element image into fresh pages and commits a manifest
  // covering every applied operation, then empties the WAL. False
  // leaves the previous checkpoint authoritative (some fresh pages may
  // be dead weight — acceptable garbage after a crash).
  [[nodiscard]] bool Checkpoint() {
    std::vector<uint8_t> payload(by_id_.size() * sizeof(Element));
    size_t i = 0;
    for (const auto& [id, e] : by_id_) {
      std::memcpy(payload.data() + i * sizeof(Element), &e,
                  sizeof(Element));
      ++i;
    }
    ManifestRecord rec;
    rec.page_size = static_cast<uint32_t>(device_->page_size());
    rec.wal_seq = applied_seq_;
    rec.element_count = by_id_.size();
    const std::vector<ManifestRecord> prev = manifests_.LoadAll();
    rec.generation = prev.empty() ? 1 : prev.front().generation + 1;
    if (!WriteBlob(device_, payload, &rec.payload)) return false;
    if (device_backing_ != nullptr &&
        device_backing_->Sync() != IoResult::kOk) {
      return false;
    }
    if (!manifests_.Commit(rec)) return false;
    return wal_.Reset();
  }

  // Elements in ascending-id order (deterministic; the brute-force
  // comparison surface for the crash harness).
  std::vector<Element> Elements() const {
    std::vector<Element> out;
    out.reserve(by_id_.size());
    for (const auto& [id, e] : by_id_) out.push_back(e);
    return out;
  }

  size_t size() const { return by_id_.size(); }
  // Seq of the last applied (== last acknowledged, between crashes)
  // operation; after Recover, the recovery watermark.
  uint64_t applied_seq() const { return applied_seq_; }

  WriteAheadLog* wal() { return &wal_; }
  ManifestStore* manifests() { return &manifests_; }

 private:
  static constexpr uint8_t kOpInsert = 1;
  static constexpr uint8_t kOpErase = 2;

  [[nodiscard]] bool CommitAndApply(const uint8_t* payload, size_t len) {
    const uint64_t seq = applied_seq_ + 1;
    const uint64_t pre = wal_.bytes();
    if (!wal_.Append(seq, payload, static_cast<uint32_t>(len))) {
      return false;  // Append already rolled its bytes back
    }
    if (!wal_.Commit()) {
      // Un-synced record with a seq the NEXT attempt will reuse; roll
      // it back so a retried mutation appends cleanly (wal.h Rollback).
      wal_.Rollback(pre);
      return false;
    }
    ApplyRecord(seq, payload, static_cast<uint32_t>(len));
    return true;
  }

  void ApplyRecord(uint64_t seq, const uint8_t* payload, uint32_t len) {
    TOPK_CHECK_EQ(seq, applied_seq_ + 1);  // replay is gap-free by framing
    TOPK_CHECK(len >= 1);
    if (payload[0] == kOpInsert) {
      TOPK_CHECK_EQ(len, 1 + sizeof(Element));
      Element e;
      std::memcpy(&e, payload + 1, sizeof(Element));
      TOPK_CHECK(by_id_.emplace(e.id, e).second);
    } else {
      TOPK_CHECK_EQ(payload[0], kOpErase);
      TOPK_CHECK_EQ(len, 1 + sizeof(uint64_t));
      uint64_t id;
      std::memcpy(&id, payload + 1, sizeof(uint64_t));
      TOPK_CHECK_EQ(by_id_.erase(id), 1u);
    }
    applied_seq_ = seq;
  }

  BlockDevice* device_;
  ByteStorage* device_backing_;
  WriteAheadLog wal_;
  ManifestStore manifests_;
  std::map<uint64_t, Element> by_id_;
  uint64_t applied_seq_ = 0;
};

}  // namespace topk::em

#endif  // TOPK_EM_DURABLE_STORE_H_
