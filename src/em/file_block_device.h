// File-backed persistence: FileStorage (a ByteStorage over a POSIX
// file descriptor) and FileBlockDevice (a BlockDevice whose pages live
// in a ByteStorage instead of in-memory vectors).
//
// Substitution rule (the tentpole contract): FileBlockDevice sits
// behind the exact same virtual TryRead/TryWrite surface as the
// in-memory simulator and charges its counters identically — one read
// per successful page-in, one write per successful page-out, nothing
// for Allocate (a fresh page is paid for at first write-back, the
// Aggarwal–Vitter accounting the simulator pins in tests). A BufferPool
// or fault-decorator chain stacked on either backend therefore produces
// the SAME I/O counts for the same operation sequence; bench_persist
// (E26) measures that equivalence on a live workload, and the
// in-memory simulator stays the default backend everywhere I/O counts
// are asserted exactly.
//
// Page i occupies bytes [i * page_size, (i+1) * page_size) of the
// storage, so reopening a device over an existing storage recovers the
// page count from the byte size — that is the whole reopen path; which
// pages MEAN something is the checkpoint manifest's job
// (em/checkpoint.h).
//
// This header (with its .cc) is the sanctioned home for raw file I/O —
// tools/lint.py's `io` rule keeps open/pread/pwrite/fsync from leaking
// into other modules, so every durability decision stays behind
// ByteStorage.

#ifndef TOPK_EM_FILE_BLOCK_DEVICE_H_
#define TOPK_EM_FILE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "em/block_device.h"
#include "em/storage.h"

namespace topk::em {

// ByteStorage over a real file: pread/pwrite/fsync/ftruncate. Write and
// Truncate report kTransientFailure on a failed or short syscall; Sync
// reports fsync failure (after which nothing new is promised durable —
// callers treat the commit as not having happened). Read aborts on
// syscall failure: the durable read path has its fault story one level
// up (poisoned frames / FallibleTopK), not at the syscall.
class FileStorage final : public ByteStorage {
 public:
  // Opens (creating if absent) the file at `path` read-write.
  explicit FileStorage(const std::string& path);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  uint64_t size() const override { return size_; }
  void Read(uint64_t offset, size_t len, uint8_t* out) const override;
  [[nodiscard]] IoResult Write(uint64_t offset, const uint8_t* data,
                               size_t len) override;
  [[nodiscard]] IoResult Sync() override;
  [[nodiscard]] IoResult Truncate(uint64_t new_size) override;

 private:
  int fd_ = -1;
  uint64_t size_ = 0;  // tracked, not fstat'd per call
};

// BlockDevice whose page store is a ByteStorage. Over a FileStorage
// this is the real durable device; over a MemStorage it is the
// crash-simulable device the deterministic crash-point harness drives.
class FileBlockDevice final : public BlockDevice {
 public:
  // Adopts the storage's existing whole pages (reopen); a torn final
  // fragment — possible after a crash mid page-write — is ignored and
  // overwritten by the next Allocate. An empty storage starts at zero
  // pages.
  FileBlockDevice(ByteStorage* storage, size_t page_size);

  size_t num_pages() const override { return num_pages_; }

  // Extends the storage by one zero page via Truncate. Charges no I/O —
  // identical to the simulator's Allocate (the write is charged when
  // the page content is first flushed).
  uint64_t Allocate() override;

  [[nodiscard]] IoResult TryRead(uint64_t page_id, uint8_t* out) override;
  [[nodiscard]] IoResult TryWrite(uint64_t page_id,
                                  const uint8_t* data) override;

  // Durability barrier for the page store (checkpoint payload pages are
  // synced before the manifest that references them is committed).
  [[nodiscard]] IoResult Sync() { return storage_->Sync(); }

  ByteStorage* storage() const { return storage_; }

 private:
  ByteStorage* storage_;
  uint64_t num_pages_ = 0;
};

}  // namespace topk::em

#endif  // TOPK_EM_FILE_BLOCK_DEVICE_H_
