// LRU buffer pool: the EM model's M words of memory.
//
// Holds up to `capacity` page frames (M/B in the paper's terms). Pin
// returns a stable frame pointer; a page already resident costs no I/O
// (that is the whole point of M >= 2B). Unpinned dirty frames are
// written back on eviction. Eviction is strict LRU over unpinned
// frames.
//
// Pin discipline is enforced with TOPK_CHECK (misuse aborts): pages
// must be device-allocated, Unpin requires a matching Pin, and FlushAll
// requires every pin released. The pool is deliberately single-threaded
// mutable state — even read-only structure queries mutate the LRU list
// and hit/miss counters — which is why serve::QueryEngine rejects
// EM-backed structures at compile time (see src/serve/shareable.h).

#ifndef TOPK_EM_BUFFER_POOL_H_
#define TOPK_EM_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "em/block_device.h"

namespace topk::em {

class BufferPool {
 public:
  // capacity = number of frames (the model's M / B).
  BufferPool(BlockDevice* device, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }
  BlockDevice* device() const { return device_; }

  // Pins the page and returns its frame bytes (page_size long). The
  // frame stays valid until the matching Unpin. mark_dirty ensures
  // write-back on eviction.
  uint8_t* Pin(uint64_t page_id, bool mark_dirty = false);

  // Pins a freshly allocated page: installs a zeroed frame WITHOUT a
  // device read (writing a brand-new block costs one write at eviction,
  // not a read — the Aggarwal–Vitter accounting). Marks dirty. The page
  // must not already be resident (that would be Pin's job, and taking
  // this path instead silently drops the read charge).
  uint8_t* PinFresh(uint64_t page_id);

  // Releases one pin. The page must currently be pinned.
  void Unpin(uint64_t page_id);

  // Writes back every dirty frame (counts writes) and drops all clean
  // frames; all pins must have been released (checked before any
  // write-back happens).
  void FlushAll();

  // Cache-hit statistics (model-level observability, not I/Os).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): pin-ledger
  // consistency — frame count within capacity, pins non-negative, and
  // the LRU list holding exactly the unpinned frames with back-pointing
  // iterators. Aborts via TOPK_CHECK on violation.
  void AuditInvariants() const;

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint64_t page_id = 0;
    int pin_count = 0;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  void Evict();

  BlockDevice* device_;
  size_t capacity_;
  std::unordered_map<uint64_t, Frame> frames_;
  std::list<uint64_t> lru_;  // front = least recently used, unpinned only
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// RAII pin.
class PageRef {
 public:
  PageRef(BufferPool* pool, uint64_t page_id, bool dirty = false)
      : pool_(pool), page_id_(page_id),
        data_(pool->Pin(page_id, dirty)) {}
  ~PageRef() { pool_->Unpin(page_id_); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  uint8_t* data() const { return data_; }

 private:
  BufferPool* pool_;
  uint64_t page_id_;
  uint8_t* data_;
};

}  // namespace topk::em

#endif  // TOPK_EM_BUFFER_POOL_H_
