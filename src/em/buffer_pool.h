// LRU buffer pool: the EM model's M words of memory.
//
// Holds up to `capacity` page frames (M/B in the paper's terms). Pin
// returns a stable frame pointer; a page already resident costs no I/O
// (that is the whole point of M >= 2B). Unpinned dirty frames are
// written back on eviction. Eviction is strict LRU over unpinned
// frames.
//
// Pin discipline is enforced with TOPK_CHECK (misuse aborts): pages
// must be device-allocated, Unpin requires a matching Pin, and FlushAll
// requires every pin released. The pool is deliberately single-threaded
// mutable state — even read-only structure queries mutate the LRU list
// and hit/miss counters — which is why serve::QueryEngine rejects
// EM-backed structures at compile time (see src/serve/shareable.h).
//
// Graceful degradation (the fault-tolerance contract with src/fault/):
// when the device reports a transient READ failure that its retry layer
// could not absorb, a read-only Pin does NOT abort. The frame is
// zero-filled and marked poisoned, a sticky io_failed flag is raised,
// and the pin proceeds so the query runs to completion on bounded,
// well-formed (if meaningless) bytes. Poisoned frames are dropped the
// moment their last pin is released — they never enter the LRU, so a
// failed read cannot contaminate later queries through the cache. The
// query wrapper (em/fallible.h) consumes the sticky flag and flags the
// whole result as failed; a flagged result must be discarded, which is
// why serving poisoned bytes inside the failed query is sound.
// Failures with no sound degradation remain fatal by design: a
// read-for-write Pin (mark_dirty) cannot substitute zeroes for the real
// page without silent data loss, and eviction/FlushAll write-back has
// no redo log to fall back on — both abort via the device's infallible
// wrappers.

#ifndef TOPK_EM_BUFFER_POOL_H_
#define TOPK_EM_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "em/block_device.h"
#include "trace/tracer.h"

namespace topk::em {

class BufferPool {
 public:
  // capacity = number of frames (the model's M / B).
  BufferPool(BlockDevice* device, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }
  BlockDevice* device() const { return device_; }

  // Pins the page and returns its frame bytes (page_size long). The
  // frame stays valid until the matching Unpin. mark_dirty ensures
  // write-back on eviction. A device read failure poisons the frame
  // (see the header comment) unless mark_dirty is set, in which case it
  // aborts.
  uint8_t* Pin(uint64_t page_id, bool mark_dirty = false);

  // Pins a freshly allocated page: installs a zeroed frame WITHOUT a
  // device read (writing a brand-new block costs one write at eviction,
  // not a read — the Aggarwal–Vitter accounting). Marks dirty. The page
  // must not already be resident (that would be Pin's job, and taking
  // this path instead silently drops the read charge).
  uint8_t* PinFresh(uint64_t page_id);

  // Releases one pin. The page must currently be pinned. Dropping the
  // last pin of a poisoned frame discards it.
  void Unpin(uint64_t page_id);

  // Writes back every dirty frame (counts writes) and drops all clean
  // frames; all pins must have been released (checked before any
  // write-back happens).
  void FlushAll();

  // Cache-hit statistics (model-level observability, not I/Os).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Sticky failure state: raised by a poisoned Pin, lowered only by
  // ConsumeIoFailure. A query wrapper clears it before querying and
  // consumes it after, flagging the result if any pin in between failed.
  bool io_failed() const { return io_failed_; }
  bool ConsumeIoFailure() {
    const bool failed = io_failed_;
    io_failed_ = false;
    return failed;
  }
  // Total read failures that surfaced as poisoned frames.
  uint64_t io_failures() const { return io_failures_; }

  // Optional tracer: when set, every Pin/Evict/FlushAll attributes its
  // I/O to the innermost open span as em_cache_hit / em_read /
  // em_read_failed / em_write counter args. Null (the default) is the
  // zero-overhead path. The pool is single-threaded; the tracer must be
  // owned by the same thread.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): pin-ledger
  // consistency — frame count within capacity, pins non-negative, the
  // LRU list holding exactly the unpinned frames with back-pointing
  // iterators, and poisoned frames always pinned, never dirty, never in
  // the LRU. Aborts via TOPK_CHECK on violation.
  void AuditInvariants() const;

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint64_t page_id = 0;
    int pin_count = 0;
    bool dirty = false;
    bool poisoned = false;  // device read failed; dropped on last Unpin
    std::list<uint64_t>::iterator lru_it;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  void Evict();

  BlockDevice* device_;
  size_t capacity_;
  std::unordered_map<uint64_t, Frame> frames_;
  std::list<uint64_t> lru_;  // front = least recently used, unpinned only
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  bool io_failed_ = false;
  uint64_t io_failures_ = 0;
  trace::Tracer* tracer_ = nullptr;  // not owned; may be null
};

// RAII pin. PageRef::Fresh is the RAII form of PinFresh, with the same
// accounting contract (no read charge; the page must not be resident) —
// build paths use it instead of hand-rolled PinFresh/Unpin pairs so an
// early return can never leak a pin.
class PageRef {
 public:
  PageRef(BufferPool* pool, uint64_t page_id, bool mark_dirty = false)
      : pool_(pool), page_id_(page_id),
        data_(pool->Pin(page_id, mark_dirty)) {}
  ~PageRef() { pool_->Unpin(page_id_); }

  static PageRef Fresh(BufferPool* pool, uint64_t page_id) {
    return PageRef(pool, page_id, FreshTag{});
  }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  uint8_t* data() const { return data_; }

 private:
  struct FreshTag {};
  PageRef(BufferPool* pool, uint64_t page_id, FreshTag)
      : pool_(pool), page_id_(page_id), data_(pool->PinFresh(page_id)) {}

  BufferPool* pool_;
  uint64_t page_id_;
  uint8_t* data_;
};

}  // namespace topk::em

#endif  // TOPK_EM_BUFFER_POOL_H_
