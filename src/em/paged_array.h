// A fixed-size typed array laid out across device pages.
//
// T must be trivially copyable. Elements are packed page_size/sizeof(T)
// per page; access pins pages through the buffer pool, so sequential
// scans cost ceil(n / per_page) I/Os on a cold pool — the EM model's
// O(n/B).

#ifndef TOPK_EM_PAGED_ARRAY_H_
#define TOPK_EM_PAGED_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "em/buffer_pool.h"

namespace topk::em {

template <typename T>
class PagedArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  PagedArray() = default;

  PagedArray(BufferPool* pool, const std::vector<T>& data)
      : pool_(pool), size_(data.size()) {
    per_page_ = pool_->device()->page_size() / sizeof(T);
    TOPK_CHECK(per_page_ >= 1);
    const size_t num_pages = (size_ + per_page_ - 1) / per_page_;
    pages_.reserve(num_pages);
    for (size_t p = 0; p < num_pages; ++p) {
      const uint64_t page_id = pool_->device()->Allocate();
      pages_.push_back(page_id);
      PageRef ref = PageRef::Fresh(pool_, page_id);
      const size_t begin = p * per_page_;
      const size_t count = std::min(per_page_, size_ - begin);
      std::memcpy(ref.data(), data.data() + begin, count * sizeof(T));
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t per_page() const { return per_page_; }
  size_t num_pages() const { return pages_.size(); }

  // Reads element i (pins one page).
  T Get(size_t i) const {
    TOPK_DCHECK(i < size_);
    PageRef ref(pool_, pages_[i / per_page_]);
    T out;
    std::memcpy(&out, ref.data() + (i % per_page_) * sizeof(T), sizeof(T));
    return out;
  }

  // Page ids backing the array, in element order (the reopen surface:
  // a checkpoint meta blob records them so the array can be re-adopted
  // without rewriting a page).
  const std::vector<uint64_t>& pages() const { return pages_; }

  // Checkpoint meta (em/checkpoint.h): enough to re-adopt the same
  // device pages on reopen. Layout compatibility (page_size / sizeof(T))
  // is checked on load.
  template <typename MetaSink>
  void SaveMeta(MetaSink* w) const {
    w->U64(size_);
    w->U64(per_page_);
    w->VecU64(pages_);
  }
  template <typename MetaSource>
  static PagedArray LoadMeta(BufferPool* pool, MetaSource* r) {
    const size_t size = static_cast<size_t>(r->U64());
    const size_t per_page = static_cast<size_t>(r->U64());
    TOPK_CHECK_EQ(per_page, pool->device()->page_size() / sizeof(T));
    return PagedArray(pool, size, per_page, r->VecU64());
  }

  // Visits elements [begin, end) page at a time; visit(const T&) returns
  // false to stop.
  template <typename Visit>
  void ForRange(size_t begin, size_t end, Visit&& visit) const {
    if (end > size_) end = size_;
    while (begin < end) {
      const size_t page = begin / per_page_;
      const size_t page_end = std::min(end, (page + 1) * per_page_);
      PageRef ref(pool_, pages_[page]);
      for (size_t i = begin; i < page_end; ++i) {
        T item;
        std::memcpy(&item, ref.data() + (i % per_page_) * sizeof(T),
                    sizeof(T));
        if (!visit(item)) return;
      }
      begin = page_end;
    }
  }

 private:
  template <typename U>
  friend class PagedArrayBuilder;

  PagedArray(BufferPool* pool, size_t size, size_t per_page,
             std::vector<uint64_t> pages)
      : pool_(pool),
        size_(size),
        per_page_(per_page),
        pages_(std::move(pages)) {}

  BufferPool* pool_ = nullptr;
  size_t size_ = 0;
  size_t per_page_ = 1;
  std::vector<uint64_t> pages_;
};

// Streaming construction: append elements one at a time; full pages are
// written to the device immediately, so working memory stays O(B).
template <typename T>
class PagedArrayBuilder {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit PagedArrayBuilder(BufferPool* pool) : pool_(pool) {
    per_page_ = pool_->device()->page_size() / sizeof(T);
    TOPK_CHECK(per_page_ >= 1);
    buffer_.reserve(per_page_);
  }

  void Append(const T& item) {
    buffer_.push_back(item);
    ++size_;
    if (buffer_.size() == per_page_) Flush();
  }

  // Finalizes and returns the array; the builder is spent afterwards.
  PagedArray<T> Finish() && {
    if (!buffer_.empty()) Flush();
    return PagedArray<T>(pool_, size_, per_page_, std::move(pages_));
  }

 private:
  void Flush() {
    const uint64_t page_id = pool_->device()->Allocate();
    pages_.push_back(page_id);
    PageRef ref = PageRef::Fresh(pool_, page_id);
    std::memcpy(ref.data(), buffer_.data(), buffer_.size() * sizeof(T));
    buffer_.clear();
  }

  BufferPool* pool_;
  size_t per_page_ = 1;
  size_t size_ = 0;
  std::vector<T> buffer_;
  std::vector<uint64_t> pages_;
};

}  // namespace topk::em

#endif  // TOPK_EM_PAGED_ARRAY_H_
