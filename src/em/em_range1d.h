// External-memory structures for 1D range reporting, measured in real
// page transfers through BlockDevice/BufferPool.
//
//   * EmBPlusTree — bulk-loaded static B+-tree on x with a max-weight
//     augmentation per child pointer. Range reporting costs
//     O(log_B n + t/B) I/Os; range max costs O(log_B n). Serves as the
//     EM max structure (Theorem 2's Q_max = O(log_B n)).
//   * EmRange1dPrioritized — the paper's Section 5.5 construction
//     adapted to 1D: a shallow fanout-f tree on the *weights*
//     (f = sqrt(n / B) chunks of weight-contiguous points), each chunk
//     carrying an EmBPlusTree on x. A prioritized query decomposes
//     {w >= tau} into full chunks (x-range queries) plus one partial
//     chunk (a paged scan). Q_pri(n) = O(sqrt(n/B) * log_B n + t/B)
//     I/Os — deliberately polynomial, which is precisely the regime
//     where Theorem 1 promises Q_top = O(Q_pri) with *no* blow-up
//     (second remark under Theorem 1); experiment E12 validates that.

#ifndef TOPK_EM_EM_RANGE1D_H_
#define TOPK_EM_EM_RANGE1D_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "em/checkpoint.h"
#include "em/paged_array.h"
#include "range1d/point1d.h"

namespace topk::em {

// Static B+-tree over points sorted by x. Level 0 = leaf pages of
// points; level L+1 has one Entry per level-L page: the page's first x
// plus its heaviest element.
class EmBPlusTree {
 public:
  using Element = range1d::Point1D;
  using Predicate = range1d::Range1D;
  // Queries page through a single-threaded BufferPool; not shareable
  // across threads (see serve/shareable.h).
  static constexpr bool kExternalMemory = true;

  EmBPlusTree() = default;

  EmBPlusTree(BufferPool* pool, std::vector<Element> data) : pool_(pool) {
    std::sort(data.begin(), data.end(),
              [](const Element& a, const Element& b) {
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
    n_ = data.size();
    leaves_ = PagedArray<Element>(pool_, data);
    BuildLevels();
  }

  // Bulk load from an already x-sorted paged array (e.g. the output of
  // em::ExternalSort) — the leaves are adopted without another copy and
  // the summary levels are built with one counted scan.
  EmBPlusTree(BufferPool* pool, PagedArray<Element> sorted_by_x)
      : pool_(pool), n_(sorted_by_x.size()),
        leaves_(std::move(sorted_by_x)) {
    BuildLevels();
  }

  // Reopen from a checkpoint meta blob (em/checkpoint.h): re-adopts the
  // leaf and summary pages by id — no sort, no summary rebuild, zero
  // write I/Os. The device must be the one the checkpoint was saved on
  // (the manifest's blob CRC vouches for the meta; page contents are
  // vouched for by the checkpoint protocol's sync-before-commit order).
  // (A named factory, not a ctor overload: a braced `{}` data argument
  // must keep meaning "empty input", never a null reader.)
  static EmBPlusTree LoadMeta(BufferPool* pool, MetaReader* r) {
    EmBPlusTree t;
    t.pool_ = pool;
    t.n_ = static_cast<size_t>(r->U64());
    t.leaves_ = PagedArray<Element>::LoadMeta(pool, r);
    const uint64_t num_levels = r->U64();
    t.levels_.reserve(num_levels);
    for (uint64_t i = 0; i < num_levels; ++i) {
      t.levels_.push_back(PagedArray<Entry>::LoadMeta(pool, r));
    }
    TOPK_CHECK_EQ(t.leaves_.size(), t.n_);
    return t;
  }

  void SaveMeta(MetaWriter* w) const {
    w->U64(n_);
    leaves_.SaveMeta(w);
    w->U64(levels_.size());
    for (const PagedArray<Entry>& level : levels_) level.SaveMeta(w);
  }

  size_t size() const { return n_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    const double b = static_cast<double>(block_size < 2 ? 2 : block_size);
    if (n < 2) return 1.0;
    return std::max(1.0, std::log2(static_cast<double>(n)) / std::log2(b));
  }

  // All elements with x in [q.lo, q.hi]: O(log_B n + t/B) I/Os.
  template <typename Emit>
  void RangeReport(const Predicate& q, Emit&& emit,
                   QueryStats* stats = nullptr) const {
    if (n_ == 0 || q.lo > q.hi) return;
    const size_t start = LowerBound(q.lo);
    AddNodes(stats, levels_.size() + 1);
    bool stop = false;
    leaves_.ForRange(start, n_, [&](const Element& e) {
      if (e.x > q.hi) {
        stop = true;
        return false;
      }
      AddNodes(stats, 1);
      return emit(e);
    });
    (void)stop;
  }

  // Heaviest element with x in [q.lo, q.hi]: O(log_B n) I/Os via the
  // per-child max augmentation.
  std::optional<Element> QueryMax(const Predicate& q,
                                  QueryStats* stats = nullptr) const {
    if (n_ == 0 || q.lo > q.hi) return std::nullopt;
    // Canonical decomposition over leaf-page indexes: pages fully inside
    // (first.x >= lo and next page's first.x <= hi... certified via the
    // index range [first_full, last_full)) use their cached max; the two
    // boundary pages are scanned.
    const size_t start = LowerBound(q.lo);
    const size_t end = UpperBound(q.hi);  // exclusive
    if (start >= end) return std::nullopt;
    AddNodes(stats, 2 * levels_.size() + 2);
    std::optional<Element> best;
    auto consider = [&best](const Element& e) {
      if (!best.has_value() || HeavierThan(e, *best)) best = e;
    };
    const size_t per = leaves_.per_page();
    const size_t first_page = start / per;
    const size_t last_page = (end - 1) / per;
    if (first_page == last_page) {
      leaves_.ForRange(start, end, [&](const Element& e) {
        consider(e);
        return true;
      });
      return best;
    }
    // Boundary pages scanned element-wise.
    leaves_.ForRange(start, (first_page + 1) * per, [&](const Element& e) {
      consider(e);
      return true;
    });
    leaves_.ForRange(last_page * per, end, [&](const Element& e) {
      consider(e);
      return true;
    });
    // Interior pages: use level-0 entries' cached maxima, recursing up
    // through coarser levels so the I/O count stays O(log_B n).
    MaxOverPages(first_page + 1, last_page, &best, stats);
    return best;
  }

  // Index of the first element with x >= v (O(log_B n) I/Os).
  size_t LowerBound(double v) const { return Bound(v, /*strict=*/false); }
  // Index one past the last element with x <= v.
  size_t UpperBound(double v) const { return Bound(v, /*strict=*/true); }

  template <typename Emit>
  void ScanAll(Emit&& emit) const {
    leaves_.ForRange(0, n_, emit);
  }

 private:
  struct Entry {
    double min_x;
    Element max_elem;
  };

  void BuildLevels() {
    std::vector<Entry> entries = SummarizeLeaves();
    while (!entries.empty()) {
      levels_.emplace_back(pool_, entries);
      if (entries.size() <= levels_.back().per_page()) break;
      entries = SummarizeEntries(entries, levels_.back().per_page());
    }
  }

  // One counted pass over the leaf pages.
  std::vector<Entry> SummarizeLeaves() {
    std::vector<Entry> entries;
    const size_t per = leaves_.per_page();
    size_t i = 0;
    leaves_.ForRange(0, n_, [&](const Element& e) {
      if (i % per == 0) {
        entries.push_back(Entry{e.x, e});
      } else if (HeavierThan(e, entries.back().max_elem)) {
        entries.back().max_elem = e;
      }
      ++i;
      return true;
    });
    return entries;
  }

  static std::vector<Entry> SummarizeEntries(const std::vector<Entry>& in,
                                             size_t per) {
    std::vector<Entry> out;
    for (size_t begin = 0; begin < in.size(); begin += per) {
      const size_t end = std::min(in.size(), begin + per);
      Entry e = in[begin];
      for (size_t i = begin + 1; i < end; ++i) {
        if (HeavierThan(in[i].max_elem, e.max_elem)) e.max_elem = in[i].max_elem;
      }
      out.push_back(e);
    }
    return out;
  }

  // Binary search over leaf elements. Descends the entry levels (one
  // page per level), then finishes inside the leaf page.
  size_t Bound(double v, bool strict) const {
    if (n_ == 0) return 0;
    // Range of candidate level-(L) entries narrows level by level.
    size_t lo = 0, hi = levels_.empty() ? 1 : levels_.back().size();
    for (size_t li = levels_.size(); li-- > 0;) {
      const PagedArray<Entry>& level = levels_[li];
      // [lo, hi) indexes entries at this level; find the last entry with
      // min_x <= v (or < v when strict is false? — see below), then
      // expand to the next finer level.
      size_t child = lo;
      level.ForRange(lo, hi, [&](const Entry& e) {
        const bool before = strict ? (e.min_x <= v) : (e.min_x < v);
        if (before) {
          ++child;
          return true;
        }
        return false;
      });
      if (child > lo) --child;  // last candidate entry
      if (li == 0) {
        // child = leaf page index.
        const size_t per = leaves_.per_page();
        const size_t begin = child * per;
        const size_t end = std::min(n_, begin + per);
        size_t idx = begin;
        leaves_.ForRange(begin, end, [&](const Element& e) {
          const bool before = strict ? (e.x <= v) : (e.x < v);
          if (before) {
            ++idx;
            return true;
          }
          return false;
        });
        return idx;
      }
      const size_t per_below = (li >= 2)
                                   ? levels_[li - 1].per_page()
                                   : levels_[0].per_page();
      lo = child * per_below;
      hi = std::min(levels_[li - 1].size(), lo + per_below);
      (void)per_below;
    }
    TOPK_CHECK(false);
    return 0;
  }

  // Max over leaf pages [page_lo, page_hi) using cached entry maxima.
  // Classic canonical climb: at each level take the unaligned head and
  // tail entries directly (each within one page => O(1) I/Os per level)
  // and pass the aligned middle up to the next coarser level, so the
  // total is O(log_B n) I/Os regardless of the range width.
  void MaxOverPages(size_t page_lo, size_t page_hi,
                    std::optional<Element>* best, QueryStats* stats) const {
    size_t lo = page_lo, hi = page_hi;
    for (size_t k = 0; k < levels_.size() && lo < hi; ++k) {
      AddNodes(stats, 2);
      if (k + 1 >= levels_.size()) {
        ConsiderEntries(k, lo, hi, best);  // top level: single page
        return;
      }
      const size_t g = levels_[k].per_page();  // entries per group above
      const size_t head_end = std::min(hi, ((lo + g - 1) / g) * g);
      ConsiderEntries(k, lo, head_end, best);
      const size_t tail_begin = std::max(head_end, (hi / g) * g);
      ConsiderEntries(k, tail_begin, hi, best);
      lo = (head_end + g - 1) / g;
      hi = tail_begin / g;
    }
  }

  void ConsiderEntries(size_t level, size_t a, size_t b,
                       std::optional<Element>* best) const {
    if (a >= b) return;
    levels_[level].ForRange(a, b, [&](const Entry& e) {
      if (!best->has_value() || HeavierThan(e.max_elem, **best)) {
        *best = e.max_elem;
      }
      return true;
    });
  }

  BufferPool* pool_ = nullptr;
  size_t n_ = 0;
  PagedArray<Element> leaves_;
  std::vector<PagedArray<Entry>> levels_;  // [0] = leaf summaries
};

// Section 5.5-style prioritized structure: fanout-f weight tree of
// x-B+-trees.
class EmRange1dPrioritized {
 public:
  using Element = range1d::Point1D;
  using Predicate = range1d::Range1D;
  // Queries page through a single-threaded BufferPool; not shareable
  // across threads (see serve/shareable.h).
  static constexpr bool kExternalMemory = true;

  EmRange1dPrioritized() = default;

  EmRange1dPrioritized(BufferPool* pool, std::vector<Element> data)
      : pool_(pool), n_(data.size()) {
    std::sort(data.begin(), data.end(), ByWeightDesc());
    by_weight_ = PagedArray<Element>(pool_, data);
    const size_t per = by_weight_.per_page();
    // Chunk size ~ sqrt(n * per): #chunks = sqrt(n / per) = f.
    chunk_size_ = std::max<size_t>(
        per, static_cast<size_t>(std::ceil(std::sqrt(
                 static_cast<double>(n_) * static_cast<double>(per)))));
    for (size_t begin = 0; begin < n_; begin += chunk_size_) {
      const size_t end = std::min(n_, begin + chunk_size_);
      chunk_min_weight_.push_back(data[end - 1].weight);
      chunks_.emplace_back(pool_, std::vector<Element>(data.begin() + begin,
                                                       data.begin() + end));
    }
  }

  // Reopen from a checkpoint meta blob; see EmBPlusTree::LoadMeta.
  static EmRange1dPrioritized LoadMeta(BufferPool* pool, MetaReader* r) {
    EmRange1dPrioritized t;
    t.pool_ = pool;
    t.n_ = static_cast<size_t>(r->U64());
    t.chunk_size_ = static_cast<size_t>(r->U64());
    t.by_weight_ = PagedArray<Element>::LoadMeta(pool, r);
    t.chunk_min_weight_ = r->VecF64();
    const uint64_t num_chunks = r->U64();
    TOPK_CHECK_EQ(num_chunks, t.chunk_min_weight_.size());
    t.chunks_.reserve(num_chunks);
    for (uint64_t i = 0; i < num_chunks; ++i) {
      t.chunks_.push_back(EmBPlusTree::LoadMeta(pool, r));
    }
    return t;
  }

  void SaveMeta(MetaWriter* w) const {
    w->U64(n_);
    w->U64(chunk_size_);
    by_weight_.SaveMeta(w);
    w->VecF64(chunk_min_weight_);
    w->U64(chunks_.size());
    for (const EmBPlusTree& chunk : chunks_) chunk.SaveMeta(w);
  }

  size_t size() const { return n_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    const double b = static_cast<double>(block_size < 2 ? 2 : block_size);
    if (n < 2) return 1.0;
    const double f = std::sqrt(static_cast<double>(n) / b);
    return std::max(1.0, f * std::max(1.0, std::log2(static_cast<double>(n)) /
                                               std::log2(b)));
  }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    if (n_ == 0) return;
    // Chunks are weight-contiguous and descending: chunk i holds ranks
    // [i*c, (i+1)*c). Chunks with min weight >= tau are fully inside the
    // prefix; the first chunk with min weight < tau is partial; later
    // chunks are disjoint from the prefix only below the partial chunk's
    // boundary — the paged scan of the partial chunk stops at the first
    // weight < tau (weight-descending layout).
    size_t i = 0;
    bool keep_going = true;
    for (; i < chunks_.size() && chunk_min_weight_[i] >= tau; ++i) {
      chunks_[i].RangeReport(
          q,
          [&](const Element& e) { return keep_going = emit(e); },
          stats);
      if (!keep_going) return;
    }
    if (i < chunks_.size()) {
      // Partial chunk: scan its weight-descending pages, filter by x.
      const size_t begin = i * chunk_size_;
      const size_t end = std::min(n_, begin + chunk_size_);
      by_weight_.ForRange(begin, end, [&](const Element& e) {
        AddNodes(stats, 1);
        if (!MeetsThreshold(e, tau)) return false;  // prefix exhausted
        if (range1d::Range1DProblem::Matches(q, e)) {
          return keep_going = emit(e);
        }
        return true;
      });
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  size_t n_ = 0;
  size_t chunk_size_ = 1;
  PagedArray<Element> by_weight_;       // all points, weight-descending
  std::vector<double> chunk_min_weight_;
  std::vector<EmBPlusTree> chunks_;     // per chunk, indexed by x
};

// The EM max structure is the augmented B+-tree with the Problem-facing
// QueryMax signature it already has; alias for readability.
using EmRange1dMax = EmBPlusTree;

}  // namespace topk::em

#endif  // TOPK_EM_EM_RANGE1D_H_
