#include "em/block_device.h"

#include <cstring>

#include "common/check.h"

namespace topk::em {

BlockDevice::BlockDevice(size_t page_size) : page_size_(page_size) {
  TOPK_CHECK(page_size_ > 0);
}

uint64_t BlockDevice::Allocate() {
  pages_.emplace_back(page_size_, 0);
  return pages_.size() - 1;
}

IoResult BlockDevice::TryRead(uint64_t page_id, uint8_t* out) {
  TOPK_CHECK(page_id < pages_.size());
  std::memcpy(out, pages_[page_id].data(), page_size_);
  ++counters_.reads;
  return IoResult::kOk;
}

IoResult BlockDevice::TryWrite(uint64_t page_id, const uint8_t* data) {
  TOPK_CHECK(page_id < pages_.size());
  std::memcpy(pages_[page_id].data(), data, page_size_);
  ++counters_.writes;
  return IoResult::kOk;
}

void BlockDevice::Read(uint64_t page_id, uint8_t* out) {
  TOPK_CHECK(TryRead(page_id, out) == IoResult::kOk);
}

void BlockDevice::Write(uint64_t page_id, const uint8_t* data) {
  TOPK_CHECK(TryWrite(page_id, data) == IoResult::kOk);
}

}  // namespace topk::em
