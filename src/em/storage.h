// ByteStorage: the durable flat byte sequence under the persistence
// layer.
//
// Everything the durability subsystem writes — the write-ahead log
// (em/wal.h), the checkpoint manifest slots (em/checkpoint.h), and the
// page store behind FileBlockDevice (em/file_block_device.h) — goes
// through this interface, so the whole commit protocol can run over a
// real file (FileStorage, POSIX pread/pwrite/fsync) or over MemStorage,
// an in-memory model of a crashing disk.
//
// The durability model (what MemStorage simulates and FileStorage
// inherits from POSIX semantics): a Write lands in the volatile page
// cache and is NOT durable until a subsequent Sync succeeds. On a
// crash, every synced byte survives; un-synced writes survive as an
// arbitrary *prefix* of the writes issued since the last Sync, and the
// first dropped write may itself be torn (a byte prefix). Reads always
// observe the process's own writes (the page cache), durable or not.
// Write/Sync/Truncate report failure via IoResult so fault decorators
// (fault/faulty_storage.h, fault/crash_point.h) can interpose torn
// writes, short fsyncs, and crash points; reads are infallible here —
// read-side faults are injected one level up, at the BlockDevice
// (fault/faulty_block_device.h).

#ifndef TOPK_EM_STORAGE_H_
#define TOPK_EM_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "em/block_device.h"

namespace topk::em {

class ByteStorage {
 public:
  virtual ~ByteStorage() = default;

  // Current size in bytes as seen by the process (includes un-synced
  // extensions).
  virtual uint64_t size() const = 0;

  // Copies [offset, offset + len) into `out`. The range must be within
  // size(); sees the process's own un-synced writes.
  virtual void Read(uint64_t offset, size_t len, uint8_t* out) const = 0;

  // Writes len bytes at offset, extending the storage if needed. The
  // bytes are volatile until the next successful Sync.
  [[nodiscard]] virtual IoResult Write(uint64_t offset, const uint8_t* data,
                                       size_t len) = 0;

  // Makes every preceding write durable. The commit point of every
  // protocol above this interface.
  [[nodiscard]] virtual IoResult Sync() = 0;

  // Grows (zero-filling) or shrinks the storage to new_size. Like a
  // write, volatile until synced.
  [[nodiscard]] virtual IoResult Truncate(uint64_t new_size) = 0;
};

// In-memory ByteStorage that models the volatile/durable split: it
// keeps the last synced image plus a journal of the operations issued
// since, so a test can crash it at any instant and choose exactly how
// much of the un-synced tail the simulated page cache had flushed.
// Never fails on its own; fault decorators supply the failures.
class MemStorage final : public ByteStorage {
 public:
  MemStorage() = default;

  uint64_t size() const override { return data_.size(); }

  void Read(uint64_t offset, size_t len, uint8_t* out) const override {
    TOPK_CHECK_LE(offset + len, data_.size());
    std::memcpy(out, data_.data() + offset, len);
  }

  [[nodiscard]] IoResult Write(uint64_t offset, const uint8_t* data,
                               size_t len) override {
    pending_.push_back(Op{Op::kWrite, offset,
                          std::vector<uint8_t>(data, data + len), 0});
    Apply(&data_, pending_.back());
    return IoResult::kOk;
  }

  [[nodiscard]] IoResult Sync() override {
    durable_ = data_;
    pending_.clear();
    return IoResult::kOk;
  }

  [[nodiscard]] IoResult Truncate(uint64_t new_size) override {
    pending_.push_back(Op{Op::kTruncate, 0, {}, new_size});
    Apply(&data_, pending_.back());
    return IoResult::kOk;
  }

  // --- crash simulation ---------------------------------------------

  // Number of operations issued since the last successful Sync.
  size_t pending_ops() const { return pending_.size(); }

  // Crashes the process: the durable image becomes the last synced
  // state plus the first `flushed_ops` pending operations, plus — when
  // torn_bytes > 0 and a further pending WRITE exists — the first
  // torn_bytes bytes of that next write (a torn write; a pending
  // truncate is atomic and is applied iff torn_bytes > 0). The volatile
  // view is discarded and replaced by the durable image, ready for a
  // recovery pass over the same object.
  void SimulateCrash(size_t flushed_ops, size_t torn_bytes = 0) {
    TOPK_CHECK_LE(flushed_ops, pending_.size());
    data_ = durable_;
    for (size_t i = 0; i < flushed_ops; ++i) Apply(&data_, pending_[i]);
    if (torn_bytes > 0 && flushed_ops < pending_.size()) {
      Op torn = pending_[flushed_ops];
      if (torn.kind == Op::kWrite && torn_bytes < torn.bytes.size()) {
        torn.bytes.resize(torn_bytes);
      }
      Apply(&data_, torn);
    }
    durable_ = data_;
    pending_.clear();
  }

  // The synced image, for byte-level assertions.
  const std::vector<uint8_t>& durable_bytes() const { return durable_; }

 private:
  struct Op {
    enum Kind : uint8_t { kWrite, kTruncate };
    Kind kind;
    uint64_t offset;
    std::vector<uint8_t> bytes;  // kWrite
    uint64_t new_size;           // kTruncate
  };

  static void Apply(std::vector<uint8_t>* image, const Op& op) {
    if (op.kind == Op::kTruncate) {
      image->resize(op.new_size, 0);
      return;
    }
    if (op.offset + op.bytes.size() > image->size()) {
      image->resize(op.offset + op.bytes.size(), 0);
    }
    std::memcpy(image->data() + op.offset, op.bytes.data(),
                op.bytes.size());
  }

  std::vector<uint8_t> data_;     // volatile view (what Read serves)
  std::vector<uint8_t> durable_;  // last synced image
  std::vector<Op> pending_;       // issued since the last Sync
};

}  // namespace topk::em

#endif  // TOPK_EM_STORAGE_H_
