// The external-memory model's disk (Aggarwal–Vitter [8]).
//
// A BlockDevice is an array of fixed-size pages with read/write
// counters. The paper measures algorithms purely by the number of page
// transfers; the device is therefore an in-memory simulator whose
// counters ARE the experiment (exact, deterministic I/O counts — see
// DESIGN.md's substitution table). Pages are raw byte buffers; typed
// access goes through PagedVector / the EM structures.

#ifndef TOPK_EM_BLOCK_DEVICE_H_
#define TOPK_EM_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topk::em {

struct IoCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t total() const { return reads + writes; }
  void Reset() { *this = IoCounters(); }
};

class BlockDevice {
 public:
  // page_size in bytes. The paper's B (words) corresponds to
  // page_size / 8 with 8-byte words.
  explicit BlockDevice(size_t page_size);

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }

  // Allocates a zeroed page and returns its id.
  uint64_t Allocate();

  // Copies a page into `out` (page_size bytes); counts one read.
  void Read(uint64_t page_id, uint8_t* out);

  // Copies `data` (page_size bytes) into the page; counts one write.
  void Write(uint64_t page_id, const uint8_t* data);

  const IoCounters& counters() const { return counters_; }
  IoCounters* mutable_counters() { return &counters_; }
  void ResetCounters() { counters_.Reset(); }

 private:
  size_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
  IoCounters counters_;
};

}  // namespace topk::em

#endif  // TOPK_EM_BLOCK_DEVICE_H_
