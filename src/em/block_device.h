// The external-memory model's disk (Aggarwal–Vitter [8]).
//
// A BlockDevice is an array of fixed-size pages with read/write
// counters. The paper measures algorithms purely by the number of page
// transfers; the device is therefore an in-memory simulator whose
// counters ARE the experiment (exact, deterministic I/O counts — see
// DESIGN.md's substitution table). Pages are raw byte buffers; typed
// access goes through PagedVector / the EM structures.
//
// Fallibility contract (src/fault/ decorators plug in here): the
// primitive transfers are the virtual TryRead/TryWrite, which may
// report a transient failure WITHOUT transferring data; reads and
// writes are counted only when they succeed, so the model's I/O counts
// stay exact under injected faults. The non-virtual Read/Write wrappers
// are the legacy infallible surface — any failure that reaches them is
// a programmer error or an unhandled giveup and aborts. The in-memory
// device itself never fails; failures come from decorators
// (fault::FaultyBlockDevice) and are absorbed by bounded retry
// (fault::RetryingBlockDevice) or surface as a flagged degraded result
// (BufferPool's poisoned-frame path, em/fallible.h).

#ifndef TOPK_EM_BLOCK_DEVICE_H_
#define TOPK_EM_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topk::em {

// Outcome of one primitive page transfer. Transient failures model
// recoverable faults (a bad sector read, a dropped request): the
// operation may be retried and can succeed later.
enum class IoResult : uint8_t {
  kOk = 0,
  kTransientFailure = 1,
};

struct IoCounters {
  uint64_t reads = 0;   // successful page reads (the model's cost)
  uint64_t writes = 0;  // successful page writes (the model's cost)
  // Robustness-layer accounting (not model I/Os): failed attempts that
  // were retried, and operations abandoned after the retry budget.
  // Maintained by fault::RetryingBlockDevice; every injected fault ends
  // up in exactly one of the two (retries + giveups = faults injected).
  uint64_t retries = 0;
  uint64_t giveups = 0;
  uint64_t total() const { return reads + writes; }
  void Reset() { *this = IoCounters(); }
};

// Base class: the in-memory page store, with the transfer primitives
// virtual so decorators (src/fault/) can interpose fault injection and
// retry policies between a BufferPool and the backing store. Decorators
// forward Allocate/num_pages/counters to the wrapped device; only the
// bottom of a decorator chain owns pages and counters.
class BlockDevice {
 public:
  // page_size in bytes. The paper's B (words) corresponds to
  // page_size / 8 with 8-byte words.
  explicit BlockDevice(size_t page_size);
  virtual ~BlockDevice() = default;

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t page_size() const { return page_size_; }
  virtual size_t num_pages() const { return pages_.size(); }

  // Allocates a zeroed page and returns its id.
  virtual uint64_t Allocate();

  // Copies a page into `out` (page_size bytes); counts one read iff it
  // succeeds. The in-memory device always succeeds.
  [[nodiscard]] virtual IoResult TryRead(uint64_t page_id, uint8_t* out);

  // Copies `data` (page_size bytes) into the page; counts one write iff
  // it succeeds. The in-memory device always succeeds.
  [[nodiscard]] virtual IoResult TryWrite(uint64_t page_id,
                                          const uint8_t* data);

  // Infallible wrappers: abort on failure. For call sites with no
  // degradation story (construction paths, tests); fault-tolerant
  // callers use TryRead/TryWrite or go through BufferPool's
  // poisoned-frame path.
  void Read(uint64_t page_id, uint8_t* out);
  void Write(uint64_t page_id, const uint8_t* data);

  virtual const IoCounters& counters() const { return counters_; }
  virtual IoCounters* mutable_counters() { return &counters_; }
  void ResetCounters() { mutable_counters()->Reset(); }

 private:
  size_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
  IoCounters counters_;
};

}  // namespace topk::em

#endif  // TOPK_EM_BLOCK_DEVICE_H_
