// Append-only write-ahead log over a ByteStorage.
//
// Record framing (host-endian, all offsets byte-exact):
//
//   [u32 payload_len][u32 crc][u64 seq][payload_len bytes]
//
// where crc = Crc32(seq || payload). Records carry strictly increasing
// sequence numbers assigned by the caller; the seq is both the replay
// idempotence key (a record with seq <= the applied watermark is
// skipped) and an extra integrity check (a non-increasing seq is
// treated as corruption).
//
// Commit protocol: Append writes the whole record in ONE storage write
// (so a torn write tears a single record, never straddles two), Commit
// syncs. An operation is acknowledged only after its Commit succeeds —
// that sync is the commit point of the durability contract (DESIGN.md).
//
// Torn-tail handling: Replay scans from the front, validating framing
// and CRC. The first record that is short, fails its CRC, or breaks
// seq monotonicity marks the torn tail — the log is truncated there
// (un-acknowledged bytes from the crash are discarded) and every record
// before it is replayed. Replaying is idempotent by construction:
// records at or below `after_seq` are scanned but not visited, and a
// second Replay over the already-truncated log visits nothing new and
// truncates nothing.

#ifndef TOPK_EM_WAL_H_
#define TOPK_EM_WAL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/crc32.h"
#include "em/block_device.h"
#include "em/storage.h"

namespace topk::em {

class WriteAheadLog {
 public:
  static constexpr size_t kHeaderBytes = 16;  // len + crc + seq

  explicit WriteAheadLog(ByteStorage* storage) : storage_(storage) {
    TOPK_CHECK(storage_ != nullptr);
  }

  // Appends one framed record at the end of the log. Volatile until
  // Commit; false when the storage write failed. A failed append rolls
  // its (possibly torn) bytes back out of the append path — see
  // Rollback for why a later successful append must never land after
  // them.
  [[nodiscard]] bool Append(uint64_t seq, const uint8_t* payload,
                            uint32_t payload_len) {
    std::vector<uint8_t> rec(kHeaderBytes + payload_len);
    uint8_t seq_bytes[8];
    std::memcpy(seq_bytes, &seq, 8);
    const uint32_t crc =
        Crc32(payload, payload_len, Crc32(seq_bytes, 8));
    std::memcpy(rec.data(), &payload_len, 4);
    std::memcpy(rec.data() + 4, &crc, 4);
    std::memcpy(rec.data() + 8, &seq, 8);
    std::memcpy(rec.data() + kHeaderBytes, payload, payload_len);
    const uint64_t at = storage_->size();
    if (storage_->Write(at, rec.data(), rec.size()) != IoResult::kOk) {
      Rollback(at);
      return false;
    }
    return true;
  }

  // The commit point: every appended record becomes durable.
  [[nodiscard]] bool Commit() { return storage_->Sync() == IoResult::kOk; }

  // Shrinks the (volatile) log back to `to_bytes` after a failed
  // Append or Commit. The failed record's bytes must not stay in the
  // append path: the caller will retry or continue with the SAME or a
  // later seq, and a successful append landing after torn/un-synced
  // garbage — or after a duplicate of its own seq — would be cut off
  // by replay, which truncates at the first bad or non-monotone
  // record. Best-effort by design: if the truncate itself fails the
  // process is crashing, and recovery's scan discards the tail anyway;
  // page-cache flushing preserves write order, so a surviving later
  // append implies the rollback survived too.
  void Rollback(uint64_t to_bytes) {
    if (storage_->size() > to_bytes) {
      (void)storage_->Truncate(to_bytes);
    }
  }

  // Empties the log (after a checkpoint has made its records
  // redundant). Durable once it returns true.
  [[nodiscard]] bool Reset() {
    if (storage_->Truncate(0) != IoResult::kOk) return false;
    return storage_->Sync() == IoResult::kOk;
  }

  uint64_t bytes() const { return storage_->size(); }

  struct ReplayStats {
    uint64_t valid_records = 0;    // records surviving the scan
    uint64_t visited = 0;          // records with seq > after_seq
    uint64_t last_seq = 0;         // highest surviving seq (0 if none)
    uint64_t truncated_bytes = 0;  // torn tail discarded
  };

  // Scans the log, truncating the torn tail, and calls
  // visit(seq, payload, payload_len) for each valid record with
  // seq > after_seq, in order. Safe to call repeatedly: a re-replay
  // with the same `after_seq` revisits the same records; with
  // after_seq = last_seq it visits nothing.
  template <typename Visit>
  ReplayStats Replay(uint64_t after_seq, Visit&& visit) {
    ReplayStats stats;
    const uint64_t total = storage_->size();
    uint64_t off = 0;
    uint64_t prev_seq = 0;
    std::vector<uint8_t> payload;
    while (off + kHeaderBytes <= total) {
      uint8_t header[kHeaderBytes];
      storage_->Read(off, kHeaderBytes, header);
      uint32_t payload_len = 0, crc = 0;
      uint64_t seq = 0;
      std::memcpy(&payload_len, header, 4);
      std::memcpy(&crc, header + 4, 4);
      std::memcpy(&seq, header + 8, 8);
      if (payload_len > total - off - kHeaderBytes) break;  // short record
      payload.resize(payload_len);
      if (payload_len > 0) {
        storage_->Read(off + kHeaderBytes, payload_len, payload.data());
      }
      if (Crc32(payload.data(), payload_len, Crc32(header + 8, 8)) != crc) {
        break;  // torn or corrupt record
      }
      if (stats.valid_records > 0 && seq <= prev_seq) break;
      prev_seq = seq;
      ++stats.valid_records;
      stats.last_seq = seq;
      if (seq > after_seq) {
        ++stats.visited;
        visit(seq, payload.data(), payload_len);
      }
      off += kHeaderBytes + payload_len;
    }
    if (off < total) {
      stats.truncated_bytes = total - off;
      // Recovery-time housekeeping, best-effort: if the truncate or its
      // sync fails we still recovered correctly in memory, and the next
      // Replay will re-truncate the same tail.
      if (storage_->Truncate(off) == IoResult::kOk) {
        (void)storage_->Sync();
      }
    }
    return stats;
  }

 private:
  ByteStorage* storage_;
};

}  // namespace topk::em

#endif  // TOPK_EM_WAL_H_
