// Fallible query surface for EM-backed top-k structures.
//
// An EM structure query that hits an unrecoverable device read (the
// retry layer gave up) does not abort: the BufferPool serves a poisoned
// zero-filled frame and raises its sticky io_failed flag (see
// em/buffer_pool.h). This wrapper turns that pool-level signal into a
// per-query contract: Query runs the inner structure to completion and
// returns the elements plus io_failed — when the flag is set the
// elements are NOT trustworthy and must be discarded (some page of the
// structure was read as zeroes). When the flag is clear the result is
// the exact top-k, bit-for-bit what a fault-free run returns.
//
// The pool's sticky flag is consumed at both ends of the query, so a
// failure in one query never taints the next, and poisoned frames are
// never cached — after a flagged query, simply query again (the next
// attempt re-reads the device and may succeed).

#ifndef TOPK_EM_FALLIBLE_H_
#define TOPK_EM_FALLIBLE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "core/problem.h"
#include "em/buffer_pool.h"

namespace topk::em {

template <typename E>
struct FallibleResult {
  std::vector<E> elements;
  bool io_failed = false;  // true => discard elements, retry the query
};

template <TopKStructure Inner>
class FallibleTopK {
 public:
  using Element = typename Inner::Element;
  using Predicate = typename Inner::Predicate;
  // Same single-threaded BufferPool posture as the wrapped structure.
  static constexpr bool kExternalMemory = true;

  // `inner` must be built over `pool`; both must outlive the wrapper.
  FallibleTopK(const Inner* inner, BufferPool* pool)
      : inner_(inner), pool_(pool) {
    TOPK_CHECK(inner_ != nullptr);
    TOPK_CHECK(pool_ != nullptr);
  }

  size_t size() const { return inner_->size(); }

  FallibleResult<Element> Query(const Predicate& q, size_t k,
                                QueryStats* stats = nullptr) const {
    pool_->ConsumeIoFailure();  // shed stale state from other callers
    FallibleResult<Element> result;
    result.elements = inner_->Query(q, k, stats);
    result.io_failed = pool_->ConsumeIoFailure();
    return result;
  }

 private:
  const Inner* inner_;
  BufferPool* pool_;
};

}  // namespace topk::em

#endif  // TOPK_EM_FALLIBLE_H_
