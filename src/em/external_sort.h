// External merge sort (Aggarwal & Vitter [8]): sorting n records with
// M words of memory and B-word blocks in O((n/B) log_{M/B}(n/B)) I/Os.
//
// The EM model's foundational primitive — the paper cites [8] for the
// model itself. Run formation reads M-sized chunks, sorts in memory and
// writes sorted runs; each merge pass (M/B − 1)-way-merges runs while
// buffering one block per input run and one output block, streaming the
// result through PagedArrayBuilder. All I/Os flow through the
// BlockDevice counters, so tests can assert the pass structure exactly.

#ifndef TOPK_EM_EXTERNAL_SORT_H_
#define TOPK_EM_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "em/paged_array.h"

namespace topk::em {

// (M/B − 1)-way merge of runs[group, group_end), one block of working
// memory per input run plus one output block.
template <typename T, typename Less>
PagedArray<T> MergeRuns(BufferPool* pool,
                        const std::vector<PagedArray<T>>& runs, size_t group,
                        size_t group_end, Less less) {
  struct Entry {
    T value;
    size_t run;    // index within the group
    size_t index;  // absolute index within the run
  };
  auto greater = [&less](const Entry& a, const Entry& b) {
    return less(b.value, a.value);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(greater)> heap(
      greater);

  const size_t width = group_end - group;
  std::vector<std::vector<T>> buffer(width);
  std::vector<size_t> buffer_base(width, 0);
  auto refill = [&](size_t r, size_t from) {
    std::vector<T>& buf = buffer[r];
    buf.clear();
    buffer_base[r] = from;
    const PagedArray<T>& run = runs[group + r];
    const size_t end = std::min(run.size(), from + run.per_page());
    run.ForRange(from, end, [&buf](const T& item) {
      buf.push_back(item);
      return true;
    });
  };
  for (size_t r = 0; r < width; ++r) {
    refill(r, 0);
    if (!buffer[r].empty()) heap.push(Entry{buffer[r][0], r, 0});
  }

  PagedArrayBuilder<T> out(pool);
  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    out.Append(top.value);
    const size_t next = top.index + 1;
    const PagedArray<T>& run = runs[group + top.run];
    if (next < run.size()) {
      if (next >= buffer_base[top.run] + buffer[top.run].size()) {
        refill(top.run, next);
      }
      heap.push(
          Entry{buffer[top.run][next - buffer_base[top.run]], top.run, next});
    }
  }
  return std::move(out).Finish();
}

// Sorts `input` by `less` using ~memory_words of working memory
// (clamped to >= 2 blocks), returning a sorted PagedArray.
template <typename T, typename Less>
PagedArray<T> ExternalSort(BufferPool* pool, const PagedArray<T>& input,
                           size_t memory_words, Less less) {
  const size_t per_page = input.per_page() == 0 ? 1 : input.per_page();
  const size_t words_per_item = sizeof(T) < 8 ? 1 : sizeof(T) / 8;
  size_t mem_items = memory_words / words_per_item;
  if (mem_items < 2 * per_page) mem_items = 2 * per_page;
  const size_t fan_in = std::max<size_t>(2, mem_items / per_page - 1);

  // Run formation.
  std::vector<PagedArray<T>> runs;
  for (size_t begin = 0; begin < input.size(); begin += mem_items) {
    const size_t end = std::min(input.size(), begin + mem_items);
    std::vector<T> chunk;
    chunk.reserve(end - begin);
    input.ForRange(begin, end, [&chunk](const T& item) {
      chunk.push_back(item);
      return true;
    });
    std::sort(chunk.begin(), chunk.end(), less);
    runs.emplace_back(pool, chunk);
  }
  if (runs.empty()) return PagedArray<T>(pool, std::vector<T>{});

  // Merge passes.
  while (runs.size() > 1) {
    std::vector<PagedArray<T>> next;
    for (size_t group = 0; group < runs.size(); group += fan_in) {
      const size_t group_end = std::min(runs.size(), group + fan_in);
      next.push_back(MergeRuns(pool, runs, group, group_end, less));
    }
    runs = std::move(next);
  }
  return std::move(runs.front());
}

// Convenience: stages a plain vector onto the device and sorts it there
// (used to bulk-load EM structures with honest I/O accounting).
template <typename T, typename Less>
PagedArray<T> ExternalSortVector(BufferPool* pool, const std::vector<T>& in,
                                 size_t memory_words, Less less) {
  PagedArray<T> staged(pool, in);
  return ExternalSort(pool, staged, memory_words, less);
}

}  // namespace topk::em

#endif  // TOPK_EM_EXTERNAL_SORT_H_
