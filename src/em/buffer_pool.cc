#include "em/buffer_pool.h"

#include <algorithm>

#include "common/check.h"

namespace topk::em {

BufferPool::BufferPool(BlockDevice* device, size_t capacity)
    : device_(device), capacity_(capacity) {
  TOPK_CHECK(device_ != nullptr);
  TOPK_CHECK(capacity_ >= 2);  // the model requires M >= 2B
}

BufferPool::~BufferPool() { FlushAll(); }

uint8_t* BufferPool::Pin(uint64_t page_id, bool mark_dirty) {
  TOPK_CHECK(page_id < device_->num_pages());  // must be allocated
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    Frame& frame = it->second;
    // Dirtying a poisoned frame would eventually write zeroes over the
    // real page — unrecoverable, so it stays fatal.
    TOPK_CHECK(!(frame.poisoned && mark_dirty));
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    frame.dirty = frame.dirty || mark_dirty;
    ++hits_;
    trace::Count(tracer_, "em_cache_hit", 1);
    return frame.data.data();
  }
  while (frames_.size() >= capacity_) Evict();
  Frame& frame = frames_[page_id];
  frame.data.resize(device_->page_size());
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = mark_dirty;
  frame.in_lru = false;
  if (device_->TryRead(page_id, frame.data.data()) != IoResult::kOk) {
    // Read-modify-write on an unreadable page cannot degrade soundly
    // (zeroes would later be written back over the real data): fatal.
    TOPK_CHECK(!mark_dirty);
    // Read-only path degrades: serve zeroed bytes, poison the frame so
    // it dies with its last pin, and raise the sticky failure flag for
    // the query wrapper to consume (see the header comment).
    std::fill(frame.data.begin(), frame.data.end(), uint8_t{0});
    frame.poisoned = true;
    io_failed_ = true;
    ++io_failures_;
    trace::Count(tracer_, "em_read_failed", 1);
  } else {
    trace::Count(tracer_, "em_read", 1);
  }
  ++misses_;
  return frame.data.data();
}

uint8_t* BufferPool::PinFresh(uint64_t page_id) {
  // A "fresh" page must be device-allocated but not resident: pinning a
  // resident page through PinFresh would skip the read that Pin charges
  // and silently halve the write path's I/O counts (and vice versa).
  TOPK_CHECK(page_id < device_->num_pages());
  TOPK_CHECK(frames_.find(page_id) == frames_.end());
  while (frames_.size() >= capacity_) Evict();
  Frame& frame = frames_[page_id];
  frame.data.assign(device_->page_size(), 0);
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.in_lru = false;
  return frame.data.data();
}

void BufferPool::Unpin(uint64_t page_id) {
  auto it = frames_.find(page_id);
  TOPK_CHECK(it != frames_.end());
  Frame& frame = it->second;
  TOPK_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    if (frame.poisoned) {
      // Never cached: a later Pin must re-attempt the device read
      // rather than serve stale zeroes from the LRU.
      frames_.erase(it);
      return;
    }
    lru_.push_back(page_id);
    frame.lru_it = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

void BufferPool::Evict() {
  TOPK_CHECK(!lru_.empty());  // all frames pinned => pool misuse
  const uint64_t victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  TOPK_CHECK(it != frames_.end());
  if (it->second.dirty) {
    device_->Write(victim, it->second.data.data());
    trace::Count(tracer_, "em_write", 1);
  }
  frames_.erase(it);
}

void BufferPool::AuditInvariants() const {
  TOPK_CHECK_LE(frames_.size(), capacity_);
  size_t unpinned = 0;
  for (const auto& [page_id, frame] : frames_) {
    TOPK_CHECK_EQ(frame.page_id, page_id);
    TOPK_CHECK(frame.pin_count >= 0);
    TOPK_CHECK_EQ(frame.in_lru, frame.pin_count == 0);
    TOPK_CHECK_EQ(frame.data.size(), device_->page_size());
    if (frame.poisoned) {
      // Poisoned frames live only while pinned, are never dirty (the
      // mark_dirty path aborts instead), and never enter the LRU.
      TOPK_CHECK(frame.pin_count > 0);
      TOPK_CHECK(!frame.dirty);
      TOPK_CHECK(!frame.in_lru);
    }
    if (frame.in_lru) {
      ++unpinned;
      TOPK_CHECK_EQ(*frame.lru_it, page_id);  // iterator points home
    }
  }
  TOPK_CHECK_EQ(lru_.size(), unpinned);
  for (uint64_t page_id : lru_) {
    TOPK_CHECK(frames_.find(page_id) != frames_.end());
  }
}

void BufferPool::FlushAll() {
  // Enforce the whole-pool precondition before any write-back so a
  // violation aborts with the pool (and the device's counters) intact.
  for (const auto& [page_id, frame] : frames_) {
    TOPK_CHECK(frame.pin_count == 0);  // a pin outlived FlushAll
  }
  for (auto& [page_id, frame] : frames_) {
    if (frame.dirty) {
      device_->Write(page_id, frame.data.data());
      trace::Count(tracer_, "em_write", 1);
    }
  }
  frames_.clear();
  lru_.clear();
}

}  // namespace topk::em
