// External-memory kd-tree: the weight-augmented kd-tree paged onto the
// block device (a "kd-B-tree" layout).
//
// The in-memory tree is built first (median splits, bounding boxes,
// subtree max weights — identical logic to dominance::KdTree), then
// packed page by page: each page holds the top levels of a subtree, so
// a root-to-leaf walk costs O(height / log_2(nodes_per_page)) =
// O(log_B n) page transfers. Queries pin pages through the buffer pool
// and traverse slots in-memory within a page.
//
// This gives every kd-backed problem in the library — 3D dominance,
// circular reporting, 3D halfspaces, interval stabbing via the endpoint
// embedding — an external-memory instantiation whose I/Os are counted
// exactly, completing the EM story beyond the 1D structures of
// em_range1d.h.

#ifndef TOPK_EM_EM_KDTREE_H_
#define TOPK_EM_EM_KDTREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "em/buffer_pool.h"
#include "em/checkpoint.h"

namespace topk::em {

template <typename Problem, typename Geo>
class EmKdTree {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  static constexpr int kDims = Geo::kDims;
  // Queries page through a single-threaded BufferPool; not shareable
  // across threads (see serve/shareable.h).
  static constexpr bool kExternalMemory = true;

  EmKdTree() = default;

  EmKdTree(BufferPool* pool, std::vector<Element> data) : pool_(pool) {
    static_assert(std::is_trivially_copyable_v<Element>);
    n_ = data.size();
    if (n_ == 0) return;
    per_page_ = pool_->device()->page_size() / sizeof(NodeRec);
    TOPK_CHECK(per_page_ >= 1);

    // Phase 1: plain in-memory build.
    std::vector<BuildNode> nodes;
    nodes.reserve(n_);
    const int32_t root = Build(&nodes, &data, 0, data.size(), 0);

    // Phase 2: pack subtrees into pages, top levels first. Cross-page
    // child pointers are patched in FIFO order; pending_child_side_
    // entries are appended in the same order frontier entries are
    // pushed, so patch_cursor_ consumption stays aligned across waves.
    root_ = AllocateChunk(nodes, root);
    while (!frontier_.empty()) {
      std::vector<std::pair<int32_t, Slot>> frontier;
      frontier.swap(frontier_);
      for (const auto& [build_idx, slot] : frontier) {
        const Slot child_root = AllocateChunk(nodes, build_idx);
        PatchChild(slot, child_root);
      }
    }
  }

  // Reopen from a checkpoint meta blob (em/checkpoint.h): re-adopts the
  // packed node pages by id, skipping the whole in-memory build and
  // repack — the E26 cheap-cold-start path for kd-backed problems.
  // (A named factory, not a ctor overload: a braced `{}` data argument
  // must keep meaning "empty input", never a null reader.)
  static EmKdTree LoadMeta(BufferPool* pool, MetaReader* r) {
    EmKdTree t;
    t.pool_ = pool;
    t.n_ = static_cast<size_t>(r->U64());
    t.per_page_ = static_cast<size_t>(r->U64());
    if (t.n_ > 0) {
      TOPK_CHECK_EQ(t.per_page_,
                    pool->device()->page_size() / sizeof(NodeRec));
    }
    t.root_.page = static_cast<int32_t>(static_cast<int64_t>(r->U64()));
    t.root_.index = static_cast<int32_t>(static_cast<int64_t>(r->U64()));
    t.pages_ = r->VecU64();
    return t;
  }

  void SaveMeta(MetaWriter* w) const {
    w->U64(n_);
    w->U64(per_page_);
    w->U64(static_cast<uint64_t>(static_cast<int64_t>(root_.page)));
    w->U64(static_cast<uint64_t>(static_cast<int64_t>(root_.index)));
    w->VecU64(pages_);
  }

  size_t size() const { return n_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    if (n_ == 0) return;
    Visit(root_, q, tau, emit, stats, /*contained=*/false);
  }

  std::optional<Element> QueryMax(const Predicate& q,
                                  QueryStats* stats = nullptr) const {
    std::optional<Element> best;
    if (n_ == 0) return best;
    VisitMax(root_, q, &best, stats);
    return best;
  }

 private:
  struct Slot {
    int32_t page = -1;  // index into pages_
    int32_t index = -1; // slot within the page
    bool valid() const { return page >= 0; }
  };

  // On-page node record (POD).
  struct NodeRec {
    Element element;
    double box_lo[kDims];
    double box_hi[kDims];
    double subtree_max_weight;
    Slot child[2];
  };

  struct BuildNode {
    Element element;
    double box_lo[kDims];
    double box_hi[kDims];
    double subtree_max_weight;
    int32_t left = -1, right = -1;
  };

  int32_t Build(std::vector<BuildNode>* nodes, std::vector<Element>* data,
                size_t lo, size_t hi, int depth) {
    if (lo >= hi) return -1;
    const int dim = depth % kDims;
    const size_t mid = lo + (hi - lo) / 2;
    std::nth_element(data->begin() + lo, data->begin() + mid,
                     data->begin() + hi,
                     [dim](const Element& a, const Element& b) {
                       return Geo::Coord(a, dim) < Geo::Coord(b, dim);
                     });
    const int32_t idx = static_cast<int32_t>(nodes->size());
    nodes->push_back(BuildNode{});
    (*nodes)[idx].element = (*data)[mid];
    const int32_t l = Build(nodes, data, lo, mid, depth + 1);
    const int32_t r = Build(nodes, data, mid + 1, hi, depth + 1);
    BuildNode& node = (*nodes)[idx];
    node.left = l;
    node.right = r;
    for (int d = 0; d < kDims; ++d) {
      node.box_lo[d] = node.box_hi[d] = Geo::Coord(node.element, d);
    }
    node.subtree_max_weight = node.element.weight;
    for (int32_t child : {l, r}) {
      if (child < 0) continue;
      const BuildNode& c = (*nodes)[child];
      for (int d = 0; d < kDims; ++d) {
        node.box_lo[d] = std::min(node.box_lo[d], c.box_lo[d]);
        node.box_hi[d] = std::max(node.box_hi[d], c.box_hi[d]);
      }
      node.subtree_max_weight =
          std::max(node.subtree_max_weight, c.subtree_max_weight);
    }
    return idx;
  }

  // Takes up to per_page_ nodes BFS-first from the subtree rooted at
  // `build_root`, writes them into one fresh page, and queues subtree
  // roots that did not fit. Returns the slot of build_root.
  Slot AllocateChunk(const std::vector<BuildNode>& nodes,
                     int32_t build_root) {
    const uint64_t page_id = pool_->device()->Allocate();
    const int32_t page_index = static_cast<int32_t>(pages_.size());
    pages_.push_back(page_id);

    std::vector<int32_t> taken;  // build indices, BFS order
    taken.push_back(build_root);
    for (size_t head = 0;
         head < taken.size() && taken.size() < per_page_; ++head) {
      for (int32_t child : {nodes[taken[head]].left,
                            nodes[taken[head]].right}) {
        if (child >= 0 && taken.size() < per_page_) taken.push_back(child);
      }
    }
    // Map build index -> slot within this page.
    std::vector<std::pair<int32_t, int32_t>> slot_of(taken.size());
    for (size_t i = 0; i < taken.size(); ++i) {
      slot_of[i] = {taken[i], static_cast<int32_t>(i)};
    }
    auto find_slot = [&](int32_t build_idx) -> int32_t {
      for (const auto& [b, s] : slot_of) {
        if (b == build_idx) return s;
      }
      return -1;
    };

    PageRef ref = PageRef::Fresh(pool_, page_id);
    uint8_t* frame = ref.data();
    for (size_t i = 0; i < taken.size(); ++i) {
      const BuildNode& src = nodes[taken[i]];
      NodeRec rec{};
      rec.element = src.element;
      std::memcpy(rec.box_lo, src.box_lo, sizeof(rec.box_lo));
      std::memcpy(rec.box_hi, src.box_hi, sizeof(rec.box_hi));
      rec.subtree_max_weight = src.subtree_max_weight;
      for (int c = 0; c < 2; ++c) {
        const int32_t child = c == 0 ? src.left : src.right;
        if (child < 0) {
          rec.child[c] = Slot{};
        } else {
          const int32_t s = find_slot(child);
          if (s >= 0) {
            rec.child[c] = Slot{page_index, s};
          } else {
            // Crosses a page boundary: resolved when the child's chunk
            // is allocated (frontier_), marked unresolved for now.
            rec.child[c] = Slot{-2, -2};
            frontier_.push_back(
                {child, Slot{page_index, static_cast<int32_t>(i)}});
            pending_child_side_.push_back(c);
          }
        }
      }
      std::memcpy(frame + i * sizeof(NodeRec), &rec, sizeof(NodeRec));
    }
    return Slot{page_index, 0};
  }

  // Rewrites the recorded parent slot's child pointer once the child's
  // page exists. Order of frontier_ and pending_child_side_ match.
  void PatchChild(const Slot& parent, const Slot& child_root) {
    PageRef ref(pool_, pages_[parent.page], /*dirty=*/true);
    NodeRec rec;
    std::memcpy(&rec, ref.data() + parent.index * sizeof(NodeRec),
                sizeof(NodeRec));
    const int side = pending_child_side_[patch_cursor_++];
    TOPK_DCHECK(rec.child[side].page == -2);
    rec.child[side] = child_root;
    std::memcpy(ref.data() + parent.index * sizeof(NodeRec), &rec,
                sizeof(NodeRec));
  }

  NodeRec Load(const Slot& slot, QueryStats* stats) const {
    AddNodes(stats, 1);
    PageRef ref(pool_, pages_[slot.page]);
    NodeRec rec;
    std::memcpy(&rec, ref.data() + slot.index * sizeof(NodeRec),
                sizeof(NodeRec));
    return rec;
  }

  template <typename Emit>
  bool Visit(const Slot& slot, const Predicate& q, double tau, Emit& emit,
             QueryStats* stats, bool contained) const {
    if (!slot.valid()) return true;
    const NodeRec node = Load(slot, stats);
    if (node.subtree_max_weight < tau) return true;
    bool now_contained = contained;
    if (!contained) {
      if (!Geo::IntersectsBox(q, node.box_lo, node.box_hi)) return true;
      now_contained = Geo::ContainsBox(q, node.box_lo, node.box_hi);
    }
    if (node.element.weight >= tau &&
        (now_contained || Problem::Matches(q, node.element))) {
      if (!emit(node.element)) return false;
    }
    return Visit(node.child[0], q, tau, emit, stats, now_contained) &&
           Visit(node.child[1], q, tau, emit, stats, now_contained);
  }

  void VisitMax(const Slot& slot, const Predicate& q,
                std::optional<Element>* best, QueryStats* stats) const {
    if (!slot.valid()) return;
    const NodeRec node = Load(slot, stats);
    if (best->has_value() && node.subtree_max_weight < (*best)->weight) {
      return;
    }
    if (!Geo::IntersectsBox(q, node.box_lo, node.box_hi)) return;
    if (Problem::Matches(q, node.element)) {
      if (!best->has_value() || HeavierThan(node.element, **best)) {
        *best = node.element;
      }
    }
    VisitMax(node.child[0], q, best, stats);
    VisitMax(node.child[1], q, best, stats);
  }

  BufferPool* pool_ = nullptr;
  size_t n_ = 0;
  size_t per_page_ = 1;
  std::vector<uint64_t> pages_;
  // Build-time queues: subtree roots awaiting their own chunk, plus
  // which child side of the recorded parent slot they patch.
  std::vector<std::pair<int32_t, Slot>> frontier_;
  std::vector<int> pending_child_side_;
  size_t patch_cursor_ = 0;
  Slot root_;
};

}  // namespace topk::em

#endif  // TOPK_EM_EM_KDTREE_H_
