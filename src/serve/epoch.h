// Epoch/snapshot rotation: serve queries from immutable published
// structures while a writer mutates a shadow copy off to the side.
//
// The unit of publication is an Epoch — one fully built, thereafter
// immutable structure plus a sequence number. EpochManager owns the
// chain of epochs behind a single atomic pointer:
//
//   * ONE writer thread (unsynchronized with other writers by
//     contract) builds or mutates its own shadow structure, then
//     Publish()es it: the new epoch is swapped in atomically and the
//     old one moves to the retired list.
//   * Readers (one registered slot per QueryEngine; the engine pins
//     once per batch) Acquire() the current epoch through a
//     hazard-pointer protocol: publish your candidate into your slot,
//     re-read the current pointer, retry on mismatch. No locks, no
//     reference-count contention, no allocation — a reader never
//     blocks on the writer and never observes a torn structure.
//   * A retired epoch is freed only by the writer, and only once no
//     reader slot still points at it (CollectRetired, called
//     opportunistically by Publish). The writer never frees under a
//     reader; a reader never dereferences an epoch it failed to pin.
//
// Memory-order argument (the classic hazard-pointer store/load fence):
// Acquire's slot store and current_ re-load, and Publish's current_
// exchange and slot scan, are all seq_cst, so in the single total
// order either the reader's validating load sees the new epoch (and
// retries) or the writer's scan sees the occupied slot (and keeps the
// epoch). A slot may briefly hold a dangling pointer mid-retry; it is
// only ever compared, never dereferenced. Address reuse (ABA) is
// benign for the same reason the protocol works at all: validation
// succeeding means that address IS the current epoch now.
//
// What may be published is gated at compile time by
// ShareableTopKStructure, exactly as for the engine's static mode:
// epochs are shared const across worker threads.

#ifndef TOPK_SERVE_EPOCH_H_
#define TOPK_SERVE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "serve/shareable.h"

namespace topk::serve {

template <ShareableTopKStructure S>
class EpochManager {
 public:
  // The unit of publication. Immutable from the moment Publish() swaps
  // it in until the writer frees it; readers touch it only through
  // const access.
  // epoch-published
  struct Epoch {
    S structure;       // epoch: built before publish, const-shared after
    uint64_t seq = 0;  // epoch: written once before publish, never again
  };

  // A reader's lease on one epoch for the duration of a batch: while
  // live, the epoch (current or retired) cannot be freed. Move-only
  // RAII; default-constructed pins are empty. One Pin per slot at a
  // time — the owning engine pins per batch, serially.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : manager_(std::exchange(other.manager_, nullptr)),
          slot_(other.slot_),
          epoch_(std::exchange(other.epoch_, nullptr)) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = std::exchange(other.manager_, nullptr);
        slot_ = other.slot_;
        epoch_ = std::exchange(other.epoch_, nullptr);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    const S* get() const { return &epoch_->structure; }
    uint64_t seq() const { return epoch_->seq; }
    bool empty() const { return epoch_ == nullptr; }

    void Release() {
      if (manager_ != nullptr) {
        manager_->slots_[slot_].store(nullptr, std::memory_order_seq_cst);
        manager_ = nullptr;
        epoch_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    Pin(EpochManager* manager, size_t slot, const Epoch* epoch)
        : manager_(manager), slot_(slot), epoch_(epoch) {}

    EpochManager* manager_ = nullptr;
    size_t slot_ = 0;
    const Epoch* epoch_ = nullptr;
  };

  // The initial structure becomes epoch 1. max_readers bounds how many
  // reader slots RegisterReader may hand out (one per engine).
  explicit EpochManager(S initial, size_t max_readers = 64)
      : slots_(max_readers) {
    current_.store(new Epoch{std::move(initial), 1},
                   std::memory_order_release);
  }

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // All pins must be released (engines destroyed / batches drained)
  // before the manager goes away.
  ~EpochManager() {
    for (std::atomic<const Epoch*>& s : slots_) {
      TOPK_CHECK(s.load(std::memory_order_acquire) == nullptr);
    }
    for (Epoch* e : retired_) delete e;
    delete current_.load(std::memory_order_acquire);
  }

  // Claims a reader slot; each concurrent reader (engine) needs its
  // own. Thread-safe.
  size_t RegisterReader() {
    const size_t slot = num_readers_.fetch_add(1, std::memory_order_relaxed);
    TOPK_CHECK(slot < slots_.size());  // raise max_readers if this fires
    return slot;
  }

  // Reader side: pin the current epoch. Lock-free, allocation-free,
  // never blocks on the writer (the loop re-runs only when a Publish
  // lands between the slot store and the validating re-load — at most
  // once per concurrent publish). Only the slot's owner may call this,
  // and only with no live Pin on the same slot.
  Pin Acquire(size_t slot) {
    const Epoch* e = current_.load(std::memory_order_seq_cst);
    for (;;) {
      slots_[slot].store(e, std::memory_order_seq_cst);
      const Epoch* cur = current_.load(std::memory_order_seq_cst);
      if (cur == e) return Pin(this, slot, e);
      e = cur;  // a publish raced us; chase the new epoch
    }
  }

  // Writer side (single writer only): swap `next` in as the new
  // current epoch, retire the old one, and opportunistically free any
  // retired epochs no reader still pins. Returns the new sequence
  // number (monotone from 1).
  uint64_t Publish(S next) {
    Epoch* epoch = new Epoch{std::move(next), 0};
    epoch->seq = current_.load(std::memory_order_relaxed)->seq + 1;
    Epoch* old = current_.exchange(epoch, std::memory_order_seq_cst);
    retired_.push_back(old);
    CollectRetired();
    return epoch->seq;
  }

  // Writer side: free every retired epoch that no reader slot pins.
  // Returns how many were freed. Publish calls this; tests and
  // shutdown paths may call it again after readers drain.
  size_t CollectRetired() {
    size_t freed = 0;
    size_t kept = 0;
    for (Epoch* e : retired_) {
      if (Pinned(e)) {
        retired_[kept++] = e;
      } else {
        delete e;
        ++freed;
      }
    }
    retired_.resize(kept);
    return freed;
  }

  // Writer-side observability (not synchronized with Publish; call
  // from the writer thread or after it quiesces).
  size_t live_epochs() const { return retired_.size() + 1; }
  uint64_t current_seq() const {
    return current_.load(std::memory_order_acquire)->seq;
  }

 private:
  bool Pinned(const Epoch* e) const {
    for (const std::atomic<const Epoch*>& s : slots_) {
      if (s.load(std::memory_order_seq_cst) == e) return true;
    }
    return false;
  }

  std::atomic<Epoch*> current_{nullptr};
  // Hazard slots: slot i is written only by its registered reader
  // (nullptr or its pinned epoch) and scanned by the writer.
  std::vector<std::atomic<const Epoch*>> slots_;
  std::atomic<size_t> num_readers_{0};
  // Writer-owned; no reader ever touches the retired list.
  std::vector<Epoch*> retired_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_EPOCH_H_
