// Log-bucketed latency histogram for the serving layer.
//
// Fixed-size (65 power-of-two buckets over nanoseconds — one per
// possible bit_width of a uint64_t value, including 0 — ~0.5 KiB), so
// Record is a constant-time array increment with no allocation — cheap
// enough to sit on the per-query hot path. Quantiles are answered by
// walking the cumulative counts and interpolating linearly inside the
// bucket containing the requested rank, the standard HdrHistogram-style
// estimate: exact bucket, ≤ 2x relative error inside it. Min/max/sum
// are tracked exactly.
//
// Not thread-safe by design: each QueryEngine worker records into its
// own histogram and the engine merges them after the batch barrier.

#ifndef TOPK_SERVE_HISTOGRAM_H_
#define TOPK_SERVE_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace topk::serve {

class LatencyHistogram {
 public:
  // Bucket i counts values v with bit_width(v) == i, i.e. bucket 0 is
  // {0}, bucket i >= 1 is [2^(i-1), 2^i).
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t ns) {
    ++counts_[std::bit_width(ns)];
    ++total_;
    sum_ns_ += ns;
    if (ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  // Back to the empty state (the engine recycles per-worker tallies
  // across batches; a histogram is a flat array, so this is a memset).
  void Reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ns_ = 0;
    min_ns_ = std::numeric_limits<uint64_t>::max();
    max_ns_ = 0;
  }

  void Merge(const LatencyHistogram& o) {
    for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ns_ += o.sum_ns_;
    if (o.min_ns_ < min_ns_) min_ns_ = o.min_ns_;
    if (o.max_ns_ > max_ns_) max_ns_ = o.max_ns_;
  }

  uint64_t count() const { return total_; }
  uint64_t min_ns() const { return total_ == 0 ? 0 : min_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(total_);
  }

  // Estimated value at percentile p in [0, 100] (nearest-rank, linear
  // interpolation within the bucket). 0 on an empty histogram.
  double PercentileNs(double p) const {
    if (total_ == 0) return 0.0;
    TOPK_CHECK(p >= 0.0 && p <= 100.0);
    // Nearest rank in [1, total_].
    uint64_t rank = static_cast<uint64_t>(
        p / 100.0 * static_cast<double>(total_) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (counts_[i] == 0) continue;
      if (seen + counts_[i] < rank) {
        seen += counts_[i];
        continue;
      }
      // Rank lands in bucket i: interpolate across [lo, hi).
      const double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      const double hi = i == 0 ? 1.0 : lo * 2.0;
      // rank - seen is in [1, counts_[i]]; the first rank sits on the
      // bucket's lower edge.
      const double frac = static_cast<double>(rank - seen - 1) /
                          static_cast<double>(counts_[i]);
      double v = lo + (hi - lo) * frac;
      // The exactly tracked extremes tighten the estimate — but only in
      // the buckets that actually contain them. Clamping in every bucket
      // (the old behavior) pulled interior-bucket estimates toward the
      // global min/max, where the true values can be anywhere in the
      // bucket's range.
      if (i == static_cast<size_t>(std::bit_width(min_ns_)) &&
          v < static_cast<double>(min_ns_)) {
        v = static_cast<double>(min_ns_);
      }
      if (i == static_cast<size_t>(std::bit_width(max_ns_)) &&
          v > static_cast<double>(max_ns_)) {
        v = static_cast<double>(max_ns_);
      }
      return v;
    }
    return static_cast<double>(max_ns_);  // unreachable: total_ > 0
  }

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t total_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t min_ns_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ns_ = 0;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_HISTOGRAM_H_
