// Per-request result slots and the graceful-degradation contract.
//
// Every request served by a QueryEngine gets exactly one status:
//
//   kOk               — elements is the exact top-k (brute-force equal).
//   kDegraded         — the cost budget or a cancellation stopped the
//                       cost-monitored loop early; elements is a correct
//                       HEAVIEST-FIRST PREFIX of the true top-k (possibly
//                       empty), never a wrong or arbitrary subset.
//   kDeadlineExceeded — the request's deadline passed before or during
//                       serving; same correct-prefix guarantee.
//   kShed             — admission control (or cancellation) dropped the
//                       request before it touched the structure at all;
//                       elements is empty.
//
// The prefix guarantee is what makes degraded answers USEFUL: a client
// that asked for 100 results and got 16 flagged kDegraded holds the true
// 16 heaviest matches and can re-ask with a larger budget for the rest.
// It falls out of the strict (weight, id) total order — see
// core/budgeted_query.h.

#ifndef TOPK_SERVE_RESULT_H_
#define TOPK_SERVE_RESULT_H_

#include <cstdint>
#include <vector>

namespace topk::serve {

enum class ResultStatus : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kShed = 2,
  kDeadlineExceeded = 3,
};

constexpr const char* ToString(ResultStatus s) {
  switch (s) {
    case ResultStatus::kOk: return "ok";
    case ResultStatus::kDegraded: return "degraded";
    case ResultStatus::kShed: return "shed";
    case ResultStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

template <typename E>
struct QueryResult {
  std::vector<E> elements;
  ResultStatus status = ResultStatus::kOk;

  bool ok() const { return status == ResultStatus::kOk; }
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_RESULT_H_
