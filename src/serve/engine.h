// Concurrent batched top-k query engine with graceful degradation.
//
// A QueryEngine wraps one shared, already-built, const top-k structure
// and answers batches of (predicate, k) requests on a fixed thread
// pool. Workers self-schedule requests off an atomic cursor (no
// per-task queue, so heterogeneous query costs balance automatically),
// write results into disjoint slots of the output vector, and charge
// all accounting to thread-local tallies; the only synchronization on
// the query path is the cursor's fetch_add. After the batch barrier the
// tallies are merged into an optional serve::Metrics registry.
//
// Two sources for the served structure (see the two constructors):
//   * static mode — a caller-owned const structure, pinned for the
//     engine's lifetime (the original contract);
//   * epoch mode — a serve::EpochManager whose writer republishes
//     mutated snapshots concurrently; each batch pins the then-current
//     epoch for its whole duration through the manager's lock-free
//     reader protocol (serve/epoch.h), so serving continues DURING
//     mutation with no reader-side lock anywhere on the query path.
//
// Robustness layer (see serve/result.h for the per-slot contract):
//   * Admission control — Options::max_batch bounds how many requests
//     of a batch are admitted; the tail beyond it is shed (kShed)
//     without ever touching the structure.
//   * Cancellation — Cancel() is cooperative: checked between requests
//     (remaining ones shed) and between the stages of cost-monitored
//     loops (the prefix so far is returned flagged kDegraded). The
//     flag clears when the batch finishes.
//   * Cost budgets — Request::cost_budget bounds the QueryStats work
//     units a request may consume. The request runs as a staged
//     doubling loop (core/budgeted_query.h), so exceeding the budget
//     yields a flagged, heaviest-first PREFIX of the true top-k —
//     bounded work, never wrong output.
//   * Deadlines — Request::deadline_ns is a wall-clock bound relative
//     to batch start, checked before the request and between stages
//     (kDeadlineExceeded, same prefix guarantee).
//
// Thread-safety contract: the structure must satisfy
// ShareableTopKStructure — const-queryable with no hidden mutable
// state. EM-backed structures fail that concept (their BufferPool is
// single-threaded mutable state) and are rejected at compile time.
// Results are bitwise-identical to single-threaded Query calls: the
// structures are deterministic at query time, so only the interleaving
// of *accounting* differs — and QueryStats addition is commutative.

#ifndef TOPK_SERVE_ENGINE_H_
#define TOPK_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/budgeted_query.h"
#include "parallel/context.h"
#include "serve/epoch.h"
#include "serve/histogram.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "serve/shareable.h"
#include "serve/thread_pool.h"
#include "trace/chrome_json.h"
#include "trace/tracer.h"

namespace topk::serve {

// One top-k request. Keyed by the predicate type, not the engine, so a
// batch can be replayed against every structure of the same problem.
template <typename Predicate>
struct Request {
  Predicate predicate;
  size_t k = 1;
  // Degradation knobs; 0 disables either. cost_budget is in QueryStats
  // work units (QueryStats::work); deadline_ns is wall-clock time from
  // batch start. A request with neither runs the plain single Query.
  uint64_t cost_budget = 0;
  uint64_t deadline_ns = 0;
};

template <ShareableTopKStructure Structure>
class QueryEngine {
 public:
  using Element = typename Structure::Element;
  using Predicate = typename Structure::Predicate;
  using Request = serve::Request<Predicate>;
  using Result = QueryResult<Element>;

  struct Options {
    size_t num_threads = 1;
    // Admission control: at most this many requests of a batch are
    // served; the rest are shed. 0 = unbounded.
    size_t max_batch = 0;
    // Tracing: event capacity of each per-thread trace::Tracer (one per
    // worker plus one for the coordinator). 0 = tracing off — every
    // call site passes a null tracer, the one-branch disabled path.
    size_t trace_capacity = 0;
    // Slow-query log: requests whose serving latency is >= this land in
    // the MetricsSnapshot slow-query log (bounded, top-by-latency; see
    // serve/metrics.h). 0 = off.
    uint64_t slow_query_ns = 0;
    // Intra-query parallelism: each request worker owns a
    // parallel::Context with this many shards, threaded into the
    // structure's QueryInto so degenerate monitored fetches run the
    // sharded flat kernel (see DESIGN.md "intra-query parallelism
    // contract"). 0 or 1 = serial (no contexts built). Values > 1 are
    // clamped so num_threads * intra_query_workers does not exceed the
    // hardware concurrency (no oversubscription) unless
    // unclamped_intra_query_workers is set.
    size_t intra_query_workers = 1;
    // Escape hatch for deterministic tests/benchmarks on small
    // machines: take intra_query_workers literally, skipping the
    // hardware clamp.
    bool unclamped_intra_query_workers = false;
  };

  // `structure` must outlive the engine. `metrics` may be null (no
  // registry) or shared between engines; it must outlive the engine.
  QueryEngine(const Structure* structure, const Options& options,
              Metrics* metrics = nullptr)
      : structure_(structure), metrics_(metrics), max_batch_(options.max_batch),
        slow_query_ns_(options.slow_query_ns), pool_(options.num_threads),
        tallies_(pool_.num_threads()) {
    TOPK_CHECK(structure_ != nullptr);
    Init(options);
  }

  // Epoch mode: serve from whatever `epochs` currently publishes while
  // a writer mutates and republishes concurrently. Each batch pins ONE
  // epoch for its whole duration (so a batch's answers are mutually
  // consistent and brute-force checkable against that snapshot), via
  // the manager's lock-free reader protocol — the query path never
  // blocks on the writer. `epochs` must outlive the engine, and the
  // engine's registered slot drains (batch ends) before retired epochs
  // free.
  QueryEngine(EpochManager<Structure>* epochs, const Options& options,
              Metrics* metrics = nullptr)
      : epochs_(epochs), metrics_(metrics), max_batch_(options.max_batch),
        slow_query_ns_(options.slow_query_ns), pool_(options.num_threads),
        tallies_(pool_.num_threads()) {
    TOPK_CHECK(epochs_ != nullptr);
    reader_slot_ = epochs_->RegisterReader();
    Init(options);
  }

  size_t num_threads() const { return pool_.num_threads(); }

  // Shards each request may split its dominant loop across (1 =
  // serial); reflects the oversubscription clamp, so tests and
  // benchmarks can report the effective value.
  size_t intra_query_workers() const {
    return contexts_.empty() ? 1 : contexts_.front()->shards();
  }

  // Epoch mode only: the sequence number of the epoch that served the
  // most recent batch (0 before any batch, or in static mode). Lets a
  // caller pair each batch's answers with the snapshot they came from.
  uint64_t last_batch_epoch() const { return last_batch_epoch_; }

  // --- tracing (empty/0 unless Options::trace_capacity was set) -------

  bool tracing_enabled() const { return !tracers_.empty(); }
  // Worker tracers are [0, num_threads); the last one is the
  // coordinator's (batch/merge spans).
  size_t num_tracers() const { return tracers_.size(); }
  const trace::Tracer& tracer(size_t i) const { return *tracers_[i]; }

  // Drops all recorded events (e.g. between a warmup and a measured
  // run). Must not be called while a batch is in flight.
  void ClearTraces() {
    for (const std::unique_ptr<trace::Tracer>& t : tracers_) t->Clear();
  }

  // All tracers as one Chrome trace-event document (tid = tracer index,
  // thread names "worker-N" / "coordinator"); loads directly into
  // Perfetto / chrome://tracing.
  std::string ChromeTraceJson() const {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (size_t t = 0; t < tracers_.size(); ++t) {
      const bool coordinator = t + 1 == tracers_.size();
      const std::string name =
          coordinator ? std::string("coordinator")
                      : "worker-" + std::to_string(t);
      trace::AppendChromeEvents(*tracers_[t], t, name.c_str(), &first,
                                &out);
    }
    out += "]}";
    return out;
  }

  // Requests cooperative cancellation of the current (or, if none is
  // running, the next) batch: unstarted requests are shed, in-flight
  // cost-monitored loops stop at the next stage boundary with a
  // degraded prefix. Safe to call from any thread; the flag clears when
  // the batch completes.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  // Answers requests[i] into slot i of the returned vector — order is
  // preserved regardless of which worker served which request.
  std::vector<Result> QueryBatch(const std::vector<Request>& requests) {
    std::vector<Result> results;
    QueryBatchInto(requests, &results);
    return results;
  }

  // In-place form: *results is resized to requests.size() and slot i
  // answers requests[i]. A caller that recycles the same results vector
  // keeps every slot's element buffer warm, which together with the
  // per-worker scratch arenas makes the steady-state batch loop
  // allocation-free (tests/alloc_regression_test.cc pins this).
  void QueryBatchInto(const std::vector<Request>& requests,
                      std::vector<Result>* results) {
    results->resize(requests.size());
    if (requests.empty()) {
      cancel_.store(false, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        MetricsSnapshot empty;
        empty.batches = 1;
        metrics_->Absorb(empty);
      }
      return;
    }

    const size_t admitted =
        max_batch_ == 0 ? requests.size()
                        : (requests.size() < max_batch_ ? requests.size()
                                                        : max_batch_);
    // Epoch mode: pin ONE epoch for the whole batch. Every request of
    // the batch answers against the same immutable snapshot, and the
    // pin (released when this function returns, after the barrier)
    // keeps the writer from freeing it mid-flight. Static mode serves
    // the lifetime-pinned structure as before.
    typename EpochManager<Structure>::Pin pin;
    const Structure* structure = structure_;
    if (epochs_ != nullptr) {
      pin = epochs_->Acquire(reader_slot_);
      structure = pin.get();
      last_batch_epoch_ = pin.seq();
    }
    const uint64_t batch_seq = ++batch_seq_;
    trace::Tracer* coordinator =
        tracers_.empty() ? nullptr : tracers_.back().get();
    const auto batch_start = Clock::now();
    for (MetricsSnapshot& t : tallies_) t.Reset();
    std::atomic<size_t> cursor{0};
    {
      trace::Span batch_span(coordinator, "batch");
      batch_span.Arg("batch", batch_seq);
      batch_span.Arg("requests", requests.size());
      batch_span.Arg("admitted", admitted);
      if (epochs_ != nullptr) batch_span.Arg("epoch", last_batch_epoch_);
      pool_.RunOnAll([&](size_t worker) {
        MetricsSnapshot& tally = tallies_[worker];
        Scratch* scratch = scratches_[worker].get();
        parallel::Context* par =
            contexts_.empty() ? nullptr : contexts_[worker].get();
        // Each worker owns its tracer exclusively for the whole batch;
        // RunOnAll's barrier publishes the events to the coordinator.
        trace::Tracer* tracer =
            tracers_.empty() ? nullptr : tracers_[worker].get();
        for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
             i < requests.size();
             i = cursor.fetch_add(1, std::memory_order_relaxed)) {
          Result& slot = (*results)[i];
          // Recycled slots carry the previous batch's answer; every
          // path below must start from an empty (but warm) slot.
          slot.elements.clear();
          // Admission control and between-request cancellation: shed
          // slots must not touch the structure at all.
          if (i >= admitted || cancel_requested()) {
            slot.status = ResultStatus::kShed;
            tally.CountStatus(slot.status);
            continue;
          }
          const auto start = Clock::now();
          const uint64_t work_before = tally.stats.work();
          {
            // Root span of the request: queue wait is the argument,
            // execution is the "exec" child, results_returned lands in
            // the self counts (charged before the span closes).
            trace::Span request_span(tracer, "request", &tally.stats);
            request_span.Arg("slot", i);
            request_span.Arg("k", requests[i].k);
            request_span.Arg(
                "queue_wait_ns",
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        start - batch_start)
                        .count()));
            ServeOne(structure, requests[i], batch_start, scratch, par,
                     &slot, &tally.stats, tracer);
            tally.stats.results_returned += slot.elements.size();
            request_span.Arg("status",
                             static_cast<uint64_t>(slot.status));
          }
          const auto stop = Clock::now();
          const uint64_t latency_ns = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                   start)
                  .count());
          tally.latency.Record(latency_ns);
          ++tally.queries;
          tally.CountStatus(slot.status);
          if (slow_query_ns_ > 0 && latency_ns >= slow_query_ns_) {
            tally.RecordSlow(SlowQuery{latency_ns, batch_seq, i,
                                       tally.stats.work() - work_before,
                                       slot.status});
          }
        }
      });
    }
    cancel_.store(false, std::memory_order_relaxed);

    if (metrics_ != nullptr) {
      trace::Span merge_span(coordinator, "merge");
      merge_span.Arg("batch", batch_seq);
      MetricsSnapshot batch;
      batch.batches = 1;
      for (const MetricsSnapshot& t : tallies_) batch.Merge(t);
      metrics_->Absorb(batch);
    }
  }

  // Primes EVERY worker's scratch arena by serving each request once on
  // each worker (results discarded, no metrics, no tracing). Batch
  // scheduling is first-come-first-served, so a fast batch can drain
  // before a parked worker wakes — leaving that worker's arena cold for
  // many batches. After Warmup, any request-to-worker assignment of a
  // workload drawn from these requests runs allocation-free (pools are
  // per-element-type, sized to the high-water mark across the set).
  void Warmup(const std::vector<Request>& requests) {
    typename EpochManager<Structure>::Pin pin;
    const Structure* structure = structure_;
    if (epochs_ != nullptr) {
      pin = epochs_->Acquire(reader_slot_);
      structure = pin.get();
    }
    pool_.RunOnAll([&](size_t worker) {
      Scratch* scratch = scratches_[worker].get();
      parallel::Context* par =
          contexts_.empty() ? nullptr : contexts_[worker].get();
      Result slot;
      QueryStats stats;
      const auto start = Clock::now();
      for (const Request& r : requests) {
        slot.elements.clear();
        ServeOne(structure, r, start, scratch, par, &slot, &stats,
                 nullptr);
      }
    });
  }

 private:
  using Clock = std::chrono::steady_clock;

  void Init(const Options& options) {
    // One scratch arena per worker, reused across requests AND batches:
    // after warm-up every pool sits at its high-water mark and the
    // steady-state query path allocates nothing. unique_ptr: Scratch is
    // non-movable (handles point back at it).
    scratches_.reserve(pool_.num_threads());
    for (size_t t = 0; t < pool_.num_threads(); ++t) {
      scratches_.push_back(std::make_unique<Scratch>());
    }
    // One intra-query Context per worker (so a worker's shard helpers
    // are as private to it as its scratch arena). Clamped against the
    // hardware so per-request workers times per-query shards never
    // oversubscribe the machine.
    size_t shards = options.intra_query_workers;
    if (shards > 1 && !options.unclamped_intra_query_workers) {
      const size_t hw = std::thread::hardware_concurrency();
      if (hw > 0) {
        const size_t per_worker = hw / pool_.num_threads();
        if (shards > per_worker) shards = per_worker > 1 ? per_worker : 1;
      }
    }
    if (shards > 1) {
      contexts_.reserve(pool_.num_threads());
      for (size_t t = 0; t < pool_.num_threads(); ++t) {
        contexts_.push_back(std::make_unique<parallel::Context>(shards));
      }
    }
    if (options.trace_capacity > 0) {
      tracers_.reserve(pool_.num_threads() + 1);
      for (size_t t = 0; t < pool_.num_threads() + 1; ++t) {
        tracers_.push_back(
            std::make_unique<trace::Tracer>(options.trace_capacity));
      }
    }
  }

  void ServeOne(const Structure* structure, const Request& r,
                Clock::time_point batch_start, Scratch* scratch,
                parallel::Context* par, Result* slot, QueryStats* stats,
                trace::Tracer* tracer) const {
    trace::Span span(tracer, "exec", stats);
    const bool has_deadline = r.deadline_ns > 0;
    const auto deadline =
        batch_start + std::chrono::nanoseconds(r.deadline_ns);
    if (has_deadline && Clock::now() >= deadline) {
      // Already late: the empty prefix, flagged. Zero structure work.
      slot->status = ResultStatus::kDeadlineExceeded;
      return;
    }
    if (r.cost_budget == 0 && !has_deadline) {
      StructureQueryInto(structure, r.predicate, r.k, scratch, par,
                         &slot->elements, stats, tracer);
      slot->status = ResultStatus::kOk;
      return;
    }
    // Cost-monitored path: staged doubling with the stop predicate
    // consulted between stages; the reason for the LAST stop check to
    // fire decides the flag.
    const uint64_t work_start = stats->work();
    ResultStatus stop_reason = ResultStatus::kOk;
    auto should_stop = [&] {
      if (cancel_requested()) {
        stop_reason = ResultStatus::kDegraded;
        return true;
      }
      if (r.cost_budget > 0 &&
          stats->work() - work_start >= r.cost_budget) {
        stop_reason = ResultStatus::kDegraded;
        return true;
      }
      if (has_deadline && Clock::now() >= deadline) {
        stop_reason = ResultStatus::kDeadlineExceeded;
        return true;
      }
      return false;
    };
    const BudgetedRun run =
        BudgetedTopKInto(*structure, r.predicate, r.k, should_stop,
                         scratch, &slot->elements, stats, tracer);
    slot->status = run.complete ? ResultStatus::kOk : stop_reason;
  }

  // The ShareableTopKStructure concept only guarantees Query(q, k,
  // stats); prefer the scratch-threaded QueryInto when the structure
  // has one, passing the intra-query Context and the tracer through
  // when they are accepted (the cost-budgeted path above never gets a
  // Context: staged doubling re-issues budgeted — never degenerate —
  // fetches, so there is nothing to shard).
  void StructureQueryInto(const Structure* structure, const Predicate& q,
                          size_t k, Scratch* scratch,
                          parallel::Context* par,
                          std::vector<Element>* out, QueryStats* stats,
                          trace::Tracer* tracer) const {
    if constexpr (requires {
                    structure->QueryInto(q, k, scratch, out, stats,
                                         tracer, par);
                  }) {
      structure->QueryInto(q, k, scratch, out, stats, tracer, par);
    } else if constexpr (requires {
                           structure->QueryInto(q, k, scratch, out,
                                                stats, par);
                         }) {
      structure->QueryInto(q, k, scratch, out, stats, par);
    } else if constexpr (requires {
                           structure->QueryInto(q, k, scratch, out,
                                                stats, tracer);
                         }) {
      structure->QueryInto(q, k, scratch, out, stats, tracer);
    } else if constexpr (requires {
                           structure->QueryInto(q, k, scratch, out,
                                                stats);
                         }) {
      structure->QueryInto(q, k, scratch, out, stats);
    } else if constexpr (requires {
                           structure->Query(q, k, stats, tracer);
                         }) {
      *out = structure->Query(q, k, stats, tracer);
    } else {
      *out = structure->Query(q, k, stats);
    }
  }

  // Exactly one of structure_ (static mode, lifetime-pinned) and
  // epochs_ (epoch mode, pinned per batch) is non-null.
  const Structure* structure_ = nullptr;
  EpochManager<Structure>* epochs_ = nullptr;
  size_t reader_slot_ = 0;
  uint64_t last_batch_epoch_ = 0;
  Metrics* metrics_;
  size_t max_batch_;
  uint64_t slow_query_ns_;
  std::atomic<bool> cancel_{false};
  uint64_t batch_seq_ = 0;
  // One tracer per worker plus the coordinator's (last); empty when
  // tracing is off. unique_ptr: Tracer is non-movable.
  std::vector<std::unique_ptr<trace::Tracer>> tracers_;
  ThreadPool pool_;
  // Per-worker accounting and scratch arenas, recycled across batches
  // (Reset keeps capacity; the arenas never shrink). Worker t touches
  // only tallies_[t] / scratches_[t] during a batch, so neither needs
  // synchronization beyond RunOnAll's barrier.
  // Thread-safety: guarded by the batch barrier (QueryBatchInto is not
  // itself concurrent; see class comment).
  std::vector<MetricsSnapshot> tallies_;
  std::vector<std::unique_ptr<Scratch>> scratches_;
  // Per-worker intra-query shard contexts (empty = serial). Worker t
  // touches only contexts_[t], same ownership discipline as
  // scratches_[t]. unique_ptr: Context is non-movable (it owns parked
  // threads).
  std::vector<std::unique_ptr<parallel::Context>> contexts_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_ENGINE_H_
