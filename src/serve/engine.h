// Concurrent batched top-k query engine.
//
// A QueryEngine wraps one shared, already-built, const top-k structure
// and answers batches of (predicate, k) requests on a fixed thread
// pool. Workers self-schedule requests off an atomic cursor (no
// per-task queue, so heterogeneous query costs balance automatically),
// write results into disjoint slots of the output vector, and charge
// all accounting to thread-local tallies; the only synchronization on
// the query path is the cursor's fetch_add. After the batch barrier the
// tallies are merged into an optional serve::Metrics registry.
//
// Thread-safety contract: the structure must satisfy
// ShareableTopKStructure — const-queryable with no hidden mutable
// state. EM-backed structures fail that concept (their BufferPool is
// single-threaded mutable state) and are rejected at compile time.
// Results are bitwise-identical to single-threaded Query calls: the
// structures are deterministic at query time, so only the interleaving
// of *accounting* differs — and QueryStats addition is commutative.

#ifndef TOPK_SERVE_ENGINE_H_
#define TOPK_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "serve/histogram.h"
#include "serve/metrics.h"
#include "serve/shareable.h"
#include "serve/thread_pool.h"

namespace topk::serve {

// One top-k request. Keyed by the predicate type, not the engine, so a
// batch can be replayed against every structure of the same problem.
template <typename Predicate>
struct Request {
  Predicate predicate;
  size_t k = 1;
};

template <ShareableTopKStructure Structure>
class QueryEngine {
 public:
  using Element = typename Structure::Element;
  using Predicate = typename Structure::Predicate;
  using Request = serve::Request<Predicate>;

  struct Options {
    size_t num_threads = 1;
  };

  // `structure` must outlive the engine. `metrics` may be null (no
  // registry) or shared between engines; it must outlive the engine.
  QueryEngine(const Structure* structure, const Options& options,
              Metrics* metrics = nullptr)
      : structure_(structure), metrics_(metrics),
        pool_(options.num_threads) {
    TOPK_CHECK(structure_ != nullptr);
  }

  size_t num_threads() const { return pool_.num_threads(); }

  // Answers requests[i] into slot i of the returned vector — order is
  // preserved regardless of which worker served which request.
  std::vector<std::vector<Element>> QueryBatch(
      const std::vector<Request>& requests) {
    std::vector<std::vector<Element>> results(requests.size());
    if (requests.empty()) {
      if (metrics_ != nullptr) {
        MetricsSnapshot empty;
        empty.batches = 1;
        metrics_->Absorb(empty);
      }
      return results;
    }

    std::vector<MetricsSnapshot> tallies(pool_.num_threads());
    std::atomic<size_t> cursor{0};
    pool_.RunOnAll([&](size_t worker) {
      MetricsSnapshot& tally = tallies[worker];
      for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < requests.size();
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const auto start = std::chrono::steady_clock::now();
        results[i] = structure_->Query(requests[i].predicate,
                                       requests[i].k, &tally.stats);
        const auto stop = std::chrono::steady_clock::now();
        tally.stats.results_returned += results[i].size();
        tally.latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                 start)
                .count()));
        ++tally.queries;
      }
    });

    if (metrics_ != nullptr) {
      MetricsSnapshot batch;
      batch.batches = 1;
      for (const MetricsSnapshot& t : tallies) batch.Merge(t);
      metrics_->Absorb(batch);
    }
    return results;
  }

 private:
  const Structure* structure_;
  Metrics* metrics_;
  ThreadPool pool_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_ENGINE_H_
