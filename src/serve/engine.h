// Concurrent batched top-k query engine with graceful degradation.
//
// A QueryEngine wraps one shared, already-built, const top-k structure
// and answers batches of (predicate, k) requests on a fixed thread
// pool. Workers self-schedule requests off an atomic cursor (no
// per-task queue, so heterogeneous query costs balance automatically),
// write results into disjoint slots of the output vector, and charge
// all accounting to thread-local tallies; the only synchronization on
// the query path is the cursor's fetch_add. After the batch barrier the
// tallies are merged into an optional serve::Metrics registry.
//
// Robustness layer (see serve/result.h for the per-slot contract):
//   * Admission control — Options::max_batch bounds how many requests
//     of a batch are admitted; the tail beyond it is shed (kShed)
//     without ever touching the structure.
//   * Cancellation — Cancel() is cooperative: checked between requests
//     (remaining ones shed) and between the stages of cost-monitored
//     loops (the prefix so far is returned flagged kDegraded). The
//     flag clears when the batch finishes.
//   * Cost budgets — Request::cost_budget bounds the QueryStats work
//     units a request may consume. The request runs as a staged
//     doubling loop (core/budgeted_query.h), so exceeding the budget
//     yields a flagged, heaviest-first PREFIX of the true top-k —
//     bounded work, never wrong output.
//   * Deadlines — Request::deadline_ns is a wall-clock bound relative
//     to batch start, checked before the request and between stages
//     (kDeadlineExceeded, same prefix guarantee).
//
// Thread-safety contract: the structure must satisfy
// ShareableTopKStructure — const-queryable with no hidden mutable
// state. EM-backed structures fail that concept (their BufferPool is
// single-threaded mutable state) and are rejected at compile time.
// Results are bitwise-identical to single-threaded Query calls: the
// structures are deterministic at query time, so only the interleaving
// of *accounting* differs — and QueryStats addition is commutative.

#ifndef TOPK_SERVE_ENGINE_H_
#define TOPK_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "core/budgeted_query.h"
#include "serve/histogram.h"
#include "serve/metrics.h"
#include "serve/result.h"
#include "serve/shareable.h"
#include "serve/thread_pool.h"

namespace topk::serve {

// One top-k request. Keyed by the predicate type, not the engine, so a
// batch can be replayed against every structure of the same problem.
template <typename Predicate>
struct Request {
  Predicate predicate;
  size_t k = 1;
  // Degradation knobs; 0 disables either. cost_budget is in QueryStats
  // work units (QueryStats::work); deadline_ns is wall-clock time from
  // batch start. A request with neither runs the plain single Query.
  uint64_t cost_budget = 0;
  uint64_t deadline_ns = 0;
};

template <ShareableTopKStructure Structure>
class QueryEngine {
 public:
  using Element = typename Structure::Element;
  using Predicate = typename Structure::Predicate;
  using Request = serve::Request<Predicate>;
  using Result = QueryResult<Element>;

  struct Options {
    size_t num_threads = 1;
    // Admission control: at most this many requests of a batch are
    // served; the rest are shed. 0 = unbounded.
    size_t max_batch = 0;
  };

  // `structure` must outlive the engine. `metrics` may be null (no
  // registry) or shared between engines; it must outlive the engine.
  QueryEngine(const Structure* structure, const Options& options,
              Metrics* metrics = nullptr)
      : structure_(structure), metrics_(metrics), max_batch_(options.max_batch),
        pool_(options.num_threads) {
    TOPK_CHECK(structure_ != nullptr);
  }

  size_t num_threads() const { return pool_.num_threads(); }

  // Requests cooperative cancellation of the current (or, if none is
  // running, the next) batch: unstarted requests are shed, in-flight
  // cost-monitored loops stop at the next stage boundary with a
  // degraded prefix. Safe to call from any thread; the flag clears when
  // the batch completes.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  // Answers requests[i] into slot i of the returned vector — order is
  // preserved regardless of which worker served which request.
  std::vector<Result> QueryBatch(const std::vector<Request>& requests) {
    std::vector<Result> results(requests.size());
    if (requests.empty()) {
      cancel_.store(false, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        MetricsSnapshot empty;
        empty.batches = 1;
        metrics_->Absorb(empty);
      }
      return results;
    }

    const size_t admitted =
        max_batch_ == 0 ? requests.size()
                        : (requests.size() < max_batch_ ? requests.size()
                                                        : max_batch_);
    const auto batch_start = Clock::now();
    std::vector<MetricsSnapshot> tallies(pool_.num_threads());
    std::atomic<size_t> cursor{0};
    pool_.RunOnAll([&](size_t worker) {
      MetricsSnapshot& tally = tallies[worker];
      for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < requests.size();
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        Result& slot = results[i];
        // Admission control and between-request cancellation: shed
        // slots must not touch the structure at all.
        if (i >= admitted || cancel_requested()) {
          slot.status = ResultStatus::kShed;
          tally.CountStatus(slot.status);
          continue;
        }
        const auto start = Clock::now();
        ServeOne(requests[i], batch_start, &slot, &tally.stats);
        const auto stop = Clock::now();
        tally.stats.results_returned += slot.elements.size();
        tally.latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                 start)
                .count()));
        ++tally.queries;
        tally.CountStatus(slot.status);
      }
    });
    cancel_.store(false, std::memory_order_relaxed);

    if (metrics_ != nullptr) {
      MetricsSnapshot batch;
      batch.batches = 1;
      for (const MetricsSnapshot& t : tallies) batch.Merge(t);
      metrics_->Absorb(batch);
    }
    return results;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void ServeOne(const Request& r, Clock::time_point batch_start,
                Result* slot, QueryStats* stats) const {
    const bool has_deadline = r.deadline_ns > 0;
    const auto deadline =
        batch_start + std::chrono::nanoseconds(r.deadline_ns);
    if (has_deadline && Clock::now() >= deadline) {
      // Already late: the empty prefix, flagged. Zero structure work.
      slot->status = ResultStatus::kDeadlineExceeded;
      return;
    }
    if (r.cost_budget == 0 && !has_deadline) {
      slot->elements = structure_->Query(r.predicate, r.k, stats);
      slot->status = ResultStatus::kOk;
      return;
    }
    // Cost-monitored path: staged doubling with the stop predicate
    // consulted between stages; the reason for the LAST stop check to
    // fire decides the flag.
    const uint64_t work_start = stats->work();
    ResultStatus stop_reason = ResultStatus::kOk;
    auto should_stop = [&] {
      if (cancel_requested()) {
        stop_reason = ResultStatus::kDegraded;
        return true;
      }
      if (r.cost_budget > 0 &&
          stats->work() - work_start >= r.cost_budget) {
        stop_reason = ResultStatus::kDegraded;
        return true;
      }
      if (has_deadline && Clock::now() >= deadline) {
        stop_reason = ResultStatus::kDeadlineExceeded;
        return true;
      }
      return false;
    };
    BudgetedResult<Element> b =
        BudgetedTopK(*structure_, r.predicate, r.k, should_stop, stats);
    slot->elements = std::move(b.elements);
    slot->status = b.complete ? ResultStatus::kOk : stop_reason;
  }

  const Structure* structure_;
  Metrics* metrics_;
  size_t max_batch_;
  std::atomic<bool> cancel_{false};
  ThreadPool pool_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_ENGINE_H_
