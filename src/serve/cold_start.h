// Cold start: from a recovered dataset to a serving epoch chain.
//
// The durable EM substrate (em/durable_store.h — a layer this module
// deliberately does NOT include; serve sits below em in the layering
// DAG) recovers a process to an exact element set: newest checkpoint
// plus the replayed WAL tail. This header is the hand-off point on the
// serving side: build the initial in-memory structure from those
// elements and publish it as epoch 1 of a fresh EpochManager, so
// QueryEngines register and serve immediately while the writer resumes
// the (WAL-committed) update stream through the usual shadow-mutate /
// Publish cycle.
//
// The factory keeps the two layers decoupled: callers that recovered
// from a DurableStore pass `store.Elements()` here; callers
// bootstrapping from any other source (a snapshot file, a migration)
// use the same entry point. Compile-time shareability of the built
// structure is enforced exactly as for a hand-constructed EpochManager.

#ifndef TOPK_SERVE_COLD_START_H_
#define TOPK_SERVE_COLD_START_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "serve/epoch.h"
#include "serve/shareable.h"

namespace topk::serve {

// Builds `factory(std::move(recovered))` and publishes it as epoch 1.
// The structure type is deduced from the factory's return type and
// gated by ShareableTopKStructure (EM-backed structures are rejected at
// compile time — an epoch is shared const across worker threads; the
// EM pages stay the durable source of truth, the epoch structure is
// the RAM serving copy).
template <typename Element, typename Factory>
auto ColdStart(std::vector<Element> recovered, Factory&& factory,
               size_t max_readers = 64)
    -> std::unique_ptr<
        EpochManager<std::invoke_result_t<Factory, std::vector<Element>>>> {
  using S = std::invoke_result_t<Factory, std::vector<Element>>;
  static_assert(ShareableTopKStructure<S>,
                "cold start publishes the built structure as a shared "
                "epoch; it must be thread-shareable");
  return std::make_unique<EpochManager<S>>(
      std::forward<Factory>(factory)(std::move(recovered)), max_readers);
}

}  // namespace topk::serve

#endif  // TOPK_SERVE_COLD_START_H_
