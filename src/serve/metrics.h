// The serving layer's observability registry.
//
// Workers accumulate thread-local tallies (QueryStats + latency
// histogram + query counts); after each batch barrier the engine folds
// them into a Metrics registry under a mutex — the hot path never
// synchronizes. ToJson() renders one self-describing JSON object whose
// "stats" keys come straight from QueryStats::ForEachField, so a
// counter added to QueryStats shows up in the export (and in
// tools/summarize_bench.py) without touching this file.

#ifndef TOPK_SERVE_METRICS_H_
#define TOPK_SERVE_METRICS_H_

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/stats.h"
#include "serve/histogram.h"
#include "serve/result.h"

namespace topk::serve {

// One request that exceeded the engine's slow_query_ns threshold.
struct SlowQuery {
  uint64_t latency_ns = 0;
  uint64_t batch = 0;  // batch sequence number
  uint64_t slot = 0;   // request index within the batch
  uint64_t work = 0;   // QueryStats::work() attributable to the request
  ResultStatus status = ResultStatus::kOk;
};

// One thread's (or one batch's) worth of accounting; plain data.
struct MetricsSnapshot {
  // Bound on the retained slow-query log: the top-N by latency survive
  // Merge, the rest are dropped (the histogram keeps the full
  // distribution; this log exists to name the outliers).
  static constexpr size_t kMaxSlowQueries = 8;

  QueryStats stats;
  LatencyHistogram latency;
  uint64_t queries = 0;  // requests actually served (shed ones excluded)
  uint64_t batches = 0;
  // Degradation outcomes, one count per request slot (ok + degraded +
  // deadline_exceeded == queries; shed slots never ran).
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  // Descending by latency_ns; at most kMaxSlowQueries entries.
  std::vector<SlowQuery> slow_queries;

  void CountStatus(ResultStatus s) {
    switch (s) {
      case ResultStatus::kOk: ++ok; break;
      case ResultStatus::kDegraded: ++degraded; break;
      case ResultStatus::kShed: ++shed; break;
      case ResultStatus::kDeadlineExceeded: ++deadline_exceeded; break;
    }
  }

  void RecordSlow(const SlowQuery& q) {
    auto pos = std::upper_bound(
        slow_queries.begin(), slow_queries.end(), q,
        [](const SlowQuery& a, const SlowQuery& b) {
          return a.latency_ns > b.latency_ns;
        });
    if (pos == slow_queries.end() &&
        slow_queries.size() >= kMaxSlowQueries) {
      return;  // slower entries already fill the log
    }
    slow_queries.insert(pos, q);
    if (slow_queries.size() > kMaxSlowQueries) slow_queries.pop_back();
  }

  // Back to the empty state without releasing memory: the slow-query
  // log keeps its capacity, so a recycled per-worker tally records
  // whole batches allocation-free.
  void Reset() {
    stats = QueryStats{};
    latency.Reset();
    queries = 0;
    batches = 0;
    ok = 0;
    degraded = 0;
    shed = 0;
    deadline_exceeded = 0;
    slow_queries.clear();
  }

  void Merge(const MetricsSnapshot& o) {
    stats += o.stats;
    latency.Merge(o.latency);
    queries += o.queries;
    batches += o.batches;
    ok += o.ok;
    degraded += o.degraded;
    shed += o.shed;
    deadline_exceeded += o.deadline_exceeded;
    for (const SlowQuery& q : o.slow_queries) RecordSlow(q);
  }
};

// Renders a snapshot as one JSON object (no trailing newline), e.g.
//   {"queries":128,"batches":2,
//    "results":{"ok":120,"degraded":6,"shed":0,"deadline_exceeded":2},
//    "stats":{"nodes_visited":9000,...},
//    "latency_ns":{"count":128,"mean":810.5,"min":402,"p50":771.0,
//                  "p95":1523.1,"p99":1898.0,"max":2210},
//    "slow_queries":[{"latency_ns":2210,"batch":1,"slot":7,"work":900,
//                     "status":"ok"},...]}
// (the "slow_queries" key appears only when the log is non-empty).
// Formatting goes through common/format.h's AppendF, which grows the
// output on demand — near-saturated uint64 counters and huge doubles
// (%.1f of 1e300 prints 300+ characters) render in full instead of
// truncating into malformed JSON as the old fixed 256-byte buffer did.
inline std::string ToJson(const MetricsSnapshot& s) {
  std::string out;
  out.reserve(512);
  AppendF(&out,
          "{\"queries\":%" PRIu64 ",\"batches\":%" PRIu64
          ",\"results\":{\"ok\":%" PRIu64 ",\"degraded\":%" PRIu64
          ",\"shed\":%" PRIu64 ",\"deadline_exceeded\":%" PRIu64
          "},\"stats\":{",
          s.queries, s.batches, s.ok, s.degraded, s.shed,
          s.deadline_exceeded);
  bool first = true;
  QueryStats::ForEachField([&](const char* name, auto member) {
    AppendF(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name,
            s.stats.*member);
    first = false;
  });
  const LatencyHistogram& h = s.latency;
  AppendF(&out,
          "},\"latency_ns\":{\"count\":%" PRIu64 ",\"mean\":%.1f,\"min\":%"
          PRIu64 ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"max\":%" PRIu64
          "}",
          h.count(), h.mean_ns(), h.min_ns(), h.PercentileNs(50.0),
          h.PercentileNs(95.0), h.PercentileNs(99.0), h.max_ns());
  if (!s.slow_queries.empty()) {
    out += ",\"slow_queries\":[";
    for (size_t i = 0; i < s.slow_queries.size(); ++i) {
      const SlowQuery& q = s.slow_queries[i];
      AppendF(&out,
              "%s{\"latency_ns\":%" PRIu64 ",\"batch\":%" PRIu64
              ",\"slot\":%" PRIu64 ",\"work\":%" PRIu64
              ",\"status\":\"%s\"}",
              i == 0 ? "" : ",", q.latency_ns, q.batch, q.slot, q.work,
              ToString(q.status));
    }
    out += ']';
  }
  out += '}';
  return out;
}

// Shared registry: many engines (or many batches of one engine) may
// absorb into the same Metrics concurrently.
class Metrics {
 public:
  void Absorb(const MetricsSnapshot& s) {
    std::lock_guard<std::mutex> lock(mu_);
    agg_.Merge(s);
  }

  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return agg_;
  }

  std::string ToJson() const { return serve::ToJson(Snapshot()); }

 private:
  mutable std::mutex mu_;
  MetricsSnapshot agg_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_METRICS_H_
