// The serving layer's observability registry.
//
// Workers accumulate thread-local tallies (QueryStats + latency
// histogram + query counts); after each batch barrier the engine folds
// them into a Metrics registry under a mutex — the hot path never
// synchronizes. ToJson() renders one self-describing JSON object whose
// "stats" keys come straight from QueryStats::ForEachField, so a
// counter added to QueryStats shows up in the export (and in
// tools/summarize_bench.py) without touching this file.

#ifndef TOPK_SERVE_METRICS_H_
#define TOPK_SERVE_METRICS_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/stats.h"
#include "serve/histogram.h"
#include "serve/result.h"

namespace topk::serve {

// One thread's (or one batch's) worth of accounting; plain data.
struct MetricsSnapshot {
  QueryStats stats;
  LatencyHistogram latency;
  uint64_t queries = 0;  // requests actually served (shed ones excluded)
  uint64_t batches = 0;
  // Degradation outcomes, one count per request slot (ok + degraded +
  // deadline_exceeded == queries; shed slots never ran).
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;

  void CountStatus(ResultStatus s) {
    switch (s) {
      case ResultStatus::kOk: ++ok; break;
      case ResultStatus::kDegraded: ++degraded; break;
      case ResultStatus::kShed: ++shed; break;
      case ResultStatus::kDeadlineExceeded: ++deadline_exceeded; break;
    }
  }

  void Merge(const MetricsSnapshot& o) {
    stats += o.stats;
    latency.Merge(o.latency);
    queries += o.queries;
    batches += o.batches;
    ok += o.ok;
    degraded += o.degraded;
    shed += o.shed;
    deadline_exceeded += o.deadline_exceeded;
  }
};

// Renders a snapshot as one JSON object (no trailing newline), e.g.
//   {"queries":128,"batches":2,
//    "results":{"ok":120,"degraded":6,"shed":0,"deadline_exceeded":2},
//    "stats":{"nodes_visited":9000,...},
//    "latency_ns":{"count":128,"mean":810.5,"min":402,"p50":771.0,
//                  "p95":1523.1,"p99":1898.0,"max":2210}}
inline std::string ToJson(const MetricsSnapshot& s) {
  char buf[256];
  std::string out;
  out.reserve(512);
  std::snprintf(buf, sizeof(buf),
                "{\"queries\":%" PRIu64 ",\"batches\":%" PRIu64
                ",\"results\":{\"ok\":%" PRIu64 ",\"degraded\":%" PRIu64
                ",\"shed\":%" PRIu64 ",\"deadline_exceeded\":%" PRIu64
                "},\"stats\":{",
                s.queries, s.batches, s.ok, s.degraded, s.shed,
                s.deadline_exceeded);
  out += buf;
  bool first = true;
  QueryStats::ForEachField([&](const char* name, auto member) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                  first ? "" : ",", name, s.stats.*member);
    out += buf;
    first = false;
  });
  const LatencyHistogram& h = s.latency;
  std::snprintf(buf, sizeof(buf),
                "},\"latency_ns\":{\"count\":%" PRIu64
                ",\"mean\":%.1f,\"min\":%" PRIu64
                ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"max\":%" PRIu64
                "}}",
                h.count(), h.mean_ns(), h.min_ns(), h.PercentileNs(50.0),
                h.PercentileNs(95.0), h.PercentileNs(99.0), h.max_ns());
  out += buf;
  return out;
}

// Shared registry: many engines (or many batches of one engine) may
// absorb into the same Metrics concurrently.
class Metrics {
 public:
  void Absorb(const MetricsSnapshot& s) {
    std::lock_guard<std::mutex> lock(mu_);
    agg_.Merge(s);
  }

  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return agg_;
  }

  std::string ToJson() const { return serve::ToJson(Snapshot()); }

 private:
  mutable std::mutex mu_;
  MetricsSnapshot agg_;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_METRICS_H_
