// Fixed-size thread pool running "parallel regions".
//
// The batched engine needs exactly one primitive: run a job on every
// worker simultaneously and wait for all of them (the workers then
// self-schedule requests off a shared atomic cursor, so there is no
// per-task queue to contend on). Workers are spawned once in the
// constructor and parked on a condition variable between regions.
//
// Single-owner: RunOnAll may not be called concurrently with itself
// (checked). The job callable must itself be safe to invoke from many
// threads at once.
//
// Dispatch is a FunctionRef (common/function_ref.h), not a
// std::function: RunOnAll blocks until every worker has returned, so
// the job only ever needs to be *referenced* for the duration of the
// call — owning type-erasure would add a possible heap allocation and
// an extra indirection on the per-batch path for nothing.

#ifndef TOPK_SERVE_THREAD_POOL_H_
#define TOPK_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/function_ref.h"

namespace topk::serve {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    TOPK_CHECK(num_threads >= 1);
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Runs job(worker_index) once on every worker and blocks until every
  // call has returned. The FunctionRef only references the callable;
  // the blocking barrier is what keeps it alive long enough.
  void RunOnAll(FunctionRef<void(size_t)> job) {
    std::unique_lock<std::mutex> lock(mu_);
    TOPK_CHECK(running_ == 0);  // no concurrent RunOnAll
    job_ = &job;
    ++generation_;
    running_ = threads_.size();
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void WorkerLoop(size_t index) {
    uint64_t seen_generation = 0;
    for (;;) {
      const FunctionRef<void(size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
      }
      (*job)(index);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--running_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const FunctionRef<void(size_t)>* job_ = nullptr;  // valid while running
  uint64_t generation_ = 0;
  size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace topk::serve

#endif  // TOPK_SERVE_THREAD_POOL_H_
