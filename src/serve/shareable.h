// Compile-time gate: which structures may be shared across QueryEngine
// worker threads?
//
// Every static structure in the repo is const-queryable with no hidden
// mutable state, so concurrent Query calls on one instance are safe —
// EXCEPT the external-memory structures: even a read-only EM query
// mutates its BufferPool (LRU list, frames, hit/miss and I/O counters),
// which is deliberately single-threaded state. Those are rejected here
// at compile time rather than corrupting I/O accounting at runtime.
//
// Detection: the EM substrates carry `static constexpr bool
// kExternalMemory = true`, and the reductions export their substrate
// types (`Prioritized`, `MaxSubstrate`, `CounterStructure`), so the
// check recurses through e.g. CoreSetTopK<Problem, EmRange1dPrioritized>
// without the reductions knowing anything about external memory.
//
// Contract for NEW structures (enforced by tools/lint.py's
// mutable-member check and the negative tests in
// tests/core_properties_test.cc):
//   * a structure whose const query path touches mutable state must
//     either declare `static constexpr bool kExternalMemory = true`
//     (single-threaded EM state) or `static constexpr bool
//     kThreadSafeQuery = false` (any other hidden mutability, e.g. a
//     memoization cache) — both are rejected here;
//   * a reduction/wrapper template must export its substrate type
//     aliases so this check can recurse; hiding a substrate hides its
//     markers.

#ifndef TOPK_SERVE_SHAREABLE_H_
#define TOPK_SERVE_SHAREABLE_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "core/problem.h"

namespace topk::serve {

template <typename S>
consteval bool UsesExternalMemory() {
  if constexpr (requires {
                  { S::kExternalMemory } -> std::convertible_to<bool>;
                }) {
    if (S::kExternalMemory) return true;
  }
  if constexpr (requires { typename S::Prioritized; }) {
    if (UsesExternalMemory<typename S::Prioritized>()) return true;
  }
  if constexpr (requires { typename S::MaxSubstrate; }) {
    if (UsesExternalMemory<typename S::MaxSubstrate>()) return true;
  }
  if constexpr (requires { typename S::CounterStructure; }) {
    if (UsesExternalMemory<typename S::CounterStructure>()) return true;
  }
  return false;
}

// True when S (or any exported substrate) declares its const query path
// thread-unsafe via `static constexpr bool kThreadSafeQuery = false`.
template <typename S>
consteval bool DeclaresUnshareableQuery() {
  if constexpr (requires {
                  { S::kThreadSafeQuery } -> std::convertible_to<bool>;
                }) {
    if (!S::kThreadSafeQuery) return true;
  }
  if constexpr (requires { typename S::Prioritized; }) {
    if (DeclaresUnshareableQuery<typename S::Prioritized>()) return true;
  }
  if constexpr (requires { typename S::MaxSubstrate; }) {
    if (DeclaresUnshareableQuery<typename S::MaxSubstrate>()) return true;
  }
  if constexpr (requires { typename S::CounterStructure; }) {
    if (DeclaresUnshareableQuery<typename S::CounterStructure>()) return true;
  }
  return false;
}

// Any top-k structure: const-queryable `Query(q, k, stats)` returning
// the k heaviest matches. The canonical contract lives in
// core/problem.h; this re-export keeps the serve:: spelling stable.
template <typename S>
concept TopKStructure = ::topk::TopKStructure<S>;

// A top-k structure whose const queries are safe to issue from many
// threads against one shared instance.
template <typename S>
concept ShareableTopKStructure =
    TopKStructure<S> && !UsesExternalMemory<S>() &&
    !DeclaresUnshareableQuery<S>();

}  // namespace topk::serve

#endif  // TOPK_SERVE_SHAREABLE_H_
