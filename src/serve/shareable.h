// Compile-time gate: which structures may be shared across QueryEngine
// worker threads?
//
// Every static structure in the repo is const-queryable with no hidden
// mutable state, so concurrent Query calls on one instance are safe —
// EXCEPT the external-memory structures: even a read-only EM query
// mutates its BufferPool (LRU list, frames, hit/miss and I/O counters),
// which is deliberately single-threaded state. Those are rejected here
// at compile time rather than corrupting I/O accounting at runtime.
//
// Detection: the EM substrates carry `static constexpr bool
// kExternalMemory = true`, and the reductions export their substrate
// types (`Prioritized`, `MaxSubstrate`, `CounterStructure`), so the
// check recurses through e.g. CoreSetTopK<Problem, EmRange1dPrioritized>
// without the reductions knowing anything about external memory.

#ifndef TOPK_SERVE_SHAREABLE_H_
#define TOPK_SERVE_SHAREABLE_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace topk::serve {

template <typename S>
consteval bool UsesExternalMemory() {
  if constexpr (requires {
                  { S::kExternalMemory } -> std::convertible_to<bool>;
                }) {
    if (S::kExternalMemory) return true;
  }
  if constexpr (requires { typename S::Prioritized; }) {
    if (UsesExternalMemory<typename S::Prioritized>()) return true;
  }
  if constexpr (requires { typename S::MaxSubstrate; }) {
    if (UsesExternalMemory<typename S::MaxSubstrate>()) return true;
  }
  if constexpr (requires { typename S::CounterStructure; }) {
    if (UsesExternalMemory<typename S::CounterStructure>()) return true;
  }
  return false;
}

// Any top-k structure: const-queryable `Query(q, k, stats)` returning
// the k heaviest matches.
template <typename S>
concept TopKStructure =
    requires(const S& s, const typename S::Predicate& q, QueryStats* stats) {
      typename S::Element;
      { s.size() } -> std::convertible_to<size_t>;
      { s.Query(q, size_t{1}, stats) } ->
          std::convertible_to<std::vector<typename S::Element>>;
    };

// A top-k structure whose const queries are safe to issue from many
// threads against one shared instance.
template <typename S>
concept ShareableTopKStructure = TopKStructure<S> && !UsesExternalMemory<S>();

}  // namespace topk::serve

#endif  // TOPK_SERVE_SHAREABLE_H_
