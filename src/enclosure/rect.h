// Problem definition: 2D point enclosure (Theorem 5).
//
// D is a set of weighted axis-parallel rectangles; a predicate is a
// point q, matched by every rectangle containing it. The paper's
// dating-website query ("the 10 gentlemen with the highest salaries such
// that my age and height fall into their preferred ranges") is this
// problem; examples/dating_site.cc runs it.
//
// Polynomial boundedness: q(D) is constant within each cell of the grid
// induced by the 2n x-endpoints and 2n y-endpoints — at most
// (2n+1)^2 <= n^4 outcomes for n >= 2, so lambda = 4.

#ifndef TOPK_ENCLOSURE_RECT_H_
#define TOPK_ENCLOSURE_RECT_H_

#include <cstdint>

namespace topk::enclosure {

struct Rect {
  double x1 = 0, x2 = 0;  // x-extent [x1, x2]
  double y1 = 0, y2 = 0;  // y-extent [y1, y2]
  double weight = 0;
  uint64_t id = 0;
};

struct Point2 {
  double x = 0;
  double y = 0;
};

struct EnclosureProblem {
  using Element = Rect;
  using Predicate = Point2;
  static constexpr double kLambda = 4.0;

  static bool Matches(const Point2& q, const Rect& e) {
    return e.x1 <= q.x && q.x <= e.x2 && e.y1 <= q.y && q.y <= e.y2;
  }
};

}  // namespace topk::enclosure

#endif  // TOPK_ENCLOSURE_RECT_H_
