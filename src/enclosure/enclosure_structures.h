// 2D stabbing structures for point enclosure (Theorem 5, Section 5.2).
//
// Both structures share XSegmentTree: a segment tree over the x
// elementary slabs; every rectangle is assigned to O(log n) disjoint
// canonical nodes (so a query point's root-to-leaf x-path meets each
// rectangle at most once). Per canonical node, the rectangles assigned
// there all cover the query's x; what remains is 1D stabbing on y:
//
//   * EnclosurePrioritized — per-node y-interval-tree-of-PSTs
//     (IntervalTreeStabT, O(m) space): query cost O(log^3 n + t) with no
//     duplicates. Substitution for Rahul's O(n log* n) structure [27] —
//     same output-sensitive contract, heavier polylog.
//   * EnclosureMax — per-node slab stabbing-max (SlabMaxT, O(m) space):
//     the paper's own Section 5.2 construction minus fractional
//     cascading; O(log^2 n) query.
//
// Space engineering: canonical nodes holding few rectangles dominate by
// count, so nodes with <= kSmallNode rectangles store a flat
// weight-descending span in a shared arena instead of a full inner
// structure (scanning a span costs O(kSmallNode) beyond the reported
// elements, adding O(log n) overhead per query). Total space:
// O(n log n) elements + inner-structure overhead only on heavy nodes.

#ifndef TOPK_ENCLOSURE_ENCLOSURE_STRUCTURES_H_
#define TOPK_ENCLOSURE_ENCLOSURE_STRUCTURES_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "enclosure/rect.h"
#include "interval/interval_tree_stab.h"
#include "interval/stab_max.h"

namespace topk::enclosure {

struct RectYSpan {
  static double Lo(const Rect& e) { return e.y1; }
  static double Hi(const Rect& e) { return e.y2; }
};

// Segment tree over x-slabs with hybrid per-node storage. Inner is the
// heavy-node structure (built from the node's rectangles).
template <typename Inner, size_t kSmallNode = 32>
class XSegmentTree {
 public:
  explicit XSegmentTree(std::vector<Rect> data) : size_(data.size()) {
    coords_.reserve(2 * data.size());
    for (const Rect& e : data) {
      coords_.push_back(e.x1);
      coords_.push_back(e.x2);
    }
    std::sort(coords_.begin(), coords_.end());
    coords_.erase(std::unique(coords_.begin(), coords_.end()),
                  coords_.end());
    num_slabs_ = 2 * coords_.size() + 1;

    std::vector<std::vector<Rect>> buckets(4 * num_slabs_);
    for (const Rect& e : data) {
      if (e.x1 > e.x2 || e.y1 > e.y2) continue;
      const size_t a = 2 * CoordIndex(e.x1) + 1;
      const size_t b = 2 * CoordIndex(e.x2) + 1;
      Assign(&buckets, 1, 0, num_slabs_, a, b, e);
    }
    nodes_.assign(buckets.size(), NodeRef{});
    for (size_t v = 0; v < buckets.size(); ++v) {
      std::vector<Rect>& bucket = buckets[v];
      if (bucket.empty()) continue;
      if (bucket.size() <= kSmallNode) {
        std::sort(bucket.begin(), bucket.end(), ByWeightDesc());
        nodes_[v].begin = static_cast<uint32_t>(arena_.size());
        arena_.insert(arena_.end(), bucket.begin(), bucket.end());
        nodes_[v].end = static_cast<uint32_t>(arena_.size());
      } else {
        nodes_[v].inner = static_cast<int32_t>(inner_.size());
        inner_.emplace_back(std::move(bucket));
      }
      bucket.clear();
      bucket.shrink_to_fit();
    }
  }

  size_t size() const { return size_; }

  // Visits every canonical node on x's root-to-leaf path:
  // visit_span(first, last) for flat nodes (weight-descending),
  // visit_inner(inner) for heavy nodes; either returns false to stop.
  template <typename VisitSpan, typename VisitInner>
  void Descend(double x, VisitSpan&& visit_span, VisitInner&& visit_inner,
               QueryStats* stats) const {
    if (coords_.empty()) return;
    const size_t slab = SlabOf(x);
    size_t node = 1, lo = 0, hi = num_slabs_;
    while (true) {
      AddNodes(stats, 1);
      const NodeRef& ref = nodes_[node];
      if (ref.inner >= 0) {
        if (!visit_inner(inner_[ref.inner])) return;
      } else if (ref.begin < ref.end) {
        if (!visit_span(arena_.data() + ref.begin,
                        arena_.data() + ref.end)) {
          return;
        }
      }
      if (hi - lo == 1) break;
      const size_t mid = lo + (hi - lo) / 2;
      if (slab < mid) {
        node = 2 * node;
        hi = mid;
      } else {
        node = 2 * node + 1;
        lo = mid;
      }
    }
  }

 private:
  struct NodeRef {
    int32_t inner = -1;          // index into inner_, or -1
    uint32_t begin = 0, end = 0;  // arena span when inner == -1
  };

  size_t CoordIndex(double v) const {
    return static_cast<size_t>(
        std::lower_bound(coords_.begin(), coords_.end(), v) -
        coords_.begin());
  }

  size_t SlabOf(double x) const {
    const size_t j = CoordIndex(x);
    if (j < coords_.size() && coords_[j] == x) return 2 * j + 1;
    return 2 * j;
  }

  static void Assign(std::vector<std::vector<Rect>>* buckets, size_t node,
                     size_t lo, size_t hi, size_t a, size_t b,
                     const Rect& e) {
    if (b < lo || a >= hi) return;
    if (a <= lo && hi - 1 <= b) {
      (*buckets)[node].push_back(e);
      return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    Assign(buckets, 2 * node, lo, mid, a, b, e);
    Assign(buckets, 2 * node + 1, mid, hi, a, b, e);
  }

  size_t size_;
  std::vector<double> coords_;
  size_t num_slabs_ = 1;
  std::vector<NodeRef> nodes_;
  std::vector<Rect> arena_;   // flat small-node lists, weight-descending
  std::vector<Inner> inner_;  // heavy-node structures
};

class EnclosurePrioritized {
 public:
  using Element = Rect;
  using Predicate = Point2;

  explicit EnclosurePrioritized(std::vector<Rect> data)
      : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  template <typename Emit>
  void QueryPrioritized(const Point2& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    bool keep_going = true;
    tree_.Descend(
        q.x,
        [&](const Rect* first, const Rect* last) {
          for (const Rect* e = first; e != last; ++e) {
            if (!MeetsThreshold(*e, tau)) break;
            if (e->y1 <= q.y && q.y <= e->y2) {
              if (!(keep_going = emit(*e))) return false;
            }
          }
          return true;
        },
        [&](const YStab& inner) {
          inner.QueryPrioritized(
              q.y, tau,
              [&](const Rect& e) { return keep_going = emit(e); }, stats);
          return keep_going;
        },
        stats);
  }

 private:
  using YStab = interval::IntervalTreeStabT<Rect, RectYSpan>;
  XSegmentTree<YStab> tree_;
};

class EnclosureMax {
 public:
  using Element = Rect;
  using Predicate = Point2;

  explicit EnclosureMax(std::vector<Rect> data) : tree_(std::move(data)) {}

  size_t size() const { return tree_.size(); }

  static double QueryCostBound(size_t n, size_t block_size) {
    return EnclosurePrioritized::QueryCostBound(n, block_size);
  }

  std::optional<Rect> QueryMax(const Point2& q,
                               QueryStats* stats = nullptr) const {
    std::optional<Rect> best;
    auto consider = [&best](const Rect& e) {
      if (!best.has_value() || HeavierThan(e, *best)) best = e;
    };
    tree_.Descend(
        q.x,
        [&](const Rect* first, const Rect* last) {
          // Weight-descending: the first y-match is this node's max.
          for (const Rect* e = first; e != last; ++e) {
            if (e->y1 <= q.y && q.y <= e->y2) {
              consider(*e);
              break;
            }
          }
          return true;
        },
        [&](const YMax& inner) {
          std::optional<Rect> hit = inner.QueryMax(q.y, stats);
          if (hit.has_value()) consider(*hit);
          return true;
        },
        stats);
    return best;
  }

 private:
  using YMax = interval::SlabMaxT<Rect, RectYSpan>;
  XSegmentTree<YMax> tree_;
};

}  // namespace topk::enclosure

#endif  // TOPK_ENCLOSURE_ENCLOSURE_STRUCTURES_H_
