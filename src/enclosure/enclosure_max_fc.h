// 2D stabbing max with fractional cascading — the paper's Section 5.2
// construction *including* the [14] cascading step it invokes to drop
// the query cost from O(log^2 n) to O(log n).
//
// Same shape as EnclosureMax (x-segment tree of 1D slab-max structures)
// but with an explicit node tree whose per-node y-endpoint catalogs are
// fractionally cascaded: one binary search at the root, then O(1) per
// node on the descent to q.x's leaf slab. Space is ~2x the per-node
// catalogs (the augmented copies); bench_cascade measures the trade.

#ifndef TOPK_ENCLOSURE_ENCLOSURE_MAX_FC_H_
#define TOPK_ENCLOSURE_ENCLOSURE_MAX_FC_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/cascade.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "enclosure/enclosure_structures.h"
#include "enclosure/rect.h"
#include "interval/stab_max.h"

namespace topk::enclosure {

class EnclosureMaxCascading {
 public:
  using Element = Rect;
  using Predicate = Point2;

  explicit EnclosureMaxCascading(std::vector<Rect> data)
      : size_(data.size()) {
    coords_.reserve(2 * data.size());
    for (const Rect& e : data) {
      coords_.push_back(e.x1);
      coords_.push_back(e.x2);
    }
    std::sort(coords_.begin(), coords_.end());
    coords_.erase(std::unique(coords_.begin(), coords_.end()),
                  coords_.end());
    num_slabs_ = 2 * coords_.size() + 1;

    root_ = BuildSkeleton(0, num_slabs_);
    std::vector<std::vector<Rect>> buckets(nodes_.size());
    for (const Rect& e : data) {
      if (e.x1 > e.x2 || e.y1 > e.y2) continue;
      const size_t a = 2 * CoordIndex(e.x1) + 1;
      const size_t b = 2 * CoordIndex(e.x2) + 1;
      Assign(root_, a, b, e, &buckets);
    }
    std::vector<std::vector<double>> catalogs(nodes_.size());
    std::vector<std::array<int32_t, 2>> children(nodes_.size());
    inners_.reserve(nodes_.size());
    for (size_t v = 0; v < nodes_.size(); ++v) {
      inners_.emplace_back(std::move(buckets[v]));
      catalogs[v] = inners_.back().coords();
      children[v] = nodes_[v].children;
    }
    cascade_ = FractionalCascading(catalogs, children, root_);
  }

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    // One log, thanks to the cascading.
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  std::optional<Rect> QueryMax(const Point2& q,
                               QueryStats* stats = nullptr) const {
    if (coords_.empty()) return std::nullopt;
    std::optional<Rect> best;
    const size_t slab = SlabOf(q.x);
    FractionalCascading::Cursor cursor = cascade_.Start(q.y);
    int32_t v = root_;
    while (v >= 0) {
      AddNodes(stats, 1);
      const YMax& inner = inners_[v];
      const size_t j = cascade_.NativeLowerBound(cursor);
      const std::vector<double>& ys = inner.coords();
      const bool exact = j < ys.size() && ys[j] == q.y;
      std::optional<Rect> hit = inner.MaxAtCoordIndex(j, exact);
      if (hit.has_value() &&
          (!best.has_value() || HeavierThan(*hit, *best))) {
        best = *hit;
      }
      const SkeletonNode& node = nodes_[v];
      if (node.hi - node.lo == 1) break;
      const size_t mid = node.lo + (node.hi - node.lo) / 2;
      const int child = slab < mid ? 0 : 1;
      cursor = cascade_.Descend(cursor, child, q.y);
      v = node.children[child];
    }
    return best;
  }

 private:
  using YMax = interval::SlabMaxT<Rect, RectYSpan>;

  struct SkeletonNode {
    size_t lo, hi;  // slab range [lo, hi)
    std::array<int32_t, 2> children{-1, -1};
  };

  int32_t BuildSkeleton(size_t lo, size_t hi) {
    const int32_t idx = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(SkeletonNode{lo, hi, {-1, -1}});
    if (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      const int32_t l = BuildSkeleton(lo, mid);
      const int32_t r = BuildSkeleton(mid, hi);
      nodes_[idx].children = {l, r};
    }
    return idx;
  }

  void Assign(int32_t v, size_t a, size_t b, const Rect& e,
              std::vector<std::vector<Rect>>* buckets) {
    const SkeletonNode& node = nodes_[v];
    if (b < node.lo || a >= node.hi) return;
    if (a <= node.lo && node.hi - 1 <= b) {
      (*buckets)[v].push_back(e);
      return;
    }
    Assign(node.children[0], a, b, e, buckets);
    Assign(node.children[1], a, b, e, buckets);
  }

  size_t CoordIndex(double v) const {
    return static_cast<size_t>(
        std::lower_bound(coords_.begin(), coords_.end(), v) -
        coords_.begin());
  }

  size_t SlabOf(double x) const {
    const size_t j = CoordIndex(x);
    if (j < coords_.size() && coords_[j] == x) return 2 * j + 1;
    return 2 * j;
  }

  size_t size_;
  std::vector<double> coords_;  // sorted unique x endpoints
  size_t num_slabs_ = 1;
  std::vector<SkeletonNode> nodes_;
  std::vector<YMax> inners_;
  FractionalCascading cascade_;
  int32_t root_ = -1;
};

}  // namespace topk::enclosure

#endif  // TOPK_ENCLOSURE_ENCLOSURE_MAX_FC_H_
