// Bounded intra-query worker pool: helper threads for sharding ONE
// query's dominant loop, as opposed to serve::ThreadPool which spreads
// many requests across workers.
//
// Shape: a WorkerPool of W "shards" owns W-1 parked helper threads; the
// CALLING thread is always shard 0. RunShards(job) runs job(s) for
// every shard s in [0, W) — job(0) inline on the caller, the rest on
// the helpers — and returns only after all W calls have finished, so
// the job (a FunctionRef into the caller's stack frame) needs no
// lifetime management and the caller can read the helpers' results
// without extra synchronization: the barrier orders them.
//
// Helpers park on a condition variable between regions (never
// spin/sleep) and are spawned once, in the constructor — a query never
// pays thread creation. Single-owner like Scratch: RunShards may not be
// called concurrently with itself (checked); one WorkerPool belongs to
// one serving worker at a time.
//
// The job must only touch shard-private state (its slot of the caller's
// shard arrays) plus read-only shared state; the generation protocol's
// mutex is the only synchronization provided.

#ifndef TOPK_PARALLEL_WORKER_POOL_H_
#define TOPK_PARALLEL_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/function_ref.h"

namespace topk::parallel {

class WorkerPool {
 public:
  // `shards` total workers; shard 0 is the calling thread, so
  // `shards - 1` helper threads are spawned. shards == 1 is valid and
  // means RunShards degenerates to a plain inline call.
  explicit WorkerPool(size_t shards) : shards_(shards) {
    TOPK_CHECK(shards_ >= 1);
    helpers_.reserve(shards_ - 1);
    for (size_t i = 1; i < shards_; ++i) {
      helpers_.emplace_back([this, i] { HelperLoop(i); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : helpers_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t shards() const { return shards_; }

  // Runs job(s) once per shard — job(0) on this thread — and blocks
  // until every call has returned. The returning barrier makes all
  // helper writes visible to the caller.
  void RunShards(FunctionRef<void(size_t)> job) {
    if (helpers_.empty()) {
      job(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      TOPK_CHECK_EQ(running_, size_t{0});  // no concurrent RunShards
      job_ = &job;
      ++generation_;
      running_ = helpers_.size();
    }
    work_cv_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void HelperLoop(size_t shard) {
    uint64_t seen_generation = 0;
    for (;;) {
      const FunctionRef<void(size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
      }
      (*job)(shard);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--running_ == 0) done_cv_.notify_all();
      }
    }
  }

  size_t shards_;
  std::vector<std::thread> helpers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const FunctionRef<void(size_t)>* job_ = nullptr;  // valid while running
  uint64_t generation_ = 0;
  size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace topk::parallel

#endif  // TOPK_PARALLEL_WORKER_POOL_H_
