// Sharded flat scan: the parallel kernel behind every degenerate
// monitored fetch.
//
// When a reduction issues MonitoredQuery with budget > n (Theorem 1's
// k >= n/2 full scan and its large-k fallback fetches, TopFChain level
// walks at degenerate f, Theorem 2's terminal scan, CountingTopK's
// final tally, BinarySearchTopK's unbudgeted fetch), the budget is
// unreachable: the call is exactly "count the tau-qualifying matches
// and keep the k heaviest". That computation is embarrassingly
// parallel, and FlatScanTopKInto runs it sharded:
//
//   shard -> local top-k -> single merge.
//
// Each shard scans a contiguous slice of a FlatMirror (an SoA copy of
// the element set: the weights live in their own contiguous array so
// the tau prefilter is a branchless compare-and-compress over doubles —
// the measured SIMD-friendly layout; see EXPERIMENTS.md E27), selects
// into a per-shard pool pruned with SelectTopKUnordered (the E24
// strategy rule applies at the final merge), and the caller merges once
// with SelectTopK. Exactness: (weight, id) is a strict total order, so
// the union of per-shard top-min(k, |shard|) supersets the global
// top-k, and the exact match count reproduces every protocol decision
// the monitored query would have made (hit_budget <=> count >= budget).
//
// Accounting: this kernel charges NOTHING. The calling reduction
// charges the issuance through ChargeFlatScan (core/sink.h — the single
// charge site) after the merge, under one "flat_scan" span opened on
// the calling thread, so span self-costs still telescope to QueryStats
// totals and helpers never touch stats or tracers.
//
// Scratch: all shard pools are borrowed from the QUERY's Scratch by the
// calling thread before the region; helpers only ever touch the
// borrowed vectors' contents, never arena bookkeeping.

#ifndef TOPK_PARALLEL_FLAT_SCAN_H_
#define TOPK_PARALLEL_FLAT_SCAN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/function_ref.h"
#include "common/kselect.h"
#include "common/scratch.h"
#include "common/weighted.h"
#include "parallel/context.h"

namespace topk::parallel {

// Sharding is bounded: more shards than this never helps a memory-bound
// scan, and the fixed bound keeps the kernel's per-shard state in
// fixed-size arrays (no allocation on the query path).
inline constexpr size_t kMaxShards = 32;

// Below this the scan fits comfortably in one core's cache and the
// barrier handshake costs more than it saves.
inline constexpr size_t kMinShardedN = 4096;

// Structure-of-arrays copy of an element set for the sharded scan:
// elements in flat order plus a parallel contiguous weight array (the
// vectorizable tau prefilter reads ONLY this). Reductions build one at
// construction (before moving the data into their substrate) and, for
// dynamic structures, maintain it incrementally: Add appends, Remove is
// a swap-remove through a lazily built id -> slot index (updates are
// not the zero-alloc path).
template <typename E>
class FlatMirror {
 public:
  FlatMirror() = default;
  explicit FlatMirror(const std::vector<E>& data) {
    data_.reserve(data.size());
    weights_.reserve(data.size());
    for (const E& e : data) {
      data_.push_back(e);
      weights_.push_back(e.weight);
    }
  }

  size_t size() const { return data_.size(); }
  const E* elements() const { return data_.data(); }
  const double* weights() const { return weights_.data(); }

  void Add(const E& e) {
    if (indexed_) index_[e.id] = data_.size();
    data_.push_back(e);
    weights_.push_back(e.weight);
  }

  // Removes the element with this id (which must be present).
  void Remove(uint64_t id) {
    EnsureIndex();
    auto it = index_.find(id);
    TOPK_CHECK(it != index_.end());
    const size_t slot = it->second;
    index_.erase(it);
    const size_t last = data_.size() - 1;
    if (slot != last) {
      data_[slot] = data_[last];
      weights_[slot] = weights_[last];
      index_[data_[slot].id] = slot;
    }
    data_.pop_back();
    weights_.pop_back();
  }

 private:
  void EnsureIndex() {
    if (indexed_) return;
    index_.reserve(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) index_[data_[i].id] = i;
    indexed_ = true;
  }

  std::vector<E> data_;
  std::vector<double> weights_;
  std::unordered_map<uint64_t, size_t> index_;  // built on first Remove
  bool indexed_ = false;
};

// True when a monitored fetch with this budget over n flat elements
// should run through the sharded kernel: the budget must be
// unreachable (budget > n, i.e. the fetch is a degenerate full scan —
// that is what makes the exact-count substitution lossless), a
// multi-shard context must be present, and the scan must be big enough
// to amortize the barrier.
inline bool ShouldShard(Context* par, size_t n, size_t budget) {
  return par != nullptr && par->shards() > 1 && budget > n &&
         n >= kMinShardedN;
}

// Scans `flat` for elements matching `q` with weight >= tau, writes the
// min(k, matched) heaviest into *out sorted heaviest-first, and returns
// the EXACT match count. Runs sharded across par's workers when
// profitable (par may be null: serial). Charges nothing — see the file
// comment.
template <typename Problem>
size_t FlatScanTopKInto(const FlatMirror<typename Problem::Element>& flat,
                        const typename Problem::Predicate& q, double tau,
                        size_t k, Context* par, Scratch* scratch,
                        std::vector<typename Problem::Element>* out) {
  using Element = typename Problem::Element;
  const size_t n = flat.size();
  const Element* const elems = flat.elements();
  const double* const weights = flat.weights();
  const bool thresholded = tau != -std::numeric_limits<double>::infinity();
  // One prune batch per kBlock elements keeps the idx buffer L1-sized.
  constexpr size_t kBlock = 512;

  size_t shards = 1;
  if (par != nullptr && par->shards() > 1 && n >= kMinShardedN) {
    shards = par->shards() < kMaxShards ? par->shards() : kMaxShards;
  }

  std::array<std::optional<ScratchVec<Element>>, kMaxShards> pools;
  std::array<std::optional<ScratchVec<uint32_t>>, kMaxShards> idxs;
  std::array<size_t, kMaxShards> matched{};
  for (size_t s = 0; s < shards; ++s) {
    pools[s].emplace(scratch->Borrow<Element>());
    idxs[s].emplace(scratch->Borrow<uint32_t>());
    (*idxs[s]).resize(kBlock);
  }

  // Per-shard pools are pruned back to k whenever they reach this, and
  // the weakest survivor then prefilters further insertions.
  const size_t cap = (4 * k > size_t{256}) ? 4 * k : size_t{256};

  auto job = [&](size_t s) {
    const size_t lo = n * s / shards;
    const size_t hi = n * (s + 1) / shards;
    std::vector<Element>& pool = (*pools[s]).vec();
    std::vector<uint32_t>& idx = (*idxs[s]).vec();
    size_t count = 0;
    bool have_floor = false;
    Element floor{};  // weakest kept element once the pool has pruned
    auto consider = [&](const Element& e) {
      ++count;
      if (k == 0) return;
      if (have_floor && !HeavierThan(e, floor)) return;
      pool.push_back(e);
      if (pool.size() >= cap) {
        SelectTopKUnordered(&pool, k);
        floor = pool[0];
        for (size_t i = 1; i < pool.size(); ++i) {
          if (HeavierThan(floor, pool[i])) floor = pool[i];
        }
        have_floor = true;
      }
    };
    if (!thresholded) {
      for (size_t i = lo; i < hi; ++i) {
        if (Problem::Matches(q, elems[i])) consider(elems[i]);
      }
    } else {
      // Branchless compare-and-compress over the contiguous weight
      // array (the SoA tau prefilter), then the predicate only runs on
      // survivors. Blocked so idx stays cache-resident.
      for (size_t base = lo; base < hi; base += kBlock) {
        const size_t end = base + kBlock < hi ? base + kBlock : hi;
        size_t m = 0;
        for (size_t i = base; i < end; ++i) {
          idx[m] = static_cast<uint32_t>(i);
          m += static_cast<size_t>(weights[i] >= tau);
        }
        for (size_t j = 0; j < m; ++j) {
          const Element& e = elems[idx[j]];
          if (Problem::Matches(q, e)) consider(e);
        }
      }
    }
    matched[s] = count;
  };

  if (shards == 1) {
    job(0);
  } else {
    par->pool().RunShards(job);
  }

  size_t total = 0;
  out->clear();
  for (size_t s = 0; s < shards; ++s) {
    total += matched[s];
    for (const Element& e : (*pools[s]).vec()) out->push_back(e);
  }
  SelectTopK(out, k);

#ifdef TOPK_AUDIT
  // Shard/merge audit: the sharded answer must equal a serial brute
  // recount — same exact count, same (weight, id)-ordered top-k.
  {
    ScratchVec<Element> audit_pool = scratch->Borrow<Element>();
    for (size_t i = 0; i < n; ++i) {
      if ((!thresholded || weights[i] >= tau) &&
          Problem::Matches(q, elems[i])) {
        audit_pool.push_back(elems[i]);
      }
    }
    TOPK_CHECK_EQ(total, audit_pool.size());
    SelectTopK(&audit_pool, k);
    TOPK_CHECK_EQ(out->size(), audit_pool.size());
    for (size_t i = 0; i < audit_pool.size(); ++i) {
      TOPK_CHECK_EQ((*out)[i].id, audit_pool[i].id);
    }
  }
#endif

  return total;
}

}  // namespace topk::parallel

#endif  // TOPK_PARALLEL_FLAT_SCAN_H_
