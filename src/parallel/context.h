// Per-serving-worker handle for intra-query parallelism.
//
// A Context bundles the WorkerPool a query may shard its dominant loop
// across. The engine owns one Context per request worker (so
// num_threads x intra_query_workers threads exist in total, clamped
// against the hardware — see serve::QueryEngine::Options), and threads
// it through QueryInto as a nullable trailing parameter exactly like
// Scratch / QueryStats / Tracer: null (or shards() == 1) means "serial
// path", and every reduction must produce bit-identical results either
// way.
//
// Scratch ownership under sharding (see DESIGN.md "intra-query
// parallelism contract"): the Context deliberately owns NO Scratch.
// All shard-local pools are borrowed from the QUERY's own Scratch by
// the calling thread before the parallel region; each helper gets
// exactly one pre-borrowed pool slot and never touches Scratch
// bookkeeping, so the arena stays single-owner and the borrows recycle
// (warm = zero allocations) through the same arena Warmup() primes.
//
// Single-owner like Scratch: one Context serves one query at a time.

#ifndef TOPK_PARALLEL_CONTEXT_H_
#define TOPK_PARALLEL_CONTEXT_H_

#include <cstddef>

#include "parallel/worker_pool.h"

namespace topk::parallel {

class Context {
 public:
  explicit Context(size_t shards) : pool_(shards) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  size_t shards() const { return pool_.shards(); }
  WorkerPool& pool() { return pool_; }

 private:
  WorkerPool pool_;
};

}  // namespace topk::parallel

#endif  // TOPK_PARALLEL_CONTEXT_H_
