// Structure factories.
//
// The reductions build inner structures on sets they sample themselves
// (core-set levels, Theorem 2's R_i), so they need a way to construct a
// structure from a vector of elements. The default factory calls the
// structure's vector constructor; environments whose structures need
// extra context — e.g. the EM structures, which allocate pages through
// a BufferPool — pass a capturing callable instead.
//
// The contract a factory must satisfy is the StructureFactory concept in
// core/problem.h; every reduction constructor is constrained on it.

#ifndef TOPK_CORE_FACTORY_H_
#define TOPK_CORE_FACTORY_H_

#include <utility>
#include <vector>

namespace topk {

template <typename S>
struct DirectFactory {
  template <typename E>
  S operator()(std::vector<E> data) const {
    return S(std::move(data));
  }
};

}  // namespace topk

#endif  // TOPK_CORE_FACTORY_H_
