// Rank sampling (Section 3.1 and Section 4 of the paper).
//
// A p-sample of a set S keeps each element independently with probability
// p. The paper's two sampling lemmas govern how ranks transfer between S
// and the sample:
//
//   Lemma 1: if kp >= 3 ln(3/delta) and n >= 4k, then with probability
//            >= 1 - delta the sample R has |R| > 2kp and the element of
//            rank ceil(2kp) in R has rank in [k, 4k] in S.
//   Lemma 3: for a (1/K)-sample with n >= 4K >= 8, with probability
//            >= 0.09 the sample is non-empty and its largest element has
//            rank in (K, 4K] in S.
//
// This header provides the sampling primitive plus the rank arithmetic,
// so tests can validate the lemmas empirically (experiment E6).

#ifndef TOPK_CORE_RANK_SAMPLING_H_
#define TOPK_CORE_RANK_SAMPLING_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace topk {

// Keeps each element of `data` independently with probability p.
template <typename E>
std::vector<E> PSample(const std::vector<E>& data, double p, Rng* rng) {
  TOPK_CHECK(rng != nullptr);
  std::vector<E> sample;
  if (p <= 0) return sample;
  if (p >= 1) return data;
  sample.reserve(static_cast<size_t>(p * static_cast<double>(data.size())) +
                 16);
  for (const E& e : data) {
    if (rng->Bernoulli(p)) sample.push_back(e);
  }
  return sample;
}

// Lemma 1's sample rank: the element of rank ceil(2kp) in a p-sample
// approximates rank-k of the ground set.
inline size_t Lemma1SampleRank(size_t k, double p) {
  return static_cast<size_t>(
      std::ceil(2.0 * static_cast<double>(k) * p));
}

// Lemma 1's working condition kp >= 3 ln(3/delta).
inline bool Lemma1ConditionHolds(size_t k, double p, double delta) {
  return static_cast<double>(k) * p >= 3.0 * std::log(3.0 / delta);
}

}  // namespace topk

#endif  // TOPK_CORE_RANK_SAMPLING_H_
