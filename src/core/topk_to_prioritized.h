// The reverse reduction (Section 1.2; [26, 28, 29]): prioritized
// reporting from any top-k structure, with no asymptotic degradation.
//
// Given (q, tau), query top-k with geometrically growing k starting at
// the block size. Stop as soon as either the structure returns fewer
// than k elements (q(D) exhausted) or the lightest returned element
// falls below tau (everything at or above tau is inside the prefix).
// With Q_top(n) + O(k/B) top-k queries this costs
// O(Q_top(n) * log(t/B) + t/B) = O(Q_top(n)) + O(t/B) amortized over the
// doubling — the paper's point that prioritized reporting is never
// harder than top-k.

#ifndef TOPK_CORE_TOPK_TO_PRIORITIZED_H_
#define TOPK_CORE_TOPK_TO_PRIORITIZED_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/problem.h"
#include "core/weighted.h"

namespace topk {

// Wraps any top-k structure (anything with Query(q, k, stats) returning
// descending-weight vectors) as a prioritized structure.
template <TopKStructure TopK>
class TopKToPrioritized {
 public:
  using Element = typename TopK::Element;
  using Predicate = typename TopK::Predicate;

  explicit TopKToPrioritized(TopK topk, size_t initial_k = 64)
      : topk_(std::move(topk)), initial_k_(initial_k == 0 ? 1 : initial_k) {}

  size_t size() const { return topk_.size(); }
  const TopK& inner() const { return topk_; }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    size_t k = initial_k_;
    while (true) {
      std::vector<Element> top = topk_.Query(q, k, stats);
      const bool exhausted = top.size() < k;
      const bool past_tau =
          !top.empty() && !MeetsThreshold(top.back(), tau);
      if (exhausted || past_tau || k >= topk_.size()) {
        for (const Element& e : top) {
          if (!MeetsThreshold(e, tau)) break;  // sorted desc
          if (!emit(e)) return;
        }
        return;
      }
      k *= 2;
    }
  }

 private:
  TopK topk_;
  size_t initial_k_;
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_TO_PRIORITIZED_H_
