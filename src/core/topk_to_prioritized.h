// The reverse reduction (Section 1.2; [26, 28, 29]): prioritized
// reporting from any top-k structure, with no asymptotic degradation.
//
// Given (q, tau), query top-k with geometrically growing k starting at
// the block size. Stop as soon as either the structure returns fewer
// than k elements (q(D) exhausted) or the lightest returned element
// falls below tau (everything at or above tau is inside the prefix).
// With Q_top(n) + O(k/B) top-k queries this costs
// O(Q_top(n) * log(t/B) + t/B) = O(Q_top(n)) + O(t/B) amortized over the
// doubling — the paper's point that prioritized reporting is never
// harder than top-k.

#ifndef TOPK_CORE_TOPK_TO_PRIORITIZED_H_
#define TOPK_CORE_TOPK_TO_PRIORITIZED_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "core/problem.h"
#include "trace/tracer.h"

namespace topk {

// Wraps any top-k structure (anything with Query(q, k, stats) returning
// descending-weight vectors) as a prioritized structure.
template <TopKStructure TopK>
class TopKToPrioritized {
 public:
  using Element = typename TopK::Element;
  using Predicate = typename TopK::Predicate;

  explicit TopKToPrioritized(TopK topk, size_t initial_k = 64)
      : topk_(std::move(topk)), initial_k_(initial_k == 0 ? 1 : initial_k) {}

  size_t size() const { return topk_.size(); }
  const TopK& inner() const { return topk_; }

  // Charges nothing itself (issuance is charged by the caller through
  // IssuePrioritized — see core/sink.h); the inner top-k queries charge
  // their own structural work through `stats` as usual.
  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr,
                        trace::Tracer* tracer = nullptr) const {
    trace::Span span(tracer, "reverse_doubling", stats);
    uint64_t doublings = 0;
    size_t k = initial_k_;
    while (true) {
      std::vector<Element> top = InnerQuery(q, k, stats, tracer);
      const bool exhausted = top.size() < k;
      const bool past_tau =
          !top.empty() && !MeetsThreshold(top.back(), tau);
      if (exhausted || past_tau || k >= topk_.size()) {
        span.Arg("final_k", k);
        span.Arg("doublings", doublings);
        for (const Element& e : top) {
          if (!MeetsThreshold(e, tau)) break;  // sorted desc
          if (!emit(e)) return;
        }
        return;
      }
      k *= 2;
      ++doublings;
    }
  }

 private:
  // The TopKStructure concept only guarantees Query(q, k, stats); pass
  // the tracer through when the wrapped structure accepts one.
  std::vector<Element> InnerQuery(const Predicate& q, size_t k,
                                  QueryStats* stats,
                                  trace::Tracer* tracer) const {
    if constexpr (requires { topk_.Query(q, k, stats, tracer); }) {
      return topk_.Query(q, k, stats, tracer);
    } else {
      return topk_.Query(q, k, stats);
    }
  }

  TopK topk_;
  size_t initial_k_;
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_TO_PRIORITIZED_H_
