// The prior general reduction (Rahul & Janardan, TKDE 2014; equations (1)
// and (2) of the paper): top-k by binary search on the weight threshold.
//
// Given a prioritized structure, probe O(log n) candidate thresholds from
// the global sorted weight list; each probe is a cost-monitored
// prioritized query with budget k, so a query costs
// O(Q_pri(n)*log n + (k/B)*log n) — the multiplicative log on the output
// term is exactly what Theorems 1 and 2 remove.
//
// This serves two roles:
//   * the head-to-head baseline in the benchmarks, and
//   * the *unconditionally correct fallback* that CoreSetTopK invokes on
//     the (vanishingly rare) queries where a core-set sample is unlucky.

#ifndef TOPK_CORE_BINARY_SEARCH_TOPK_H_
#define TOPK_CORE_BINARY_SEARCH_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/kselect.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/problem.h"
#include "core/sink.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "trace/tracer.h"

namespace topk {

// Answers a top-k query against an existing prioritized structure `pri`
// using `weights_desc`, the weights of all n elements sorted descending,
// writing the answer into *out (cleared first). Every candidate pool —
// the O(log n) probes and the final fetch — lives in a buffer borrowed
// from `scratch`, so a warm arena serves the whole query without
// allocating.
//
// Invariant used: count(tau) = |{e in q(D) : w(e) >= tau}| grows by at
// most one per step down `weights_desc` (weights are pairwise distinct up
// to id tie-breaks), so the first index whose weight admits >= k matches
// admits *exactly* k — one final un-budgeted query then fetches the
// answer.
//
// Intra-query parallelism: the O(log n) probes are budgeted (budget k)
// and stay serial, but the final fetch is un-budgeted (budget n + 1, a
// degenerate full fetch) and runs through the sharded flat kernel when
// the caller supplies a mirror + context AND names the Problem
// explicitly (BinarySearchTopKQueryInto<Problem>(...)); the default
// Problem = void keeps legacy call sites serial and deduction-friendly.
template <typename Problem = void, typename Pri, typename Predicate,
          typename Element = typename Pri::Element>
void BinarySearchTopKQueryInto(
    const Pri& pri, const std::vector<double>& weights_desc,
    const Predicate& q, size_t k, Scratch* scratch,
    std::vector<Element>* out, QueryStats* stats = nullptr,
    trace::Tracer* tracer = nullptr,
    [[maybe_unused]] const parallel::FlatMirror<Element>* mirror = nullptr,
    [[maybe_unused]] parallel::Context* par = nullptr) {
  out->clear();
  if (k == 0 || weights_desc.empty()) return;
  if (k > weights_desc.size()) k = weights_desc.size();
  trace::Span span(tracer, "binary_search", stats);

  // Binary search for the first (largest-weight) index idx such that
  // count(weights_desc[idx]) >= k. One borrowed pool is recycled across
  // all probes.
  uint64_t probes = 0;
  size_t lo = 0;                    // count(w[lo..]) may be < k
  size_t hi = weights_desc.size();  // sentinel: tau = -inf
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++probes;
    MonitoredPool<Element> probe =
        MonitoredQuery(pri, q, weights_desc[mid], k, scratch, stats,
                       tracer);
    if (probe.hit_budget) {
      hi = mid;  // count >= k at mid; try a higher threshold.
    } else {
      lo = mid + 1;  // count < k; lower the threshold.
    }
  }
  span.Arg("probes", probes);
  const double tau = (lo < weights_desc.size())
                         ? weights_desc[lo]
                         : -std::numeric_limits<double>::infinity();
  if constexpr (!std::is_void_v<Problem>) {
    if (mirror != nullptr &&
        parallel::ShouldShard(par, pri.size(), pri.size() + 1)) {
      ShardedFetchInto<Problem>(*mirror, q, tau, k, par, scratch, out,
                                stats, tracer);
      return;
    }
  }
  MonitoredPool<Element> fin =
      MonitoredQuery(pri, q, tau, pri.size() + 1, scratch, stats, tracer);
  SelectTopK(&fin.elements, k);
  out->assign(fin.elements.begin(), fin.elements.end());
}

// Value-returning compatibility form (owns a throwaway Scratch; may
// allocate).
template <typename Pri, typename Predicate,
          typename Element = typename Pri::Element>
std::vector<Element> BinarySearchTopKQuery(
    const Pri& pri, const std::vector<double>& weights_desc,
    const Predicate& q, size_t k, QueryStats* stats = nullptr,
    trace::Tracer* tracer = nullptr) {
  std::vector<Element> result;
  Scratch scratch;
  BinarySearchTopKQueryInto(pri, weights_desc, q, k, &scratch, &result,
                            stats, tracer);
  return result;
}

// Self-contained baseline structure: owns the prioritized structure and
// the sorted weight list.
template <typename Problem, typename Pri>
  requires PrioritizedStructure<Pri, Problem>
class BinarySearchTopK {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate export, consumed by serve/shareable.h's recursive
  // thread-shareability check.
  using Prioritized = Pri;

  explicit BinarySearchTopK(std::vector<Element> data)
      : weights_desc_(MakeWeights(data)),
        mirror_(MakeMirror(data)),
        pri_(std::move(data)) {}

  size_t size() const { return pri_.size(); }

  std::vector<Element> Query(const Predicate& q, size_t k,
                             QueryStats* stats = nullptr,
                             trace::Tracer* tracer = nullptr) const {
    return BinarySearchTopKQuery(pri_, weights_desc_, q, k, stats, tracer);
  }

  // Scratch-threaded form: zero allocations once `scratch` and *out are
  // warm (the serving engine's steady-state path). `par` shards the
  // final un-budgeted fetch; probes stay serial.
  void QueryInto(const Predicate& q, size_t k, Scratch* scratch,
                 std::vector<Element>* out, QueryStats* stats = nullptr,
                 trace::Tracer* tracer = nullptr,
                 parallel::Context* par = nullptr) const {
    BinarySearchTopKQueryInto<Problem>(
        pri_, weights_desc_, q, k, scratch, out, stats, tracer,
        mirror_.has_value() ? &*mirror_ : nullptr, par);
  }

  const Pri& prioritized() const { return pri_; }

 private:
  static std::vector<double> MakeWeights(const std::vector<Element>& data) {
    std::vector<double> w;
    w.reserve(data.size());
    for (const Element& e : data) w.push_back(e.weight);
    std::sort(w.begin(), w.end(), std::greater<double>());
    return w;
  }

  static std::optional<parallel::FlatMirror<Element>> MakeMirror(
      const std::vector<Element>& data) {
    if (data.size() < parallel::kMinShardedN) return std::nullopt;
    return parallel::FlatMirror<Element>(data);
  }

  std::vector<double> weights_desc_;
  // SoA copy for the sharded final fetch; engaged iff n >= kMinShardedN.
  std::optional<parallel::FlatMirror<Element>> mirror_;
  Pri pri_;
};

}  // namespace topk

#endif  // TOPK_CORE_BINARY_SEARCH_TOPK_H_
