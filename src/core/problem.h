// The Problem trait: what a reporting problem must provide to plug into
// the general reductions.
//
// A Problem is a struct with:
//
//   using Element   = ...;   // O(1)-word element; must have public fields
//                            //   double weight;  uint64_t id;
//   using Predicate = ...;   // a query predicate q in the family Q
//   static bool Matches(const Predicate& q, const Element& e);
//   static constexpr double kLambda = ...;
//
// kLambda is the polynomial-boundedness exponent of Theorem 1: over all
// predicates q in Q, at most n^kLambda distinct outcomes q(D) exist for
// any n-element input D. (E.g. 1D range reporting: every outcome is an
// index interval of the sorted order => at most n^2 outcomes, kLambda = 2.)
//
// A PRIORITIZED structure over a Problem must provide:
//
//   explicit Structure(std::vector<Element> data);
//   size_t size() const;
//   template <typename Emit>   // Emit: bool(const Element&); false = stop
//   void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
//                         QueryStats* stats) const;
//   static double QueryCostBound(size_t n, size_t block_size);  // Q_pri(n)
//
// QueryPrioritized must report every element e with Matches(q, e) and
// w(e) >= tau, each exactly once, in any order, stopping as soon as emit
// returns false (the paper's "cost monitoring" device). Its cost must be
// output-sensitive: Q_pri(n) + O(t) work for t reported elements.
//
// A MAX structure over a Problem must provide:
//
//   explicit Structure(std::vector<Element> data);
//   size_t size() const;
//   std::optional<Element> QueryMax(const Predicate& q,
//                                   QueryStats* stats) const;
//   static double QueryCostBound(size_t n, size_t block_size);  // Q_max(n)
//
// DYNAMIC structures (needed only by SampledTopK updates) additionally
// provide:
//
//   void Insert(const Element& e);
//   void Erase(const Element& e);   // e must be present
//
// The requirements are duck-typed (plain templates); the light concepts
// below catch the most common signature mistakes at instantiation time.

#ifndef TOPK_CORE_PROBLEM_H_
#define TOPK_CORE_PROBLEM_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"

namespace topk {

template <typename P>
concept ProblemDef = requires(const typename P::Predicate& q,
                              const typename P::Element& e) {
  { P::Matches(q, e) } -> std::convertible_to<bool>;
  { P::kLambda } -> std::convertible_to<double>;
  { e.weight } -> std::convertible_to<double>;
  { e.id } -> std::convertible_to<uint64_t>;
};

// A sink type used only to validate structure signatures in concepts.
template <typename E>
struct AnySink {
  bool operator()(const E&) const { return true; }
};

template <typename S, typename P>
concept PrioritizedStructure =
    ProblemDef<P> &&
    requires(const S& s, const typename P::Predicate& q, double tau,
             AnySink<typename P::Element> sink, QueryStats* stats) {
      { s.size() } -> std::convertible_to<size_t>;
      s.QueryPrioritized(q, tau, sink, stats);
      { S::QueryCostBound(size_t{1}, size_t{64}) } ->
          std::convertible_to<double>;
    };

template <typename S, typename P>
concept MaxStructure =
    ProblemDef<P> &&
    requires(const S& s, const typename P::Predicate& q, QueryStats* stats) {
      { s.size() } -> std::convertible_to<size_t>;
      { s.QueryMax(q, stats) } ->
          std::convertible_to<std::optional<typename P::Element>>;
      { S::QueryCostBound(size_t{1}, size_t{64}) } ->
          std::convertible_to<double>;
    };

}  // namespace topk

#endif  // TOPK_CORE_PROBLEM_H_
