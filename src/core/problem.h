// The Problem trait and the structure-contract concept suite: what a
// reporting problem and its structures must provide to plug into the
// general reductions.
//
// A Problem is a struct with:
//
//   using Element   = ...;   // O(1)-word element; must have public fields
//                            //   double weight;  uint64_t id;
//   using Predicate = ...;   // a query predicate q in the family Q
//   static bool Matches(const Predicate& q, const Element& e);
//   static constexpr double kLambda = ...;
//
// kLambda is the polynomial-boundedness exponent of Theorem 1: over all
// predicates q in Q, at most n^kLambda distinct outcomes q(D) exist for
// any n-element input D. (E.g. 1D range reporting: every outcome is an
// index interval of the sorted order => at most n^2 outcomes, kLambda = 2.)
//
// The concepts below are the machine-checked half of each contract: they
// pin the *signatures* at every reduction entry point, so substrate drift
// fails at instantiation with the concept's name in the error. The
// *semantics* half of each contract (the "must" comments next to each
// concept) cannot be expressed in the type system; it is verified at
// query time by the audit wrappers in src/audit/ (enable with
// -DTOPK_AUDIT=ON) and by the brute-force test sweeps.

#ifndef TOPK_CORE_PROBLEM_H_
#define TOPK_CORE_PROBLEM_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace topk {

template <typename P>
concept ProblemDef = requires(const typename P::Predicate& q,
                              const typename P::Element& e) {
  { P::Matches(q, e) } -> std::convertible_to<bool>;
  { P::kLambda } -> std::convertible_to<double>;
  { e.weight } -> std::convertible_to<double>;
  { e.id } -> std::convertible_to<uint64_t>;
};

// A sink type used only to validate structure signatures in concepts.
template <typename E>
struct AnySink {
  bool operator()(const E&) const { return true; }
};

// PRIORITIZED structure contract (Section 2 of the paper).
//
// Signature (checked here):
//   size_t size() const;
//   template <typename Emit>   // Emit: bool(const Element&); false = stop
//   void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
//                         QueryStats* stats) const;
//   static double QueryCostBound(size_t n, size_t block_size);  // Q_pri(n)
//
// Semantics (audit::CheckedPrioritized verifies at query time):
//   * every element e with Matches(q, e) and w(e) >= tau is emitted,
//     each EXACTLY once, in ANY order (reductions must not assume one);
//   * emission STOPS as soon as emit returns false (the paper's cost
//     monitoring device) — no further emit calls are allowed;
//   * cost is output-sensitive: Q_pri(n) + O(t) work for t emitted
//     elements, charged to *stats monotonically (counters only grow).
template <typename S, typename P>
concept PrioritizedStructure =
    ProblemDef<P> &&
    requires(const S& s, const typename P::Predicate& q, double tau,
             AnySink<typename P::Element> sink, QueryStats* stats) {
      { s.size() } -> std::convertible_to<size_t>;
      s.QueryPrioritized(q, tau, sink, stats);
      { S::QueryCostBound(size_t{1}, size_t{64}) } ->
          std::convertible_to<double>;
    };

// MAX structure contract (the Theorem 2 substrate).
//
// Signature (checked here):
//   size_t size() const;
//   std::optional<Element> QueryMax(const Predicate& q,
//                                   QueryStats* stats) const;
//   static double QueryCostBound(size_t n, size_t block_size);  // Q_max(n)
//
// Semantics (audit::CheckedMax verifies at query time):
//   * returns THE heaviest element of q(D) under the (weight, id) total
//     order, or nullopt iff q(D) is empty — never an arbitrary matching
//     element;
//   * cost Q_max(n), charged to *stats monotonically.
template <typename S, typename P>
concept MaxStructure =
    ProblemDef<P> &&
    requires(const S& s, const typename P::Predicate& q, QueryStats* stats) {
      { s.size() } -> std::convertible_to<size_t>;
      { s.QueryMax(q, stats) } ->
          std::convertible_to<std::optional<typename P::Element>>;
      { S::QueryCostBound(size_t{1}, size_t{64}) } ->
          std::convertible_to<double>;
    };

// DYNAMIC structure contract (needed by SampledTopK updates and the
// logarithmic method).
//
// Semantics: Insert makes e visible to every subsequent query; Erase
// requires e to be present (by id) and removes exactly it. Ids are the
// identity — weights of distinct elements may collide.
template <typename S, typename P>
concept DynamicStructure =
    requires(S& s, const typename P::Element& e) {
      s.Insert(e);
      s.Erase(e);
    };

// COUNTER structure contract (the Section 2 counting reduction).
//
// Semantics: Count(q, tau, stats) returns a value in
// [|exact|, c * |exact|] for a fixed approximation factor c >= 1, where
// exact = {e in q(D) : w(e) >= tau}; an exact counter has c = 1. Counts
// must be monotone in tau (lower tau never shrinks the count).
template <typename C, typename P>
concept CounterStructure =
    ProblemDef<P> &&
    requires(const C& c, const typename P::Predicate& q, double tau,
             QueryStats* stats) {
      { c.size() } -> std::convertible_to<size_t>;
      { c.Count(q, tau, stats) } -> std::convertible_to<size_t>;
    };

// TOP-K structure contract (what the reductions produce and the serving
// layer consumes; see serve/shareable.h for the thread-shareable
// refinement).
//
// Semantics: Query(q, k, stats) returns the min(k, |q(D)|) heaviest
// elements of q(D) sorted heaviest-first under (weight, id) — callers
// (tests, the serving layer, TopKToPrioritized) rely on exact,
// descending results.
template <typename S>
concept TopKStructure =
    requires(const S& s, const typename S::Predicate& q, QueryStats* stats) {
      typename S::Element;
      { s.size() } -> std::convertible_to<size_t>;
      { s.Query(q, size_t{1}, stats) } ->
          std::convertible_to<std::vector<typename S::Element>>;
    };

// As TopKStructure, additionally pinning the structure to a problem's
// element/predicate types (used where a reduction hands a top-k
// structure to problem-typed code).
template <typename S, typename P>
concept TopKStructureFor =
    ProblemDef<P> && TopKStructure<S> &&
    std::same_as<typename S::Element, typename P::Element> &&
    std::same_as<typename S::Predicate, typename P::Predicate>;

// FACTORY contract (core/factory.h): builds a structure of type S from a
// vector of elements. The reductions sample sets themselves (core-set
// levels, Theorem 2's R_i) and construct inner structures through one of
// these; environments needing extra context (EM structures allocating
// through a BufferPool) pass a capturing callable.
template <typename F, typename S, typename E>
concept StructureFactory =
    requires(const F& f, std::vector<E> data) {
      { f(std::move(data)) } -> std::same_as<S>;
    };

}  // namespace topk

#endif  // TOPK_CORE_PROBLEM_H_
