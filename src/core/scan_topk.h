// Naive baseline: full scan plus k-selection.
//
// O(n/B) I/Os per query regardless of k — the structure every reduction
// must beat for small k, and the structure both reductions *become* for
// k = Omega(n).

#ifndef TOPK_CORE_SCAN_TOPK_H_
#define TOPK_CORE_SCAN_TOPK_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/kselect.h"
#include "common/stats.h"
#include "core/problem.h"

namespace topk {

template <typename Problem>
class ScanTopK {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;

  explicit ScanTopK(std::vector<Element> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }

  // The k heaviest elements of q(D), heaviest first.
  std::vector<Element> Query(const Predicate& q, size_t k,
                             QueryStats* stats = nullptr) const {
    AddNodes(stats, data_.size());
    if (stats != nullptr) ++stats->full_scans;
    std::vector<Element> pool;
    for (const Element& e : data_) {
      if (Problem::Matches(q, e)) pool.push_back(e);
    }
    SelectTopK(&pool, k);
    return pool;
  }

 private:
  std::vector<Element> data_;
};

}  // namespace topk

#endif  // TOPK_CORE_SCAN_TOPK_H_
