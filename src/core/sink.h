// Cost-monitored prioritized queries (Section 3.2 of the paper).
//
// The reductions never count |q(D)| directly. Instead they issue a
// prioritized query with a *budget*: collect elements until either the
// query terminates by itself (the result is complete) or budget elements
// have been fetched (proving |result| >= budget). MonitoredQuery packages
// that device.

#ifndef TOPK_CORE_SINK_H_
#define TOPK_CORE_SINK_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace topk {

template <typename E>
struct MonitoredResult {
  // Elements fetched, in structure emission order. When hit_budget is
  // false this is the complete set {e in q(D) : w(e) >= tau}; when true
  // it is an arbitrary budget-sized subset of it (the query was cut off).
  std::vector<E> elements;
  bool hit_budget = false;
};

// Runs s.QueryPrioritized(q, tau, ...) collecting at most `budget`
// elements. Typical use per the paper: budget = 4K + 1 proves
// |{w >= tau} cap q(D)| > 4K whenever hit_budget is true.
template <typename S, typename Pred, typename E = typename S::Element>
MonitoredResult<E> MonitoredQuery(const S& s, const Pred& q, double tau,
                                  size_t budget, QueryStats* stats) {
  MonitoredResult<E> out;
  if (budget == 0) {
    out.hit_budget = true;
    return out;
  }
  out.elements.reserve(budget < 1024 ? budget : 1024);
  s.QueryPrioritized(
      q, tau,
      [&out, budget](const E& e) {
        out.elements.push_back(e);
        return out.elements.size() < budget;
      },
      stats);
  out.hit_budget = out.elements.size() >= budget;
  AddEmitted(stats, out.elements.size());
  if (stats != nullptr) ++stats->prioritized_queries;
  return out;
}

}  // namespace topk

#endif  // TOPK_CORE_SINK_H_
