// Prioritized-query issuance: the ONE place its cost is charged
// (Section 3.2 of the paper for the monitored variant).
//
// QueryStats::prioritized_queries and ::elements_emitted are charged
// here, at ISSUANCE — by exactly two entry points, IssuePrioritized and
// MonitoredQuery — and nowhere else. Structure implementations of
// QueryPrioritized (and transparent wrappers like
// audit::CheckedPrioritized, or synthesized implementations like
// TopKToPrioritized) charge only their structural work (nodes_visited)
// — if they also charged issuance the counters would double-count every
// internal delegation. Callers that invoke a structure's
// QueryPrioritized directly therefore go through IssuePrioritized; the
// reductions go through MonitoredQuery, the budgeted variant.
//
// The reductions never count |q(D)| directly. Instead they issue a
// prioritized query with a *budget*: collect elements until either the
// query terminates by itself (the result is complete) or budget
// elements have been fetched (proving |result| >= budget).
// MonitoredQuery packages that device.

#ifndef TOPK_CORE_SINK_H_
#define TOPK_CORE_SINK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/scratch.h"
#include "common/stats.h"
#include "trace/tracer.h"

namespace topk {

// Issues s.QueryPrioritized(q, tau, emit, stats) and charges the
// issuance: one prioritized query plus every element the structure
// emitted (including ones the sink rejected or k-selection later
// discards). Use this instead of calling QueryPrioritized directly
// whenever the call should be visible in QueryStats.
template <typename S, typename Pred, typename Emit,
          typename E = typename S::Element>
void IssuePrioritized(const S& s, const Pred& q, double tau, Emit&& emit,
                      QueryStats* stats,
                      trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "prioritized_query", stats);
  if (stats != nullptr) ++stats->prioritized_queries;
  uint64_t emitted = 0;
  s.QueryPrioritized(
      q, tau,
      [&emitted, &emit](const E& e) {
        ++emitted;
        return emit(e);
      },
      stats);
  AddEmitted(stats, emitted);
}

template <typename E>
struct MonitoredResult {
  // Elements fetched, in structure emission order. When hit_budget is
  // false this is the complete set {e in q(D) : w(e) >= tau}; when true
  // it is an arbitrary budget-sized subset of it (the query was cut off).
  std::vector<E> elements;
  bool hit_budget = false;
};

// Runs a budget-monitored prioritized query: collects at most `budget`
// elements. Typical use per the paper: budget = 4K + 1 proves
// |{w >= tau} cap q(D)| > 4K whenever hit_budget is true. The span
// records the budget and whether it was hit.
//
// Charges issuance itself instead of delegating to IssuePrioritized:
// the forwarding layer that counting through a wrapped emit adds sits
// on the per-emission hot loop — the hottest loop in the tree when
// Theorem 1's f >= n degenerates to monitored full fetches — and the
// budget cut-off element is collected anyway, so collected == emitted
// and the counters are identical either way (pinned by
// tests/stats_accounting_test.cc).
template <typename S, typename Pred, typename E = typename S::Element>
MonitoredResult<E> MonitoredQuery(const S& s, const Pred& q, double tau,
                                  size_t budget, QueryStats* stats,
                                  trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "monitored_query", stats);
  span.Arg("budget", budget);
  MonitoredResult<E> out;
  if (budget == 0) {
    out.hit_budget = true;
    span.Arg("hit_budget", 1);
    return out;
  }
  out.elements.reserve(budget < 1024 ? budget : 1024);
  if (stats != nullptr) ++stats->prioritized_queries;
  s.QueryPrioritized(
      q, tau,
      [&out, budget](const E& e) {
        out.elements.push_back(e);
        return out.elements.size() < budget;
      },
      stats);
  AddEmitted(stats, out.elements.size());
  out.hit_budget = out.elements.size() >= budget;
  span.Arg("hit_budget", out.hit_budget ? 1 : 0);
  return out;
}

// MonitoredQuery collecting into a pool borrowed from `scratch` instead
// of a freshly allocated vector: the zero-allocation serving path.
// Identical semantics and identical accounting to the allocating form
// above; the buffer (capacity included) goes back to the arena when the
// result's ScratchVec dies.
template <typename E>
struct MonitoredPool {
  ScratchVec<E> elements;  // structure emission order, as above
  bool hit_budget = false;
};

template <typename S, typename Pred, typename E = typename S::Element>
MonitoredPool<E> MonitoredQuery(const S& s, const Pred& q, double tau,
                                size_t budget, Scratch* scratch,
                                QueryStats* stats,
                                trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "monitored_query", stats);
  span.Arg("budget", budget);
  MonitoredPool<E> out{scratch->Borrow<E>(), false};
  if (budget == 0) {
    out.hit_budget = true;
    span.Arg("hit_budget", 1);
    return out;
  }
  out.elements.reserve(budget < 1024 ? budget : 1024);
  if (stats != nullptr) ++stats->prioritized_queries;
  std::vector<E>& pool = out.elements.vec();
  s.QueryPrioritized(
      q, tau,
      [&pool, budget](const E& e) {
        pool.push_back(e);
        return pool.size() < budget;
      },
      stats);
  AddEmitted(stats, pool.size());
  out.hit_budget = pool.size() >= budget;
  span.Arg("hit_budget", out.hit_budget ? 1 : 0);
  return out;
}

}  // namespace topk

#endif  // TOPK_CORE_SINK_H_
