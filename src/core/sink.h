// Prioritized-query issuance: the ONE place its cost is charged
// (Section 3.2 of the paper for the monitored variant).
//
// QueryStats::prioritized_queries and ::elements_emitted are charged
// here, at ISSUANCE — by exactly two entry points, IssuePrioritized and
// MonitoredQuery — and nowhere else. Structure implementations of
// QueryPrioritized (and transparent wrappers like
// audit::CheckedPrioritized, or synthesized implementations like
// TopKToPrioritized) charge only their structural work (nodes_visited)
// — if they also charged issuance the counters would double-count every
// internal delegation. Callers that invoke a structure's
// QueryPrioritized directly therefore go through IssuePrioritized; the
// reductions go through MonitoredQuery, the budgeted variant.
//
// The reductions never count |q(D)| directly. Instead they issue a
// prioritized query with a *budget*: collect elements until either the
// query terminates by itself (the result is complete) or budget
// elements have been fetched (proving |result| >= budget).
// MonitoredQuery packages that device.

#ifndef TOPK_CORE_SINK_H_
#define TOPK_CORE_SINK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/scratch.h"
#include "common/stats.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "trace/tracer.h"

namespace topk {

// Issues s.QueryPrioritized(q, tau, emit, stats) and charges the
// issuance: one prioritized query plus every element the structure
// emitted (including ones the sink rejected or k-selection later
// discards). Use this instead of calling QueryPrioritized directly
// whenever the call should be visible in QueryStats.
template <typename S, typename Pred, typename Emit,
          typename E = typename S::Element>
void IssuePrioritized(const S& s, const Pred& q, double tau, Emit&& emit,
                      QueryStats* stats,
                      trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "prioritized_query", stats);
  if (stats != nullptr) ++stats->prioritized_queries;
  uint64_t emitted = 0;
  s.QueryPrioritized(
      q, tau,
      [&emitted, &emit](const E& e) {
        ++emitted;
        return emit(e);
      },
      stats);
  AddEmitted(stats, emitted);
}

template <typename E>
struct MonitoredResult {
  // Elements fetched, in structure emission order. When hit_budget is
  // false this is the complete set {e in q(D) : w(e) >= tau}; when true
  // it is an arbitrary budget-sized subset of it (the query was cut off).
  std::vector<E> elements;
  bool hit_budget = false;
};

// Runs a budget-monitored prioritized query: collects at most `budget`
// elements. Typical use per the paper: budget = 4K + 1 proves
// |{w >= tau} cap q(D)| > 4K whenever hit_budget is true. The span
// records the budget and whether it was hit.
//
// Charges issuance itself instead of delegating to IssuePrioritized:
// the forwarding layer that counting through a wrapped emit adds sits
// on the per-emission hot loop — the hottest loop in the tree when
// Theorem 1's f >= n degenerates to monitored full fetches — and the
// budget cut-off element is collected anyway, so collected == emitted
// and the counters are identical either way (pinned by
// tests/stats_accounting_test.cc).
template <typename S, typename Pred, typename E = typename S::Element>
MonitoredResult<E> MonitoredQuery(const S& s, const Pred& q, double tau,
                                  size_t budget, QueryStats* stats,
                                  trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "monitored_query", stats);
  span.Arg("budget", budget);
  MonitoredResult<E> out;
  if (budget == 0) {
    out.hit_budget = true;
    span.Arg("hit_budget", 1);
    return out;
  }
  out.elements.reserve(budget < 1024 ? budget : 1024);
  if (stats != nullptr) ++stats->prioritized_queries;
  s.QueryPrioritized(
      q, tau,
      [&out, budget](const E& e) {
        out.elements.push_back(e);
        return out.elements.size() < budget;
      },
      stats);
  AddEmitted(stats, out.elements.size());
  out.hit_budget = out.elements.size() >= budget;
  span.Arg("hit_budget", out.hit_budget ? 1 : 0);
  return out;
}

// MonitoredQuery collecting into a pool borrowed from `scratch` instead
// of a freshly allocated vector: the zero-allocation serving path.
// Identical semantics and identical accounting to the allocating form
// above; the buffer (capacity included) goes back to the arena when the
// result's ScratchVec dies.
template <typename E>
struct MonitoredPool {
  ScratchVec<E> elements;  // structure emission order, as above
  bool hit_budget = false;
};

template <typename S, typename Pred, typename E = typename S::Element>
MonitoredPool<E> MonitoredQuery(const S& s, const Pred& q, double tau,
                                size_t budget, Scratch* scratch,
                                QueryStats* stats,
                                trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "monitored_query", stats);
  span.Arg("budget", budget);
  MonitoredPool<E> out{scratch->Borrow<E>(), false};
  if (budget == 0) {
    out.hit_budget = true;
    span.Arg("hit_budget", 1);
    return out;
  }
  out.elements.reserve(budget < 1024 ? budget : 1024);
  if (stats != nullptr) ++stats->prioritized_queries;
  std::vector<E>& pool = out.elements.vec();
  s.QueryPrioritized(
      q, tau,
      [&pool, budget](const E& e) {
        pool.push_back(e);
        return pool.size() < budget;
      },
      stats);
  AddEmitted(stats, pool.size());
  out.hit_budget = pool.size() >= budget;
  span.Arg("hit_budget", out.hit_budget ? 1 : 0);
  return out;
}

// Accounting for a degenerate monitored fetch executed as a sharded
// flat scan (parallel::FlatScanTopKInto). The protocol-visible charges
// are identical to the MonitoredQuery the kernel replaces — one
// prioritized query issued, every tau-qualifying match emitted (budget
// > n means the serial query could never be cut off, so emitted ==
// matched) — while the structural work is the scan itself: `scanned`
// flat slots visited instead of a substrate traversal (the ScanTopK
// convention). Lives here so the single-charge-site rule keeps holding:
// the kernel itself charges nothing, callers charge exactly once, after
// the merge, on the calling thread.
inline void ChargeFlatScan(QueryStats* stats, size_t scanned,
                           size_t emitted) {
  if (stats == nullptr) return;
  ++stats->prioritized_queries;
  AddEmitted(stats, emitted);
  AddNodes(stats, scanned);
}

// Degenerate monitored fetch (budget > n: a full fetch the budget can
// never cut off) executed as the sharded flat kernel. Writes the
// min(k, matched) heaviest tau-qualifying matches of q into *out,
// sorted heaviest-first, and returns the EXACT match count — which
// reproduces every protocol decision the serial MonitoredQuery feeds:
// the serial query hits a budget b iff matched >= b, and its complete
// pool has exactly `matched` elements. Opens one "flat_scan" span on
// the calling thread (helpers never touch stats or tracers) and charges
// the issuance once, post-merge, so span self-costs telescope.
template <typename Problem>
size_t ShardedFetchInto(
    const parallel::FlatMirror<typename Problem::Element>& flat,
    const typename Problem::Predicate& q, double tau, size_t k,
    parallel::Context* par, Scratch* scratch,
    std::vector<typename Problem::Element>* out, QueryStats* stats,
    trace::Tracer* tracer) {
  trace::Span span(tracer, "flat_scan", stats);
  const size_t matched = parallel::FlatScanTopKInto<Problem>(
      flat, q, tau, k, par, scratch, out);
  ChargeFlatScan(stats, flat.size(), matched);
  span.Arg("matched", matched);
  span.Arg("shards", par == nullptr ? 1 : par->shards());
  return matched;
}

}  // namespace topk

#endif  // TOPK_CORE_SINK_H_
