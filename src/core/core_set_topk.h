// Theorem 1: the worst-case reduction from top-k to prioritized
// reporting.
//
// Given any prioritized structure with geometrically converging space and
// Q_pri(n) >= log_B n, on a polynomially bounded problem, this structure
// answers top-k queries in O(Q_pri(n) * log_{g sqrt(B)} n + k/B) I/Os
// with g = Q_pri(n)/log_B n — i.e. within an O(log_B n) factor of the
// prioritized query cost — using O(S_pri(n)) space.
//
// Composition (Section 3.2):
//   * f = 12*lambda*B*Q_pri(n);
//   * a TopFChain on D serves queries with k <= f;
//   * core-sets R[i] of D with K = 2^{i-1}*f (i = 1..h), each carrying
//     its own TopFChain, serve queries with k > f: the pivot element of
//     weight rank ceil(8*lambda*ln n) in q(R[i]) has weight rank [K, 4K]
//     in q(D), so one prioritized fetch plus k-selection finishes;
//   * queries with k >= n/2 scan.
//
// Correctness is unconditional: every sampled shortcut verifies its
// output cardinality and falls back to the binary-search reduction
// (O((Q_pri + k/B) log n), always correct) on failure. Failures are
// counted in QueryStats::fallbacks and occur with probability O(n^-1)
// per query with the paper constants.

#ifndef TOPK_CORE_CORE_SET_TOPK_H_
#define TOPK_CORE_CORE_SET_TOPK_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/binary_search_topk.h"
#include "core/core_set.h"
#include "core/factory.h"
#include "core/problem.h"
#include "core/reduction_options.h"
#include "core/sink.h"
#include "core/top_f.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "trace/tracer.h"

namespace topk {

template <typename Problem, typename Pri>
  requires PrioritizedStructure<Pri, Problem>
class CoreSetTopK {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate export, consumed by serve/shareable.h's recursive
  // thread-shareability check.
  using Prioritized = Pri;

  template <typename Factory = DirectFactory<Pri>>
    requires StructureFactory<Factory, Pri, typename Problem::Element>
  explicit CoreSetTopK(std::vector<Element> data,
                       const ReductionOptions& options = {},
                       const Factory& factory = {})
      : options_(options), n_(data.size()) {
    Rng rng(options_.seed);
    f_ = ComputeF(n_, options_);

    // Core-sets R[i] of D with K = 2^{i-1} * f, for every K <= n. Draw
    // them before `data` is consumed by the main chain.
    std::vector<std::vector<Element>> samples;
    for (double K = static_cast<double>(f_) * 2.0;
         K <= static_cast<double>(n_); K *= 2.0) {
      samples.push_back(BuildCoreSet(data, K, Problem::kLambda,
                                     options_.constant_scale, &rng,
                                     options_.max_core_set_attempts));
    }

    weights_desc_.reserve(n_);
    for (const Element& e : data) weights_desc_.push_back(e.weight);
    std::sort(weights_desc_.begin(), weights_desc_.end(),
              std::greater<double>());

    chain_.emplace(std::move(data), f_, options_.constant_scale, &rng,
                   options_.max_core_set_attempts, factory);
    large_k_chains_.reserve(samples.size());
    for (std::vector<Element>& s : samples) {
      large_k_chains_.emplace_back(std::move(s), f_,
                                   options_.constant_scale, &rng,
                                   options_.max_core_set_attempts, factory);
    }
  }

  size_t size() const { return n_; }
  size_t f() const { return f_; }
  size_t num_chain_levels() const { return chain_->num_levels(); }
  size_t num_large_k_core_sets() const { return large_k_chains_.size(); }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): Theorem 1
  // composition invariants — the f clamp of inequality (11), the sorted
  // global weight list, the Lemma 2 nesting of every chain, and a
  // large-k ladder exactly matching the K = 2^{i-1} f, K <= n schedule.
  // Aborts via TOPK_CHECK on violation.
  void AuditInvariants() const {
    if (n_ == 0) return;
    TOPK_CHECK(f_ >= CoreSetRank(n_, Problem::kLambda,
                                 options_.constant_scale));
    TOPK_CHECK_EQ(weights_desc_.size(), n_);
    TOPK_CHECK(std::is_sorted(weights_desc_.begin(), weights_desc_.end(),
                              std::greater<double>()));
    TOPK_CHECK(chain_.has_value());
    TOPK_CHECK_EQ(chain_->level0().size(), n_);
    chain_->AuditInvariants();
    size_t expected_ladder = 0;
    for (double K = static_cast<double>(f_) * 2.0;
         K <= static_cast<double>(n_); K *= 2.0) {
      ++expected_ladder;
    }
    TOPK_CHECK_EQ(large_k_chains_.size(), expected_ladder);
    for (const TopFChain<Problem, Pri>& chain : large_k_chains_) {
      TOPK_CHECK_EQ(chain.f(), f_);
      chain.AuditInvariants();
    }
  }

  // The k heaviest elements of q(D), heaviest first (all of q(D) when
  // |q(D)| < k). Exact for every input and every random draw.
  std::vector<Element> Query(const Predicate& q, size_t k,
                             QueryStats* stats = nullptr,
                             trace::Tracer* tracer = nullptr) const {
    std::vector<Element> result;
    Scratch scratch;
    QueryInto(q, k, &scratch, &result, stats, tracer);
    return result;
  }

  // Scratch-threaded form writing into *out (cleared first): every
  // candidate pool across the small-k chain, the large-k ladder, the
  // full scan, and the binary-search fallback lives in a buffer
  // borrowed from `scratch`, so a warm arena and a warm *out serve the
  // query with zero heap allocations. `par` (nullable) shards the
  // degenerate monitored fetches — the full scan, an unreachable probe
  // budget, the oversized ladder fetch, and the chain's level walks —
  // across intra-query workers; results are bit-identical either way.
  void QueryInto(const Predicate& q, size_t k, Scratch* scratch,
                 std::vector<Element>* out, QueryStats* stats = nullptr,
                 trace::Tracer* tracer = nullptr,
                 parallel::Context* par = nullptr) const {
    out->clear();
    if (k == 0 || n_ == 0) return;
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    const Pri& pri = chain_->level0();
    const parallel::FlatMirror<Element>* mirror = chain_->level0_mirror();
    trace::Span span(tracer, "thm1_query", stats);
    span.Arg("k", k);

    if (k <= f_) {
      std::optional<ScratchVec<Element>> top =
          chain_->QueryTopF(q, scratch, stats, tracer, par);
      if (top.has_value()) {
        const size_t take = std::min(k, top->size());  // already sorted desc
        out->assign(top->begin(), top->begin() + take);
        return;
      }
      FallbackInto(q, k, scratch, out, stats, tracer, par);
      return;
    }

    if (k >= n_ / 2) {
      // Read everything: O(n/B) = O(k/B).
      span.Arg("full_scan", 1);
      if (stats != nullptr) ++stats->full_scans;
      if (mirror != nullptr && parallel::ShouldShard(par, n_, n_ + 1)) {
        ShardedFetchInto<Problem>(*mirror, q, kNegInf, k, par, scratch,
                                  out, stats, tracer);
        return;
      }
      MonitoredPool<Element> all =
          MonitoredQuery(pri, q, kNegInf, n_ + 1, scratch, stats, tracer);
      SelectTopK(&all.elements, k);
      out->assign(all.elements.begin(), all.elements.end());
      return;
    }

    // Smallest i with K = 2^{i-1} f >= k; k < n/2 guarantees K <= n, so
    // the core-set exists unless the constant-scale ablation truncated
    // the list — then fall back.
    size_t i = 0;
    double K = static_cast<double>(f_);
    while (K < static_cast<double>(k)) {
      K *= 2.0;
      ++i;
    }
    // Which rung of the large-k ladder (core-set R_i, K = 2^{i-1} f)
    // this query probed — the per-query attribution E23 cares about.
    span.Arg("core_set_level", i);
    const size_t budget = static_cast<size_t>(4.0 * K) + 1;
    if (mirror != nullptr && parallel::ShouldShard(par, n_, budget)) {
      const size_t matched = ShardedFetchInto<Problem>(
          *mirror, q, kNegInf, k, par, scratch, out, stats, tracer);
      // matched < budget <=> the serial probe completes under budget
      // and *out already holds its k-selection.
      if (matched < budget) return;
      out->clear();  // budget hit: continue to the ladder
    } else {
      MonitoredPool<Element> probe =
          MonitoredQuery(pri, q, kNegInf, budget, scratch, stats, tracer);
      if (!probe.hit_budget) {
        SelectTopK(&probe.elements, k);
        out->assign(probe.elements.begin(), probe.elements.end());
        return;
      }
    }  // budget-hit probe pool returns to the arena before the ladder
    if (i == 0 || i > large_k_chains_.size()) {
      FallbackInto(q, k, scratch, out, stats, tracer, par);
      return;
    }

    std::optional<ScratchVec<Element>> top =
        large_k_chains_[i - 1].QueryTopF(q, scratch, stats, tracer, par);
    const size_t rank = CoreSetRank(n_, Problem::kLambda,
                                    options_.constant_scale);
    if (!top.has_value() || top->size() < rank) {
      top.reset();
      FallbackInto(q, k, scratch, out, stats, tracer, par);
      return;
    }
    const double tau = (*top)[rank - 1].weight;
    top.reset();  // only tau survives; recycle the pool for the fetch

    // Pivot rank is in [K, 4K] w.h.p.; allow 2x slack.
    const size_t fetch_budget = static_cast<size_t>(8.0 * K) + 1;
    if (mirror != nullptr && parallel::ShouldShard(par, n_, fetch_budget)) {
      const size_t matched = ShardedFetchInto<Problem>(
          *mirror, q, tau, k, par, scratch, out, stats, tracer);
      // hit_budget <=> matched >= fetch_budget; |fetched| < k <=>
      // matched < k — the same two failure tests as the serial path.
      if (matched >= fetch_budget || matched < k) {
        FallbackInto(q, k, scratch, out, stats, tracer, par);
      }
      return;
    }
    MonitoredPool<Element> fetched = MonitoredQuery(
        pri, q, tau, fetch_budget, scratch, stats, tracer);
    if (fetched.hit_budget || fetched.elements.size() < k) {
      FallbackInto(q, k, scratch, out, stats, tracer, par);
      return;
    }
    SelectTopK(&fetched.elements, k);
    out->assign(fetched.elements.begin(), fetched.elements.end());
  }

 private:
  // f = 12 * lambda * B * Q_pri(n) (eq. (9)), scaled for ablation and
  // clamped so that f >= ceil(8*lambda*ln n) (inequality (11)) — the
  // top-f result must always be deep enough to expose the Lemma 2 pivot.
  static size_t ComputeF(size_t n, const ReductionOptions& options) {
    const double q_pri = std::max(
        1.0, Pri::QueryCostBound(n, options.block_size));
    double f = options.constant_scale * 12.0 * Problem::kLambda *
               static_cast<double>(options.block_size) * q_pri;
    const double min_f = static_cast<double>(
        CoreSetRank(n, Problem::kLambda, options.constant_scale));
    if (f < min_f) f = min_f;
    if (f < 1.0) f = 1.0;
    return static_cast<size_t>(f);
  }

  void FallbackInto(const Predicate& q, size_t k, Scratch* scratch,
                    std::vector<Element>* out, QueryStats* stats,
                    trace::Tracer* tracer, parallel::Context* par) const {
    trace::Instant(tracer, "fallback");
    if (stats != nullptr) ++stats->fallbacks;
    BinarySearchTopKQueryInto<Problem>(chain_->level0(), weights_desc_, q,
                                       k, scratch, out, stats, tracer,
                                       chain_->level0_mirror(), par);
  }

  ReductionOptions options_;
  size_t n_;
  size_t f_;
  std::vector<double> weights_desc_;
  // optional<> delays construction until f_ and the core-set samples are
  // ready; always engaged after the constructor.
  std::optional<TopFChain<Problem, Pri>> chain_;
  std::vector<TopFChain<Problem, Pri>> large_k_chains_;
};

}  // namespace topk

#endif  // TOPK_CORE_CORE_SET_TOPK_H_
