// Cost-monitored top-k prefix queries (the serving layer's degradation
// primitive).
//
// The paper's reductions never run unbounded work: Theorem 1 replaces
// counting with prioritized queries that stop at a budget (core/sink.h's
// MonitoredQuery). BudgetedTopK lifts the same idea one level up, to
// whole top-k queries: answer top-k' for k' = 1, 2, 4, ... doubling
// toward k, consulting a stop predicate between stages. Because every
// result is sorted heaviest-first under the strict (weight, id) order,
// the top-k' answer IS the length-k' prefix of the top-k answer — so
// stopping early yields a *correct prefix* of the true result, never a
// wrong or arbitrary subset. Geometric doubling keeps the total work
// within a constant factor of the final stage's for structures whose
// query cost grows at least linearly in k.
//
// The stop predicate is consulted BETWEEN stages (cooperative, never
// mid-query), so each stage's cost is the monitoring granularity: a
// budget can be overshot by at most one stage, exactly like the
// paper's budget-(4K+1) monitored queries overshoot by one emission.

#ifndef TOPK_CORE_BUDGETED_QUERY_H_
#define TOPK_CORE_BUDGETED_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/scratch.h"
#include "common/stats.h"
#include "core/problem.h"
#include "trace/tracer.h"

namespace topk {

template <typename E>
struct BudgetedResult {
  // Heaviest-first. A prefix of the true top-k when complete is false;
  // the full top-k when complete is true.
  std::vector<E> elements;
  bool complete = false;
  size_t stages = 0;  // top-k' queries issued
};

// Outcome of the in-place form: the elements live in the caller's
// vector, so only the verdict travels back.
struct BudgetedRun {
  bool complete = false;
  size_t stages = 0;  // top-k' queries issued
};

// Runs staged top-k' queries against `s` until the answer is complete
// (k' reached k, or the structure ran out of matches) or should_stop()
// returns true between stages, writing each stage's answer into *out —
// ONE buffer reused across the whole doubling ladder (and, when the
// caller recycles it, across requests). should_stop is any callable
// examining external state — a cost tally, a deadline clock, a
// cancellation flag. Structures that implement the scratch-threaded
// QueryInto are served allocation-free; plain TopKStructures fall back
// to move-assigning their freshly built result.
template <typename S, typename StopFn>
  requires TopKStructure<S>
BudgetedRun BudgetedTopKInto(const S& s, const typename S::Predicate& q,
                             size_t k, StopFn&& should_stop,
                             Scratch* scratch,
                             std::vector<typename S::Element>* out,
                             QueryStats* stats = nullptr,
                             trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "budgeted_query", stats);
  span.Arg("k", k);
  BudgetedRun run;
  out->clear();
  if (k == 0) {
    run.complete = true;
    return run;
  }
  size_t kp = 1;
  for (;;) {
    ++run.stages;
    {
      // The TopKStructure concept only guarantees Query(q, kp, stats);
      // prefer the scratch-threaded QueryInto when the structure has
      // one, and pass the tracer through when it is accepted.
      trace::Span stage(tracer, "budgeted_stage", stats);
      stage.Arg("kp", kp);
      if constexpr (requires {
                      s.QueryInto(q, kp, scratch, out, stats, tracer);
                    }) {
        s.QueryInto(q, kp, scratch, out, stats, tracer);
      } else if constexpr (requires {
                             s.QueryInto(q, kp, scratch, out, stats);
                           }) {
        s.QueryInto(q, kp, scratch, out, stats);
      } else if constexpr (requires { s.Query(q, kp, stats, tracer); }) {
        *out = s.Query(q, kp, stats, tracer);
      } else {
        *out = s.Query(q, kp, stats);
      }
    }
    if (kp >= k || out->size() < kp) {
      // Either the full k was answered or the structure has fewer than
      // kp matches — in both cases this is the complete answer.
      run.complete = true;
      span.Arg("stages", run.stages);
      return run;
    }
    if (should_stop()) {
      span.Arg("stages", run.stages);
      span.Arg("stopped", 1);
      return run;  // correct top-kp prefix, flagged
    }
    kp = std::min(k, kp * 2);
  }
}

// Value-returning compatibility form: owns a throwaway Scratch, so each
// call may allocate (first-touch pool growth plus the returned vector).
// The serving engine uses BudgetedTopKInto with its per-worker arena.
template <typename S, typename StopFn>
  requires TopKStructure<S>
BudgetedResult<typename S::Element> BudgetedTopK(
    const S& s, const typename S::Predicate& q, size_t k,
    StopFn&& should_stop, QueryStats* stats = nullptr,
    trace::Tracer* tracer = nullptr) {
  BudgetedResult<typename S::Element> out;
  Scratch scratch;
  const BudgetedRun run =
      BudgetedTopKInto(s, q, k, should_stop, &scratch, &out.elements,
                       stats, tracer);
  out.complete = run.complete;
  out.stages = run.stages;
  return out;
}

}  // namespace topk

#endif  // TOPK_CORE_BUDGETED_QUERY_H_
