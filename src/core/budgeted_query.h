// Cost-monitored top-k prefix queries (the serving layer's degradation
// primitive).
//
// The paper's reductions never run unbounded work: Theorem 1 replaces
// counting with prioritized queries that stop at a budget (core/sink.h's
// MonitoredQuery). BudgetedTopK lifts the same idea one level up, to
// whole top-k queries: answer top-k' for k' = 1, 2, 4, ... doubling
// toward k, consulting a stop predicate between stages. Because every
// result is sorted heaviest-first under the strict (weight, id) order,
// the top-k' answer IS the length-k' prefix of the top-k answer — so
// stopping early yields a *correct prefix* of the true result, never a
// wrong or arbitrary subset. Geometric doubling keeps the total work
// within a constant factor of the final stage's for structures whose
// query cost grows at least linearly in k.
//
// The stop predicate is consulted BETWEEN stages (cooperative, never
// mid-query), so each stage's cost is the monitoring granularity: a
// budget can be overshot by at most one stage, exactly like the
// paper's budget-(4K+1) monitored queries overshoot by one emission.

#ifndef TOPK_CORE_BUDGETED_QUERY_H_
#define TOPK_CORE_BUDGETED_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/problem.h"
#include "trace/tracer.h"

namespace topk {

template <typename E>
struct BudgetedResult {
  // Heaviest-first. A prefix of the true top-k when complete is false;
  // the full top-k when complete is true.
  std::vector<E> elements;
  bool complete = false;
  size_t stages = 0;  // top-k' queries issued
};

// Runs staged top-k' queries against `s` until the answer is complete
// (k' reached k, or the structure ran out of matches) or should_stop()
// returns true between stages. should_stop is any callable examining
// external state — a cost tally, a deadline clock, a cancellation flag.
template <typename S, typename StopFn>
  requires TopKStructure<S>
BudgetedResult<typename S::Element> BudgetedTopK(
    const S& s, const typename S::Predicate& q, size_t k,
    StopFn&& should_stop, QueryStats* stats = nullptr,
    trace::Tracer* tracer = nullptr) {
  trace::Span span(tracer, "budgeted_query", stats);
  span.Arg("k", k);
  BudgetedResult<typename S::Element> out;
  if (k == 0) {
    out.complete = true;
    return out;
  }
  size_t kp = 1;
  for (;;) {
    ++out.stages;
    {
      // The TopKStructure concept only guarantees Query(q, kp, stats);
      // pass the tracer through when the structure accepts one.
      trace::Span stage(tracer, "budgeted_stage", stats);
      stage.Arg("kp", kp);
      if constexpr (requires { s.Query(q, kp, stats, tracer); }) {
        out.elements = s.Query(q, kp, stats, tracer);
      } else {
        out.elements = s.Query(q, kp, stats);
      }
    }
    if (kp >= k || out.elements.size() < kp) {
      // Either the full k was answered or the structure has fewer than
      // kp matches — in both cases this is the complete answer.
      out.complete = true;
      span.Arg("stages", out.stages);
      return out;
    }
    if (should_stop()) {
      span.Arg("stages", out.stages);
      span.Arg("stopped", 1);
      return out;  // correct top-kp prefix, flagged
    }
    kp = std::min(k, kp * 2);
  }
}

}  // namespace topk

#endif  // TOPK_CORE_BUDGETED_QUERY_H_
