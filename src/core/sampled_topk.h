// Theorem 2: the expected-cost reduction from top-k to prioritized +
// max reporting, with no asymptotic degradation.
//
// Structure (Section 4): a prioritized structure on D, plus for each
// i = 1..h a (1/K_i)-sample R_i of D carrying a max structure, where
// K_i = B * Q_max(n) * (1+sigma)^{i-1} (sigma = 1/20) and h is the
// largest i with K_i <= n/4.
//
// Query (round protocol): starting at the smallest i with K_i >= k, each
// round j
//   1. probes |q(D)| <= 4K_j with a cost-monitored prioritized query
//      (success: k-selection finishes);
//   2. asks the max structure on R_j for the heaviest sampled element e
//      in q(R_j);
//   3. fetches {w >= w(e)} cost-monitored with budget 4K_j + 1;
//   4. succeeds iff the fetch completed with more than K_j elements
//      (Lemma 3: probability >= 0.09 per round), else moves to round
//      j + 1; the terminal round scans D.
// Expected cost: O(Q_pri + Q_max + k/B); rounds have geometric tails
// (validated by experiment E13). The protocol is deterministic-correct —
// no fallback is ever needed.
//
// Updates: an element appears in O(1) sampled sets in expectation, so
// Insert/Erase forward to the prioritized structure plus the (hash-
// recorded) max structures containing the element, at expected cost
// O(U_pri + U_max). Available when both structures are dynamic.

#ifndef TOPK_CORE_SAMPLED_TOPK_H_
#define TOPK_CORE_SAMPLED_TOPK_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/factory.h"
#include "core/problem.h"
#include "core/reduction_options.h"
#include "core/sink.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "trace/tracer.h"

namespace topk {

template <typename Problem, typename Pri, typename Max,
          typename PriFactory = DirectFactory<Pri>,
          typename MaxFactory = DirectFactory<Max>>
  requires PrioritizedStructure<Pri, Problem> &&
           MaxStructure<Max, Problem> &&
           StructureFactory<PriFactory, Pri, typename Problem::Element> &&
           StructureFactory<MaxFactory, Max, typename Problem::Element>
class SampledTopK {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate exports, consumed by serve/shareable.h's recursive
  // thread-shareability check.
  using Prioritized = Pri;
  using MaxSubstrate = Max;

  // Verdict codes recorded on "thm2_round" trace spans.
  static constexpr uint64_t kRoundSuccess = 0;        // step-4 fetch won
  static constexpr uint64_t kRoundProbeComplete = 1;  // step-1 probe won
  static constexpr uint64_t kRoundEmptySample = 2;    // q(R_j) was empty
  static constexpr uint64_t kRoundMiss = 3;           // advance to j + 1

  // Membership bookkeeping (id -> sampled levels) is only needed to
  // support Erase; skip it entirely for static instantiations.
  static constexpr bool kDynamic =
      requires(Pri& p, Max& m, const Element& e) {
        p.Insert(e);
        p.Erase(e);
        m.Insert(e);
        m.Erase(e);
      };

  explicit SampledTopK(std::vector<Element> data,
                       const ReductionOptions& options = {},
                       PriFactory pri_factory = {},
                       MaxFactory max_factory = {})
      : options_(options),
        rng_(options.seed),
        pri_factory_(std::move(pri_factory)),
        max_factory_(std::move(max_factory)) {
    Build(std::move(data));
  }

  size_t size() const { return n_; }
  size_t num_sample_levels() const { return levels_.size(); }
  size_t sample_level_size(size_t i) const { return levels_[i].max.size(); }
  double base_k() const { return base_k_; }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): Theorem 2
  // composition invariants — the K_i ladder exactly matches the
  // K_i = B * Q_max * (1+sigma)^{i-1}, K_i <= n/4 schedule frozen at the
  // last (re)build, sample sets are genuine subsets, and (dynamic
  // instantiations) the membership index and the level max structures
  // describe each other exactly: one entry per live element, per-level
  // reference counts equal to the level sizes, and — under TOPK_AUDIT,
  // where Max supports enumeration — no stale element in any level's
  // max structure without a matching membership record (the converse
  // direction; a clobbered membership entry is invisible to the
  // forward checks alone). Aborts via TOPK_CHECK on violation.
  void AuditInvariants() const {
    TOPK_CHECK(pri_.has_value());
    if (mirror_.has_value()) TOPK_CHECK_EQ(mirror_->size(), n_);
    size_t expected_levels = 0;
    double K = base_k_;
    for (; K <= static_cast<double>(built_n_) / 4.0;
         K *= (1.0 + options_.sigma)) {
      TOPK_CHECK(expected_levels < levels_.size());
      TOPK_CHECK_EQ(levels_[expected_levels].K, K);
      // E|R_i| = n/K_i; a sample can never exceed its source set.
      TOPK_CHECK_LE(levels_[expected_levels].max.size(), n_);
      ++expected_levels;
    }
    TOPK_CHECK_EQ(levels_.size(), expected_levels);
    if constexpr (kDynamic) {
      // Every live element has exactly one membership entry (possibly
      // pointing at zero levels), and summing the entries level-wise
      // must reproduce each level's size — a stale element (or a lost
      // membership record) breaks the balance.
      TOPK_CHECK_EQ(membership_.size(), n_);
      std::vector<size_t> refs(levels_.size(), 0);
      for (const auto& [id, where] : membership_) {
        for (uint32_t j : where) {
          TOPK_CHECK_LT(j, levels_.size());
          ++refs[j];
        }
      }
      for (size_t j = 0; j < levels_.size(); ++j) {
        TOPK_CHECK_EQ(refs[j], levels_[j].max.size());
      }
#ifdef TOPK_AUDIT
      // Converse sweep (O(n) — audit builds only): each element a level
      // actually stores is recorded in membership_ for that level,
      // exactly once.
      if constexpr (requires(const Max& m) {
                      m.ForEach([](const Element&) {});
                    }) {
        for (uint32_t j = 0; j < static_cast<uint32_t>(levels_.size());
             ++j) {
          levels_[j].max.ForEach([this, j](const Element& e) {
            const auto it = membership_.find(e.id);
            TOPK_CHECK(it != membership_.end());
            size_t hits = 0;
            for (uint32_t w : it->second) {
              if (w == j) ++hits;
            }
            TOPK_CHECK_EQ(hits, size_t{1});
          });
        }
      }
#endif  // TOPK_AUDIT
    } else {
      for (const auto& [id, where] : membership_) {
        TOPK_CHECK(!where.empty());
        for (uint32_t j : where) TOPK_CHECK_LT(j, levels_.size());
      }
    }
  }

  // The k heaviest elements of q(D), heaviest first. Exact always;
  // expected cost O(Q_pri + Q_max + k/B).
  std::vector<Element> Query(const Predicate& q, size_t k,
                             QueryStats* stats = nullptr,
                             trace::Tracer* tracer = nullptr) const {
    std::vector<Element> result;
    Scratch scratch;
    QueryInto(q, k, &scratch, &result, stats, tracer);
    return result;
  }

  // Scratch-threaded form writing into *out (cleared first): every
  // round's probe and fetch pool is borrowed from `scratch` and
  // recycled, so a warm arena and a warm *out serve the query with zero
  // heap allocations.
  void QueryInto(const Predicate& q, size_t k, Scratch* scratch,
                 std::vector<Element>* out, QueryStats* stats = nullptr,
                 trace::Tracer* tracer = nullptr,
                 parallel::Context* par = nullptr) const {
    out->clear();
    if (k == 0 || n_ == 0) return;
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    trace::Span span(tracer, "thm2_query", stats);
    span.Arg("k", k);

    // Queries below B*Q_max are served as top-(B*Q_max) + k-selection.
    const double k_eff =
        std::max(static_cast<double>(k), base_k_);

    // Smallest level i with K_i >= k_eff; none (or k too large) => scan.
    size_t i = levels_.size();
    for (size_t j = 0; j < levels_.size(); ++j) {
      if (levels_[j].K >= k_eff) {
        i = j;
        break;
      }
    }
    if (i == levels_.size()) {
      ScanAllInto(q, k, scratch, out, stats, tracer, par);
      return;
    }

    for (size_t j = i; j < levels_.size(); ++j) {
      if (stats != nullptr) ++stats->rounds;
      const Level& level = levels_[j];
      const size_t budget = static_cast<size_t>(4.0 * level.K) + 1;
      // One Lemma 3 round: sample level, K_j, and how it ended
      // (kRound* below) are the per-round attribution E23 cares about.
      trace::Span round(tracer, "thm2_round", stats);
      round.Arg("level", j);
      round.Arg("K", static_cast<uint64_t>(level.K));

      // Step 1: if |q(D)| <= 4K_j the monitored query completes. A
      // degenerate round (4K_j + 1 > n: the budget is unreachable, the
      // probe is a monitored full fetch) runs through the sharded
      // kernel instead — the exact count reproduces the completion
      // test, and since matched <= n < budget the round always ends
      // here, so steps 2-4 (whose fetch shares this budget) are never
      // reached sharded.
      if (mirror_.has_value() &&
          parallel::ShouldShard(par, n_, budget)) {
        const size_t matched = ShardedFetchInto<Problem>(
            *mirror_, q, kNegInf, k, par, scratch, out, stats, tracer);
        if (matched < budget) {
          round.Arg("verdict", kRoundProbeComplete);
          return;
        }
        out->clear();  // unreachable (budget > n_); protocol safety
      } else {
        // Step 1, serial.
        MonitoredPool<Element> probe =
            MonitoredQuery(*pri_, q, kNegInf, budget, scratch, stats,
                           tracer);
        if (!probe.hit_budget) {
          round.Arg("verdict", kRoundProbeComplete);
          SelectTopK(&probe.elements, k);
          out->assign(probe.elements.begin(), probe.elements.end());
          return;
        }
      }  // budget-hit probe pool returns to the arena before step 3

      // Step 2: heaviest sampled element under q.
      if (stats != nullptr) ++stats->max_queries;
      std::optional<Element> e = level.max.QueryMax(q, stats);
      if (!e.has_value()) {
        // tau = -inf would just repeat step 1.
        round.Arg("verdict", kRoundEmptySample);
        continue;
      }

      // Step 3: fetch everything at least as heavy as the sample max.
      MonitoredPool<Element> fetched =
          MonitoredQuery(*pri_, q, e->weight, budget, scratch, stats,
                         tracer);

      // Step 4: succeeded iff completed with |S| > K_j (Lemma 3's rank
      // window guarantees the top-k are inside S then).
      if (!fetched.hit_budget &&
          static_cast<double>(fetched.elements.size()) > level.K) {
        round.Arg("verdict", kRoundSuccess);
        SelectTopK(&fetched.elements, k);
        out->assign(fetched.elements.begin(), fetched.elements.end());
        return;
      }
      round.Arg("verdict", kRoundMiss);
    }
    // Terminal: read the whole D.
    ScanAllInto(q, k, scratch, out, stats, tracer, par);
  }

  // --- Dynamic interface (requires dynamic Pri and Max) -----------------

  void Insert(const Element& e)
    requires requires(Pri& p, Max& m) {
      p.Insert(e);
      m.Insert(e);
    }
  {
    if constexpr (kDynamic) {
      // Register the element in the membership index BEFORE sampling,
      // and reject a live duplicate: overwriting the existing entry
      // would orphan its level list, leaving stale (possibly heavier)
      // elements in those levels' max structures after Erase —
      // permanent round misses. Ids are element identity (the
      // (weight, id) total order and Erase-by-id both depend on it), so
      // re-inserting a live id is a programmer error.
      const bool inserted = membership_.try_emplace(e.id).second;
      TOPK_CHECK(inserted);
    }
    pri_->Insert(e);
    ++n_;
    if (mirror_.has_value()) mirror_->Add(e);
    for (uint32_t j = 0; j < static_cast<uint32_t>(levels_.size()); ++j) {
      if (rng_.Bernoulli(1.0 / levels_[j].K)) {
        levels_[j].max.Insert(e);
        if constexpr (kDynamic) membership_[e.id].push_back(j);
      }
    }
    MaybeRebuild();
  }

  // Constrained on kDynamic (not just the Erase signatures): membership
  // is recorded only for dynamic instantiations, so an Erase-only
  // substrate pair would compile yet silently never remove elements
  // from the sample levels. The mismatch fails here, at the constraint.
  void Erase(const Element& e)
    requires(kDynamic)
  {
    pri_->Erase(e);
    TOPK_CHECK(n_ > 0);
    --n_;
    if (mirror_.has_value()) mirror_->Remove(e.id);
    const auto it = membership_.find(e.id);
    TOPK_CHECK(it != membership_.end());  // every live element has one
    for (uint32_t j : it->second) levels_[j].max.Erase(e);
    membership_.erase(it);
    MaybeRebuild();
  }

 private:
  struct Level {
    double K;
    Max max;
  };

  void Build(std::vector<Element> data) {
    n_ = data.size();
    built_n_ = n_;
    levels_.clear();
    membership_.clear();

    const double q_max = std::max(
        1.0, Max::QueryCostBound(n_, options_.block_size));
    base_k_ = static_cast<double>(options_.block_size) * q_max;

    if constexpr (kDynamic) {
      // One membership entry per live element — sampled into zero
      // levels or not — so Insert can reject a duplicate id even when
      // the original landed in no sample. Doubles as a duplicate-id
      // check on the input.
      for (const Element& e : data) {
        const bool inserted = membership_.try_emplace(e.id).second;
        TOPK_CHECK(inserted);
      }
    }

    std::vector<std::pair<double, std::vector<Element>>> samples;
    for (double K = base_k_;
         K <= static_cast<double>(n_) / 4.0;
         K *= (1.0 + options_.sigma)) {
      std::vector<Element> r;
      const double p = 1.0 / K;
      for (const Element& e : data) {
        if (rng_.Bernoulli(p)) r.push_back(e);
      }
      samples.emplace_back(K, std::move(r));
    }

    for (auto& [K, sample] : samples) {
      if constexpr (kDynamic) {
        const uint32_t j = static_cast<uint32_t>(levels_.size());
        for (const Element& e : sample) membership_[e.id].push_back(j);
      }
      levels_.push_back(Level{K, max_factory_(std::move(sample))});
    }
    // SoA mirror for the sharded degenerate rounds / terminal scan;
    // (re)engaged per rebuild iff the set is big enough to ever shard,
    // then maintained incrementally by Insert/Erase until the next
    // rebuild re-evaluates.
    mirror_.reset();
    if (n_ >= parallel::kMinShardedN) mirror_.emplace(data);
    pri_.emplace(pri_factory_(std::move(data)));
  }

  void ScanAllInto(const Predicate& q, size_t k, Scratch* scratch,
                   std::vector<Element>* out, QueryStats* stats,
                   trace::Tracer* tracer = nullptr,
                   parallel::Context* par = nullptr) const {
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    trace::Span span(tracer, "thm2_scan", stats);
    if (stats != nullptr) ++stats->full_scans;
    // Budget n + 1 is always degenerate: the terminal scan is the
    // sharded kernel's home turf.
    if (mirror_.has_value() && parallel::ShouldShard(par, n_, n_ + 1)) {
      ShardedFetchInto<Problem>(*mirror_, q, kNegInf, k, par, scratch,
                                out, stats, tracer);
      return;
    }
    MonitoredPool<Element> all =
        MonitoredQuery(*pri_, q, kNegInf, n_ + 1, scratch, stats, tracer);
    SelectTopK(&all.elements, k);
    out->assign(all.elements.begin(), all.elements.end());
  }

  // Global rebuilding keeps the K_i ladder matched to the current n;
  // amortized O((build cost)/n) per update. Requires the prioritized
  // structure to support enumeration (ForEach); otherwise the structure
  // stays correct but its large-k path degrades toward scanning.
  void MaybeRebuild() {
    if constexpr (requires(const Pri& p) {
                    p.ForEach([](const Element&) {});
                  }) {
      if (n_ > 2 * built_n_ || (built_n_ >= 8 && n_ < built_n_ / 2)) {
        std::vector<Element> all;
        all.reserve(n_);
        pri_->ForEach([&all](const Element& e) { all.push_back(e); });
        Build(std::move(all));
      }
    }
  }

  ReductionOptions options_;
  Rng rng_;
  PriFactory pri_factory_;
  MaxFactory max_factory_;
  size_t n_ = 0;
  size_t built_n_ = 0;
  double base_k_ = 1.0;
  // optional<> lets Build construct the structure after sampling; always
  // engaged outside the constructor.
  std::optional<Pri> pri_;
  // SoA copy for the sharded kernel; engaged iff built_n_ was >=
  // parallel::kMinShardedN, maintained by Insert/Erase between rebuilds.
  std::optional<parallel::FlatMirror<Element>> mirror_;
  std::vector<Level> levels_;
  // Dynamic instantiations: one entry per LIVE element (the value lists
  // the levels whose sample holds it, possibly none) — completeness is
  // what lets Insert reject duplicate ids and Erase assert liveness.
  // Empty for static instantiations.
  std::unordered_map<uint64_t, std::vector<uint32_t>> membership_;
};

}  // namespace topk

#endif  // TOPK_CORE_SAMPLED_TOPK_H_
