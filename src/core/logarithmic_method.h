// The logarithmic method (Bentley & Saxe): a general transform from any
// *static* structure for a decomposable search problem to an
// insert-only dynamic one.
//
// Both query types the reductions consume are decomposable:
//   * prioritized reporting — the union of per-bucket reports;
//   * max reporting — the heaviest of per-bucket maxima.
// Elements live in O(log n) buckets of geometrically growing sizes; an
// insertion merges the smallest colliding buckets and rebuilds one
// static structure, for O((build(n)/n) * log n) amortized work. Queries
// fan out over the O(log n) buckets.
//
// This composes with the paper's reductions: a problem with only static
// structures (e.g. interval stabbing here) gains insert support in
// SampledTopK by wrapping both structures — the reduction's own
// requires-clauses light up automatically. (Deletions are out of scope:
// tombstoning would distort the cost-monitoring budgets that the
// reductions rely on.)

#ifndef TOPK_CORE_LOGARITHMIC_METHOD_H_
#define TOPK_CORE_LOGARITHMIC_METHOD_H_

#include <cmath>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"

namespace topk {

template <typename Inner>
class LogarithmicMethod {
 public:
  using Element = typename Inner::Element;
  using Predicate = typename Inner::Predicate;

  LogarithmicMethod() = default;

  explicit LogarithmicMethod(std::vector<Element> data) {
    if (!data.empty()) {
      size_ = data.size();
      buckets_.push_back(MakeBucket(std::move(data)));
    }
  }

  size_t size() const { return size_; }
  size_t num_buckets() const { return buckets_.size(); }

  // One extra log on the static bound (the bucket fan-out).
  static double QueryCostBound(size_t n, size_t block_size) {
    const double base = Inner::QueryCostBound(n, block_size);
    if (n < 2) return base;
    return base * std::max(1.0, std::log2(static_cast<double>(n)) /
                                    std::log2(static_cast<double>(
                                        block_size < 2 ? 2 : block_size)));
  }

  void Insert(const Element& e) {
    // Collect every bucket no larger than the insertion batch, merge,
    // rebuild one structure of the combined size (standard binomial-
    // counter argument gives the amortized bound).
    std::vector<Element> pool{e};
    while (!buckets_.empty() &&
           buckets_.back().elements.size() <= pool.size()) {
      std::vector<Element>& victim = buckets_.back().elements;
      pool.insert(pool.end(), victim.begin(), victim.end());
      buckets_.pop_back();
    }
    buckets_.push_back(MakeBucket(std::move(pool)));
    // Keep buckets sorted by decreasing size (swap up as needed).
    for (size_t i = buckets_.size(); i-- > 1;) {
      if (buckets_[i].elements.size() > buckets_[i - 1].elements.size()) {
        std::swap(buckets_[i], buckets_[i - 1]);
      } else {
        break;
      }
    }
    ++size_;
  }

  // Enumerates all stored elements (lets SampledTopK's global
  // rebuilding work over this wrapper too).
  template <typename F>
  void ForEach(F&& f) const {
    for (const Bucket& bucket : buckets_) {
      for (const Element& e : bucket.elements) f(e);
    }
  }

  template <typename Emit>
  void QueryPrioritized(const Predicate& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const
    requires requires(const Inner& s, Emit e) {
      s.QueryPrioritized(q, tau, e, stats);
    }
  {
    bool keep_going = true;
    for (const Bucket& bucket : buckets_) {
      AddNodes(stats, 1);
      bucket.inner.QueryPrioritized(
          q, tau, [&](const Element& e) { return keep_going = emit(e); },
          stats);
      if (!keep_going) return;
    }
  }

  std::optional<Element> QueryMax(const Predicate& q,
                                  QueryStats* stats = nullptr) const
    requires requires(const Inner& s) { s.QueryMax(q, stats); }
  {
    std::optional<Element> best;
    for (const Bucket& bucket : buckets_) {
      AddNodes(stats, 1);
      std::optional<Element> hit = bucket.inner.QueryMax(q, stats);
      if (hit.has_value() &&
          (!best.has_value() || HeavierThan(*hit, *best))) {
        best = hit;
      }
    }
    return best;
  }

 private:
  // Each bucket keeps its own element copy so rebuilding never depends
  // on the inner structure exposing enumeration.
  struct Bucket {
    std::vector<Element> elements;
    Inner inner;
  };

  static Bucket MakeBucket(std::vector<Element> elements) {
    Inner inner{std::vector<Element>(elements)};  // build from a copy
    return Bucket{std::move(elements), std::move(inner)};
  }

  size_t size_ = 0;
  std::vector<Bucket> buckets_;  // decreasing size
};

}  // namespace topk

#endif  // TOPK_CORE_LOGARITHMIC_METHOD_H_
