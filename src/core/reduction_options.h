// Tunables of the two reductions.
//
// Defaults follow the paper exactly; every constant can be overridden so
// the ablation benchmarks (E15) can measure how much headroom the paper's
// worst-case constants leave on realistic inputs.

#ifndef TOPK_CORE_REDUCTION_OPTIONS_H_
#define TOPK_CORE_REDUCTION_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace topk {

struct ReductionOptions {
  // The external-memory block size B, in words. The paper assumes
  // B >= 64 (its inequalities (10) and (11) rely on it). In the RAM model
  // B is simply a constant parameter of the reduction.
  size_t block_size = 64;

  // Multiplies the paper's structural constants: the core-set parameter
  // f = 12*lambda*B*Q_pri(n) of Theorem 1 and the core-set rank
  // ceil(8*lambda*ln n) of Lemma 2. Values < 1 trade the w.h.p.
  // guarantees for speed; correctness is unaffected because queries
  // verify their answer and fall back when a sample proves unlucky.
  double constant_scale = 1.0;

  // Theorem 2's geometric spacing sigma (paper: 1/20). K_i grows by
  // (1 + sigma) per level.
  double sigma = 0.05;

  // Seed for all sampling. Two structures built with the same data and
  // seed are identical.
  uint64_t seed = 0x7074'6f70'6b31ULL;

  // Lemma 2's proof succeeds with probability > 1/6 per draw; the builder
  // redraws a core-set whose *size* exceeds the Markov bound (3np) up to
  // this many times before accepting the smallest draw seen.
  size_t max_core_set_attempts = 16;
};

}  // namespace topk

#endif  // TOPK_CORE_REDUCTION_OPTIONS_H_
