// Top-k core-sets (Lemma 2 of the paper).
//
// For a lambda-polynomially-bounded problem and a parameter
// K >= 4*lambda*ln n, a core-set R of D is a subset with
//
//   * |R| <= 12*lambda*(n/K)*ln n, and
//   * for every predicate q with |q(D)| >= 4K: |q(R)| > 8*lambda*ln n and
//     the element of weight rank ceil(8*lambda*ln n) in q(R) has weight
//     rank in [K, 4K] in q(D).
//
// The lemma is existential (a p-sample with p = 4*(lambda/K)*ln n works
// with positive probability). The builder below draws such a sample and
// enforces the *size* bound by redrawing (Markov: each draw satisfies it
// with probability >= 2/3); the per-query rank property holds w.h.p. with
// the paper's constants and is *verified at query time* by the reductions,
// which fall back to an unconditionally correct algorithm when it fails.

#ifndef TOPK_CORE_CORE_SET_H_
#define TOPK_CORE_CORE_SET_H_

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/rank_sampling.h"

namespace topk {

// The sampling probability of Lemma 2: p = 4*(lambda/K)*ln n, clamped to
// [0, 1]. `scale` multiplies the constant (ablation; 1.0 = paper).
inline double CoreSetProbability(size_t n, double K, double lambda,
                                 double scale) {
  if (n == 0 || K <= 0) return 0.0;
  double p = scale * 4.0 * (lambda / K) * std::log(static_cast<double>(n));
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  return p;
}

// The pivot rank of Lemma 2: ceil(8*lambda*ln n), at least 1. A query
// q with |q(D)| >= 4K reads the element of this weight rank in q(R) as a
// proxy for weight rank ~[K, 4K] in q(D).
inline size_t CoreSetRank(size_t n, double lambda, double scale) {
  if (n <= 1) return 1;
  double r =
      std::ceil(scale * 8.0 * lambda * std::log(static_cast<double>(n)));
  return r < 1.0 ? size_t{1} : static_cast<size_t>(r);
}

// Draws a core-set of `data` with parameter K. Redraws (up to
// `max_attempts`) while the draw exceeds the Markov size bound
// 3*n*p = 12*lambda*(n/K)*ln n; returns the smallest draw if all attempts
// exceed it (correctness is unaffected, only space).
template <typename E>
std::vector<E> BuildCoreSet(const std::vector<E>& data, double K,
                            double lambda, double scale, Rng* rng,
                            size_t max_attempts = 16) {
  const size_t n = data.size();
  const double p = CoreSetProbability(n, K, lambda, scale);
  const double size_bound = 3.0 * p * static_cast<double>(n);
  std::vector<E> best;
  bool have_best = false;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<E> draw = PSample(data, p, rng);
    if (static_cast<double>(draw.size()) <= size_bound) return draw;
    if (!have_best || draw.size() < best.size()) {
      best = std::move(draw);
      have_best = true;
    }
  }
  return best;
}

}  // namespace topk

#endif  // TOPK_CORE_CORE_SET_H_
