// The counting-based reduction of Section 2 (Rahul–Janardan, improved
// as described by the paper): top-k from a reporting structure plus a
// (c-approximate or exact) counting structure.
//
// Query: binary-search the global sorted weight list for the largest
// threshold tau* whose count is >= k (O(log n) counting queries), then
// one prioritized fetch at tau* plus k-selection. With an exact counter
// the fetch returns between k and the count at the next weight step; a
// c-approximate counter inflates the fetch by at most a factor c (we
// terminate the binary search on count in [k, c*k] and cap the fetch).
//
// Cost: O(Q_cnt(n) * log n + Q_rep(n) + c*k/B). Space:
// O(S_rep + S_cnt). Implemented as the paper's second baseline: the
// section-2 reduction carries a log n multiplier on the counting term
// that Theorems 1 and 2 eliminate.
//
// Counter contract:
//   size_t Count(q, tau, stats)   — returns a value in
//                                   [|exact|, c*|exact|] for fixed c>=1.

#ifndef TOPK_CORE_COUNTING_TOPK_H_
#define TOPK_CORE_COUNTING_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/kselect.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/problem.h"
#include "core/sink.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"

namespace topk {

template <typename Problem, typename Pri, typename Counter>
  requires PrioritizedStructure<Pri, Problem> &&
           CounterStructure<Counter, Problem>
class CountingTopK {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;
  // Substrate exports, consumed by serve/shareable.h's recursive
  // thread-shareability check.
  using Prioritized = Pri;
  using CounterStructure = Counter;

  explicit CountingTopK(std::vector<Element> data)
      : counter_(data), pri_(MakeWeightsAndPass(&data)), n_(pri_.size()) {}

  size_t size() const { return n_; }

  std::vector<Element> Query(const Predicate& q, size_t k,
                             QueryStats* stats = nullptr) const {
    std::vector<Element> result;
    Scratch scratch;
    QueryInto(q, k, &scratch, &result, stats);
    return result;
  }

  // Scratch-threaded form writing into *out (cleared first): the final
  // fetch pool is borrowed from `scratch`, so a warm arena and a warm
  // *out serve the query with zero heap allocations (the binary search
  // itself only issues counting probes). The counting probes stay
  // serial (they are the cheap O(Q_cnt log n) head); the final tally
  // fetch is un-budgeted (n + 1, always degenerate) and runs sharded
  // when `par` is present.
  void QueryInto(const Predicate& q, size_t k, Scratch* scratch,
                 std::vector<Element>* out, QueryStats* stats = nullptr,
                 parallel::Context* par = nullptr) const {
    out->clear();
    if (k == 0 || n_ == 0) return;
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();

    // Largest threshold (smallest index in weights_desc_) with
    // count >= k; counts are monotone in the index.
    size_t lo = 0, hi = weights_desc_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const size_t count = counter_.Count(q, weights_desc_[mid], stats);
      if (stats != nullptr) ++stats->max_queries;  // count probes
      if (count >= k) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const double tau = lo < weights_desc_.size() ? weights_desc_[lo]
                                                 : kNegInf;
    if (mirror_.has_value() && parallel::ShouldShard(par, n_, n_ + 1)) {
      ShardedFetchInto<Problem>(*mirror_, q, tau, k, par, scratch, out,
                                stats, /*tracer=*/nullptr);
      return;
    }
    MonitoredPool<Element> fetched =
        MonitoredQuery(pri_, q, tau, n_ + 1, scratch, stats);
    SelectTopK(&fetched.elements, k);
    out->assign(fetched.elements.begin(), fetched.elements.end());
  }

 private:
  std::vector<Element> MakeWeightsAndPass(std::vector<Element>* data) {
    weights_desc_.reserve(data->size());
    for (const Element& e : *data) weights_desc_.push_back(e.weight);
    std::sort(weights_desc_.begin(), weights_desc_.end(),
              std::greater<double>());
    // SoA mirror for the sharded tally fetch (see parallel/flat_scan.h);
    // engaged iff the set is big enough to ever shard. mirror_ precedes
    // pri_ in declaration order, so it is alive while this initializer
    // for pri_ runs.
    if (data->size() >= parallel::kMinShardedN) mirror_.emplace(*data);
    return std::move(*data);
  }

  std::vector<double> weights_desc_;
  std::optional<parallel::FlatMirror<Element>> mirror_;
  Counter counter_;
  Pri pri_;
  size_t n_;
};

}  // namespace topk

#endif  // TOPK_CORE_COUNTING_TOPK_H_
