// The top-f structure of Section 3.2 (first half): a chain of nested
// core-sets answering top-k queries with k <= f.
//
// Level 0 is the input set S = R_0 with a prioritized structure on it;
// level j+1 is a core-set of level j with parameter K = f. The chain
// stops at the first level of size <= 4f (or as soon as deeper core-sets
// stop shrinking, which cannot happen with the paper's constants).
//
// A top-f query at level j:
//   * runs a cost-monitored prioritized query with tau = -inf and budget
//     4f + 1; if it completes, k-selection finishes the job;
//   * otherwise (|q(R_j)| > 4f) recursively obtains the top-f of
//     q(R_{j+1}), reads the element e of weight rank ceil(8*lambda*ln n_j)
//     in it — by Lemma 2, e has weight rank in [f, 4f] within q(R_j) —
//     and fetches {w >= w(e)} from level j's prioritized structure.
//
// Unlucky-sample handling: the fetched set is verified to contain at
// least f elements and at most 8f (twice Lemma 2's bound, leaving slack
// before declaring the sample bad); a violation surfaces as nullopt and
// the caller (CoreSetTopK) falls back to the binary-search reduction.

#ifndef TOPK_CORE_TOP_F_H_
#define TOPK_CORE_TOP_F_H_

#include <cstddef>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/kselect.h"
#include "common/random.h"
#include "common/scratch.h"
#include "common/stats.h"
#include "core/core_set.h"
#include "core/factory.h"
#include "core/problem.h"
#include "core/sink.h"
#include "parallel/context.h"
#include "parallel/flat_scan.h"
#include "trace/tracer.h"

namespace topk {

template <typename Problem, typename Pri>
class TopFChain {
 public:
  using Element = typename Problem::Element;
  using Predicate = typename Problem::Predicate;

  // Builds the chain on `data`. `f` is Theorem 1's core-set parameter
  // (already clamped by the caller to be >= the Lemma 2 rank);
  // `constant_scale` is forwarded to the core-set builder; `factory`
  // constructs a Pri from a vector of elements (see core/factory.h).
  template <typename Factory = DirectFactory<Pri>>
  TopFChain(std::vector<Element> data, size_t f, double constant_scale,
            Rng* rng, size_t max_core_set_attempts,
            const Factory& factory = {})
      : f_(f), scale_(constant_scale) {
    TOPK_CHECK(f_ >= 1);
    std::vector<Element> current = std::move(data);
    while (true) {
      const size_t n_j = current.size();
      std::vector<Element> next;
      const bool bottom = n_j <= 4 * f_;
      if (!bottom) {
        next = BuildCoreSet(current, static_cast<double>(f_),
                            Problem::kLambda, scale_, rng,
                            max_core_set_attempts);
      }
      // SoA mirror for the sharded degenerate-probe kernel; only levels
      // big enough to ever shard carry one (see parallel/flat_scan.h).
      std::optional<parallel::FlatMirror<Element>> mirror;
      if (n_j >= parallel::kMinShardedN) mirror.emplace(current);
      levels_.push_back(
          Level{factory(std::move(current)), n_j, std::move(mirror)});
      if (bottom) break;
      // Guard against a non-shrinking chain (possible only with
      // aggressive constant_scale ablation): stop; queries that bottom
      // out here report failure and the caller falls back.
      if (next.size() >= n_j) break;
      current = std::move(next);
    }
  }

  size_t f() const { return f_; }
  size_t num_levels() const { return levels_.size(); }
  size_t level_size(size_t j) const { return levels_[j].n; }

  // The prioritized structure on the full input set (level 0) — shared
  // with the enclosing CoreSetTopK so the input is indexed once.
  const Pri& level0() const { return levels_.front().pri; }

  // Level 0's flat mirror, shared with the enclosing CoreSetTopK for
  // the same reason; null when the input is too small to ever shard.
  const parallel::FlatMirror<Element>* level0_mirror() const {
    const Level& l = levels_.front();
    return l.mirror.has_value() ? &*l.mirror : nullptr;
  }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): Lemma 2
  // nesting — every core-set level is a strictly smaller subset of its
  // parent, each level's structure indexes exactly the recorded count,
  // and the chain bottoms out at <= 4f elements unless the non-shrinking
  // guard truncated it (then the last level is the one that refused to
  // shrink). Aborts via TOPK_CHECK on violation.
  void AuditInvariants() const {
    TOPK_CHECK(f_ >= 1);
    TOPK_CHECK(!levels_.empty());
    for (size_t j = 0; j < levels_.size(); ++j) {
      TOPK_CHECK_EQ(levels_[j].pri.size(), levels_[j].n);
      if (j > 0) TOPK_CHECK_LT(levels_[j].n, levels_[j - 1].n);
      if (levels_[j].mirror.has_value()) {
        TOPK_CHECK_EQ(levels_[j].mirror->size(), levels_[j].n);
      }
    }
    // Every level above the bottom must have been worth splitting.
    for (size_t j = 0; j + 1 < levels_.size(); ++j) {
      TOPK_CHECK_LT(4 * f_, levels_[j].n);
    }
  }

  // Top-min(f, |q(S)|) elements of q(S), heaviest first, in a pool
  // borrowed from `scratch`; nullopt when an unlucky core-set defeated
  // the algorithm (caller must fall back). The whole recursion works
  // out of the arena: the steady state borrows one buffer at a time, so
  // a warm arena serves any chain depth with zero allocations.
  std::optional<ScratchVec<Element>> QueryTopF(
      const Predicate& q, Scratch* scratch, QueryStats* stats,
      trace::Tracer* tracer = nullptr,
      parallel::Context* par = nullptr) const {
    return QueryLevel(0, q, scratch, stats, tracer, par);
  }

  // Compatibility form owning a throwaway Scratch (tests and one-off
  // callers; may allocate).
  std::optional<std::vector<Element>> QueryTopF(
      const Predicate& q, QueryStats* stats,
      trace::Tracer* tracer = nullptr) const {
    Scratch scratch;
    std::optional<ScratchVec<Element>> top =
        QueryTopF(q, &scratch, stats, tracer);
    if (!top.has_value()) return std::nullopt;
    return std::vector<Element>(top->begin(), top->end());
  }

 private:
  struct Level {
    Pri pri;
    size_t n;  // number of elements indexed at this level
    // SoA copy for the sharded kernel; engaged iff n >= kMinShardedN.
    std::optional<parallel::FlatMirror<Element>> mirror;
  };

  std::optional<ScratchVec<Element>> QueryLevel(
      size_t j, const Predicate& q, Scratch* scratch, QueryStats* stats,
      trace::Tracer* tracer, parallel::Context* par) const {
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    const Level& level = levels_[j];
    trace::Span span(tracer, "topf_level", stats);
    span.Arg("level", j);
    span.Arg("n", level.n);
    // When f is degenerate (4f + 1 > n_j: the probe budget is
    // unreachable and the serial probe is a monitored full fetch), the
    // level walk runs sharded over the level's flat mirror. The exact
    // match count reproduces the serial protocol decisions 1:1.
    if (level.mirror.has_value() &&
        parallel::ShouldShard(par, level.n, 4 * f_ + 1)) {
      {
        ScratchVec<Element> top = scratch->Borrow<Element>();
        const size_t matched =
            ShardedFetchInto<Problem>(*level.mirror, q, kNegInf, f_, par,
                                      scratch, &top.vec(), stats, tracer);
        // matched <= 4f <=> the serial probe completes under budget.
        if (matched <= 4 * f_) return top;
      }  // oversized probe pool returns to the arena before recursing
    } else {
      MonitoredPool<Element> r = MonitoredQuery(
          level.pri, q, kNegInf, 4 * f_ + 1, scratch, stats, tracer);
      if (!r.hit_budget) {
        SelectTopK(&r.elements, f_);
        return std::move(r.elements);
      }
    }  // budget-hit probe pool returns to the arena before recursing
    if (j + 1 >= levels_.size()) return std::nullopt;  // truncated chain

    std::optional<ScratchVec<Element>> deeper =
        QueryLevel(j + 1, q, scratch, stats, tracer, par);
    if (!deeper.has_value()) return std::nullopt;
    const size_t rank = CoreSetRank(level.n, Problem::kLambda, scale_);
    if (deeper->size() < rank) return std::nullopt;  // unlucky sample
    const double tau = (*deeper)[rank - 1].weight;
    deeper.reset();  // only tau survives; recycle the pool for the fetch

    // Lemma 2: e has weight rank in [f, 4f] within q(R_j) w.h.p.; allow
    // 2x slack before declaring the sample bad.
    if (level.mirror.has_value() &&
        parallel::ShouldShard(par, level.n, 8 * f_ + 1)) {
      ScratchVec<Element> top = scratch->Borrow<Element>();
      const size_t matched = ShardedFetchInto<Problem>(
          *level.mirror, q, tau, f_, par, scratch, &top.vec(), stats,
          tracer);
      if (matched > 8 * f_) return std::nullopt;  // rank too deep
      if (matched < f_) return std::nullopt;      // rank too high
      return top;
    }
    MonitoredPool<Element> fetched = MonitoredQuery(
        level.pri, q, tau, 8 * f_ + 1, scratch, stats, tracer);
    if (fetched.hit_budget) return std::nullopt;          // rank too deep
    if (fetched.elements.size() < f_) return std::nullopt;  // rank too high
    SelectTopK(&fetched.elements, f_);
    return std::move(fetched.elements);
  }

  size_t f_;
  double scale_;
  std::vector<Level> levels_;
};

}  // namespace topk

#endif  // TOPK_CORE_TOP_F_H_
