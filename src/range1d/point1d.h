// Problem definition: 1D range reporting over weighted points.
//
// D is a set of weighted points on the real line; a predicate is a
// closed interval [lo, hi]. Top-k range reporting is the most studied
// problem in the paper's survey (Section 2: [3, 11, 12, 33, 35]) and the
// library's reference instantiation: both its prioritized structure (a
// priority search tree) and its max structure (range maximum) meet the
// paper's interface contracts exactly, in RAM and (via em/) in EM.
//
// Polynomial boundedness: every outcome q(D) is a contiguous run of the
// x-sorted order, so at most n^2 outcomes exist — lambda = 2.

#ifndef TOPK_RANGE1D_POINT1D_H_
#define TOPK_RANGE1D_POINT1D_H_

#include <cstdint>

namespace topk::range1d {

struct Point1D {
  double x = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct Range1D {
  double lo = 0;
  double hi = 0;
};

struct Range1DProblem {
  using Element = Point1D;
  using Predicate = Range1D;
  static constexpr double kLambda = 2.0;

  static bool Matches(const Range1D& q, const Point1D& e) {
    return q.lo <= e.x && e.x <= q.hi;
  }
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_POINT1D_H_
