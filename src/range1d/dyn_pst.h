// Dynamic priority search tree: a treap ordered by (x, id) whose heap
// priority IS the weight — the textbook dynamic PST.
//
// Three-sided queries work exactly as in the static PST (prune subtrees
// whose max weight — the root, by the heap property — misses tau).
// Insert/Erase are the classic treap rotations in O(depth).
//
// Balance caveat (documented, matches the structure's folklore status):
// depth is O(log n) in expectation when weights are independent of the
// x-order, which holds for the randomized workloads of the paper's
// model; adversarially correlated weights can degrade it. The library's
// reductions only require the *contract*, not a worst-case proof, and
// the update benchmarks (E5) measure actual behaviour.

#ifndef TOPK_RANGE1D_DYN_PST_H_
#define TOPK_RANGE1D_DYN_PST_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"

namespace topk::range1d {

class DynamicPst {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  DynamicPst() = default;
  explicit DynamicPst(std::vector<Point1D> data) {
    for (const Point1D& p : data) Insert(p);
  }

  DynamicPst(DynamicPst&&) = default;
  DynamicPst& operator=(DynamicPst&&) = default;

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  void Insert(const Point1D& p) {
    root_ = InsertAt(std::move(root_), p);
    ++size_;
  }

  // `p` must currently be stored (matched by id).
  void Erase(const Point1D& p) {
    bool erased = false;
    root_ = EraseAt(std::move(root_), p, &erased);
    TOPK_CHECK(erased);
    --size_;
  }

  template <typename Emit>
  void QueryPrioritized(const Range1D& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    Visit(root_.get(), q, tau, emit, stats);
  }

  template <typename F>
  void ForEach(F&& f) const {
    ForEachNode(root_.get(), f);
  }

 private:
  struct Node {
    Point1D point;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  // BST order on (x, id).
  static bool KeyLess(const Point1D& a, const Point1D& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.id < b.id;
  }

  static NodePtr RotateRight(NodePtr n) {
    NodePtr l = std::move(n->left);
    n->left = std::move(l->right);
    l->right = std::move(n);
    return l;
  }

  static NodePtr RotateLeft(NodePtr n) {
    NodePtr r = std::move(n->right);
    n->right = std::move(r->left);
    r->left = std::move(n);
    return r;
  }

  static NodePtr InsertAt(NodePtr n, const Point1D& p) {
    if (!n) {
      NodePtr fresh = std::make_unique<Node>();
      fresh->point = p;
      return fresh;
    }
    if (KeyLess(p, n->point)) {
      n->left = InsertAt(std::move(n->left), p);
      if (HeavierThan(n->left->point, n->point)) n = RotateRight(std::move(n));
    } else {
      n->right = InsertAt(std::move(n->right), p);
      if (HeavierThan(n->right->point, n->point)) n = RotateLeft(std::move(n));
    }
    return n;
  }

  static NodePtr EraseAt(NodePtr n, const Point1D& p, bool* erased) {
    if (!n) return n;
    if (n->point.id == p.id && n->point.x == p.x) {
      *erased = true;
      return EraseRoot(std::move(n));
    }
    if (KeyLess(p, n->point)) {
      n->left = EraseAt(std::move(n->left), p, erased);
    } else {
      n->right = EraseAt(std::move(n->right), p, erased);
    }
    return n;
  }

  // Rotates the heavier child up until the node is a leaf, then drops it.
  static NodePtr EraseRoot(NodePtr n) {
    if (!n->left && !n->right) return nullptr;
    if (!n->left || (n->right && HeavierThan(n->right->point, n->left->point))) {
      n = RotateLeft(std::move(n));
      n->left = EraseRoot(std::move(n->left));
    } else {
      n = RotateRight(std::move(n));
      n->right = EraseRoot(std::move(n->right));
    }
    return n;
  }

  template <typename Emit>
  static bool Visit(const Node* n, const Range1D& q, double tau, Emit& emit,
                    QueryStats* stats) {
    if (n == nullptr) return true;
    AddNodes(stats, 1);
    if (!MeetsThreshold(n->point, tau)) return true;  // heap prune
    if (Range1DProblem::Matches(q, n->point)) {
      if (!emit(n->point)) return false;
    }
    if (q.lo <= n->point.x) {
      if (!Visit(n->left.get(), q, tau, emit, stats)) return false;
    }
    if (q.hi >= n->point.x) {
      if (!Visit(n->right.get(), q, tau, emit, stats)) return false;
    }
    return true;
  }

  template <typename F>
  static void ForEachNode(const Node* n, F& f) {
    if (n == nullptr) return;
    f(n->point);
    ForEachNode(n->left.get(), f);
    ForEachNode(n->right.get(), f);
  }

  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_DYN_PST_H_
