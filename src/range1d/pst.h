// Static priority search tree: the prioritized structure for 1D range
// reporting.
//
// McCreight's classic structure: points are arranged in a tree that is a
// balanced search tree on x (median splits) and a max-heap on weight
// (every node stores the heaviest point of its subtree's x-range; each
// point is stored exactly once). A three-sided query
// (x in [lo, hi], weight >= tau) visits the two boundary search paths
// plus, inside fully-contained subtrees, only nodes that emit — i.e.
// O(log n + t) nodes — which is exactly the Q_pri(n) + O(t) contract of
// the paper with Q_pri(n) = O(log n). Space: one node per point, O(n).

#ifndef TOPK_RANGE1D_PST_H_
#define TOPK_RANGE1D_PST_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"

namespace topk::range1d {

class PrioritySearchTree {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit PrioritySearchTree(std::vector<Point1D> data) {
    std::sort(data.begin(), data.end(),
              [](const Point1D& a, const Point1D& b) {
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
    nodes_.reserve(data.size());
    root_ = Build(&data, 0, data.size());
  }

  size_t size() const { return nodes_.size(); }

  // Q_pri(n): one root-to-leaf descent, measured in block accesses.
  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  // Reports every point with x in [q.lo, q.hi] and weight >= tau, in
  // arbitrary order, stopping early when emit returns false.
  template <typename Emit>
  void QueryPrioritized(const Range1D& q, double tau, Emit&& emit,
                        QueryStats* stats = nullptr) const {
    Visit(root_, q, tau, emit, stats);
  }

  // Enumerates all points (used by tests and global rebuilding).
  template <typename F>
  void ForEach(F&& f) const {
    for (const Node& node : nodes_) f(node.point);
  }

  // Audit hook (src/audit/, -DTOPK_AUDIT=ON test sweeps): structural
  // invariants — max-heap order on (weight, id), x-split discipline on
  // both subtrees, and every point stored exactly once. Aborts via
  // TOPK_CHECK on violation.
  void AuditInvariants() const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    size_t visited = 0;
    AuditNode(root_, nullptr, -kInf, kInf, &visited);
    TOPK_CHECK_EQ(visited, nodes_.size());
  }

  // --- Low-level traversal (for heap-selection algorithms) -------------
  // The tree is a max-heap on weight: a node's point is the heaviest of
  // its subtree. kNil (-1) marks absent children.
  static constexpr int32_t kNil = -1;
  int32_t root() const { return root_; }
  const Point1D& node_point(int32_t idx) const { return nodes_[idx].point; }
  double node_xsplit(int32_t idx) const { return nodes_[idx].x_split; }
  int32_t node_left(int32_t idx) const { return nodes_[idx].left; }
  int32_t node_right(int32_t idx) const { return nodes_[idx].right; }

 private:

  struct Node {
    Point1D point;   // heaviest point of this subtree's x-range
    double x_split;  // left subtree: x <= x_split; right: x > x_split
    int32_t left = kNil;
    int32_t right = kNil;
  };

  // Consumes data[lo, hi): extracts the heaviest point as the node, then
  // splits the remainder at the x-median. O(n log n) total.
  int32_t Build(std::vector<Point1D>* data, size_t lo, size_t hi) {
    if (lo >= hi) return kNil;
    size_t best = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      if (HeavierThan((*data)[i], (*data)[best])) best = i;
    }
    Node node;
    node.point = (*data)[best];
    // Remove the heaviest point, keeping x order.
    for (size_t i = best; i + 1 < hi; ++i) (*data)[i] = (*data)[i + 1];
    const size_t count = hi - lo - 1;
    const size_t mid = lo + count / 2;  // left gets floor(count/2)
    if (count == 0) {
      node.x_split = node.point.x;
    } else if (mid == lo) {
      node.x_split = -std::numeric_limits<double>::infinity();
    } else {
      node.x_split = (*data)[mid - 1].x;
    }
    const int32_t index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(node);
    const int32_t l = Build(data, lo, mid);
    const int32_t r = Build(data, mid, hi - 1);
    nodes_[index].left = l;
    nodes_[index].right = r;
    return index;
  }

  // `parent` is null at the root; [min_x, max_x] bounds the subtree's
  // allowed x-range (split discipline: left subtree x <= x_split, right
  // subtree x >= x_split — ">=", matching Visit's duplicate-x handling).
  void AuditNode(int32_t idx, const Point1D* parent, double min_x,
                 double max_x, size_t* visited) const {
    if (idx == kNil) return;
    const Node& node = nodes_[idx];
    ++*visited;
    TOPK_CHECK(*visited <= nodes_.size());  // cycle guard
    if (parent != nullptr) TOPK_CHECK(!HeavierThan(node.point, *parent));
    TOPK_CHECK(node.point.x >= min_x && node.point.x <= max_x);
    AuditNode(node.left, &node.point, min_x,
              std::min(max_x, node.x_split), visited);
    AuditNode(node.right, &node.point, std::max(min_x, node.x_split),
              max_x, visited);
  }

  template <typename Emit>
  bool Visit(int32_t idx, const Range1D& q, double tau, Emit& emit,
             QueryStats* stats) const {
    if (idx == kNil) return true;
    const Node& node = nodes_[idx];
    AddNodes(stats, 1);
    // Heap property: nothing below is heavier than node.point.
    if (!MeetsThreshold(node.point, tau)) return true;
    if (Range1DProblem::Matches(q, node.point)) {
      if (!emit(node.point)) return false;
    }
    if (q.lo <= node.x_split) {
      if (!Visit(node.left, q, tau, emit, stats)) return false;
    }
    // ">=" (not ">") so duplicate x values straddling the split are never
    // missed; right-subtree points satisfy x >= x_split.
    if (q.hi >= node.x_split) {
      if (!Visit(node.right, q, tau, emit, stats)) return false;
    }
    return true;
  }

  std::vector<Node> nodes_;
  int32_t root_ = kNil;
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_PST_H_
