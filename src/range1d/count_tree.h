// Exact counting structure for 1D range reporting: a merge-sort tree.
//
// A balanced tree over the x-sorted points; each node stores the
// weights of its x-contiguous range, sorted. Count(q, tau) =
// |{e : x in [q.lo, q.hi], w(e) >= tau}| decomposes the x-range into
// O(log n) canonical nodes and binary-searches each weight list:
// O(log^2 n) time, O(n log n) space.
//
// This powers the counting-based reduction of the paper's Section 2
// (Rahul–Janardan): an *exact* counter is a valid approximate counter
// with c = 1.

#ifndef TOPK_RANGE1D_COUNT_TREE_H_
#define TOPK_RANGE1D_COUNT_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "range1d/point1d.h"

namespace topk::range1d {

class CountTree {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit CountTree(std::vector<Point1D> data) {
    std::sort(data.begin(), data.end(),
              [](const Point1D& a, const Point1D& b) {
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
    n_ = data.size();
    xs_.reserve(n_);
    for (const Point1D& p : data) xs_.push_back(p.x);
    if (n_ == 0) return;
    nodes_.assign(4 * n_, {});
    Build(1, 0, n_, data);
  }

  size_t size() const { return n_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    const double lg_n = std::log2(static_cast<double>(n));
    return std::max(1.0, lg_n * lg_n / lg_b);
  }

  // |{e : x in [q.lo, q.hi] and w(e) >= tau}|.
  size_t Count(const Range1D& q, double tau,
               QueryStats* stats = nullptr) const {
    if (n_ == 0 || q.lo > q.hi) return 0;
    const size_t lo = static_cast<size_t>(
        std::lower_bound(xs_.begin(), xs_.end(), q.lo) - xs_.begin());
    const size_t hi = static_cast<size_t>(
        std::upper_bound(xs_.begin(), xs_.end(), q.hi) - xs_.begin());
    if (lo >= hi) return 0;
    return CountAt(1, 0, n_, lo, hi, tau, stats);
  }

 private:
  void Build(size_t node, size_t lo, size_t hi,
             const std::vector<Point1D>& data) {
    std::vector<double>& w = nodes_[node];
    w.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) w.push_back(data[i].weight);
    std::sort(w.begin(), w.end());
    if (hi - lo == 1) return;
    const size_t mid = lo + (hi - lo) / 2;
    Build(2 * node, lo, mid, data);
    Build(2 * node + 1, mid, hi, data);
  }

  size_t CountAt(size_t node, size_t lo, size_t hi, size_t a, size_t b,
                 double tau, QueryStats* stats) const {
    if (b <= lo || a >= hi) return 0;
    AddNodes(stats, 1);
    if (a <= lo && hi <= b) {
      const std::vector<double>& w = nodes_[node];
      return static_cast<size_t>(
          w.end() - std::lower_bound(w.begin(), w.end(), tau));
    }
    const size_t mid = lo + (hi - lo) / 2;
    return CountAt(2 * node, lo, mid, a, b, tau, stats) +
           CountAt(2 * node + 1, mid, hi, a, b, tau, stats);
  }

  size_t n_ = 0;
  std::vector<double> xs_;                 // sorted x
  std::vector<std::vector<double>> nodes_;  // sorted weights per node
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_COUNT_TREE_H_
