// Static range maximum: the max structure for 1D range reporting.
//
// Points sorted by x; a sparse table over the sorted order answers
// "heaviest point with x in [lo, hi]" with two overlapping power-of-two
// windows after an O(log n) binary search for the index range. Space
// O(n log n) — deliberately *larger* than the prioritized structure's
// O(n), which is exactly the situation the paper's "bootstrapping"
// remark (Section 1.3) addresses: Theorem 2 builds max structures only
// on geometrically decaying samples, so the top-k structure's space
// stays O(S_pri). Experiment E4 measures this.

#ifndef TOPK_RANGE1D_RANGE_MAX_H_
#define TOPK_RANGE1D_RANGE_MAX_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"

namespace topk::range1d {

class RangeMax {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit RangeMax(std::vector<Point1D> data) : points_(std::move(data)) {
    std::sort(points_.begin(), points_.end(),
              [](const Point1D& a, const Point1D& b) { return a.x < b.x; });
    const size_t n = points_.size();
    if (n == 0) return;
    const size_t levels = Log2Floor(n) + 1;
    table_.assign(levels, std::vector<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) table_[0][i] = static_cast<uint32_t>(i);
    for (size_t l = 1; l < levels; ++l) {
      const size_t half = size_t{1} << (l - 1);
      for (size_t i = 0; i + (size_t{1} << l) <= n; ++i) {
        const uint32_t a = table_[l - 1][i];
        const uint32_t b = table_[l - 1][i + half];
        table_[l][i] = HeavierThan(points_[a], points_[b]) ? a : b;
      }
    }
  }

  size_t size() const { return points_.size(); }

  // Q_max(n): the binary search dominates.
  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  std::optional<Point1D> QueryMax(const Range1D& q,
                                  QueryStats* stats = nullptr) const {
    const auto lo_it = std::lower_bound(
        points_.begin(), points_.end(), q.lo,
        [](const Point1D& p, double v) { return p.x < v; });
    const auto hi_it = std::upper_bound(
        points_.begin(), points_.end(), q.hi,
        [](double v, const Point1D& p) { return v < p.x; });
    AddNodes(stats, Log2Floor(points_.size() + 1) + 2);
    if (lo_it >= hi_it) return std::nullopt;
    const size_t lo = static_cast<size_t>(lo_it - points_.begin());
    const size_t hi = static_cast<size_t>(hi_it - points_.begin());  // excl
    const size_t len = hi - lo;
    const size_t l = Log2Floor(len);
    const uint32_t a = table_[l][lo];
    const uint32_t b = table_[l][hi - (size_t{1} << l)];
    return HeavierThan(points_[a], points_[b]) ? points_[a] : points_[b];
  }

 private:
  static size_t Log2Floor(size_t v) {
    size_t r = 0;
    while (v > 1) {
      v >>= 1;
      ++r;
    }
    return r;
  }

  std::vector<Point1D> points_;  // sorted by x
  std::vector<std::vector<uint32_t>> table_;
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_RANGE_MAX_H_
