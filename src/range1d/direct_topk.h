// Direct (problem-specific) top-k for 1D range reporting: lazy heap
// selection over the priority search tree.
//
// The PST is a max-heap on weight, so a top-k query is heap selection
// restricted to the x-range: a best-first search whose frontier queue
// holds unexplored subtree roots keyed by their (subtree-maximum)
// weight. Every popped node either matches the range (and is the next
// answer — popped weights are non-increasing) or lies on one of the two
// boundary paths, so a query costs O((log n + k) log(log n + k)) with
// O(n) space and needs no randomness.
//
// Role in the reproduction: this is the hand-tailored structure a
// problem expert would build *without* the paper, i.e. the yardstick
// for what the general reductions give up by being black-box
// (experiment E18 measures the gap).

#ifndef TOPK_RANGE1D_DIRECT_TOPK_H_
#define TOPK_RANGE1D_DIRECT_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"
#include "range1d/pst.h"

namespace topk::range1d {

class HeapSelectTopK {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  explicit HeapSelectTopK(std::vector<Point1D> data)
      : pst_(std::move(data)) {}

  size_t size() const { return pst_.size(); }

  // The k heaviest points with x in [q.lo, q.hi], heaviest first.
  std::vector<Point1D> Query(const Range1D& q, size_t k,
                             QueryStats* stats = nullptr) const {
    std::vector<Point1D> result;
    if (k == 0 || pst_.size() == 0 || q.lo > q.hi) return result;
    result.reserve(k < 1024 ? k : 1024);

    auto lighter = [this](int32_t a, int32_t b) {
      return HeavierThan(pst_.node_point(b), pst_.node_point(a));
    };
    std::priority_queue<int32_t, std::vector<int32_t>, decltype(lighter)>
        frontier(lighter);
    frontier.push(pst_.root());
    while (!frontier.empty() && result.size() < k) {
      const int32_t v = frontier.top();
      frontier.pop();
      AddNodes(stats, 1);
      const Point1D& p = pst_.node_point(v);
      if (Range1DProblem::Matches(q, p)) result.push_back(p);
      const double split = pst_.node_xsplit(v);
      const int32_t l = pst_.node_left(v);
      const int32_t r = pst_.node_right(v);
      if (l != PrioritySearchTree::kNil && q.lo <= split) frontier.push(l);
      if (r != PrioritySearchTree::kNil && q.hi >= split) frontier.push(r);
    }
    return result;
  }

 private:
  PrioritySearchTree pst_;
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_DIRECT_TOPK_H_
