// Dynamic range maximum: a treap keyed by (x, id) with *random* heap
// priorities (for balance) and a subtree max-weight augmentation.
//
// QueryMax([a, b]) decomposes the range into O(log n) expected subtrees
// and combines their cached maxima. Insert/Erase are treap updates that
// re-pull the augmentation along the touched path.

#ifndef TOPK_RANGE1D_DYN_RANGE_MAX_H_
#define TOPK_RANGE1D_DYN_RANGE_MAX_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/weighted.h"
#include "range1d/point1d.h"

namespace topk::range1d {

class DynamicRangeMax {
 public:
  using Element = Point1D;
  using Predicate = Range1D;

  DynamicRangeMax() : rng_(1729) {}
  explicit DynamicRangeMax(std::vector<Point1D> data, uint64_t seed = 1729)
      : rng_(seed) {
    for (const Point1D& p : data) Insert(p);
  }

  DynamicRangeMax(DynamicRangeMax&&) = default;
  DynamicRangeMax& operator=(DynamicRangeMax&&) = default;

  size_t size() const { return size_; }

  static double QueryCostBound(size_t n, size_t block_size) {
    if (n < 2) return 1.0;
    const double lg_b = std::log2(static_cast<double>(
        block_size < 2 ? size_t{2} : block_size));
    return std::max(1.0, std::log2(static_cast<double>(n)) / lg_b);
  }

  void Insert(const Point1D& p) {
    root_ = InsertAt(std::move(root_), p, rng_.Next());
    ++size_;
  }

  void Erase(const Point1D& p) {
    bool erased = false;
    root_ = EraseAt(std::move(root_), p, &erased);
    TOPK_CHECK(erased);
    --size_;
  }

  std::optional<Point1D> QueryMax(const Range1D& q,
                                  QueryStats* stats = nullptr) const {
    if (q.lo > q.hi) return std::nullopt;
    const Point1D* best = nullptr;
    Search(root_.get(), q, &best, stats);
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  template <typename F>
  void ForEach(F&& f) const {
    ForEachNode(root_.get(), f);
  }

 private:
  struct Node {
    Point1D point;
    uint64_t prio;
    Point1D subtree_max;  // heaviest point in this subtree
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static bool KeyLess(const Point1D& a, const Point1D& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.id < b.id;
  }

  static void Pull(Node* n) {
    n->subtree_max = n->point;
    if (n->left && HeavierThan(n->left->subtree_max, n->subtree_max)) {
      n->subtree_max = n->left->subtree_max;
    }
    if (n->right && HeavierThan(n->right->subtree_max, n->subtree_max)) {
      n->subtree_max = n->right->subtree_max;
    }
  }

  static NodePtr RotateRight(NodePtr n) {
    NodePtr l = std::move(n->left);
    n->left = std::move(l->right);
    Pull(n.get());
    l->right = std::move(n);
    Pull(l.get());
    return l;
  }

  static NodePtr RotateLeft(NodePtr n) {
    NodePtr r = std::move(n->right);
    n->right = std::move(r->left);
    Pull(n.get());
    r->left = std::move(n);
    Pull(r.get());
    return r;
  }

  static NodePtr InsertAt(NodePtr n, const Point1D& p, uint64_t prio) {
    if (!n) {
      NodePtr fresh = std::make_unique<Node>();
      fresh->point = p;
      fresh->prio = prio;
      fresh->subtree_max = p;
      return fresh;
    }
    if (KeyLess(p, n->point)) {
      n->left = InsertAt(std::move(n->left), p, prio);
      if (n->left->prio > n->prio) {
        n = RotateRight(std::move(n));
      } else {
        Pull(n.get());
      }
    } else {
      n->right = InsertAt(std::move(n->right), p, prio);
      if (n->right->prio > n->prio) {
        n = RotateLeft(std::move(n));
      } else {
        Pull(n.get());
      }
    }
    return n;
  }

  static NodePtr EraseAt(NodePtr n, const Point1D& p, bool* erased) {
    if (!n) return n;
    if (n->point.id == p.id && n->point.x == p.x) {
      *erased = true;
      return EraseRoot(std::move(n));
    }
    if (KeyLess(p, n->point)) {
      n->left = EraseAt(std::move(n->left), p, erased);
    } else {
      n->right = EraseAt(std::move(n->right), p, erased);
    }
    Pull(n.get());
    return n;
  }

  static NodePtr EraseRoot(NodePtr n) {
    if (!n->left && !n->right) return nullptr;
    if (!n->left || (n->right && n->right->prio > n->left->prio)) {
      n = RotateLeft(std::move(n));
      n->left = EraseRoot(std::move(n->left));
    } else {
      n = RotateRight(std::move(n));
      n->right = EraseRoot(std::move(n->right));
    }
    Pull(n.get());
    return n;
  }

  // Standard BST range-max descent: once the subtree's key range is
  // inside [a, b] the cached subtree_max answers in O(1).
  static void Search(const Node* n, const Range1D& q, const Point1D** best,
                     QueryStats* stats) {
    if (n == nullptr) return;
    AddNodes(stats, 1);
    if (n->point.x < q.lo) {
      Search(n->right.get(), q, best, stats);
      return;
    }
    if (n->point.x > q.hi) {
      Search(n->left.get(), q, best, stats);
      return;
    }
    // n is inside; left needs only the lower bound, right only the upper.
    Consider(n->point, best);
    SearchLow(n->left.get(), q.lo, best, stats);
    SearchHigh(n->right.get(), q.hi, best, stats);
  }

  // All keys here are <= some in-range key; only q.lo constrains.
  static void SearchLow(const Node* n, double lo, const Point1D** best,
                        QueryStats* stats) {
    if (n == nullptr) return;
    AddNodes(stats, 1);
    if (n->point.x >= lo) {
      Consider(n->point, best);
      if (n->right) ConsiderSubtree(*n->right, best, stats);
      SearchLow(n->left.get(), lo, best, stats);
    } else {
      SearchLow(n->right.get(), lo, best, stats);
    }
  }

  // All keys here are >= some in-range key; only q.hi constrains.
  static void SearchHigh(const Node* n, double hi, const Point1D** best,
                         QueryStats* stats) {
    if (n == nullptr) return;
    AddNodes(stats, 1);
    if (n->point.x <= hi) {
      Consider(n->point, best);
      if (n->left) ConsiderSubtree(*n->left, best, stats);
      SearchHigh(n->right.get(), hi, best, stats);
    } else {
      SearchHigh(n->left.get(), hi, best, stats);
    }
  }

  static void Consider(const Point1D& p, const Point1D** best) {
    if (*best == nullptr || HeavierThan(p, **best)) *best = &p;
  }

  static void ConsiderSubtree(const Node& n, const Point1D** best,
                              QueryStats* stats) {
    AddNodes(stats, 1);
    if (*best == nullptr || HeavierThan(n.subtree_max, **best)) {
      *best = &n.subtree_max;
    }
  }

  template <typename F>
  static void ForEachNode(const Node* n, F& f) {
    if (n == nullptr) return;
    f(n->point);
    ForEachNode(n->left.get(), f);
    ForEachNode(n->right.get(), f);
  }

  Rng rng_;
  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace topk::range1d

#endif  // TOPK_RANGE1D_DYN_RANGE_MAX_H_
