// Convex layers (onion peeling) answering halfplane reporting.
//
// Substitution for Chazelle–Guibas–Lee [15] (see DESIGN.md): peeling
// convex hulls gives the classic halfplane reporting structure. A query
// halfplane h visits layers outside-in; on each layer it finds the
// extreme vertex in h's normal direction in O(log m) and walks both ways
// along the ring collecting vertices inside h. If a layer misses h
// entirely, all deeper layers do too (they lie inside its hull), so the
// query stops: every visited layer except the last reports at least one
// point, giving O((1 + t) log n) — the paper's bound modulo the
// fractional-cascading log we document away.
//
// Space: every point lives on exactly one layer — O(n).

#ifndef TOPK_HALFSPACE_CONVEX_LAYERS_H_
#define TOPK_HALFSPACE_CONVEX_LAYERS_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "halfspace/convex.h"
#include "halfspace/point2.h"

namespace topk::halfspace {

class ConvexLayers {
 public:
  ConvexLayers() = default;
  explicit ConvexLayers(std::vector<Point2W> pts);

  size_t size() const { return size_; }
  size_t num_layers() const { return layers_.size(); }
  const ConvexHull& layer(size_t i) const { return layers_[i]; }

  // Calls emit(p) for every point in the halfplane; emit returns false
  // to stop. Returns false iff stopped early.
  //
  // On a convex ring the qualifying vertices form one contiguous arc
  // containing the extreme vertex, so one forward and one backward walk
  // cover it; the backward walk stops where the forward walk gave up,
  // which also handles the all-vertices-qualify wrap-around.
  template <typename Emit>
  bool Report(const Halfplane& h, Emit&& emit, QueryStats* stats) const {
    for (const ConvexHull& hull : layers_) {
      AddNodes(stats, 1);
      if (hull.empty()) continue;
      const size_t m = hull.num_vertices();
      const size_t ext = hull.ExtremeIndex(h.nx, h.ny);
      if (!HalfplaneProblem::Matches(h, hull.vertex(ext))) {
        return true;  // no deeper layer can intersect h
      }
      if (!emit(hull.vertex(ext))) return false;
      size_t fwd = (ext + 1) % m;
      while (fwd != ext && HalfplaneProblem::Matches(h, hull.vertex(fwd))) {
        if (!emit(hull.vertex(fwd))) return false;
        fwd = (fwd + 1) % m;
      }
      if (fwd != ext) {  // ring not exhausted: collect the other side
        for (size_t bwd = (ext + m - 1) % m;
             bwd != fwd && HalfplaneProblem::Matches(h, hull.vertex(bwd));
             bwd = (bwd + m - 1) % m) {
          if (!emit(hull.vertex(bwd))) return false;
        }
      }
    }
    return true;
  }

 private:
  size_t size_ = 0;
  std::vector<ConvexHull> layers_;
};

}  // namespace topk::halfspace

#endif  // TOPK_HALFSPACE_CONVEX_LAYERS_H_
