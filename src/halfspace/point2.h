// Problem definition: 2D halfplane reporting (Theorem 3, d = 2).
//
// D is a set of weighted points in R^2; a predicate is a halfplane
// { (x, y) : nx*x + ny*y >= c } given by its inward normal (nx, ny) and
// offset c. "Searching with linear constraints" per the paper's
// Section 1.4.
//
// Polynomial boundedness: every distinct outcome q(D) is cut off by a
// line through at most two input points — O(n^2) outcomes (the paper's
// own example), lambda = 2.

#ifndef TOPK_HALFSPACE_POINT2_H_
#define TOPK_HALFSPACE_POINT2_H_

#include <cstdint>

namespace topk::halfspace {

struct Point2W {
  double x = 0, y = 0;
  double weight = 0;
  uint64_t id = 0;
};

struct Halfplane {
  double nx = 0, ny = 0;  // inward normal
  double c = 0;           // points with nx*x + ny*y >= c match
};

struct HalfplaneProblem {
  using Element = Point2W;
  using Predicate = Halfplane;
  static constexpr double kLambda = 2.0;

  static bool Matches(const Halfplane& q, const Point2W& e) {
    return q.nx * e.x + q.ny * e.y >= q.c;
  }
};

}  // namespace topk::halfspace

#endif  // TOPK_HALFSPACE_POINT2_H_
