// Convex hull with logarithmic extreme-point search.
//
// The hull ring is stored counter-clockwise as lower chain (left to
// right) followed by upper chain (right to left), built by Andrew's
// monotone chain with strict turns (boundary-collinear points are not
// vertices — for onion peeling they simply fall into deeper layers,
// which preserves the containment invariant).
//
// ExtremeIndex(d) finds the vertex maximizing the dot product with d.
// Within one chain the edge directions rotate monotonically through a
// window of width <= pi, so the sign sequence of d . edge has at most
// one change and binary search applies; a bounded local fix-up step
// absorbs floating-point noise and the width == pi corner (vertical
// edges). Small rings are scanned directly.

#ifndef TOPK_HALFSPACE_CONVEX_H_
#define TOPK_HALFSPACE_CONVEX_H_

#include <cstddef>
#include <vector>

#include "halfspace/point2.h"

namespace topk::halfspace {

class ConvexHull {
 public:
  ConvexHull() = default;
  // Builds the hull of `pts` (need not be sorted; duplicates fine).
  explicit ConvexHull(std::vector<Point2W> pts);

  // Adopts an already-built ccw ring (from HullOfSorted). `upper_begin`
  // is the lower-chain length.
  static ConvexHull FromRing(std::vector<Point2W> ring, size_t upper_begin) {
    ConvexHull hull;
    hull.ring_ = std::move(ring);
    hull.upper_begin_ = upper_begin;
    return hull;
  }

  bool empty() const { return ring_.empty(); }
  size_t num_vertices() const { return ring_.size(); }
  const Point2W& vertex(size_t i) const { return ring_[i]; }
  const std::vector<Point2W>& ring() const { return ring_; }

  // Index of a vertex maximizing nx*x + ny*y; ring must be non-empty.
  size_t ExtremeIndex(double nx, double ny) const;

  // max over vertices of nx*x + ny*y; -inf when empty.
  double MaxDot(double nx, double ny) const;

  // True iff some vertex satisfies nx*x + ny*y >= c.
  bool IntersectsHalfplane(const Halfplane& h) const {
    return !ring_.empty() && MaxDot(h.nx, h.ny) >= h.c;
  }

 private:
  size_t ChainExtreme(size_t begin, size_t end, double nx, double ny) const;

  std::vector<Point2W> ring_;  // ccw; [0, upper_begin_) = lower chain
  size_t upper_begin_ = 0;
};

// Builds the hull ring of points sorted by (x, y); exposed for the
// onion-peeling loop which keeps its working set sorted. `out_on_hull`
// (same length as pts) is set to true for vertices.
std::vector<Point2W> HullOfSorted(const std::vector<Point2W>& pts,
                                  std::vector<char>* out_on_hull,
                                  size_t* out_upper_begin);

}  // namespace topk::halfspace

#endif  // TOPK_HALFSPACE_CONVEX_H_
