#include "halfspace/convex_layers.h"

#include <algorithm>
#include <utility>

namespace topk::halfspace {

ConvexLayers::ConvexLayers(std::vector<Point2W> pts) : size_(pts.size()) {
  std::sort(pts.begin(), pts.end(), [](const Point2W& a, const Point2W& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.id < b.id;
  });
  // Peel: each pass hulls the remaining (still sorted) points; hull
  // vertices form the next layer. Coincident points: only one copy can
  // be a hull *vertex* per pass (HullOfSorted marks by index), so twins
  // drop to deeper layers rather than vanishing.
  std::vector<Point2W> remaining = std::move(pts);
  std::vector<char> on_hull;
  while (!remaining.empty()) {
    size_t upper_begin = 0;
    std::vector<Point2W> ring =
        HullOfSorted(remaining, &on_hull, &upper_begin);
    // HullOfSorted marks the *positions* it used as vertices; coincident
    // duplicates of a vertex are distinct positions and stay.
    std::vector<Point2W> next;
    next.reserve(remaining.size() - ring.size());
    // A subtlety: with exact duplicates, the same coordinates appear at
    // several positions but the chain algorithm only pushes one of them;
    // positions not marked survive to the next layer.
    std::vector<char> used(remaining.size(), 0);
    {
      // Mark exactly the ring vertices by matching ids (ids are unique).
      size_t matched = 0;
      for (size_t i = 0; i < remaining.size() && matched < ring.size();
           ++i) {
        if (on_hull[i]) {
          used[i] = 1;
          ++matched;
        }
      }
    }
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!used[i]) next.push_back(remaining[i]);
    }
    layers_.push_back(ConvexHull::FromRing(std::move(ring), upper_begin));
    remaining = std::move(next);
  }
}

}  // namespace topk::halfspace
